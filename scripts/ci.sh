#!/usr/bin/env bash
# Tier-1 offline CI: everything here must pass with no network access.
#
# The workspace is hermetic by policy — no external crates, no registry,
# no lockfile churn (see README "Testing"). `--offline` enforces that:
# if a dependency on a registry crate sneaks into any Cargo.toml, the
# build step fails right here instead of in an air-gapped environment.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release (offline)"
cargo build --release --workspace --offline

echo "==> cargo test -q (offline)"
cargo test -q --workspace --offline

echo "ok: tier-1 green"
