#!/usr/bin/env bash
# Tier-1 offline CI: everything here must pass with no network access.
#
# The workspace is hermetic by policy — no external crates, no registry,
# no lockfile churn (see README "Testing"). `--offline` enforces that:
# if a dependency on a registry crate sneaks into any Cargo.toml, the
# build step fails right here instead of in an air-gapped environment.

set -euo pipefail
cd "$(dirname "$0")/.."

# The in-tree linter runs first: it needs only its own crate compiled, so
# a determinism/hermeticity/hot-path violation fails in seconds, before
# the full workspace builds (see DESIGN.md §8 for the rule table and §13
# for the workspace call-graph analyzer behind P1/A1/N1/F1).
echo "==> silcfm-lint (offline, cold-budget + cached artifact)"
cargo build -q --offline -p silcfm-lint
lint_bin="target/debug/silcfm-lint"
# Cold analysis must fit a 10 s budget: the linter is the cheapest CI step
# by design, and an analyzer slow enough to skip locally stops being run.
rm -f target/silcfm-lint-cache.txt
lint_start=$(date +%s%N)
if ! "$lint_bin" --json > target/lint-findings.json; then
  "$lint_bin" --fix-hints   # replays the cache; human-readable details
  exit 1
fi
lint_end=$(date +%s%N)
cold_ms=$(( (lint_end - lint_start) / 1000000 ))
[ "$cold_ms" -le 10000 ] || {
  echo "cold lint took ${cold_ms} ms, over the 10 s budget"; exit 1; }
# The second run replays the incremental cache — a near-instant no-op that
# proves the fingerprint round-trips on an unchanged tree.
"$lint_bin" > /dev/null
echo "    cold ${cold_ms} ms; findings artifact: target/lint-findings.json"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings (offline)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release (offline)"
cargo build --release --workspace --offline

echo "==> cargo test -q (offline)"
cargo test -q --workspace --offline

# Smoke-run the throughput benchmark: a tiny budget exercises the whole
# measurement path (stream generation, all three layers, every scheme) in
# a few seconds without writing an artifact or timing the grid. The
# batched layer runs behind its digest gate (`--batch 64`): every
# scheme's access_batch replay must be byte-identical to the scalar one
# or the binary exits non-zero. `--overhead` additionally runs SILC-FM
# with the ring tracers and epoch sampler live and reports tracer-on vs
# tracer-off acc/s plus the sampling tier at 1-in-16/1-in-256 (the
# full-budget numbers live in results/BENCH_throughput.json).
echo "==> throughput benchmark (smoke budget, batch gate, tracing overhead)"
cargo run --release --offline -p silcfm-bench --bin throughput -- \
  --budget 2000 --repeats 1 --batch 64 --no-write --skip-grid --overhead

# Latency-percentile smoke: measure per-class demand-latency sketches
# for every scheme on a 3-workload subset, and gate serial-vs-sharded
# byte-identity of the sketch encodings (DESIGN.md §14) — the percentile
# plane must not depend on the thread count.
echo "==> latency percentiles (smoke, sharded byte-identity gate)"
cargo run --release --offline -p silcfm-bench --bin latency -- --smoke --no-write

# Perf-regression gate: interleaved best-of regime measurement, gated on
# host-independent ratio metrics (scheme-vs-baseline speed, traced-vs-
# untraced overhead) against the last committed trajectory run. A gated
# ratio leaving its 1.6x band fails CI; intentional changes append a new
# run to results/BENCH_trajectory.json and commit it.
echo "==> perf-regression gate (smoke, ratio bands vs committed trajectory)"
cargo run --release --offline -p silcfm-bench --bin regress -- --smoke --check

# Scaling smoke: run one small simulation serially and sharded at 1, 2
# and 4 threads and demand bit-identical results — the epoch-barrier
# merge determinism guarantee (DESIGN.md §11), checked end to end
# through the real bench binary rather than only in unit tests.
echo "==> sharded-run determinism (smoke)"
cargo run --release --offline -p silcfm-bench --bin scaling -- --smoke

# Trace smoke: capture one fully traced smoke run, then validate the
# Chrome trace with the in-tree checker — the JSON must parse, every
# declared track must carry at least one event, and per-track timestamps
# must be monotone (see DESIGN.md §9).
echo "==> trace capture + validation (smoke)"
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
cargo run --release --offline -p silcfm-bench --bin trace_capture -- \
  --smoke --trace "$trace_dir/trace.json" --metrics-out "$trace_dir/series.csv" \
  --summary
cargo run --release --offline -p silcfm-obs --bin trace_check -- \
  "$trace_dir/trace.json"

# Sampling-tier smoke: the same capture with the ring subsampled 1-in-16.
# The trace must still validate (tracks present, timestamps monotone) and
# the summary's per-kind counts stay exact — they come from the always-on
# counter tier, not the thinned ring (DESIGN.md §12).
echo "==> sampling tracer capture + validation (smoke, 1-in-16)"
cargo run --release --offline -p silcfm-bench --bin trace_capture -- \
  --smoke --sampling 16 --trace "$trace_dir/sampled.json" --summary
cargo run --release --offline -p silcfm-obs --bin trace_check -- \
  "$trace_dir/sampled.json"

# Chaos smoke: soak the fault plane (conservation, replay bit-identity,
# ledger-vs-trace agreement, the failover oracle) at CI size. Any
# invariant violation prints a VIOLATION line and exits non-zero
# (see DESIGN.md §10).
echo "==> chaos soak (smoke)"
cargo run --release --offline -p silcfm-bench --bin chaos -- --smoke

# Kill-and-resume smoke: run a journaled fault grid with each cell
# sharded across 2 threads, crash it mid-write after 2 of 4 jobs
# (exit 3, torn tail on the journal), resume it — still sharded — and
# demand the byte-identical aggregate an uninterrupted *serial* run
# produces. Passing proves both crash-safety and that sharded execution
# is mode-invariant (DESIGN.md §11): the journal cannot tell which
# engine wrote it.
echo "==> journaled grid kill-and-resume (smoke, sharded cells)"
chaos_bin="target/release/chaos"
journal_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir" "$journal_dir"' EXIT
rc=0
"$chaos_bin" --skip-soak --journal "$journal_dir/crash.journal" \
  --die-after-jobs 2 --sharded 2 || rc=$?
[ "$rc" -eq 3 ] || { echo "expected simulated crash (exit 3), got $rc"; exit 1; }
resumed="$("$chaos_bin" --skip-soak --journal "$journal_dir/crash.journal" \
  --resume --sharded 2 | grep -o 'aggregate=[0-9a-f]*')"
fresh="$("$chaos_bin" --skip-soak --journal "$journal_dir/fresh.journal" \
  | grep -o 'aggregate=[0-9a-f]*')"
[ -n "$resumed" ] && [ "$resumed" = "$fresh" ] || {
  echo "resume aggregate mismatch: resumed='$resumed' fresh='$fresh'"; exit 1; }
echo "    resumed (sharded) $resumed == fresh (serial) $fresh"

# Serving-plane smoke: the SLO max-RPS search at CI size (DESIGN.md §15).
# Writes results/BENCH_slo.json (uploaded as a workflow artifact), runs
# the AIMD searches with the conservation ledger asserted on every trial,
# and gates serial-vs-sharded byte-identity of the full serving digest.
echo "==> SLO max-RPS search (smoke, sharded byte-identity gate)"
slo_bin="target/release/slo"
cargo run --release --offline -p silcfm-bench --bin slo -- --smoke

# SLO search kill-and-resume: journal the search, crash it mid-write
# after 4 trials (exit 3, torn tail), resume — verdict replay through
# fresh regulators must finish with the byte-identical aggregate an
# uninterrupted search prints.
echo "==> SLO search kill-and-resume (smoke)"
rc=0
"$slo_bin" --smoke --no-write --skip-check \
  --journal "$journal_dir/slo.journal" --die-after-trials 4 || rc=$?
[ "$rc" -eq 3 ] || { echo "expected simulated crash (exit 3), got $rc"; exit 1; }
slo_resumed="$("$slo_bin" --smoke --no-write --skip-check \
  --journal "$journal_dir/slo.journal" --resume | grep -o 'aggregate=[0-9a-f]*')"
slo_fresh="$("$slo_bin" --smoke --no-write --skip-check \
  | grep -o 'aggregate=[0-9a-f]*')"
[ -n "$slo_resumed" ] && [ "$slo_resumed" = "$slo_fresh" ] || {
  echo "SLO resume aggregate mismatch: resumed='$slo_resumed' fresh='$slo_fresh'"
  exit 1; }
echo "    resumed $slo_resumed == fresh $slo_fresh"

# Serving-plane fault soak: open-loop trials under harsh faults — request
# ledger conservation, NACK windows pinned to real failure intervals, the
# failover oracle, sharded identity under faults, and ledger evidence
# behind every regulator back-off (DESIGN.md §15).
echo "==> chaos serving-plane soak (smoke)"
"$chaos_bin" --smoke --skip-soak --slo

echo "ok: tier-1 green"
