#!/usr/bin/env bash
# Tier-1 offline CI: everything here must pass with no network access.
#
# The workspace is hermetic by policy — no external crates, no registry,
# no lockfile churn (see README "Testing"). `--offline` enforces that:
# if a dependency on a registry crate sneaks into any Cargo.toml, the
# build step fails right here instead of in an air-gapped environment.

set -euo pipefail
cd "$(dirname "$0")/.."

# The in-tree linter runs first: it needs only its own crate compiled, so
# a determinism/hermeticity/hot-path violation fails in seconds, before
# the full workspace builds (see DESIGN.md §8 for the rule table).
echo "==> silcfm-lint (offline)"
cargo run -q --offline -p silcfm-lint

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings (offline)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release (offline)"
cargo build --release --workspace --offline

echo "==> cargo test -q (offline)"
cargo test -q --workspace --offline

# Smoke-run the throughput benchmark: a tiny budget exercises the whole
# measurement path (stream generation, both layers, every scheme) in a few
# seconds without writing an artifact or timing the grid.
echo "==> throughput benchmark (smoke budget)"
cargo run --release --offline -p silcfm-bench --bin throughput -- \
  --budget 2000 --repeats 1 --no-write --skip-grid

echo "ok: tier-1 green"
