//! Golden-stats snapshot test.
//!
//! One fixed-seed trace per Table III workload runs through SILC-FM and
//! each baseline (HMA, CAMEO, PoM); a digest of the stats the paper's
//! figures are built from — hit rate (Eq. 1 access rate), NM demand
//! fraction, and swap counts — is compared against the checked-in
//! snapshot `tests/golden_stats.txt`.
//!
//! The snapshot pins the *whole* simulation stack: trace generation (the
//! in-tree xoshiro256** streams), the cache hierarchy, every scheme's
//! placement decisions, and the DRAM timing models. Any behavioral change
//! shows up as a diff here before it shows up as a mystery in a figure.
//!
//! To bless a deliberate change: `BLESS=1 cargo test --test golden` and
//! review the diff like any other code change.

use std::fmt::Write as _;

use silc_fm::sim::{run_grid, run_grid_serial, ExperimentGrid, Job, RunParams, SchemeKind};
use silc_fm::types::SystemConfig;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_stats.txt");

/// The snapshot grid: every workload × (SILC-FM + the paper's baselines),
/// on the small config with sub-smoke-sized fixed-seed runs (the grid is
/// 56 cells and runs twice — serial and parallel — so each cell is kept
/// to a third of a smoke run to stay inside a tier-1 time budget).
fn snapshot_jobs() -> Vec<Job> {
    let params = RunParams {
        accesses_per_core: 10_000,
        ..RunParams::smoke()
    };
    ExperimentGrid::new(SystemConfig::small(), params)
        .all_workloads()
        .schemes([
            SchemeKind::Hma,
            SchemeKind::Cameo,
            SchemeKind::Pom,
            SchemeKind::silcfm(),
        ])
        .jobs()
}

/// Renders the stats digest, one line per run. Floats print with six
/// decimals: the runs are bit-deterministic, so the text is too.
fn digest(results: &[silc_fm::sim::RunResult]) -> String {
    let mut out = String::new();
    out.push_str("# workload scheme hit_rate nm_demand_frac subblock_swaps block_migrations\n");
    for r in results {
        writeln!(
            out,
            "{} {} hit_rate={:.6} nm_frac={:.6} sub_swaps={} blk_migr={}",
            r.workload,
            r.scheme,
            r.access_rate,
            r.traffic.nm_demand_fraction(),
            r.scheme_stats.subblocks_moved,
            r.scheme_stats.blocks_migrated,
        )
        .unwrap();
    }
    out
}

#[test]
fn golden_stats_snapshot() {
    let jobs = snapshot_jobs();
    let serial = run_grid_serial(&jobs);
    let actual = digest(&serial);

    // The parallel engine must reproduce the digest bit for bit — this is
    // the aggregate-level determinism guarantee of the sharded runner.
    let parallel = run_grid(&jobs, 4);
    assert_eq!(
        digest(&parallel),
        actual,
        "parallel runner digest diverged from the serial path"
    );

    if std::env::var("BLESS").is_ok() {
        std::fs::write(GOLDEN_PATH, &actual).expect("write golden snapshot");
        return;
    }

    let expected = std::fs::read_to_string(GOLDEN_PATH)
        .expect("tests/golden_stats.txt missing; regenerate with BLESS=1 cargo test --test golden");
    if actual != expected {
        // Line-level diff keeps the failure actionable.
        for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
            if a != e {
                eprintln!("line {}:\n  expected: {e}\n  actual:   {a}", i + 1);
            }
        }
        panic!(
            "golden stats diverged ({} vs {} lines); if intentional, rerun \
             with BLESS=1 and commit the diff",
            actual.lines().count(),
            expected.lines().count()
        );
    }
}
