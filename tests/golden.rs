//! Golden-stats snapshot test.
//!
//! One fixed-seed trace per Table III workload runs through SILC-FM and
//! each baseline (HMA, CAMEO, PoM); a digest of the stats the paper's
//! figures are built from — hit rate (Eq. 1 access rate), NM demand
//! fraction, and swap counts — is compared against the checked-in
//! snapshot `tests/golden_stats.txt`.
//!
//! The snapshot pins the *whole* simulation stack: trace generation (the
//! in-tree xoshiro256** streams), the cache hierarchy, every scheme's
//! placement decisions, and the DRAM timing models. Any behavioral change
//! shows up as a diff here before it shows up as a mystery in a figure.
//!
//! To bless a deliberate change: `BLESS=1 cargo test --test golden` and
//! review the diff like any other code change.

use std::fmt::Write as _;

use silc_fm::sim::experiment::space_for;
use silc_fm::sim::{run_grid, run_grid_serial, ExperimentGrid, Job, RunParams, SchemeKind};
use silc_fm::trace::{PageMapper, PlacementPolicy, WorkloadGen};
use silc_fm::types::{Access, CoreId, SchemeOutcome, SystemConfig};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_stats.txt");

/// The snapshot grid: every workload × (SILC-FM + the paper's baselines),
/// on the small config with sub-smoke-sized fixed-seed runs (the grid is
/// 56 cells and runs twice — serial and parallel — so each cell is kept
/// to a third of a smoke run to stay inside a tier-1 time budget).
fn snapshot_jobs() -> Vec<Job> {
    let params = RunParams {
        accesses_per_core: 10_000,
        ..RunParams::smoke()
    };
    ExperimentGrid::new(SystemConfig::small(), params)
        .all_workloads()
        .schemes([
            SchemeKind::Hma,
            SchemeKind::Cameo,
            SchemeKind::Pom,
            SchemeKind::silcfm(),
        ])
        .jobs()
}

/// Renders the stats digest, one line per run. Floats print with six
/// decimals: the runs are bit-deterministic, so the text is too.
fn digest(results: &[silc_fm::sim::RunResult]) -> String {
    let mut out = String::new();
    out.push_str("# workload scheme hit_rate nm_demand_frac subblock_swaps block_migrations\n");
    for r in results {
        writeln!(
            out,
            "{} {} hit_rate={:.6} nm_frac={:.6} sub_swaps={} blk_migr={}",
            r.workload,
            r.scheme,
            r.access_rate,
            r.traffic.nm_demand_fraction(),
            r.scheme_stats.subblocks_moved,
            r.scheme_stats.blocks_migrated,
        )
        .unwrap();
    }
    out
}

#[test]
fn golden_stats_snapshot() {
    let jobs = snapshot_jobs();
    let serial = run_grid_serial(&jobs);
    let actual = digest(&serial);

    // The parallel engine must reproduce the digest bit for bit — this is
    // the aggregate-level determinism guarantee of the sharded runner.
    let parallel = run_grid(&jobs, 4);
    assert_eq!(
        digest(&parallel),
        actual,
        "parallel runner digest diverged from the serial path"
    );

    // silcfm-lint: allow(D2) -- BLESS is the sanctioned snapshot-regeneration switch; it rewrites the golden file, never the simulated results
    if std::env::var("BLESS").is_ok() {
        std::fs::write(GOLDEN_PATH, &actual).expect("write golden snapshot");
        return;
    }

    let expected = std::fs::read_to_string(GOLDEN_PATH)
        .expect("tests/golden_stats.txt missing; regenerate with BLESS=1 cargo test --test golden");
    if actual != expected {
        // Line-level diff keeps the failure actionable.
        for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
            if a != e {
                eprintln!("line {}:\n  expected: {e}\n  actual:   {a}", i + 1);
            }
        }
        panic!(
            "golden stats diverged ({} vs {} lines); if intentional, rerun \
             with BLESS=1 and commit the diff",
            actual.lines().count(),
            expected.lines().count()
        );
    }
}

/// Thread-invariance of the *sharded single-run* engine against the same
/// committed snapshot: executing every workload × scheme row with the
/// simulation itself sharded at 2 and at 4 threads must reproduce the
/// serial digest bit for bit, with zero epoch-merge handoff mismatches —
/// and the per-job lane-delta checksums must be identical across thread
/// counts, because they are a pure function of the workload streams.
#[test]
fn sharded_digests_match_the_committed_snapshot_at_any_thread_count() {
    use silc_fm::sim::{run_sharded, ShardParams};

    // silcfm-lint: allow(D2) -- during a BLESS re-snapshot the committed file is mid-rewrite by the snapshot test; this check reruns on the next ordinary test pass
    if std::env::var("BLESS").is_ok() {
        return;
    }
    let expected = std::fs::read_to_string(GOLDEN_PATH)
        .expect("tests/golden_stats.txt missing; regenerate with BLESS=1 cargo test --test golden");

    let jobs = snapshot_jobs();
    let mut checksum_rows: Vec<Vec<u64>> = Vec::new();
    for threads in [2usize, 4] {
        let shard = ShardParams {
            threads,
            epoch_records: 1024,
            lookahead_epochs: 4,
        };
        let mut results = Vec::new();
        let mut checksums = Vec::new();
        for job in &jobs {
            let (r, report) = run_sharded(&job.profile, job.scheme, &job.cfg, &job.params, &shard);
            assert_eq!(
                report.delta_mismatches, 0,
                "{}/{} tore an epoch handoff at {threads} threads",
                r.workload, r.scheme
            );
            checksums.push(report.checksum);
            results.push(r);
        }
        assert_eq!(
            digest(&results),
            expected,
            "sharded digest at {threads} threads diverged from the committed snapshot"
        );
        checksum_rows.push(checksums);
    }
    assert_eq!(
        checksum_rows[0], checksum_rows[1],
        "lane-delta checksums must be thread-count invariant"
    );
}

/// The outcome-reuse protocol is behavior-neutral: driving every scheme with
/// one reused `SchemeOutcome` produces exactly the op sequences, servicing
/// decisions and tallies of a fresh outcome per access. This is the
/// equivalence `System::run` (which reuses) leans on, pinned here against a
/// fixed-seed workload for SILC-FM and all four baselines.
#[test]
fn outcome_reuse_matches_fresh_outcomes() {
    let cfg = SystemConfig::small();
    let params = RunParams::smoke();
    let profile = silc_fm::trace::profiles::scaled(
        silc_fm::trace::profiles::by_name("milc").unwrap(),
        params.footprint_scale,
    );
    let space = space_for(&profile, &cfg, &params);

    let schemes = [
        SchemeKind::Rand,
        SchemeKind::Hma,
        SchemeKind::Cameo,
        SchemeKind::CameoPrefetch,
        SchemeKind::Pom,
        SchemeKind::silcfm(),
    ];
    for kind in schemes {
        // Identical access stream for both drivers.
        let mut mapper = PageMapper::new(space, PlacementPolicy::RandomSeeded(params.seed));
        let mut gen = WorkloadGen::new(&profile, CoreId::new(0), params.seed);
        let accesses: Vec<Access> = (0..20_000)
            .map(|_| {
                let rec = gen.next_record();
                let paddr = mapper
                    .translate(CoreId::new(0), rec.vaddr)
                    .expect("footprint exceeds physical memory");
                Access::read(paddr, rec.pc, CoreId::new(0))
            })
            .collect();

        let mut fresh = kind.build(space, accesses.len() as u64);
        let mut reuse = kind.build(space, accesses.len() as u64);
        let mut out = SchemeOutcome::empty();
        for (i, access) in accesses.iter().enumerate() {
            let expected = fresh.access_fresh(access);
            reuse.access(access, &mut out);
            assert_eq!(
                out,
                expected,
                "access {i} diverged under outcome reuse ({})",
                fresh.name()
            );
        }
        assert_eq!(
            fresh.stats(),
            reuse.stats(),
            "stats diverged under outcome reuse ({})",
            fresh.name()
        );
    }
}

/// Tracing is observation only. Running the whole snapshot grid with the
/// ring tracers, demand-latency histograms and epoch sampler live must
/// reproduce the untraced stats digest bit for bit — the `T::ENABLED` emit
/// sites never touch simulation state. And the exported artifacts are
/// themselves deterministic: a serial re-run of a cell produces Chrome
/// traces and CSV time series byte-identical to the parallel run's.
#[test]
fn tracing_is_behavior_neutral_and_deterministic() {
    use silc_fm::obs::export;
    use silc_fm::sim::{run_grid_traced, run_traced, TraceParams};

    let jobs = snapshot_jobs();
    let untraced = digest(&run_grid_serial(&jobs));

    let trace = TraceParams {
        events_capacity: 1 << 14,
        epoch_cycles: 50_000,
    };
    let traced = run_grid_traced(&jobs, &trace, 4);
    let results: Vec<_> = traced.iter().map(|(r, _)| r.clone()).collect();
    assert_eq!(
        digest(&results),
        untraced,
        "turning tracing on changed simulated behavior"
    );

    // Byte-identical exports, serial vs parallel, spot-checked on a few
    // cells (the full grid above already pins the numeric digest).
    for (job, (_, parallel_report)) in jobs.iter().zip(&traced).take(3) {
        let (_, serial_report) =
            run_traced(&job.profile, job.scheme, &job.cfg, &job.params, &trace);
        assert_eq!(
            export::chrome_trace(&serial_report),
            export::chrome_trace(parallel_report),
            "chrome trace diverged between serial and parallel runs"
        );
        assert_eq!(
            export::csv_series(&serial_report),
            export::csv_series(parallel_report),
            "CSV time series diverged between serial and parallel runs"
        );
    }
}

/// The latency-percentile plane is engine-invariant: the per-class
/// quantile-sketch encodings (and therefore every percentile report built
/// from them) must be byte-identical whether a cell runs serially or on
/// the sharded engine at 2 or 4 threads. The sketches fold samples in
/// completion order, so this pins the guarantee that sharded epoch-barrier
/// commits replay the *exact* serial completion sequence — a weaker
/// "same multiset of samples" property would already give identical
/// percentiles, but byte equality of the counts is what the journal and
/// the grid aggregation rely on.
#[test]
fn latency_sketches_are_byte_identical_serial_vs_sharded() {
    use silc_fm::sim::{run_sharded_traced, run_traced, ShardParams, TraceParams};

    let trace = TraceParams {
        events_capacity: 1 << 14,
        epoch_cycles: 50_000,
    };
    // A slice of the snapshot grid with class diversity: SILC-FM exercises
    // swap/bypass/lock paths, HMA the epoch-migration path.
    let jobs: Vec<Job> = snapshot_jobs()
        .into_iter()
        .filter(|j| {
            matches!(j.scheme, SchemeKind::Hma | SchemeKind::SilcFm(_))
                && ["milc", "lib"].contains(&j.profile.name)
        })
        .collect();
    assert_eq!(
        jobs.len(),
        4,
        "the filter should keep 2 workloads x 2 schemes"
    );

    for job in &jobs {
        let (_, serial_report) =
            run_traced(&job.profile, job.scheme, &job.cfg, &job.params, &trace);
        let mut serial_bytes = String::new();
        serial_report.latency.encode(&mut serial_bytes);
        assert!(
            serial_report.latency.count() > 0,
            "the percentile plane must see samples"
        );
        for threads in [2usize, 4] {
            let shard = ShardParams::with_threads(threads);
            let (_, sharded_report, _) = run_sharded_traced(
                &job.profile,
                job.scheme,
                &job.cfg,
                &job.params,
                &trace,
                &shard,
            );
            let mut sharded_bytes = String::new();
            sharded_report.latency.encode(&mut sharded_bytes);
            assert_eq!(
                sharded_bytes,
                serial_bytes,
                "{}/{}: sketch bytes diverged at {threads} threads",
                job.profile.name,
                job.scheme.label()
            );
        }
    }
}
