//! Property-based tests of the core invariants.
//!
//! The load-bearing property of a *flat* memory organization is that data is
//! exchanged, never copied or lost: at all times every block of the combined
//! address space is resident at exactly one location. These tests drive the
//! schemes with generated access sequences and check the metadata invariants
//! that encode that property, plus conservation laws on the traffic the
//! schemes emit.
//!
//! The cases come from the in-tree harness ([`silc_fm::types::check`]):
//! 256 fixed-seed cases per property, with the failing case's seed printed
//! on assertion failure so it can be rerun in isolation via
//! `check::forall_seed`.

use silc_fm::baselines::{Cameo, CameoParams, Pom, PomParams};
use silc_fm::core::{LockState, SilcFm, SilcFmParams};
use silc_fm::dram::{DramConfig, DramModel};
use silc_fm::types::check::{forall, forall_cases};
use silc_fm::types::rng::{Rng, Xoshiro256StarStar};
use silc_fm::types::{
    Access, AddressSpace, BlockIndex, CoreId, Geometry, MemKind, MemOp, MemoryScheme, OpKind,
    PhysAddr, TrafficClass,
};

const NM_BLOCKS: u64 = 64;
const FM_BLOCKS: u64 = 256;

fn space() -> AddressSpace {
    AddressSpace::new(NM_BLOCKS * 2048, FM_BLOCKS * 2048)
}

/// An arbitrary access: uniform over blocks, subblock offsets, a small PC
/// pool, and read/write.
fn arb_access(rng: &mut Xoshiro256StarStar) -> Access {
    let block = rng.gen_range(0..NM_BLOCKS + FM_BLOCKS);
    let off = rng.gen_range(0u32..32);
    let pc = 0x400 + rng.gen_range(0u64..8) * 4;
    let addr = PhysAddr::new(block * 2048 + u64::from(off) * 64);
    if rng.gen_bool(0.5) {
        Access::write(addr, pc, CoreId::new(0))
    } else {
        Access::read(addr, pc, CoreId::new(0))
    }
}

/// A generated access sequence of length in `1..max_len`.
fn arb_accesses(rng: &mut Xoshiro256StarStar, max_len: usize) -> Vec<Access> {
    let len = rng.gen_range(1..max_len);
    (0..len).map(|_| arb_access(rng)).collect()
}

/// Sums migration bytes by (memory, direction).
fn migration_tally<'a>(ops: impl IntoIterator<Item = &'a MemOp>) -> (u64, u64, u64, u64) {
    let mut nm_r = 0;
    let mut nm_w = 0;
    let mut fm_r = 0;
    let mut fm_w = 0;
    for op in ops
        .into_iter()
        .filter(|o| o.class == TrafficClass::Migration)
    {
        match (op.mem, op.kind) {
            (MemKind::Near, OpKind::Read) => nm_r += u64::from(op.bytes),
            (MemKind::Near, OpKind::Write) => nm_w += u64::from(op.bytes),
            (MemKind::Far, OpKind::Read) => fm_r += u64::from(op.bytes),
            (MemKind::Far, OpKind::Write) => fm_w += u64::from(op.bytes),
        }
    }
    (nm_r, nm_w, fm_r, fm_w)
}

/// SILC-FM metadata invariants: an FM block is interleaved into at most one
/// frame of its congruence set; locked-remap frames are fully resident;
/// locked-native frames hold only native data; a set bit always has a tenant
/// to exchange with.
#[test]
fn silcfm_metadata_invariants() {
    forall("silcfm_metadata_invariants", |rng| {
        let mut scheme = SilcFm::new(
            space(),
            Geometry::paper(),
            SilcFmParams {
                lock_threshold: 6,
                lock_min_resident: 1,
                aging_period: 100,
                bypass_window: 50,
                ..SilcFmParams::paper()
            },
        );
        for a in arb_accesses(rng, 400) {
            let out = scheme.access_fresh(&a);
            assert!(!out.critical.is_empty(), "demand op always present");
            let demand = out.critical.last().unwrap();
            assert_eq!(demand.mem, out.serviced_from);
        }
        // Check every frame's metadata.
        let sets = scheme.sets();
        let mut tenants = silcfm_types::FxHashSet::default();
        for f in 0..NM_BLOCKS {
            let meta = scheme.frame(f);
            if let Some(tenant) = meta.remap {
                assert!(tenant.value() >= NM_BLOCKS, "tenants come from FM");
                assert_eq!(tenant.value() % sets, f % sets, "tenant in its set");
                assert!(tenants.insert(tenant), "tenant {tenant} in two frames");
            } else {
                assert_eq!(meta.bitvec, 0, "bits without a tenant");
            }
            match meta.lock {
                LockState::LockedRemap => {
                    assert_eq!(meta.bitvec, Geometry::paper().full_mask());
                    assert!(meta.remap.is_some());
                }
                LockState::LockedNative => {
                    assert_eq!(meta.bitvec, 0);
                    assert!(meta.remap.is_none());
                }
                LockState::Unlocked => {}
            }
        }
    });
}

/// Conservation: every migration writes as many bytes into each memory as it
/// reads out of the other (the demand read may substitute for one migration
/// read), so writes to NM+FM always equal 2 x 64 B per exchange.
#[test]
fn silcfm_swap_traffic_balances() {
    forall("silcfm_swap_traffic_balances", |rng| {
        let mut scheme = SilcFm::new(space(), Geometry::paper(), SilcFmParams::paper());
        for a in arb_accesses(rng, 300) {
            let out = scheme.access_fresh(&a);
            let (_, nm_w, fm_r, fm_w) = migration_tally(&out.background);
            // Per exchange: exactly one NM write and one FM write.
            assert_eq!(nm_w, fm_w, "NM and FM receive equal swap bytes");
            // Reads never exceed writes (demand covers at most one read).
            assert!(fm_r <= fm_w + nm_w);
        }
    });
}

/// CAMEO's line location table stays a permutation under arbitrary access
/// sequences: no line is ever lost or duplicated.
#[test]
fn cameo_permutation_totality() {
    forall("cameo_permutation_totality", |rng| {
        let mut cameo = Cameo::new(space(), CameoParams::with_prefetch());
        for a in arb_accesses(rng, 500) {
            let _ = cameo.access_fresh(&a);
        }
        // Re-access every line of set 0's congruence group: each must be
        // found somewhere (find_slot panics on a broken permutation).
        for member in 0..5u64 {
            let addr = member * NM_BLOCKS * 2048; // line 0 of each member
            let _ = cameo.access_fresh(&Access::read(PhysAddr::new(addr), 0, CoreId::new(0)));
        }
    });
}

/// A swapped-in line is immediately re-serviceable from NM (CAMEO swaps
/// unconditionally on every FM access).
#[test]
fn cameo_swap_in_is_visible() {
    forall("cameo_swap_in_is_visible", |rng| {
        let block = rng.gen_range(NM_BLOCKS..NM_BLOCKS + FM_BLOCKS);
        let off = rng.gen_range(0u32..32);
        let mut cameo = Cameo::new(space(), CameoParams::default());
        let addr = PhysAddr::new(block * 2048 + u64::from(off) * 64);
        let first = cameo.access_fresh(&Access::read(addr, 0, CoreId::new(0)));
        assert_eq!(first.serviced_from, MemKind::Far);
        let second = cameo.access_fresh(&Access::read(addr, 0, CoreId::new(0)));
        assert_eq!(second.serviced_from, MemKind::Near);
    });
}

/// PoM's permutation stays total and its migrations move whole blocks.
#[test]
fn pom_invariants() {
    forall("pom_invariants", |rng| {
        let mut pom = Pom::new(
            space(),
            PomParams {
                threshold: 3,
                ..PomParams::default()
            },
        );
        let mut migration_bytes = 0u64;
        for a in arb_accesses(rng, 400) {
            let out = pom.access_fresh(&a);
            for op in &out.background {
                assert_eq!(op.bytes, 2048, "PoM moves whole blocks");
                migration_bytes += u64::from(op.bytes);
            }
        }
        let stats = pom.stats();
        assert_eq!(migration_bytes, stats.blocks_migrated * 4 * 2048);
    });
}

/// DRAM model laws: completions never precede arrivals, per-channel bus
/// occupancy never exceeds elapsed time, and identical request streams give
/// identical timings.
#[test]
fn dram_model_laws() {
    forall("dram_model_laws", |rng| {
        let len = rng.gen_range(1usize..200);
        let requests: Vec<(u64, u32, bool)> = (0..len)
            .map(|_| {
                (
                    rng.gen_range(0u64..1 << 22),
                    rng.gen_range(1u32..4),
                    rng.gen_bool(0.5),
                )
            })
            .collect();
        let mut m1 = DramModel::new(DramConfig::ddr3());
        let mut m2 = DramModel::new(DramConfig::ddr3());
        let mut now = 0u64;
        let mut last = 0u64;
        for (addr, size64, is_write) in requests {
            let bytes = size64 * 64;
            let addr = addr & !63;
            let (a, b) = if is_write {
                (m1.write(now, addr, bytes), m2.write(now, addr, bytes))
            } else {
                (m1.read(now, addr, bytes), m2.read(now, addr, bytes))
            };
            assert_eq!(a, b, "deterministic");
            assert!(a >= now, "completion {a} before arrival {now}");
            last = last.max(a);
            now += 8; // advancing arrival times
        }
        let elapsed_mem = last / 4 + 1;
        let stats = m1.stats();
        assert!(
            stats.bus_busy_cycles <= elapsed_mem * 4,
            "bus busier ({}) than 4 channels x {} cycles",
            stats.bus_busy_cycles,
            elapsed_mem
        );
    });
}

/// Scheme determinism across the board: same access sequence, same emitted
/// operations. (Fewer cases: each case simulates three controllers.)
#[test]
fn schemes_are_deterministic() {
    forall_cases("schemes_are_deterministic", 128, |rng| {
        let accesses = arb_accesses(rng, 200);
        let mut a = SilcFm::new(space(), Geometry::paper(), SilcFmParams::paper());
        let mut b = SilcFm::new(space(), Geometry::paper(), SilcFmParams::paper());
        for acc in &accesses {
            assert_eq!(a.access_fresh(acc), b.access_fresh(acc));
        }
        // And reset really resets.
        a.reset();
        let mut c = SilcFm::new(space(), Geometry::paper(), SilcFmParams::paper());
        for acc in &accesses {
            assert_eq!(a.access_fresh(acc), c.access_fresh(acc));
        }
    });
}

/// The access-rate metric is always the fraction of NM-serviced demands.
#[test]
fn access_rate_accounting() {
    forall("access_rate_accounting", |rng| {
        let accesses = arb_accesses(rng, 300);
        let mut scheme = SilcFm::new(space(), Geometry::paper(), SilcFmParams::paper());
        let mut nm_count = 0u64;
        for a in &accesses {
            if scheme.access_fresh(a).serviced_from == MemKind::Near {
                nm_count += 1;
            }
        }
        let stats = scheme.stats();
        assert_eq!(stats.serviced_from_nm, nm_count);
        assert_eq!(stats.accesses, accesses.len() as u64);
        let expected = nm_count as f64 / accesses.len() as f64;
        assert!((stats.access_rate() - expected).abs() < 1e-12);
    });
}

/// Geometry round trips: any address decomposes into (block, offset) and
/// recomposes exactly.
#[test]
fn geometry_round_trip() {
    forall("geometry_round_trip", |rng| {
        let addr = rng.gen_range(0u64..1 << 40);
        let geom = Geometry::paper();
        let a = PhysAddr::new(addr);
        let block = BlockIndex::containing(a, geom);
        let off = silc_fm::types::SubblockIndex::containing(a, geom).offset_in_block(geom);
        let reconstructed = block.base_addr(geom).value() + u64::from(off) * 64 + (addr % 64);
        assert_eq!(reconstructed, addr);
    });
}

// ---- observability invariants ---------------------------------------------

/// Histogram bucketing round-trips: every value lands inside the bucket
/// reported for it, and adjacent buckets tile the `u64` line with no gap
/// or overlap.
#[test]
fn histogram_buckets_round_trip() {
    use silc_fm::obs::hist::{bucket_of, bucket_range};
    forall("histogram_buckets_round_trip", |rng| {
        // Stress the power-of-two boundaries plus a uniform draw.
        let exp = rng.gen_range(0u64..64);
        let base = 1u64 << exp;
        for v in [
            0,
            base,
            base - 1,
            base.saturating_add(1),
            rng.gen_range(0u64..u64::MAX),
        ] {
            let b = bucket_of(v);
            let (lo, hi) = bucket_range(b);
            assert!(lo <= v && v <= hi, "{v} outside bucket {b} [{lo}, {hi}]");
            if b > 0 {
                let (_, below) = bucket_range(b - 1);
                assert_eq!(lo, below + 1, "gap or overlap below bucket {b}");
            }
        }
    });
}

/// A ring tracer driven past capacity keeps exactly the newest
/// `capacity` events, in recording order, and counts each overwrite
/// as one drop.
#[test]
fn ring_wraparound_keeps_newest_events() {
    use silc_fm::obs::{Event, RingTracer, Tracer};
    forall("ring_wraparound_keeps_newest_events", |rng| {
        let capacity = rng.gen_range(1u64..48);
        let n = rng.gen_range(1u64..160);
        let mut t = RingTracer::with_capacity(capacity as usize);
        for i in 0..n {
            t.record(i, Event::PredictorHit);
        }
        let kept = n.min(capacity);
        assert_eq!(t.dropped(), n - kept);
        let events = t.drain();
        assert_eq!(events.len() as u64, kept);
        let oldest_kept = n - kept;
        for (k, e) in events.iter().enumerate() {
            assert_eq!(
                e.at,
                oldest_kept + k as u64,
                "drain must return the newest {kept} events oldest-first"
            );
        }
    });
}

/// However sparsely the driving loop notices epoch boundaries in-run, a
/// sealed sampler holds exactly `ceil(total_cycles / epoch)` rows.
#[test]
fn sampler_seals_to_exact_row_count() {
    use silc_fm::obs::{EpochSampler, SeriesSpec};
    forall("sampler_seals_to_exact_row_count", |rng| {
        let epoch = rng.gen_range(1u64..1_000);
        let total = rng.gen_range(0u64..50_000);
        let spec = SeriesSpec::new().series("obs.hit_rate");
        let mut s = EpochSampler::new(spec, epoch, total);
        // Advance in random strides, recording only when the sampler says a
        // row is due — exactly the `System::run` protocol.
        let mut cycle = 0u64;
        while cycle < total {
            cycle = (cycle + rng.gen_range(1u64..=3 * epoch)).min(total);
            if s.due(cycle) {
                s.record(&[cycle as f64]);
            }
        }
        s.seal(total, &[-1.0]);
        assert_eq!(s.rows() as u64, total.div_ceil(epoch));
        for i in 0..s.rows() {
            assert_eq!(s.row(i).len(), 1, "row arity survives sealing");
        }
    });
}

/// Fault schedules replay bit-identically from their seed and every drawn
/// payload stays inside the declared topology — the precondition for
/// delivering them into a controller without bounds checks downstream.
#[test]
fn fault_schedules_replay_and_respect_topology() {
    use silc_fm::fault::{FaultRates, FaultSchedule, FaultTopology};
    use silc_fm::types::fault::{FaultKind, SchemeFault};

    forall("fault_schedules_replay_and_respect_topology", |rng| {
        let topo = FaultTopology {
            nm_ways: rng.gen_range(1u64..8) as u8,
            nm_frames: rng.gen_range(1u64..4096) as u32,
            subblocks: 32,
            nm_channels: rng.gen_range(1u64..16) as u8,
            fm_channels: rng.gen_range(1u64..8) as u8,
        };
        let scale = rng.gen_range(0u64..40) as f64 / 10.0;
        let base = FaultRates::harsh();
        let rates = FaultRates {
            way_degrade_per_m: base.way_degrade_per_m * scale,
            bit_flip_per_m: base.bit_flip_per_m * scale,
            metadata_parity_per_m: base.metadata_parity_per_m * scale,
            channel_stall_per_m: base.channel_stall_per_m * scale,
            channel_fail_per_m: base.channel_fail_per_m * scale,
            ..base
        };
        let seed = rng.gen_range(0u64..1 << 60);
        let horizon = rng.gen_range(100_000u64..4_000_000);
        let a = FaultSchedule::generate(seed, horizon, &rates, &topo).unwrap();
        let b = FaultSchedule::generate(seed, horizon, &rates, &topo).unwrap();
        assert_eq!(a.faults(), b.faults(), "same seed, same schedule");

        let mut prev = 0;
        for f in a.faults() {
            assert!(f.at >= prev, "schedule sorted by delivery cycle");
            prev = f.at;
            match f.kind {
                FaultKind::Scheme(SchemeFault::DegradeWay { way })
                | FaultKind::Scheme(SchemeFault::RestoreWay { way }) => {
                    assert!(way < topo.nm_ways);
                }
                FaultKind::Scheme(SchemeFault::BitFlip {
                    frame, subblock, ..
                }) => {
                    assert!(frame < topo.nm_frames);
                    assert!(subblock < topo.subblocks);
                }
                FaultKind::Scheme(SchemeFault::MetadataParity { frame }) => {
                    assert!(frame < topo.nm_frames);
                }
                FaultKind::Dram { device, fault } => {
                    let channels = match device {
                        MemKind::Near => topo.nm_channels,
                        MemKind::Far => topo.fm_channels,
                    };
                    assert!(fault.channel() < channels);
                }
            }
        }
    });
}

/// Applying a schedule's scheme faults to a warmed-up controller is
/// deterministic (same effects, same stats on replay), conserves every
/// delivery in the effect ledger, and reports exactly the failover
/// transitions the schedule-only oracle derives.
#[test]
fn controller_fault_effects_replay_and_conserve() {
    use silc_fm::fault::{
        expected_failover_transitions, FaultRates, FaultSchedule, FaultStats, FaultTopology,
    };
    use silc_fm::types::fault::{FaultEffect, FaultKind, ScheduledFault};
    use silc_fm::types::{SchemeOutcome, SchemeStats};

    fn detail(stats: &SchemeStats, key: &str) -> f64 {
        stats
            .details
            .iter()
            .find(|(k, _)| *k == key)
            .map_or(0.0, |(_, v)| *v)
    }

    forall_cases("controller_fault_effects_replay_and_conserve", 64, |rng| {
        let topo = FaultTopology {
            nm_ways: 4,
            nm_frames: NM_BLOCKS as u32,
            subblocks: 32,
            nm_channels: 8,
            fm_channels: 4,
        };
        let accesses = arb_accesses(rng, 300);
        let seed = rng.gen_range(0u64..1 << 48);
        let schedule =
            FaultSchedule::generate(seed, 2_000_000, &FaultRates::harsh(), &topo).unwrap();
        let scheme_faults: Vec<ScheduledFault> = schedule
            .faults()
            .iter()
            .filter(|f| matches!(f.kind, FaultKind::Scheme(_)))
            .copied()
            .collect();

        let drive = |acc: &[Access],
                     faults: &[ScheduledFault]|
         -> (Vec<FaultEffect>, FaultStats, SchemeStats) {
            let mut scheme = SilcFm::new(
                space(),
                Geometry::paper(),
                SilcFmParams {
                    aging_period: 100,
                    bypass_window: 50,
                    ..SilcFmParams::paper()
                },
            );
            for a in acc {
                let _ = scheme.access_fresh(a);
            }
            let mut out = SchemeOutcome::empty();
            let mut effects = Vec::new();
            let mut ledger = FaultStats::default();
            for f in faults {
                let FaultKind::Scheme(sf) = f.kind else {
                    continue;
                };
                let e = scheme.apply_fault(&sf, &mut out);
                ledger.record(e);
                effects.push(e);
            }
            (effects, ledger, scheme.stats())
        };

        let (e1, l1, s1) = drive(&accesses, &scheme_faults);
        let (e2, l2, s2) = drive(&accesses, &scheme_faults);
        assert_eq!(e1, e2, "effects replay bit-identically");
        assert_eq!(l1, l2);
        assert_eq!(s1, s2);
        assert!(l1.conserved(), "every delivery has one accounted effect");
        assert_eq!(l1.injected as usize, scheme_faults.len());

        // The controller's own counters agree with the external ledger.
        assert_eq!(detail(&s1, "faults_injected") as u64, l1.injected);
        assert_eq!(detail(&s1, "fault_corrected") as u64, l1.corrected);
        assert_eq!(detail(&s1, "fault_recovered") as u64, l1.recovered);
        assert_eq!(detail(&s1, "fault_poisoned") as u64, l1.poisoned);
        assert_eq!(detail(&s1, "fault_masked") as u64, l1.masked);

        // Failover transitions match the schedule-only oracle exactly.
        let oracle = expected_failover_transitions(&scheme_faults, 4);
        assert_eq!(detail(&s1, "failover_transitions") as usize, oracle.len());
    });
}

/// The ECC outcome mix of generated bit flips tracks the configured
/// probabilities (within binomial noise): the fault plane's randomness is
/// calibrated, not just reproducible.
#[test]
fn ecc_outcomes_track_configured_probabilities() {
    use silc_fm::fault::{FaultRates, FaultSchedule, FaultTopology};

    forall_cases("ecc_outcomes_track_configured_probabilities", 64, |rng| {
        let correct_pct = rng.gen_range(0u64..=90);
        let due_pct = rng.gen_range(0u64..=(100 - correct_pct));
        let rates = FaultRates {
            bit_flip_per_m: 200.0,
            ecc_correct_p: correct_pct as f64 / 100.0,
            ecc_due_p: due_pct as f64 / 100.0,
            ..FaultRates::none()
        };
        let topo = FaultTopology {
            nm_ways: 4,
            nm_frames: 1024,
            subblocks: 32,
            nm_channels: 8,
            fm_channels: 4,
        };
        let seed = rng.gen_range(0u64..1 << 60);
        let s = FaultSchedule::generate(seed, 10_000_000, &rates, &topo).unwrap();
        let (c, d, u) = s.ecc_histogram();
        let n = c + d + u;
        assert!(n > 1_000, "expected ~2000 flips, got {n}");

        let expect = [
            rates.ecc_correct_p,
            rates.ecc_due_p,
            1.0 - rates.ecc_correct_p - rates.ecc_due_p,
        ];
        for (label, (got, p)) in ["corrected", "due", "undetected"]
            .iter()
            .zip([c, d, u].into_iter().zip(expect))
        {
            let frac = got as f64 / n as f64;
            let tol = (5.0 * (p * (1.0 - p) / n as f64).sqrt()).max(0.02);
            assert!(
                (frac - p).abs() <= tol,
                "{label}: observed {frac:.3} vs configured {p:.3} (tol {tol:.3}, n={n})"
            );
        }
    });
}

/// Cutting a journal at an arbitrary byte (the crash model) and resuming
/// recovers exactly the records whose lines completed; re-appending the
/// missing ones reproduces the uninterrupted journal byte for byte.
#[test]
fn journal_resume_recovers_exactly_the_complete_prefix() {
    use silc_fm::sim::journal::{resume, JournalWriter};
    use silc_fm::sim::{RunResult, TrafficTally};
    use silc_fm::types::SchemeStats;

    fn arb_result(rng: &mut Xoshiro256StarStar, i: usize) -> RunResult {
        const KEYS: &[&str] = &["locks", "swaps", "epochs", "migrations"];
        let access_rate = rng.gen_range(0u64..1 << 52) as f64 / 1e18 - 1.0;
        let energy_pj = rng.gen_range(0u64..1 << 52) as f64 / 3.0 - 1.0;
        let mpki = rng.gen_range(0u64..1 << 52) as f64 / 1e6 - 1.0;
        let mut stats = SchemeStats {
            accesses: rng.gen_range(0u64..1 << 40),
            serviced_from_nm: rng.gen_range(0u64..1 << 40),
            subblocks_moved: rng.gen_range(0u64..1 << 40),
            blocks_migrated: rng.gen_range(0u64..1 << 20),
            details: Vec::new(),
        };
        for key in KEYS.iter().take(rng.gen_range(0usize..=KEYS.len())) {
            let v = rng.gen_range(0u64..1 << 52) as f64 / 7.0;
            stats.detail(key, v);
        }
        RunResult {
            scheme: ["silcfm", "hma", "cam"][i % 3].to_string(),
            workload: ["mcf", "milc"][i % 2].to_string(),
            cycles: rng.gen_range(1u64..u64::MAX),
            instructions: rng.gen_range(1u64..u64::MAX),
            llc_misses: rng.gen_range(0u64..1 << 40),
            access_rate,
            traffic: TrafficTally {
                nm_demand: rng.gen_range(0u64..1 << 40),
                fm_demand: rng.gen_range(0u64..1 << 40),
                nm_other: rng.gen_range(0u64..1 << 40),
                fm_other: rng.gen_range(0u64..1 << 40),
            },
            energy_pj,
            scheme_stats: stats,
            mpki,
            footprint_bytes: rng.gen_range(0u64..1 << 48),
        }
    }

    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("silcfm-prop-journal");
    std::fs::create_dir_all(&dir).unwrap();

    forall_cases(
        "journal_resume_recovers_exactly_the_complete_prefix",
        64,
        |rng| {
            let digest = rng.gen_range(0u64..u64::MAX);
            let n = rng.gen_range(1usize..6);
            let results: Vec<RunResult> = (0..n).map(|i| arb_result(rng, i)).collect();
            let path = dir.join(format!(
                "case-{:016x}.journal",
                rng.gen_range(0u64..u64::MAX)
            ));

            let mut w = JournalWriter::create(&path, digest).unwrap();
            for (i, r) in results.iter().enumerate() {
                w.append(i, r).unwrap();
            }
            drop(w);
            let full = std::fs::read(&path).unwrap();

            // Crash model: the file survives only up to an arbitrary byte.
            let header_end = full.iter().position(|b| *b == b'\n').unwrap() + 1;
            let cut = rng.gen_range(header_end..=full.len());
            std::fs::write(&path, &full[..cut]).unwrap();

            let (mut w2, done) = resume(&path, digest).unwrap();
            let ends: Vec<usize> = full
                .iter()
                .enumerate()
                .skip(header_end)
                .filter(|(_, b)| **b == b'\n')
                .map(|(i, _)| i + 1)
                .collect();
            let survived = ends.iter().filter(|e| **e <= cut).count();
            assert_eq!(done.len(), survived, "exactly the complete lines survive");
            for (i, r) in &done {
                assert_eq!(&results[*i], r, "record {i} round-trips bit-exactly");
            }

            // Finishing the interrupted run reproduces the uninterrupted file.
            for (i, r) in results.iter().enumerate().skip(survived) {
                w2.append(i, r).unwrap();
            }
            drop(w2);
            assert_eq!(std::fs::read(&path).unwrap(), full);
            std::fs::remove_file(&path).ok();
        },
    );
}

// ---- sharded-run determinism ----------------------------------------------

/// Sharding a run across producer threads is invisible in the results: for
/// random workloads, schemes, run sizes, seeds and epoch geometries, the
/// full result digest of `run_sharded` equals the serial `run`'s at every
/// thread count in {1, 2, 3, 4, 7} — and the epoch-merge checksum is a pure
/// function of the workload streams, so it never varies with the thread
/// count either.
#[test]
fn sharded_runs_match_serial_bit_for_bit() {
    use silc_fm::sim::{run, run_sharded, RunParams, SchemeKind, ShardParams};
    use silc_fm::types::{FxHasher, SystemConfig};
    use std::hash::Hasher as _;

    fn digest(r: &silc_fm::sim::RunResult) -> u64 {
        let mut h = FxHasher::default();
        h.write(format!("{r:?}").as_bytes());
        h.finish()
    }

    forall_cases("sharded_runs_match_serial_bit_for_bit", 8, |rng| {
        let names = ["milc", "mcf", "lib", "dealii"];
        let profile =
            silc_fm::trace::profiles::by_name(names[rng.gen_range(0usize..names.len())]).unwrap();
        let schemes = [
            SchemeKind::silcfm(),
            SchemeKind::Hma,
            SchemeKind::Cameo,
            SchemeKind::Pom,
        ];
        let scheme = schemes[rng.gen_range(0usize..schemes.len())];
        let cfg = SystemConfig::small();
        let params = RunParams {
            accesses_per_core: rng.gen_range(1_500u64..4_000),
            seed: rng.gen_range(0u64..1 << 48),
            ..RunParams::smoke()
        };
        let serial = digest(&run(profile, scheme, &cfg, &params));

        // One epoch geometry per case: the merge checksum depends on the
        // barrier spacing, so invariance is asserted at fixed geometry.
        let epoch_records = rng.gen_range(64u64..1_500);
        let lookahead_epochs = rng.gen_range(1usize..5);
        let mut checksums = Vec::new();
        for threads in [1usize, 2, 3, 4, 7] {
            let shard = ShardParams {
                threads,
                epoch_records,
                lookahead_epochs,
            };
            let (r, report) = run_sharded(profile, scheme, &cfg, &params, &shard);
            assert_eq!(digest(&r), serial, "threads={threads} diverged from serial");
            assert_eq!(
                report.delta_mismatches, 0,
                "threads={threads} tore a handoff"
            );
            assert_eq!(
                report.merged.records,
                params.accesses_per_core * u64::from(cfg.core.cores),
                "merged lane deltas must account every record"
            );
            checksums.push(report.checksum);
        }
        assert!(
            checksums.windows(2).all(|w| w[0] == w[1]),
            "merge checksum varied with thread count: {checksums:?}"
        );
    });
}

/// The sharded runner stays bit-identical with the heavyweight run modes
/// on: full observability (result digest, Chrome trace and CSV exports all
/// byte-equal to the serial traced run) and armed fault schedules (ledger
/// bit-equal, conserved, and still conserved after merging ledgers).
#[test]
fn sharded_traced_and_faulted_runs_match_serial() {
    use silc_fm::fault::FaultRates;
    use silc_fm::obs::export;
    use silc_fm::sim::{
        run_faulted, run_sharded_faulted, run_sharded_traced, run_traced, FaultParams, RunParams,
        SchemeKind, ShardParams, TraceParams,
    };
    use silc_fm::types::{FxHasher, SystemConfig};
    use std::hash::Hasher as _;

    fn digest(r: &silc_fm::sim::RunResult) -> u64 {
        let mut h = FxHasher::default();
        h.write(format!("{r:?}").as_bytes());
        h.finish()
    }

    forall_cases("sharded_traced_and_faulted_runs_match_serial", 4, |rng| {
        let profile = silc_fm::trace::profiles::by_name("milc").unwrap();
        let scheme = SchemeKind::silcfm();
        let cfg = SystemConfig::small();
        let params = RunParams {
            accesses_per_core: rng.gen_range(1_500u64..3_000),
            seed: rng.gen_range(0u64..1 << 48),
            ..RunParams::smoke()
        };
        let shard = ShardParams {
            threads: [2usize, 3, 7][rng.gen_range(0usize..3)],
            epoch_records: rng.gen_range(64u64..1_000),
            lookahead_epochs: rng.gen_range(1usize..4),
        };

        // Tracing on: results and exported artifacts are byte-identical.
        let trace = TraceParams {
            events_capacity: 1 << 14,
            epoch_cycles: 50_000,
        };
        let (sr, s_report) = run_traced(profile, scheme, &cfg, &params, &trace);
        let (pr, p_report, shard_report) =
            run_sharded_traced(profile, scheme, &cfg, &params, &trace, &shard);
        assert_eq!(digest(&pr), digest(&sr), "traced results diverged");
        assert_eq!(shard_report.delta_mismatches, 0);
        assert_eq!(
            export::chrome_trace(&p_report),
            export::chrome_trace(&s_report),
            "chrome trace diverged under sharding"
        );
        assert_eq!(
            export::csv_series(&p_report),
            export::csv_series(&s_report),
            "CSV time series diverged under sharding"
        );

        // Fault schedule armed: the ledger is bit-identical and conserved,
        // and ledgers from independent runs merge without leaking.
        let faults = FaultParams {
            fault_seed: rng.gen_range(0u64..1 << 48),
            horizon_cycles: 3_000_000,
            rates: FaultRates::harsh(),
        };
        let (fr, f_stats) = run_faulted(profile, scheme, &cfg, &params, &faults).unwrap();
        let (pfr, pf_stats, f_shard) =
            run_sharded_faulted(profile, scheme, &cfg, &params, &faults, &shard).unwrap();
        assert_eq!(digest(&pfr), digest(&fr), "faulted results diverged");
        assert_eq!(pf_stats, f_stats, "fault ledgers diverged");
        assert!(pf_stats.conserved());
        assert_eq!(f_shard.delta_mismatches, 0);
        let mut merged = pf_stats;
        merged.merge(&f_stats);
        assert!(merged.conserved(), "merged ledgers must not leak effects");
        assert_eq!(merged.injected, 2 * f_stats.injected);
    });
}

/// PR 5's crash model applied to the *sharded* journaled runner: cut the
/// journal at an arbitrary byte, resume sharded, and the aggregate — and
/// the finished journal file itself — must come back byte-identical to the
/// uninterrupted run's.
#[test]
fn sharded_journaled_grid_survives_random_cuts() {
    use silc_fm::sim::runner::ExperimentGrid;
    use silc_fm::sim::{run_grid_journaled_sharded, RunParams, SchemeKind, ShardParams};
    use silc_fm::types::SystemConfig;

    let dir =
        std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("silcfm-prop-shard-journal");
    std::fs::create_dir_all(&dir).unwrap();

    forall_cases("sharded_journaled_grid_survives_random_cuts", 6, |rng| {
        let params = RunParams {
            accesses_per_core: rng.gen_range(1_000u64..2_000),
            seed: rng.gen_range(0u64..1 << 48),
            ..RunParams::smoke()
        };
        let jobs = ExperimentGrid::new(SystemConfig::small(), params)
            .workload(silc_fm::trace::profiles::by_name("mcf").unwrap())
            .workload(silc_fm::trace::profiles::by_name("milc").unwrap())
            .scheme(SchemeKind::silcfm())
            .seed_per_job()
            .jobs();
        let shard = ShardParams {
            threads: rng.gen_range(2usize..4),
            epoch_records: rng.gen_range(128u64..600),
            lookahead_epochs: 2,
        };
        let path = dir.join(format!(
            "case-{:016x}.journal",
            rng.gen_range(0u64..u64::MAX)
        ));

        let uninterrupted =
            run_grid_journaled_sharded(&jobs, 1, &path, false, &shard, |_, _| {}).unwrap();
        let full = std::fs::read(&path).unwrap();

        // Crash model: the file survives only up to an arbitrary byte.
        let header_end = full.iter().position(|b| *b == b'\n').unwrap() + 1;
        let cut = rng.gen_range(header_end..=full.len());
        std::fs::write(&path, &full[..cut]).unwrap();

        let resumed = run_grid_journaled_sharded(&jobs, 1, &path, true, &shard, |_, _| {}).unwrap();
        assert_eq!(uninterrupted, resumed, "aggregate must be cut-invariant");
        assert_eq!(
            std::fs::read(&path).unwrap(),
            full,
            "the finished journal must be byte-identical to the uninterrupted one"
        );
        std::fs::remove_file(&path).ok();
    });
}

/// The 6-bit frame aging counters clamp at the field width from any
/// starting state — including a corrupt past-the-width one — instead of
/// wrapping or panicking.
#[test]
fn frame_counters_saturate_at_the_field_width() {
    use silc_fm::core::metadata::COUNTER_MAX;
    use silc_fm::core::FrameMeta;

    forall("frame_counters_saturate_at_the_field_width", |rng| {
        let mut m = FrameMeta::empty();
        m.nm_counter = rng.gen_range(0u64..256) as u8;
        m.fm_counter = rng.gen_range(0u64..256) as u8;
        let bumps = rng.gen_range(1usize..200);
        for _ in 0..bumps {
            let v = if rng.gen_bool(0.5) {
                m.bump_nm()
            } else {
                m.bump_fm()
            };
            assert!(v <= COUNTER_MAX, "counter escaped its width: {v}");
        }
        if bumps >= 2 * usize::from(COUNTER_MAX) {
            assert_eq!(m.nm_counter.max(m.fm_counter), COUNTER_MAX);
        }
    });
}

// ---- batched access path ----------------------------------------------------

/// The batched access path is, per access, byte-identical to the scalar
/// loop: every scheme (baselines included), every batch size — including a
/// batch larger than the whole stream — produces the same operations,
/// service decisions and stall charges, and leaves the scheme with the
/// same statistics.
#[test]
fn access_batch_is_bit_identical_to_the_scalar_loop() {
    use silc_fm::sim::SchemeKind;
    use silc_fm::types::{BatchOutcome, SchemeOutcome};

    forall_cases(
        "access_batch_is_bit_identical_to_the_scalar_loop",
        12,
        |rng| {
            let kinds = [
                SchemeKind::NoNm,
                SchemeKind::Rand,
                SchemeKind::Hma,
                SchemeKind::Cameo,
                SchemeKind::CameoPrefetch,
                SchemeKind::Pom,
                SchemeKind::silcfm(),
            ];
            let accesses = arb_accesses(rng, 600);
            for kind in kinds {
                for batch in [1usize, 7, 64, 4096] {
                    let mut scalar = kind.build(space(), accesses.len() as u64);
                    let mut batched = kind.build(space(), accesses.len() as u64);
                    let mut out = SchemeOutcome::empty();
                    let mut bout = BatchOutcome::new();
                    let mut done = 0usize;
                    for chunk in accesses.chunks(batch) {
                        batched.access_batch(chunk, &mut bout);
                        assert_eq!(bout.len(), chunk.len(), "one entry per access");
                        for (j, access) in chunk.iter().enumerate() {
                            scalar.access(access, &mut out);
                            let view = bout.entry(j).unwrap();
                            assert!(
                                view.matches(&out),
                                "{} batch={batch} access {}: {view:?} != {out:?}",
                                kind.label(),
                                done + j,
                            );
                        }
                        done += chunk.len();
                    }
                    assert_eq!(
                        format!("{:?}", scalar.stats()),
                        format!("{:?}", batched.stats()),
                        "{} batch={batch}: stats diverged",
                        kind.label(),
                    );
                }
            }
        },
    );
}

/// The batch equivalence holds with the heavyweight run modes on: a
/// sampling-traced SILC-FM instance driven batched stays access-for-access
/// identical to the scalar one — exact event counters included — while
/// faults (degrade, bit flips, parity, repair) land between batches.
#[test]
fn access_batch_matches_scalar_under_tracing_and_faults() {
    use silc_fm::sim::SchemeKind;
    use silc_fm::types::fault::EccOutcome;
    use silc_fm::types::{BatchOutcome, SchemeFault, SchemeOutcome};

    forall_cases(
        "access_batch_matches_scalar_under_tracing_and_faults",
        24,
        |rng| {
            let accesses = arb_accesses(rng, 400);
            let batch = [1usize, 7, 64, 4096][rng.gen_range(0usize..4)];
            let period = [1u64, 16, 256][rng.gen_range(0usize..3)];
            let kind = SchemeKind::silcfm();
            let total = accesses.len() as u64;
            let mut scalar = kind.build_sampled(space(), total, 1 << 10, period);
            let mut batched = kind.build_sampled(space(), total, 1 << 10, period);

            let arb_fault = |rng: &mut Xoshiro256StarStar| match rng.gen_range(0u64..4) {
                0 => SchemeFault::DegradeWay {
                    way: rng.gen_range(0u64..4) as u8,
                },
                1 => SchemeFault::RestoreWay {
                    way: rng.gen_range(0u64..4) as u8,
                },
                2 => SchemeFault::BitFlip {
                    frame: rng.gen_range(0..NM_BLOCKS) as u32,
                    subblock: rng.gen_range(0u64..32) as u8,
                    ecc: [
                        EccOutcome::Corrected,
                        EccOutcome::DetectedUncorrectable,
                        EccOutcome::Undetected,
                    ][rng.gen_range(0usize..3)],
                },
                _ => SchemeFault::MetadataParity {
                    frame: rng.gen_range(0..NM_BLOCKS) as u32,
                },
            };

            let mut out = SchemeOutcome::empty();
            let mut bout = BatchOutcome::new();
            let mut fault_out_a = SchemeOutcome::empty();
            let mut fault_out_b = SchemeOutcome::empty();
            for chunk in accesses.chunks(batch) {
                // A fault lands between batches with probability 1/2 — the
                // same fault at the same stream position on both instances,
                // mirroring how the driver delivers scheduled faults at
                // access boundaries.
                if rng.gen_bool(0.5) {
                    let fault = arb_fault(rng);
                    let ea = scalar.apply_fault(&fault, &mut fault_out_a);
                    let eb = batched.apply_fault(&fault, &mut fault_out_b);
                    assert_eq!(ea, eb, "fault effects diverged for {fault:?}");
                    assert_eq!(fault_out_a, fault_out_b, "fault traffic diverged");
                }
                batched.access_batch(chunk, &mut bout);
                for (j, access) in chunk.iter().enumerate() {
                    scalar.access(access, &mut out);
                    let view = bout.entry(j).unwrap();
                    assert!(view.matches(&out), "batch={batch} period={period}");
                }
            }
            assert_eq!(
                scalar.trace_counters(),
                batched.trace_counters(),
                "exact event counters diverged (batch={batch}, period={period})"
            );
            assert_eq!(
                format!("{:?}", scalar.stats()),
                format!("{:?}", batched.stats()),
                "stats diverged (batch={batch}, period={period})"
            );
        },
    );
}
