//! Property-based tests of the core invariants.
//!
//! The load-bearing property of a *flat* memory organization is that data is
//! exchanged, never copied or lost: at all times every block of the combined
//! address space is resident at exactly one location. These tests drive the
//! schemes with arbitrary access sequences and check the metadata invariants
//! that encode that property, plus conservation laws on the traffic the
//! schemes emit.

use proptest::prelude::*;

use silc_fm::baselines::{Cameo, CameoParams, Pom, PomParams};
use silc_fm::core::{LockState, SilcFm, SilcFmParams};
use silc_fm::dram::{DramConfig, DramModel};
use silc_fm::types::{
    Access, AddressSpace, BlockIndex, CoreId, Geometry, MemKind, MemOp, MemoryScheme, OpKind,
    PhysAddr, TrafficClass,
};

const NM_BLOCKS: u64 = 64;
const FM_BLOCKS: u64 = 256;

fn space() -> AddressSpace {
    AddressSpace::new(NM_BLOCKS * 2048, FM_BLOCKS * 2048)
}

/// An arbitrary access: (block, subblock offset, pc-site, is_write).
fn access_strategy() -> impl Strategy<Value = (u64, u32, u64, bool)> {
    (
        0..(NM_BLOCKS + FM_BLOCKS),
        0u32..32,
        0u64..8,
        proptest::bool::ANY,
    )
}

fn make_access((block, off, pc, write): (u64, u32, u64, bool)) -> Access {
    let addr = PhysAddr::new(block * 2048 + u64::from(off) * 64);
    if write {
        Access::write(addr, 0x400 + pc * 4, CoreId::new(0))
    } else {
        Access::read(addr, 0x400 + pc * 4, CoreId::new(0))
    }
}

/// Sums migration bytes by (memory, direction).
fn migration_tally(ops: &[MemOp]) -> (u64, u64, u64, u64) {
    let mut nm_r = 0;
    let mut nm_w = 0;
    let mut fm_r = 0;
    let mut fm_w = 0;
    for op in ops.iter().filter(|o| o.class == TrafficClass::Migration) {
        match (op.mem, op.kind) {
            (MemKind::Near, OpKind::Read) => nm_r += u64::from(op.bytes),
            (MemKind::Near, OpKind::Write) => nm_w += u64::from(op.bytes),
            (MemKind::Far, OpKind::Read) => fm_r += u64::from(op.bytes),
            (MemKind::Far, OpKind::Write) => fm_w += u64::from(op.bytes),
        }
    }
    (nm_r, nm_w, fm_r, fm_w)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SILC-FM metadata invariants: an FM block is interleaved into at most
    /// one frame of its congruence set; locked-remap frames are fully
    /// resident; locked-native frames hold only native data; a set bit
    /// always has a tenant to exchange with.
    #[test]
    fn silcfm_metadata_invariants(accesses in proptest::collection::vec(access_strategy(), 1..400)) {
        let mut scheme = SilcFm::new(space(), Geometry::paper(), SilcFmParams {
            lock_threshold: 6,
            lock_min_resident: 1,
            aging_period: 100,
            bypass_window: 50,
            ..SilcFmParams::paper()
        });
        for a in accesses {
            let out = scheme.access(&make_access(a));
            prop_assert!(!out.critical.is_empty(), "demand op always present");
            let demand = out.critical.last().unwrap();
            prop_assert_eq!(demand.mem, out.serviced_from);
        }
        // Check every frame's metadata.
        let sets = scheme.sets();
        let mut tenants = std::collections::HashSet::new();
        for f in 0..NM_BLOCKS {
            let meta = *scheme.frame(f);
            if let Some(tenant) = meta.remap {
                prop_assert!(tenant.value() >= NM_BLOCKS, "tenants come from FM");
                prop_assert_eq!(tenant.value() % sets, f % sets, "tenant in its set");
                prop_assert!(tenants.insert(tenant), "tenant {} in two frames", tenant);
            } else {
                prop_assert_eq!(meta.bitvec, 0, "bits without a tenant");
            }
            match meta.lock {
                LockState::LockedRemap => {
                    prop_assert_eq!(meta.bitvec, Geometry::paper().full_mask());
                    prop_assert!(meta.remap.is_some());
                }
                LockState::LockedNative => {
                    prop_assert_eq!(meta.bitvec, 0);
                    prop_assert!(meta.remap.is_none());
                }
                LockState::Unlocked => {}
            }
        }
    }

    /// Conservation: every migration writes as many bytes into each memory
    /// as it reads out of the other (the demand read may substitute for one
    /// migration read), so writes to NM+FM always equal 2 x 64 B per
    /// exchange.
    #[test]
    fn silcfm_swap_traffic_balances(accesses in proptest::collection::vec(access_strategy(), 1..300)) {
        let mut scheme = SilcFm::new(space(), Geometry::paper(), SilcFmParams::paper());
        for a in accesses {
            let out = scheme.access(&make_access(a));
            let (_, nm_w, fm_r, fm_w) = migration_tally(&out.background);
            // Per exchange: exactly one NM write and one FM write.
            prop_assert_eq!(nm_w, fm_w, "NM and FM receive equal swap bytes");
            // Reads never exceed writes (demand covers at most one read).
            prop_assert!(fm_r <= fm_w + nm_w);
        }
    }

    /// CAMEO's line location table stays a permutation under arbitrary
    /// access sequences: no line is ever lost or duplicated.
    #[test]
    fn cameo_permutation_totality(accesses in proptest::collection::vec(access_strategy(), 1..500)) {
        let mut cameo = Cameo::new(space(), CameoParams::with_prefetch());
        let mut last_serviced = Vec::new();
        for a in accesses {
            let out = cameo.access(&make_access(a));
            last_serviced.push(out.serviced_from);
        }
        // Re-access every line of set 0's congruence group: each must be
        // found somewhere (find_slot panics on a broken permutation).
        for member in 0..5u64 {
            let addr = member * NM_BLOCKS * 2048; // line 0 of each member
            let _ = cameo.access(&Access::read(PhysAddr::new(addr), 0, CoreId::new(0)));
        }
    }

    /// A swapped-in line is immediately re-serviceable from NM (CAMEO swaps
    /// unconditionally on every FM access).
    #[test]
    fn cameo_swap_in_is_visible(block in NM_BLOCKS..(NM_BLOCKS + FM_BLOCKS), off in 0u32..32) {
        let mut cameo = Cameo::new(space(), CameoParams::default());
        let addr = PhysAddr::new(block * 2048 + u64::from(off) * 64);
        let first = cameo.access(&Access::read(addr, 0, CoreId::new(0)));
        prop_assert_eq!(first.serviced_from, MemKind::Far);
        let second = cameo.access(&Access::read(addr, 0, CoreId::new(0)));
        prop_assert_eq!(second.serviced_from, MemKind::Near);
    }

    /// PoM's permutation stays total and its migrations move whole blocks.
    #[test]
    fn pom_invariants(accesses in proptest::collection::vec(access_strategy(), 1..400)) {
        let mut pom = Pom::new(space(), PomParams {
            threshold: 3,
            ..PomParams::default()
        });
        let mut migration_bytes = 0u64;
        for a in accesses {
            let out = pom.access(&make_access(a));
            for op in &out.background {
                prop_assert_eq!(op.bytes, 2048, "PoM moves whole blocks");
                migration_bytes += u64::from(op.bytes);
            }
        }
        let stats = pom.stats();
        prop_assert_eq!(migration_bytes, stats.blocks_migrated * 4 * 2048);
    }

    /// DRAM model laws: completions never precede arrivals, per-channel bus
    /// occupancy never exceeds elapsed time, and identical request streams
    /// give identical timings.
    #[test]
    fn dram_model_laws(requests in proptest::collection::vec((0u64..(1<<22), 1u32..4, proptest::bool::ANY), 1..200)) {
        let mut m1 = DramModel::new(DramConfig::ddr3());
        let mut m2 = DramModel::new(DramConfig::ddr3());
        let mut now = 0u64;
        let mut last = 0u64;
        for (addr, size64, is_write) in requests {
            let bytes = size64 * 64;
            let addr = addr & !63;
            let (a, b) = if is_write {
                (m1.write(now, addr, bytes), m2.write(now, addr, bytes))
            } else {
                (m1.read(now, addr, bytes), m2.read(now, addr, bytes))
            };
            prop_assert_eq!(a, b, "deterministic");
            prop_assert!(a >= now, "completion {} before arrival {}", a, now);
            last = last.max(a);
            now += 8; // advancing arrival times
        }
        let elapsed_mem = last / 4 + 1;
        let stats = m1.stats();
        prop_assert!(
            stats.bus_busy_cycles <= elapsed_mem * 4,
            "bus busier ({}) than 4 channels x {} cycles",
            stats.bus_busy_cycles,
            elapsed_mem
        );
    }

    /// Scheme determinism across the board: same access sequence, same
    /// emitted operations.
    #[test]
    fn schemes_are_deterministic(accesses in proptest::collection::vec(access_strategy(), 1..200)) {
        let mut a = SilcFm::new(space(), Geometry::paper(), SilcFmParams::paper());
        let mut b = SilcFm::new(space(), Geometry::paper(), SilcFmParams::paper());
        for acc in &accesses {
            prop_assert_eq!(a.access(&make_access(*acc)), b.access(&make_access(*acc)));
        }
        // And reset really resets.
        a.reset();
        let mut c = SilcFm::new(space(), Geometry::paper(), SilcFmParams::paper());
        for acc in &accesses {
            prop_assert_eq!(a.access(&make_access(*acc)), c.access(&make_access(*acc)));
        }
    }

    /// The access-rate metric is always the fraction of NM-serviced demands.
    #[test]
    fn access_rate_accounting(accesses in proptest::collection::vec(access_strategy(), 1..300)) {
        let mut scheme = SilcFm::new(space(), Geometry::paper(), SilcFmParams::paper());
        let mut nm_count = 0u64;
        for a in &accesses {
            if scheme.access(&make_access(*a)).serviced_from == MemKind::Near {
                nm_count += 1;
            }
        }
        let stats = scheme.stats();
        prop_assert_eq!(stats.serviced_from_nm, nm_count);
        prop_assert_eq!(stats.accesses, accesses.len() as u64);
        let expected = nm_count as f64 / accesses.len() as f64;
        prop_assert!((stats.access_rate() - expected).abs() < 1e-12);
    }

    /// Geometry round trips: any address decomposes into (block, offset) and
    /// recomposes exactly.
    #[test]
    fn geometry_round_trip(addr in 0u64..(1u64 << 40)) {
        let geom = Geometry::paper();
        let a = PhysAddr::new(addr);
        let block = BlockIndex::containing(a, geom);
        let off = silc_fm::types::SubblockIndex::containing(a, geom).offset_in_block(geom);
        let reconstructed = block.base_addr(geom).value() + u64::from(off) * 64 + (addr % 64);
        prop_assert_eq!(reconstructed, addr);
    }
}
