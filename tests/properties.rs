//! Property-based tests of the core invariants.
//!
//! The load-bearing property of a *flat* memory organization is that data is
//! exchanged, never copied or lost: at all times every block of the combined
//! address space is resident at exactly one location. These tests drive the
//! schemes with generated access sequences and check the metadata invariants
//! that encode that property, plus conservation laws on the traffic the
//! schemes emit.
//!
//! The cases come from the in-tree harness ([`silc_fm::types::check`]):
//! 256 fixed-seed cases per property, with the failing case's seed printed
//! on assertion failure so it can be rerun in isolation via
//! `check::forall_seed`.

use silc_fm::baselines::{Cameo, CameoParams, Pom, PomParams};
use silc_fm::core::{LockState, SilcFm, SilcFmParams};
use silc_fm::dram::{DramConfig, DramModel};
use silc_fm::types::check::{forall, forall_cases};
use silc_fm::types::rng::{Rng, Xoshiro256StarStar};
use silc_fm::types::{
    Access, AddressSpace, BlockIndex, CoreId, Geometry, MemKind, MemOp, MemoryScheme, OpKind,
    PhysAddr, TrafficClass,
};

const NM_BLOCKS: u64 = 64;
const FM_BLOCKS: u64 = 256;

fn space() -> AddressSpace {
    AddressSpace::new(NM_BLOCKS * 2048, FM_BLOCKS * 2048)
}

/// An arbitrary access: uniform over blocks, subblock offsets, a small PC
/// pool, and read/write.
fn arb_access(rng: &mut Xoshiro256StarStar) -> Access {
    let block = rng.gen_range(0..NM_BLOCKS + FM_BLOCKS);
    let off = rng.gen_range(0u32..32);
    let pc = 0x400 + rng.gen_range(0u64..8) * 4;
    let addr = PhysAddr::new(block * 2048 + u64::from(off) * 64);
    if rng.gen_bool(0.5) {
        Access::write(addr, pc, CoreId::new(0))
    } else {
        Access::read(addr, pc, CoreId::new(0))
    }
}

/// A generated access sequence of length in `1..max_len`.
fn arb_accesses(rng: &mut Xoshiro256StarStar, max_len: usize) -> Vec<Access> {
    let len = rng.gen_range(1..max_len);
    (0..len).map(|_| arb_access(rng)).collect()
}

/// Sums migration bytes by (memory, direction).
fn migration_tally<'a>(ops: impl IntoIterator<Item = &'a MemOp>) -> (u64, u64, u64, u64) {
    let mut nm_r = 0;
    let mut nm_w = 0;
    let mut fm_r = 0;
    let mut fm_w = 0;
    for op in ops
        .into_iter()
        .filter(|o| o.class == TrafficClass::Migration)
    {
        match (op.mem, op.kind) {
            (MemKind::Near, OpKind::Read) => nm_r += u64::from(op.bytes),
            (MemKind::Near, OpKind::Write) => nm_w += u64::from(op.bytes),
            (MemKind::Far, OpKind::Read) => fm_r += u64::from(op.bytes),
            (MemKind::Far, OpKind::Write) => fm_w += u64::from(op.bytes),
        }
    }
    (nm_r, nm_w, fm_r, fm_w)
}

/// SILC-FM metadata invariants: an FM block is interleaved into at most one
/// frame of its congruence set; locked-remap frames are fully resident;
/// locked-native frames hold only native data; a set bit always has a tenant
/// to exchange with.
#[test]
fn silcfm_metadata_invariants() {
    forall("silcfm_metadata_invariants", |rng| {
        let mut scheme = SilcFm::new(
            space(),
            Geometry::paper(),
            SilcFmParams {
                lock_threshold: 6,
                lock_min_resident: 1,
                aging_period: 100,
                bypass_window: 50,
                ..SilcFmParams::paper()
            },
        );
        for a in arb_accesses(rng, 400) {
            let out = scheme.access_fresh(&a);
            assert!(!out.critical.is_empty(), "demand op always present");
            let demand = out.critical.last().unwrap();
            assert_eq!(demand.mem, out.serviced_from);
        }
        // Check every frame's metadata.
        let sets = scheme.sets();
        let mut tenants = silcfm_types::FxHashSet::default();
        for f in 0..NM_BLOCKS {
            let meta = *scheme.frame(f);
            if let Some(tenant) = meta.remap {
                assert!(tenant.value() >= NM_BLOCKS, "tenants come from FM");
                assert_eq!(tenant.value() % sets, f % sets, "tenant in its set");
                assert!(tenants.insert(tenant), "tenant {tenant} in two frames");
            } else {
                assert_eq!(meta.bitvec, 0, "bits without a tenant");
            }
            match meta.lock {
                LockState::LockedRemap => {
                    assert_eq!(meta.bitvec, Geometry::paper().full_mask());
                    assert!(meta.remap.is_some());
                }
                LockState::LockedNative => {
                    assert_eq!(meta.bitvec, 0);
                    assert!(meta.remap.is_none());
                }
                LockState::Unlocked => {}
            }
        }
    });
}

/// Conservation: every migration writes as many bytes into each memory as it
/// reads out of the other (the demand read may substitute for one migration
/// read), so writes to NM+FM always equal 2 x 64 B per exchange.
#[test]
fn silcfm_swap_traffic_balances() {
    forall("silcfm_swap_traffic_balances", |rng| {
        let mut scheme = SilcFm::new(space(), Geometry::paper(), SilcFmParams::paper());
        for a in arb_accesses(rng, 300) {
            let out = scheme.access_fresh(&a);
            let (_, nm_w, fm_r, fm_w) = migration_tally(&out.background);
            // Per exchange: exactly one NM write and one FM write.
            assert_eq!(nm_w, fm_w, "NM and FM receive equal swap bytes");
            // Reads never exceed writes (demand covers at most one read).
            assert!(fm_r <= fm_w + nm_w);
        }
    });
}

/// CAMEO's line location table stays a permutation under arbitrary access
/// sequences: no line is ever lost or duplicated.
#[test]
fn cameo_permutation_totality() {
    forall("cameo_permutation_totality", |rng| {
        let mut cameo = Cameo::new(space(), CameoParams::with_prefetch());
        for a in arb_accesses(rng, 500) {
            let _ = cameo.access_fresh(&a);
        }
        // Re-access every line of set 0's congruence group: each must be
        // found somewhere (find_slot panics on a broken permutation).
        for member in 0..5u64 {
            let addr = member * NM_BLOCKS * 2048; // line 0 of each member
            let _ = cameo.access_fresh(&Access::read(PhysAddr::new(addr), 0, CoreId::new(0)));
        }
    });
}

/// A swapped-in line is immediately re-serviceable from NM (CAMEO swaps
/// unconditionally on every FM access).
#[test]
fn cameo_swap_in_is_visible() {
    forall("cameo_swap_in_is_visible", |rng| {
        let block = rng.gen_range(NM_BLOCKS..NM_BLOCKS + FM_BLOCKS);
        let off = rng.gen_range(0u32..32);
        let mut cameo = Cameo::new(space(), CameoParams::default());
        let addr = PhysAddr::new(block * 2048 + u64::from(off) * 64);
        let first = cameo.access_fresh(&Access::read(addr, 0, CoreId::new(0)));
        assert_eq!(first.serviced_from, MemKind::Far);
        let second = cameo.access_fresh(&Access::read(addr, 0, CoreId::new(0)));
        assert_eq!(second.serviced_from, MemKind::Near);
    });
}

/// PoM's permutation stays total and its migrations move whole blocks.
#[test]
fn pom_invariants() {
    forall("pom_invariants", |rng| {
        let mut pom = Pom::new(
            space(),
            PomParams {
                threshold: 3,
                ..PomParams::default()
            },
        );
        let mut migration_bytes = 0u64;
        for a in arb_accesses(rng, 400) {
            let out = pom.access_fresh(&a);
            for op in &out.background {
                assert_eq!(op.bytes, 2048, "PoM moves whole blocks");
                migration_bytes += u64::from(op.bytes);
            }
        }
        let stats = pom.stats();
        assert_eq!(migration_bytes, stats.blocks_migrated * 4 * 2048);
    });
}

/// DRAM model laws: completions never precede arrivals, per-channel bus
/// occupancy never exceeds elapsed time, and identical request streams give
/// identical timings.
#[test]
fn dram_model_laws() {
    forall("dram_model_laws", |rng| {
        let len = rng.gen_range(1usize..200);
        let requests: Vec<(u64, u32, bool)> = (0..len)
            .map(|_| {
                (
                    rng.gen_range(0u64..1 << 22),
                    rng.gen_range(1u32..4),
                    rng.gen_bool(0.5),
                )
            })
            .collect();
        let mut m1 = DramModel::new(DramConfig::ddr3());
        let mut m2 = DramModel::new(DramConfig::ddr3());
        let mut now = 0u64;
        let mut last = 0u64;
        for (addr, size64, is_write) in requests {
            let bytes = size64 * 64;
            let addr = addr & !63;
            let (a, b) = if is_write {
                (m1.write(now, addr, bytes), m2.write(now, addr, bytes))
            } else {
                (m1.read(now, addr, bytes), m2.read(now, addr, bytes))
            };
            assert_eq!(a, b, "deterministic");
            assert!(a >= now, "completion {a} before arrival {now}");
            last = last.max(a);
            now += 8; // advancing arrival times
        }
        let elapsed_mem = last / 4 + 1;
        let stats = m1.stats();
        assert!(
            stats.bus_busy_cycles <= elapsed_mem * 4,
            "bus busier ({}) than 4 channels x {} cycles",
            stats.bus_busy_cycles,
            elapsed_mem
        );
    });
}

/// Scheme determinism across the board: same access sequence, same emitted
/// operations. (Fewer cases: each case simulates three controllers.)
#[test]
fn schemes_are_deterministic() {
    forall_cases("schemes_are_deterministic", 128, |rng| {
        let accesses = arb_accesses(rng, 200);
        let mut a = SilcFm::new(space(), Geometry::paper(), SilcFmParams::paper());
        let mut b = SilcFm::new(space(), Geometry::paper(), SilcFmParams::paper());
        for acc in &accesses {
            assert_eq!(a.access_fresh(acc), b.access_fresh(acc));
        }
        // And reset really resets.
        a.reset();
        let mut c = SilcFm::new(space(), Geometry::paper(), SilcFmParams::paper());
        for acc in &accesses {
            assert_eq!(a.access_fresh(acc), c.access_fresh(acc));
        }
    });
}

/// The access-rate metric is always the fraction of NM-serviced demands.
#[test]
fn access_rate_accounting() {
    forall("access_rate_accounting", |rng| {
        let accesses = arb_accesses(rng, 300);
        let mut scheme = SilcFm::new(space(), Geometry::paper(), SilcFmParams::paper());
        let mut nm_count = 0u64;
        for a in &accesses {
            if scheme.access_fresh(a).serviced_from == MemKind::Near {
                nm_count += 1;
            }
        }
        let stats = scheme.stats();
        assert_eq!(stats.serviced_from_nm, nm_count);
        assert_eq!(stats.accesses, accesses.len() as u64);
        let expected = nm_count as f64 / accesses.len() as f64;
        assert!((stats.access_rate() - expected).abs() < 1e-12);
    });
}

/// Geometry round trips: any address decomposes into (block, offset) and
/// recomposes exactly.
#[test]
fn geometry_round_trip() {
    forall("geometry_round_trip", |rng| {
        let addr = rng.gen_range(0u64..1 << 40);
        let geom = Geometry::paper();
        let a = PhysAddr::new(addr);
        let block = BlockIndex::containing(a, geom);
        let off = silc_fm::types::SubblockIndex::containing(a, geom).offset_in_block(geom);
        let reconstructed = block.base_addr(geom).value() + u64::from(off) * 64 + (addr % 64);
        assert_eq!(reconstructed, addr);
    });
}

// ---- observability invariants ---------------------------------------------

/// Histogram bucketing round-trips: every value lands inside the bucket
/// reported for it, and adjacent buckets tile the `u64` line with no gap
/// or overlap.
#[test]
fn histogram_buckets_round_trip() {
    use silc_fm::obs::hist::{bucket_of, bucket_range};
    forall("histogram_buckets_round_trip", |rng| {
        // Stress the power-of-two boundaries plus a uniform draw.
        let exp = rng.gen_range(0u64..64);
        let base = 1u64 << exp;
        for v in [
            0,
            base,
            base - 1,
            base.saturating_add(1),
            rng.gen_range(0u64..u64::MAX),
        ] {
            let b = bucket_of(v);
            let (lo, hi) = bucket_range(b);
            assert!(lo <= v && v <= hi, "{v} outside bucket {b} [{lo}, {hi}]");
            if b > 0 {
                let (_, below) = bucket_range(b - 1);
                assert_eq!(lo, below + 1, "gap or overlap below bucket {b}");
            }
        }
    });
}

/// A ring tracer driven past capacity keeps exactly the newest
/// `capacity` events, in recording order, and counts each overwrite
/// as one drop.
#[test]
fn ring_wraparound_keeps_newest_events() {
    use silc_fm::obs::{Event, RingTracer, Tracer};
    forall("ring_wraparound_keeps_newest_events", |rng| {
        let capacity = rng.gen_range(1u64..48);
        let n = rng.gen_range(1u64..160);
        let mut t = RingTracer::with_capacity(capacity as usize);
        for i in 0..n {
            t.record(i, Event::PredictorHit);
        }
        let kept = n.min(capacity);
        assert_eq!(t.dropped(), n - kept);
        let events = t.drain();
        assert_eq!(events.len() as u64, kept);
        let oldest_kept = n - kept;
        for (k, e) in events.iter().enumerate() {
            assert_eq!(
                e.at,
                oldest_kept + k as u64,
                "drain must return the newest {kept} events oldest-first"
            );
        }
    });
}

/// However sparsely the driving loop notices epoch boundaries in-run, a
/// sealed sampler holds exactly `ceil(total_cycles / epoch)` rows.
#[test]
fn sampler_seals_to_exact_row_count() {
    use silc_fm::obs::{EpochSampler, SeriesSpec};
    forall("sampler_seals_to_exact_row_count", |rng| {
        let epoch = rng.gen_range(1u64..1_000);
        let total = rng.gen_range(0u64..50_000);
        let spec = SeriesSpec::new().series("obs.hit_rate");
        let mut s = EpochSampler::new(spec, epoch, total);
        // Advance in random strides, recording only when the sampler says a
        // row is due — exactly the `System::run` protocol.
        let mut cycle = 0u64;
        while cycle < total {
            cycle = (cycle + rng.gen_range(1u64..=3 * epoch)).min(total);
            if s.due(cycle) {
                s.record(&[cycle as f64]);
            }
        }
        s.seal(total, &[-1.0]);
        assert_eq!(s.rows() as u64, total.div_ceil(epoch));
        for i in 0..s.rows() {
            assert_eq!(s.row(i).len(), 1, "row arity survives sealing");
        }
    });
}
