//! Behavioral tests of the paper's §III mechanisms, exercised through the
//! public API: bypass interaction with locking, write handling, epoch
//! stalls, history replay volume, and the bandwidth-balancing claim.

use silc_fm::baselines::{Hma, HmaParams};
use silc_fm::core::{SilcFm, SilcFmParams};
use silc_fm::sim::{run, RunParams, SchemeKind};
use silc_fm::trace::profiles;
use silc_fm::types::{
    Access, AddressSpace, CoreId, Geometry, MemKind, MemoryScheme, PhysAddr, SystemConfig,
    TrafficClass,
};

const NM_BLOCKS: u64 = 64;

fn space() -> AddressSpace {
    AddressSpace::new(NM_BLOCKS * 2048, 4 * NM_BLOCKS * 2048)
}

fn fm_addr(block: u64, off: u64) -> PhysAddr {
    PhysAddr::new(block * 2048 + off * 64)
}

#[test]
fn writes_reach_the_current_location_of_the_subblock() {
    let mut s = SilcFm::new(space(), Geometry::paper(), SilcFmParams::paper());
    let block = NM_BLOCKS + 1;
    // Interleave the subblock, then write it: the write must go to NM.
    let _ = s.access_fresh(&Access::read(fm_addr(block, 3), 0x400, CoreId::new(0)));
    let out = s.access_fresh(&Access::write(fm_addr(block, 3), 0x400, CoreId::new(0)));
    assert_eq!(out.serviced_from, MemKind::Near);
    let demand = out.critical.last().unwrap();
    assert!(demand.kind.is_write());
    assert_eq!(demand.mem, MemKind::Near);
}

#[test]
fn bypass_suppresses_locking_too() {
    // §III-E: "no more subblocks are swapped into NM" while bypassing —
    // including lock-driven full-block fetches.
    let mut p = SilcFmParams::paper();
    p.bypass_window = 50;
    p.lock_threshold = 4;
    p.lock_min_resident = 1;
    let mut s = SilcFm::new(space(), Geometry::paper(), p);
    // Saturate the access-rate estimator with native NM hits.
    for i in 0..200u64 {
        let _ = s.access_fresh(&Access::read(
            PhysAddr::new((i % 4) * 2048),
            0x10,
            CoreId::new(0),
        ));
    }
    assert!(s.bypassing());
    // While the rate is above target, FM accesses are serviced in place
    // with no swap-in and no lock fetch…
    let block = NM_BLOCKS + 7;
    let mut bypassed_some = false;
    let mut resumed = false;
    for i in 0..40u64 {
        let was_bypassing = s.bypassing();
        let out = s.access_fresh(&Access::read(fm_addr(block, i % 32), 0x20, CoreId::new(0)));
        if was_bypassing {
            bypassed_some = true;
            assert!(
                out.background
                    .iter()
                    .all(|op| op.class != TrafficClass::Migration),
                "no migration while bypassing"
            );
        } else {
            resumed |= out
                .background
                .iter()
                .any(|op| op.class == TrafficClass::Migration);
        }
    }
    // …and once the FM traffic drags the estimate back to the 0.8 target,
    // bypass disengages and swapping resumes (the closed loop of §III-E).
    assert!(bypassed_some, "bypass was active initially");
    assert!(resumed, "swapping resumes when the rate falls below target");
    assert!(s.frame(block % NM_BLOCKS).remap.is_some());
}

#[test]
fn history_replay_never_exceeds_block_capacity() {
    let mut s = SilcFm::new(space(), Geometry::paper(), SilcFmParams::paper());
    let a = NM_BLOCKS + 1;
    let b = a + NM_BLOCKS / 4; // same set under 4-way (16 sets)
                               // Build a full-page history for `a`, evict it, re-enter.
    for off in 0..32u64 {
        let _ = s.access_fresh(&Access::read(fm_addr(a, off), 0x400, CoreId::new(0)));
    }
    for off in 0..4u64 {
        let _ = s.access_fresh(&Access::read(fm_addr(b, off), 0x404, CoreId::new(0)));
    }
    let frame = s.frame(a % s.sets()).bitvec.count_ones();
    assert!(frame <= 32, "residency vector bounded by block capacity");
}

#[test]
fn hma_epoch_stall_slows_all_cores() {
    // Two identical HMA configurations, one with crushing stall costs: the
    // stall must lengthen execution.
    let cfg = SystemConfig::small();
    let params = RunParams::smoke();
    let profile = profiles::by_name("milc").unwrap();
    let cheap = run(profile, SchemeKind::Hma, &cfg, &params);

    // Direct scheme-level check that the stall is reported.
    let mut hma = Hma::new(
        space(),
        HmaParams {
            epoch_accesses: 100,
            hot_threshold: 2,
            stall_per_migration: 1_000,
            stall_per_epoch: 50_000,
        },
    );
    let mut saw_stall = false;
    for i in 0..300u64 {
        let out = hma.access_fresh(&Access::read(
            fm_addr(NM_BLOCKS + (i % 8), i % 32),
            0,
            CoreId::new(0),
        ));
        if out.global_stall_cycles > 0 {
            saw_stall = true;
            assert!(out.global_stall_cycles >= 50_000);
        }
    }
    assert!(saw_stall, "epoch boundaries must report software stalls");
    assert!(cheap.cycles > 0);
}

#[test]
fn silcfm_balances_bandwidth_toward_the_ideal() {
    // §III-E / Fig. 8: with bypassing the NM demand fraction should sit in
    // the ideal's neighbourhood rather than saturating toward 1.0.
    let cfg = SystemConfig::small();
    let params = RunParams::smoke();
    let profile = profiles::by_name("milc").unwrap(); // high access rate
    let r = run(profile, SchemeKind::silcfm(), &cfg, &params);
    let frac = r.traffic.nm_demand_fraction();
    assert!(
        (0.5..=0.92).contains(&frac),
        "NM demand fraction {frac:.3} should be near the 0.8 ideal"
    );
}

#[test]
fn direct_mapped_swap_only_still_functions() {
    // Fig. 6's first rung must be a working scheme on its own.
    let cfg = SystemConfig::small();
    let params = RunParams::smoke();
    let profile = profiles::by_name("lib").unwrap();
    let base = run(profile, SchemeKind::NoNm, &cfg, &params);
    let swap = run(
        profile,
        SchemeKind::SilcFm(SilcFmParams::swap_only()),
        &cfg,
        &params,
    );
    assert!(swap.cycles > 0);
    assert!(swap.access_rate > 0.3, "swapping alone captures reuse");
    let _ = base;
}

#[test]
fn locking_rungs_never_lose_data() {
    // Alternate two conflicting FM blocks and the native block with a
    // hair-trigger lock threshold; every access must still resolve to a
    // consistent location (serviced_from matches the demand op).
    let mut p = SilcFmParams::with_locking();
    p.lock_threshold = 2;
    p.lock_min_resident = 1;
    p.aging_period = 50;
    let mut s = SilcFm::new(space(), Geometry::paper(), p);
    let a = NM_BLOCKS + 1;
    let b = a + NM_BLOCKS;
    let native = PhysAddr::new((a % NM_BLOCKS) * 2048);
    for i in 0..300u64 {
        let addr = match i % 3 {
            0 => fm_addr(a, i % 32),
            1 => fm_addr(b, i % 32),
            _ => native.add((i % 32) * 64),
        };
        let out = s.access_fresh(&Access::read(addr, 0x400 + (i % 4), CoreId::new(0)));
        assert_eq!(out.critical.last().unwrap().mem, out.serviced_from);
    }
}

#[test]
fn camp_prefetch_traffic_is_bounded() {
    // CAMEO+P fetches at most 3 extra lines per miss.
    let cfg = SystemConfig::small();
    let params = RunParams::smoke();
    let profile = profiles::by_name("lbm").unwrap();
    let cam = run(profile, SchemeKind::Cameo, &cfg, &params);
    let camp = run(profile, SchemeKind::CameoPrefetch, &cfg, &params);
    assert!(
        camp.access_rate >= cam.access_rate,
        "prefetching raises the access rate"
    );
    // Total traffic grows by at most ~4x.
    assert!(camp.traffic.total_bytes() <= cam.traffic.total_bytes() * 5);
}

#[test]
fn pom_reacts_slower_than_cameo() {
    // §II-B: PoM accumulates counts before migrating; CAMEO swaps at once.
    let mut pom_scheme = silc_fm::baselines::Pom::new(space(), Default::default());
    let mut cam_scheme = silc_fm::baselines::Cameo::new(space(), Default::default());
    let addr = fm_addr(NM_BLOCKS + 1, 0);
    let acc = Access::read(addr, 0, CoreId::new(0));
    let _ = pom_scheme.access_fresh(&acc);
    let _ = cam_scheme.access_fresh(&acc);
    assert_eq!(
        pom_scheme.access_fresh(&acc).serviced_from,
        MemKind::Far,
        "PoM still in FM after two touches"
    );
    assert_eq!(
        cam_scheme.access_fresh(&acc).serviced_from,
        MemKind::Near,
        "CAMEO already swapped in"
    );
}
