//! Cross-crate integration tests: the full simulation pipeline (workload →
//! translation → caches → scheme → DRAM) for every scheme, exercised
//! end-to-end through the public API.

use silc_fm::sim::{run, RunParams, SchemeKind};
use silc_fm::trace::profiles;
use silc_fm::types::stats::geometric_mean;
use silc_fm::types::SystemConfig;

fn cfg() -> SystemConfig {
    SystemConfig::small()
}

fn params() -> RunParams {
    RunParams::smoke()
}

#[test]
fn every_scheme_completes_on_every_mpki_class() {
    for workload in ["dealii", "gems", "milc"] {
        let profile = profiles::by_name(workload).unwrap();
        let base = run(profile, SchemeKind::NoNm, &cfg(), &params());
        assert!(base.cycles > 0);
        for kind in SchemeKind::fig7_lineup() {
            let r = run(profile, kind, &cfg(), &params());
            assert!(r.cycles > 0, "{workload}/{}", r.scheme);
            assert!(
                (0.0..=1.0).contains(&r.access_rate),
                "{workload}/{}: access rate {}",
                r.scheme,
                r.access_rate
            );
            assert!(r.instructions > 0);
            assert!(r.energy_pj > 0.0);
        }
    }
}

#[test]
fn demand_traffic_matches_llc_misses() {
    // Every LLC miss moves exactly one 64-byte line of demand read traffic
    // (plus writebacks); no scheme may lose or invent demand traffic.
    let profile = profiles::by_name("milc").unwrap();
    for kind in [SchemeKind::NoNm, SchemeKind::Cameo, SchemeKind::silcfm()] {
        let r = run(profile, kind, &cfg(), &params());
        let demand = r.traffic.nm_demand + r.traffic.fm_demand;
        // Reads: one per miss; CAMEO's widened bursts add <= 8B per access;
        // writebacks add at most one more line each.
        let min_expected = r.llc_misses * 64;
        assert!(
            demand >= min_expected,
            "{}: demand {} < misses x 64 = {}",
            r.scheme,
            demand,
            min_expected
        );
        assert!(
            demand <= min_expected * 3,
            "{}: demand {} implausibly large vs {}",
            r.scheme,
            demand,
            min_expected
        );
    }
}

#[test]
fn no_nm_baseline_never_touches_near_memory() {
    let profile = profiles::by_name("gems").unwrap();
    let r = run(profile, SchemeKind::NoNm, &cfg(), &params());
    assert_eq!(r.traffic.nm_demand, 0);
    assert_eq!(r.traffic.nm_other, 0);
    assert_eq!(r.access_rate, 0.0);
}

#[test]
fn static_random_placement_has_capacity_fraction_access_rate() {
    // With a 4:1 FM:NM ratio, random placement puts ~1/5 of pages in NM.
    let profile = profiles::by_name("milc").unwrap();
    let r = run(profile, SchemeKind::Rand, &cfg(), &params());
    assert!(
        (r.access_rate - 0.2).abs() < 0.06,
        "access rate {} should be near the 0.2 capacity fraction",
        r.access_rate
    );
}

#[test]
fn migrating_schemes_beat_static_placement_on_skewed_workloads() {
    // The paper's headline: hardware migration captures hot data that
    // static placement leaves in FM (milc/lib are the skewed workloads).
    let profile = profiles::by_name("lib").unwrap();
    let base = run(profile, SchemeKind::NoNm, &cfg(), &params());
    let rand = run(profile, SchemeKind::Rand, &cfg(), &params());
    let silc = run(profile, SchemeKind::silcfm(), &cfg(), &params());
    assert!(
        silc.speedup_over(&base) > rand.speedup_over(&base),
        "SILC-FM {:.3} must beat static {:.3}",
        silc.speedup_over(&base),
        rand.speedup_over(&base)
    );
    assert!(silc.access_rate > rand.access_rate + 0.2);
}

#[test]
fn silcfm_access_rate_exceeds_cameo_on_spatial_workloads() {
    // §III-A: bit-vector bulk fetching captures spatial locality a
    // one-line-at-a-time scheme misses.
    let profile = profiles::by_name("milc").unwrap();
    let cam = run(profile, SchemeKind::Cameo, &cfg(), &params());
    let silc = run(profile, SchemeKind::silcfm(), &cfg(), &params());
    assert!(
        silc.access_rate >= cam.access_rate - 0.02,
        "silcfm {:.3} vs cameo {:.3}",
        silc.access_rate,
        cam.access_rate
    );
}

#[test]
fn results_are_bit_reproducible() {
    let profile = profiles::by_name("xalanc").unwrap();
    let a = run(profile, SchemeKind::silcfm(), &cfg(), &params());
    let b = run(profile, SchemeKind::silcfm(), &cfg(), &params());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.traffic, b.traffic);
    assert_eq!(a.scheme_stats, b.scheme_stats);
}

#[test]
fn different_seeds_give_different_but_similar_results() {
    let profile = profiles::by_name("milc").unwrap();
    let p1 = params();
    let p2 = RunParams {
        seed: 999,
        ..params()
    };
    let a = run(profile, SchemeKind::silcfm(), &cfg(), &p1);
    let b = run(profile, SchemeKind::silcfm(), &cfg(), &p2);
    assert_ne!(a.cycles, b.cycles, "different seeds should perturb the run");
    let ratio = a.cycles as f64 / b.cycles as f64;
    assert!(
        (0.6..1.6).contains(&ratio),
        "seeds should not change results qualitatively: ratio {ratio}"
    );
}

#[test]
fn capacity_sweep_is_monotone_for_silcfm() {
    // Fig. 9: more NM never hurts.
    let profile = profiles::by_name("milc").unwrap();
    let mut speedups = Vec::new();
    for ratio in [16u64, 8, 4] {
        let p = params().with_ratio(ratio);
        let base = run(profile, SchemeKind::NoNm, &cfg(), &p);
        let silc = run(profile, SchemeKind::silcfm(), &cfg(), &p);
        speedups.push(silc.speedup_over(&base));
    }
    assert!(
        speedups[2] >= speedups[0] - 0.05,
        "1/4 NM should be at least as good as 1/16: {speedups:?}"
    );
}

#[test]
fn edp_favors_silcfm_over_baseline() {
    // NM's lower pJ/bit means faster and cheaper on NM-friendly workloads.
    let profile = profiles::by_name("lib").unwrap();
    let base = run(profile, SchemeKind::NoNm, &cfg(), &params());
    let silc = run(profile, SchemeKind::silcfm(), &cfg(), &params());
    assert!(
        silc.edp() < base.edp(),
        "SILC-FM EDP {:.3e} should beat the baseline {:.3e}",
        silc.edp(),
        base.edp()
    );
}

#[test]
fn gmean_ordering_places_silcfm_on_top() {
    // The paper's headline ordering on the three most NM-friendly
    // workloads: SILC-FM above CAMEO above static random.
    let mut rand_s = Vec::new();
    let mut cam_s = Vec::new();
    let mut silc_s = Vec::new();
    for w in ["milc", "lib", "xalanc"] {
        let profile = profiles::by_name(w).unwrap();
        let base = run(profile, SchemeKind::NoNm, &cfg(), &params());
        rand_s.push(run(profile, SchemeKind::Rand, &cfg(), &params()).speedup_over(&base));
        cam_s.push(run(profile, SchemeKind::Cameo, &cfg(), &params()).speedup_over(&base));
        silc_s.push(run(profile, SchemeKind::silcfm(), &cfg(), &params()).speedup_over(&base));
    }
    let (rand_g, cam_g, silc_g) = (
        geometric_mean(&rand_s),
        geometric_mean(&cam_s),
        geometric_mean(&silc_s),
    );
    assert!(
        silc_g > cam_g && silc_g > rand_g,
        "ordering violated: silc {silc_g:.3}, cam {cam_g:.3}, rand {rand_g:.3}"
    );
}
