//! Hot-set drift: why hardware locking beats OS epochs when the working
//! set moves.
//!
//! The paper's `gemsfdtd` discussion (§V-B): workloads with short-lived hot
//! pages degrade under HMA because pages cannot migrate until the next
//! epoch boundary, while SILC-FM locks and unlocks at any time. This
//! example builds increasingly churny variants of the `gems` workload and
//! compares HMA with SILC-FM as the hot set rotates faster.
//!
//! Run with: `cargo run --release --example hot_set_drift`

use silc_fm::sim::{run, RunParams, SchemeKind};
use silc_fm::trace::profiles;
use silc_fm::types::SystemConfig;

fn main() {
    let cfg = SystemConfig::experiment();
    let params = RunParams::smoke();
    let gems = profiles::by_name("gems").expect("gems is in Table III");

    println!("workload: gems variants with faster and faster hot-set rotation\n");
    println!(
        "{:>18} {:>12} {:>12} {:>14}",
        "churn interval", "hma speedup", "silc speedup", "silc locks"
    );

    // Churn intervals in accesses between rotations (scaled by the profile
    // machinery); u64::MAX disables churn.
    for (label, interval) in [
        ("stable", u64::MAX),
        ("every 200k", 200_000u64),
        ("every 50k", 50_000),
        ("every 20k", 20_000),
    ] {
        let mut p = *gems;
        p.churn_interval = interval;
        let base = run(&p, SchemeKind::NoNm, &cfg, &params);
        let hma = run(&p, SchemeKind::Hma, &cfg, &params);
        let silc = run(&p, SchemeKind::silcfm(), &cfg, &params);
        let locks = silc
            .scheme_stats
            .details
            .iter()
            .find(|(n, _)| *n == "locks")
            .map(|(_, v)| *v)
            .unwrap_or(0.0);
        println!(
            "{:>18} {:>11.2}x {:>11.2}x {:>14.0}",
            label,
            hma.speedup_over(&base),
            silc.speedup_over(&base),
            locks,
        );
    }
    println!("\nHMA can only react at epoch boundaries; SILC-FM's counters lock and");
    println!("unlock blocks continuously, so it tracks the moving hot set.");
}
