//! Capacity planning: how much die-stacked DRAM does a workload need?
//!
//! Sweeps the NM:FM capacity ratio the way the paper's Fig. 9 does
//! (1/16 → 1/4, bracketing Knights Landing's ~1:24) and shows how SILC-FM's
//! locking and associativity hold up its performance when NM shrinks,
//! compared against CAMEO.
//!
//! Run with: `cargo run --release --example capacity_planning -- [workload]`

use silc_fm::sim::{run, RunParams, SchemeKind};
use silc_fm::trace::profiles;
use silc_fm::types::SystemConfig;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "milc".to_string());
    let workload = profiles::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown workload '{name}'");
        std::process::exit(1);
    });

    let cfg = SystemConfig::experiment();
    println!("{workload}\n");
    println!(
        "{:>10} {:>12} {:>12} {:>14} {:>14}",
        "NM size", "cam speedup", "silc speedup", "cam acc.rate", "silc acc.rate"
    );

    for ratio in [16u64, 8, 4] {
        let params = RunParams::smoke().with_ratio(ratio);
        let base = run(workload, SchemeKind::NoNm, &cfg, &params);
        let cam = run(workload, SchemeKind::Cameo, &cfg, &params);
        let silc = run(workload, SchemeKind::silcfm(), &cfg, &params);
        println!(
            "{:>10} {:>11.2}x {:>11.2}x {:>14.2} {:>14.2}",
            format!("FM/{ratio}"),
            cam.speedup_over(&base),
            silc.speedup_over(&base),
            cam.access_rate,
            silc.access_rate,
        );
    }
    println!("\nPaper (Fig. 9): SILC-FM degrades least at small NM because locking and");
    println!("associativity absorb the conflict pressure of having fewer sets.");
}
