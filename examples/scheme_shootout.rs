//! Scheme shootout: compare every flat-memory scheme on a workload of your
//! choice — the single-workload version of the paper's Fig. 7.
//!
//! Run with: `cargo run --release --example scheme_shootout -- [workload]`
//! (default `lib`; any Table III name works, e.g. `mcf`, `milc`, `gcc`).
//!
//! The scheme grid runs twice — once serially, once through the sharded
//! worker pool (`silc_fm::sim::run_grid`, thread count from
//! `SILCFM_THREADS` or the machine) — and prints both wall-clock times
//! along with a check that the two paths produced identical results.

// silcfm-lint: allow-file(D2) -- a demo binary that *reports* wall-clock speedup; timing is its output, not an input to any simulated result
use std::time::Instant;

use silc_fm::obs::{Align, TextTable};
use silc_fm::sim::{
    run_grid_serial, run_grid_traced, ExperimentGrid, RunParams, SchemeKind, TraceParams,
};
use silc_fm::trace::profiles;
use silc_fm::types::SystemConfig;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "lib".to_string());
    let Some(workload) = profiles::by_name(&name) else {
        eprintln!("unknown workload '{name}'; Table III has:");
        for p in profiles::all() {
            eprintln!("  {p}");
        }
        std::process::exit(1);
    };

    let threads = silc_fm::sim::runner::default_threads();
    let jobs = ExperimentGrid::new(SystemConfig::experiment(), RunParams::smoke())
        .workload(workload)
        .scheme(SchemeKind::NoNm)
        .schemes(SchemeKind::fig7_lineup())
        .jobs();

    let t0 = Instant::now();
    let serial = run_grid_serial(&jobs);
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;

    // The traced grid also collects the latency-percentile plane; its
    // RunResults are bit-identical to the untraced serial pass (checked
    // below), so timing and the tail columns come from one run.
    let t1 = Instant::now();
    let trace = TraceParams {
        events_capacity: 1 << 14,
        ..TraceParams::default_capture()
    };
    let parallel = run_grid_traced(&jobs, &trace, threads);
    let parallel_ms = t1.elapsed().as_secs_f64() * 1e3;

    let identical = serial
        .iter()
        .zip(&parallel)
        .all(|(s, (p, _))| s.cycles == p.cycles && s.traffic == p.traffic);

    println!("{workload}\n");
    let mut table = TextTable::new(&[
        ("scheme", Align::Left),
        ("speedup (vs base)", Align::Right),
        ("access rate", Align::Right),
        ("NM demand frac", Align::Right),
        ("lat p50", Align::Right),
        ("lat p95", Align::Right),
        ("lat p99", Align::Right),
        ("migration MiB", Align::Right),
        ("blocks migrated", Align::Right),
    ]);
    let (base, _) = &parallel[0];
    for (r, report) in &parallel[1..] {
        let overall = report.latency.overall();
        let [p50, p95, p99, _] = overall.percentiles();
        table.row(vec![
            r.scheme.clone(),
            format!("{:.2}x", r.speedup_over(base)),
            format!("{:.2}", r.access_rate),
            format!("{:.2}", r.traffic.nm_demand_fraction()),
            p50.to_string(),
            p95.to_string(),
            p99.to_string(),
            format!(
                "{:.1}",
                r.traffic.overhead_bytes() as f64 / (1 << 20) as f64
            ),
            r.scheme_stats.blocks_migrated.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!("\nlat pNN: demand issue-to-completion cycles from the mergeable quantile sketch.");
    println!("\nThe paper's Fig. 7 ordering: SILC-FM first, CAMEO the best prior scheme.");
    println!(
        "grid of {} runs: serial {serial_ms:.0} ms, parallel ({threads} threads) \
         {parallel_ms:.0} ms, results {}",
        jobs.len(),
        if identical {
            "bit-identical"
        } else {
            "DIVERGED"
        },
    );
    assert!(identical, "parallel runner diverged from the serial path");
}
