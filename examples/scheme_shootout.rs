//! Scheme shootout: compare every flat-memory scheme on a workload of your
//! choice — the single-workload version of the paper's Fig. 7.
//!
//! Run with: `cargo run --release --example scheme_shootout -- [workload]`
//! (default `lib`; any Table III name works, e.g. `mcf`, `milc`, `gcc`).

use silc_fm::sim::{run, RunParams, SchemeKind};
use silc_fm::trace::profiles;
use silc_fm::types::SystemConfig;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "lib".to_string());
    let Some(workload) = profiles::by_name(&name) else {
        eprintln!("unknown workload '{name}'; Table III has:");
        for p in profiles::all() {
            eprintln!("  {p}");
        }
        std::process::exit(1);
    };

    let cfg = SystemConfig::experiment();
    let params = RunParams::smoke();
    println!("{workload}\n");
    println!(
        "{:8} {:>9} {:>8} {:>12} {:>12} {:>14}",
        "scheme", "speedup", "access", "NM demand", "migration", "blocks"
    );
    println!(
        "{:8} {:>9} {:>8} {:>12} {:>12} {:>14}",
        "", "(vs base)", "rate", "fraction", "bytes (MiB)", "migrated"
    );

    let base = run(workload, SchemeKind::NoNm, &cfg, &params);
    for kind in SchemeKind::fig7_lineup() {
        let r = run(workload, kind, &cfg, &params);
        println!(
            "{:8} {:>8.2}x {:>8.2} {:>12.2} {:>12.1} {:>14}",
            r.scheme,
            r.speedup_over(&base),
            r.access_rate,
            r.traffic.nm_demand_fraction(),
            r.traffic.overhead_bytes() as f64 / (1 << 20) as f64,
            r.scheme_stats.blocks_migrated,
        );
    }
    println!("\nThe paper's Fig. 7 ordering: SILC-FM first, CAMEO the best prior scheme.");
}
