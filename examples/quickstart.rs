//! Quickstart: simulate SILC-FM on one workload and print what the paper's
//! evaluation measures — speedup over a system without die-stacked DRAM,
//! the NM access rate, and the bandwidth split.
//!
//! Run with: `cargo run --release --example quickstart`

use silc_fm::sim::{run, RunParams, SchemeKind};
use silc_fm::trace::profiles;
use silc_fm::types::SystemConfig;

fn main() {
    // Table II's system with the harness's miniaturized LLC (see DESIGN.md).
    let cfg = SystemConfig::experiment();
    // Small runs so the example finishes in a few seconds.
    let params = RunParams::smoke();
    let workload = profiles::by_name("milc").expect("milc is in Table III");

    println!("workload : {workload}");
    println!("system   : {cfg}");
    println!();

    // The baseline the paper normalizes to: the same machine without NM.
    let base = run(workload, SchemeKind::NoNm, &cfg, &params);
    println!(
        "no-NM baseline: {} cycles (IPC {:.2})",
        base.cycles,
        base.ipc()
    );

    // SILC-FM with the paper's full feature set.
    let silc = run(workload, SchemeKind::silcfm(), &cfg, &params);
    println!(
        "SILC-FM       : {} cycles (IPC {:.2})  ->  speedup {:.2}x",
        silc.cycles,
        silc.ipc(),
        silc.speedup_over(&base)
    );
    println!(
        "access rate   : {:.2} of LLC misses serviced from near memory (Eq. 1)",
        silc.access_rate
    );
    println!(
        "bandwidth     : {:.0}% of demand bytes moved by NM (ideal 80% at 4:1)",
        silc.traffic.nm_demand_fraction() * 100.0
    );
    println!(
        "energy        : {:.1} mJ vs {:.1} mJ for the baseline",
        silc.energy_pj / 1e9,
        base.energy_pj / 1e9
    );

    // Every detail the controller tracks is available for inspection.
    println!("\ncontroller details:");
    for (name, value) in &silc.scheme_stats.details {
        println!("  {name:24} {value:.3}");
    }
}
