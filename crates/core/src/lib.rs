//! SILC-FM: the Subblocked InterLeaved Cache-Like Flat Memory controller.
//!
//! This crate implements the primary contribution of the HPCA 2017 paper.
//! Near memory (NM) is organized as an associative structure of 2 KB *frames*
//! whose 64 B *subblocks* can be exchanged pairwise with subblocks of far
//! memory (FM) blocks mapping to the same congruence set — the interleaving
//! that gives the scheme its name. On top of the swap engine (the six cases
//! of the paper's Table I, implemented in [`controller`]) sit four features,
//! each independently switchable for the Fig. 6 ablation:
//!
//! * **history-guided bulk fetch** ([`history`]) — per-frame residency bit
//!   vectors are saved on eviction in a PC⊕address-indexed table and replayed
//!   on the next tenancy, converting spatial locality into NM hits;
//! * **locking** ([`metadata`], §III-C) — aging activity counters classify
//!   blocks hot/cold; hot blocks are fully remapped into NM and pinned;
//! * **associativity** (§III-C) — up to 4 ways per set with LRU victimization
//!   among unlocked frames;
//! * **bypassing** (§III-E) — when the NM access rate exceeds 0.8 (the 4:1
//!   bandwidth-ratio optimum), new swap-ins are suspended so FM bandwidth is
//!   not left idle.
//!
//! A small way + location predictor ([`predictor`], §III-F) hides the
//! serialized metadata-fetch latency.
//!
//! # Example
//!
//! ```
//! use silcfm_core::{SilcFm, SilcFmParams};
//! use silcfm_types::{
//!     Access, AddressSpace, CoreId, Geometry, MemoryScheme, PhysAddr, SchemeOutcome,
//! };
//!
//! let space = AddressSpace::new(64 * 2048, 256 * 2048);
//! let mut scheme = SilcFm::new(space, Geometry::paper(), SilcFmParams::default());
//!
//! // The driving loop owns one outcome and hands it back for every miss.
//! let mut out = SchemeOutcome::empty();
//!
//! // A far-memory access interleaves its subblock into near memory…
//! let fm_addr = PhysAddr::new(space.nm_bytes());
//! scheme.access(&Access::read(fm_addr, 0x400, CoreId::new(0)), &mut out);
//! assert!(!out.background.is_empty());
//!
//! // …so the next access to it is serviced from NM.
//! scheme.access(&Access::read(fm_addr, 0x400, CoreId::new(0)), &mut out);
//! assert_eq!(out.serviced_from, silcfm_types::MemKind::Near);
//! ```

pub mod controller;
pub mod frametable;
pub mod history;
pub mod metadata;
pub mod params;
pub mod predictor;

pub use controller::SilcFm;
pub use frametable::FrameTable;
pub use history::BitVectorTable;
pub use metadata::{FrameMeta, LockState};
pub use params::SilcFmParams;
pub use predictor::WayPredictor;
