//! Per-frame metadata: remap entry, residency bit vector, activity counters,
//! lock and LRU state (the paper's Fig. 4 layout).

use silcfm_types::BlockIndex;

/// Maximum value of the paper's 6-bit activity counters.
pub const COUNTER_MAX: u8 = 63;

/// Lock state of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockState {
    /// Not locked; normal subblock interleaving applies.
    Unlocked,
    /// The frame's NM-native block is locked in place (no swap-ins allowed).
    LockedNative,
    /// The remapped FM block is locked in: a complete exchange was performed
    /// and all subblocks of the FM block reside in this frame.
    LockedRemap,
}

impl LockState {
    /// Whether the frame may participate in swaps.
    pub const fn is_locked(self) -> bool {
        !matches!(self, Self::Unlocked)
    }
}

/// Metadata for one 2 KB NM frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameMeta {
    /// The FM block whose subblocks are interleaved into this frame, if any.
    pub remap: Option<BlockIndex>,
    /// Bit `i` set ⇔ subblock position `i` holds the remapped FM block's
    /// data (and the NM-native subblock `i` lives at the FM block's
    /// location) — the pairwise-exchange invariant of §III-A.
    pub bitvec: u64,
    /// Union of all bits set during the current tenancy; saved to the
    /// history table on eviction.
    pub bitvec_history: u64,
    /// PC ⊕ address key of the first swapped-in subblock of this tenancy
    /// (the history-table index, §III-A).
    pub history_key: u64,
    /// 6-bit aging counter for the NM-native block.
    pub nm_counter: u8,
    /// 6-bit aging counter for the remapped FM block.
    pub fm_counter: u8,
    /// Lock state (§III-C).
    pub lock: LockState,
    /// Last-access stamp for LRU victimization.
    pub lru: u64,
}

impl FrameMeta {
    /// A frame in its initial state: holding its NM-native block only.
    pub const fn empty() -> Self {
        Self {
            remap: None,
            bitvec: 0,
            bitvec_history: 0,
            history_key: 0,
            nm_counter: 0,
            fm_counter: 0,
            lock: LockState::Unlocked,
            lru: 0,
        }
    }

    /// Whether subblock position `off` currently holds remapped FM data.
    pub const fn bit(&self, off: u32) -> bool {
        self.bitvec & (1 << off) != 0
    }

    /// Sets the residency bit for `off` and records it in the tenancy
    /// history.
    pub fn set_bit(&mut self, off: u32) {
        self.bitvec |= 1 << off;
        self.bitvec_history |= 1 << off;
    }

    /// Clears the residency bit for `off` (subblock swapped back).
    pub fn clear_bit(&mut self, off: u32) {
        self.bitvec &= !(1 << off);
    }

    /// Saturating increment of the NM-native activity counter. The add
    /// itself saturates before the clamp: the fields are public, so a
    /// counter poked past `COUNTER_MAX` must clamp back down rather than
    /// wrap (or panic in debug builds) at 255.
    pub fn bump_nm(&mut self) -> u8 {
        self.nm_counter = self.nm_counter.saturating_add(1).min(COUNTER_MAX);
        self.nm_counter
    }

    /// Saturating increment of the remapped-block activity counter.
    pub fn bump_fm(&mut self) -> u8 {
        self.fm_counter = self.fm_counter.saturating_add(1).min(COUNTER_MAX);
        self.fm_counter
    }

    /// Ages both counters (right shift), as done every million accesses.
    pub fn age(&mut self) {
        self.nm_counter >>= 1;
        self.fm_counter >>= 1;
    }
}

impl Default for FrameMeta {
    fn default() -> Self {
        Self::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_frame_has_no_residency() {
        let f = FrameMeta::empty();
        assert_eq!(f.remap, None);
        assert_eq!(f.bitvec, 0);
        assert!(!f.lock.is_locked());
        for off in 0..32 {
            assert!(!f.bit(off));
        }
    }

    #[test]
    fn bit_operations_and_history_union() {
        let mut f = FrameMeta::empty();
        f.set_bit(3);
        f.set_bit(7);
        assert!(f.bit(3) && f.bit(7) && !f.bit(4));
        f.clear_bit(3);
        assert!(!f.bit(3));
        // History remembers everything ever set this tenancy.
        assert_eq!(f.bitvec_history, (1 << 3) | (1 << 7));
    }

    #[test]
    fn counters_saturate() {
        let mut f = FrameMeta::empty();
        for _ in 0..100 {
            f.bump_nm();
            f.bump_fm();
        }
        assert_eq!(f.nm_counter, COUNTER_MAX);
        assert_eq!(f.fm_counter, COUNTER_MAX);
    }

    #[test]
    fn counters_never_wrap_even_from_out_of_range_state() {
        // The fields are public; a counter forced past its width (by a
        // metadata fault, or simply a buggy caller) must clamp, not wrap.
        let mut f = FrameMeta::empty();
        f.nm_counter = u8::MAX;
        f.fm_counter = u8::MAX;
        assert_eq!(f.bump_nm(), COUNTER_MAX);
        assert_eq!(f.bump_fm(), COUNTER_MAX);
    }

    #[test]
    fn aging_halves() {
        let mut f = FrameMeta::empty();
        f.nm_counter = 50;
        f.fm_counter = 7;
        f.age();
        assert_eq!(f.nm_counter, 25);
        assert_eq!(f.fm_counter, 3);
    }

    #[test]
    fn lock_state_predicate() {
        assert!(!LockState::Unlocked.is_locked());
        assert!(LockState::LockedNative.is_locked());
        assert!(LockState::LockedRemap.is_locked());
    }
}
