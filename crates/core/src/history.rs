//! The bit-vector history table (§III-A).
//!
//! When a block is evicted from a frame, its tenancy bit vector — the set of
//! subblock positions that were actually used — is saved in a small SRAM
//! table indexed by the XOR of the PC and the address of the first
//! swapped-in subblock. When the same (PC, address) pair swaps a block in
//! again, the stored vector is replayed to bulk-fetch the subblocks that
//! were useful last time, capturing spatial locality without fetching the
//! whole 2 KB block.

/// A direct-mapped history table of residency bit vectors.
#[derive(Debug, Clone)]
pub struct BitVectorTable {
    entries: Vec<u64>,
    mask: usize,
    stores: u64,
    hits: u64,
    lookups: u64,
}

impl BitVectorTable {
    /// Creates a table with `entries` slots (rounded up to a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "history table must have at least one entry");
        let n = entries.next_power_of_two();
        // Pre-fault the table: `vec![0; n]` maps lazily-zeroed pages, which
        // would otherwise take their page faults on the access path — the
        // first store to each page of a multi-megabyte table lands mid-run.
        // One real write per page moves that cost to construction.
        let mut table = vec![0u64; n];
        for slot in table.iter_mut().step_by(4096 / core::mem::size_of::<u64>()) {
            *std::hint::black_box(slot) = 0;
        }
        Self {
            entries: table,
            mask: n - 1,
            stores: 0,
            hits: 0,
            lookups: 0,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has zero slots (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Saves `bitvec` under `key` (PC ⊕ first-subblock address).
    pub fn store(&mut self, key: u64, bitvec: u64) {
        self.stores += 1;
        let idx = self.index(key);
        // silcfm-lint: allow(P1) -- index() masks the hash into the power-of-two table
        self.entries[idx] = bitvec;
    }

    /// Looks up the bit vector remembered for `key`; returns `None` when the
    /// slot is empty (no useful history).
    pub fn lookup(&mut self, key: u64) -> Option<u64> {
        self.lookups += 1;
        // silcfm-lint: allow(P1) -- index() masks the hash into the power-of-two table
        let v = self.entries[self.index(key)];
        if v == 0 {
            None
        } else {
            self.hits += 1;
            Some(v)
        }
    }

    /// Fraction of lookups that found a stored vector.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Clears all entries and statistics.
    pub fn reset(&mut self) {
        self.entries.fill(0);
        self.stores = 0;
        self.hits = 0;
        self.lookups = 0;
    }

    fn index(&self, key: u64) -> usize {
        // Fibonacci hashing mixes the XORed PC/address bits well.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_then_lookup() {
        let mut t = BitVectorTable::new(1024);
        t.store(0xABCD, 0b1010);
        assert_eq!(t.lookup(0xABCD), Some(0b1010));
        assert!((t.hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_key_misses() {
        let mut t = BitVectorTable::new(1024);
        assert_eq!(t.lookup(0xDEAD), None);
        assert_eq!(t.hit_rate(), 0.0);
    }

    #[test]
    fn zero_vector_is_indistinguishable_from_empty() {
        // A tenancy that used no subblocks stores 0, which reads back as
        // "no history" — intended: there is nothing useful to replay.
        let mut t = BitVectorTable::new(64);
        t.store(5, 0);
        assert_eq!(t.lookup(5), None);
    }

    #[test]
    fn aliasing_overwrites() {
        let mut t = BitVectorTable::new(1); // everything aliases
        t.store(1, 0b01);
        t.store(2, 0b10);
        assert_eq!(t.lookup(1), Some(0b10), "direct-mapped: later store wins");
    }

    #[test]
    fn rounds_up_to_power_of_two() {
        let t = BitVectorTable::new(1000);
        assert_eq!(t.len(), 1024);
        assert!(!t.is_empty());
    }

    #[test]
    fn reset_clears() {
        let mut t = BitVectorTable::new(16);
        t.store(3, 0xFF);
        t.reset();
        assert_eq!(t.lookup(3), None);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_panics() {
        let _ = BitVectorTable::new(0);
    }
}
