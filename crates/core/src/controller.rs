//! The SILC-FM controller: Table I's swap engine plus locking,
//! associativity, bypassing and the way/location predictor.

use silcfm_types::fault::{
    failover_disengage_threshold, failover_engage_threshold, EccOutcome, FaultEffect, SchemeFault,
};
use silcfm_types::obs::{Event, FaultClass, NullTracer, TraceEvent, Tracer};
use silcfm_types::stats::WindowedRate;
use silcfm_types::{
    Access, AccessFlags, AddressSpace, BatchOutcome, BlockIndex, Geometry, MemKind, MemOp,
    MemoryScheme, OpSink, PhysAddr, SchemeOutcome, SchemeStats, SilcFmError, SubblockIndex,
};

use crate::frametable::FrameTable;
use crate::history::BitVectorTable;
use crate::metadata::{FrameMeta, LockState};
use crate::params::SilcFmParams;
use crate::predictor::{Prediction, WayPredictor};

/// Bytes of one remap-entry fetch (remap field + bit vector + flags).
const METADATA_BYTES: u32 = 8;

/// The SILC-FM flat-memory controller (see the crate-level docs and the
/// paper's §III).
///
/// The tracer type parameter defaults to [`NullTracer`], whose
/// `ENABLED = false` lets every `if T::ENABLED` emit site below compile to
/// nothing — the untraced controller is the same machine code as before
/// the observability layer existed.
#[derive(Debug, Clone)]
pub struct SilcFm<T: Tracer = NullTracer> {
    space: AddressSpace,
    geom: Geometry,
    params: SilcFmParams,
    /// All frame metadata in structure-of-arrays form, `[set][way]` slot
    /// order — the set probe and victim scan of [`Self::access_far`] walk
    /// contiguous words of single-field arrays instead of striding through
    /// an array of structs (see [`FrameTable`]).
    table: FrameTable,
    sets: u64,
    history: BitVectorTable,
    predictor: WayPredictor,
    rate: WindowedRate,
    access_count: u64,
    next_aging: u64,
    // Statistics.
    serviced_from_nm: u64,
    subblock_exchanges: u64,
    locks: u64,
    unlocks: u64,
    restores: u64,
    bypassed: u64,
    all_locked_serves: u64,
    history_bulk_bits: u64,
    history_bulk_fetches: u64,
    // Fault plane (DESIGN.md §10). `degraded_ways` is a bitmask over the
    // associative ways; a set bit masks that way out of victim selection
    // and keeps it tenant-free (its tags were zeroed at evacuation, so the
    // probe cannot hit it either). `failover` forces bypass-all-FM mode
    // once enough ways degrade, with hysteresis. All zero/false in a
    // healthy run, so the faults-off hot path is behaviorally untouched.
    degraded_ways: u32,
    failover: bool,
    faults_injected: u64,
    fault_corrected: u64,
    fault_recovered: u64,
    fault_poisoned: u64,
    fault_masked: u64,
    failover_transitions: u64,
    // Observability (dead weight of 3 words + a ZST when T = NullTracer).
    tracer: T,
    /// Cycle stamp for emitted events, injected by the driver through
    /// [`MemoryScheme::trace_clock`] before each access.
    trace_now: u64,
    /// Last bypass state emitted, so `BypassDecision` fires on edges only.
    last_bypassing: bool,
    /// Service-path markers of the most recent access, copied into the
    /// outcome by both dispatch paths for latency attribution.
    last_flags: AccessFlags,
}

/// Everything decided while resolving one access, before the critical path
/// is assembled. Background (migration) traffic is written directly into
/// the caller's outcome while resolving, so no per-access buffer exists.
struct Resolution {
    serviced_from: MemKind,
    /// Physical address the demand data is read from / written to.
    data_addr: PhysAddr,
    /// Serialized remap-entry fetches needed without a correct prediction.
    metadata_reads: u32,
    /// Way the access resolved to (for predictor training).
    way: u8,
    /// Whether frame metadata changed (bit vector / remap / lock).
    metadata_dirty: bool,
}

impl SilcFm {
    /// Creates an untraced controller for the given flat address space.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail validation or NM holds fewer blocks than the
    /// associativity requires. [`SilcFm::try_new`] is the non-panicking
    /// spelling.
    pub fn new(space: AddressSpace, geom: Geometry, params: SilcFmParams) -> Self {
        SilcFm::with_tracer(space, geom, params, NullTracer)
    }

    /// Fallible spelling of [`SilcFm::new`]: returns a typed error instead
    /// of panicking on invalid parameters or geometry.
    pub fn try_new(
        space: AddressSpace,
        geom: Geometry,
        params: SilcFmParams,
    ) -> Result<Self, SilcFmError> {
        SilcFm::try_with_tracer(space, geom, params, NullTracer)
    }
}

impl<T: Tracer> SilcFm<T> {
    /// Creates a controller that records observability events into
    /// `tracer`; see [`SilcFm::new`] for the untraced spelling.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail validation or NM holds fewer blocks than the
    /// associativity requires.
    pub fn with_tracer(
        space: AddressSpace,
        geom: Geometry,
        params: SilcFmParams,
        tracer: T,
    ) -> Self {
        // silcfm-lint: allow(P1) -- documented `# Panics` constructor precondition; construction is off the access path
        Self::try_with_tracer(space, geom, params, tracer).expect("invalid SILC-FM parameters")
    }

    /// Fallible spelling of [`SilcFm::with_tracer`]: returns a typed
    /// [`SilcFmError`] instead of panicking on invalid parameters or a
    /// geometry that cannot form full congruence sets.
    pub fn try_with_tracer(
        space: AddressSpace,
        geom: Geometry,
        params: SilcFmParams,
        tracer: T,
    ) -> Result<Self, SilcFmError> {
        params.validate()?;
        let nm_blocks = space.nm_blocks(geom);
        if nm_blocks < u64::from(params.associativity) {
            return Err(SilcFmError::params(format!(
                "NM must hold at least one full set ({} blocks < {}-way)",
                nm_blocks, params.associativity
            )));
        }
        if !nm_blocks.is_multiple_of(u64::from(params.associativity)) {
            return Err(SilcFmError::params(format!(
                "NM blocks ({nm_blocks}) must divide evenly into {}-way sets",
                params.associativity
            )));
        }
        Ok(Self {
            space,
            geom,
            params,
            table: FrameTable::new(
                nm_blocks / u64::from(params.associativity),
                params.associativity,
            ),
            sets: nm_blocks / u64::from(params.associativity),
            history: BitVectorTable::new(params.history_entries),
            predictor: WayPredictor::new(params.predictor_entries),
            rate: WindowedRate::new(params.bypass_window),
            access_count: 0,
            next_aging: params.aging_period,
            serviced_from_nm: 0,
            subblock_exchanges: 0,
            locks: 0,
            unlocks: 0,
            restores: 0,
            bypassed: 0,
            all_locked_serves: 0,
            history_bulk_bits: 0,
            history_bulk_fetches: 0,
            degraded_ways: 0,
            failover: false,
            faults_injected: 0,
            fault_corrected: 0,
            fault_recovered: 0,
            fault_poisoned: 0,
            fault_masked: 0,
            failover_transitions: 0,
            tracer,
            trace_now: 0,
            last_bypassing: false,
            last_flags: AccessFlags::NONE,
        })
    }

    /// The parameters this controller runs with.
    pub const fn params(&self) -> &SilcFmParams {
        &self.params
    }

    /// Number of congruence sets.
    pub const fn sets(&self) -> u64 {
        self.sets
    }

    /// Metadata of frame `f` (NM block index), assembled by value from the
    /// structure-of-arrays table, for tests and diagnostics. Hot paths use
    /// the table's per-field accessors instead — gathering all eight
    /// arrays here touches eight cache lines.
    pub fn frame(&self, f: u64) -> FrameMeta {
        self.table.get(self.table.slot_of(f))
    }

    /// Current estimate of the NM access rate (Eq. 1) over the bypass window.
    pub fn access_rate_estimate(&self) -> f64 {
        self.rate.rate()
    }

    /// Whether new swap-ins are currently suspended (§III-E).
    pub fn bypassing(&self) -> bool {
        self.params.bypass
            && self.rate.samples() >= self.params.bypass_window
            && self.rate.rate() > self.params.bypass_target
    }

    /// Whether the NM-unhealthy failover (bypass-all-FM mode) is engaged.
    pub const fn failover_engaged(&self) -> bool {
        self.failover
    }

    /// Number of currently degraded associative ways.
    pub const fn degraded_way_count(&self) -> u32 {
        self.degraded_ways.count_ones()
    }

    // ---- address helpers --------------------------------------------------

    fn frame_id(&self, set: u64, way: u32) -> u64 {
        set + u64::from(way) * self.sets
    }

    /// Congruence set of a block index. Every Table II geometry has a
    /// power-of-two set count, so the hot path reduces to a mask; the
    /// modulo fallback keeps odd geometries working identically.
    fn set_of(&self, block: u64) -> u64 {
        if self.sets.is_power_of_two() {
            block & (self.sets - 1)
        } else {
            block % self.sets
        }
    }

    /// Way of frame `f` (the inverse of [`Self::frame_id`]).
    fn way_of(&self, f: u64) -> u8 {
        if self.sets.is_power_of_two() {
            (f >> self.sets.trailing_zeros()) as u8
        } else {
            (f / self.sets) as u8
        }
    }

    fn nm_subblock_addr(&self, frame: u64, off: u32) -> PhysAddr {
        PhysAddr::new(frame * self.geom.block_bytes() + u64::from(off) * self.geom.subblock_bytes())
    }

    fn fm_subblock_addr(&self, block: BlockIndex, off: u32) -> PhysAddr {
        block
            .base_addr(self.geom)
            .add(u64::from(off) * self.geom.subblock_bytes())
    }

    /// Shadow address of frame `f`'s remap entry. Metadata lives in NM (the
    /// paper stores it in a dedicated channel); consecutive frames share
    /// rows, reproducing the row-locality the paper engineers for.
    fn metadata_addr(&self, frame: u64) -> PhysAddr {
        let nm = self.space.nm_bytes();
        let shadow = frame * u64::from(METADATA_BYTES);
        PhysAddr::new(if nm.is_power_of_two() {
            shadow & (nm - 1)
        } else {
            shadow % nm
        })
    }

    // ---- swap helpers -----------------------------------------------------

    /// Emits the migration traffic for exchanging subblock `off` between
    /// frame `frame` and FM block `fm_block`. When `demand_covers_fetch` the
    /// demand access already reads the incoming subblock from `fetch_side`,
    /// so that read is not charged again. Generic over the sink so the
    /// scalar path ([`OpList`](silcfm_types::OpList)s in a
    /// [`SchemeOutcome`]) and the batched path (flat vectors in a
    /// [`BatchOutcome`]) share one body.
    fn exchange<S: OpSink>(
        &mut self,
        ops: &mut S,
        frame: u64,
        fm_block: BlockIndex,
        off: u32,
        demand_covers_fetch: bool,
        fetch_side: MemKind,
    ) {
        let nm = self.nm_subblock_addr(frame, off);
        let fm = self.fm_subblock_addr(fm_block, off);
        let sb = self.geom.subblock_bytes() as u32;
        if T::ENABLED {
            self.tracer.record(
                self.trace_now,
                Event::SwapStart {
                    frame: frame as u32,
                    subblock: off as u8,
                },
            );
        }
        if !(demand_covers_fetch && fetch_side == MemKind::Far) {
            ops.push_op(MemOp::migration_read(MemKind::Far, fm, sb));
        }
        if !(demand_covers_fetch && fetch_side == MemKind::Near) {
            ops.push_op(MemOp::migration_read(MemKind::Near, nm, sb));
        }
        ops.push_op(MemOp::migration_write(MemKind::Near, nm, sb));
        ops.push_op(MemOp::migration_write(MemKind::Far, fm, sb));
        self.subblock_exchanges += 1;
        if T::ENABLED {
            self.tracer.record(
                self.trace_now,
                Event::SwapDone {
                    frame: frame as u32,
                    subblock: off as u8,
                },
            );
        }
    }

    /// Restores frame `f` to its native contents (undoes the interleaving)
    /// and saves the tenancy bit vector to the history table.
    fn restore_frame<S: OpSink>(&mut self, f: u64, ops: &mut S) {
        let slot = self.table.slot_of(f);
        if let Some(block) = self.table.remap(slot) {
            let mut bits = self.table.bitvec(slot);
            while bits != 0 {
                let off = bits.trailing_zeros();
                bits &= bits - 1;
                self.exchange(ops, f, block, off, false, MemKind::Far);
            }
            let key = self.table.history_key(slot);
            if self.params.history_fetch && key != 0 {
                self.history.store(key, self.table.bitvec_history(slot));
            }
            self.restores += 1;
        }
        // Invalidation keeps the LRU stamp and the native activity counter
        // and zeroes the tenant tag (there is no separate mirror to sync:
        // the table's remap array *is* the probe's tag store).
        self.table.invalidate(slot);
    }

    /// Locks the remapped FM block of frame `f` into NM by completing the
    /// exchange (§III-C).
    fn lock_remap<S: OpSink>(&mut self, f: u64, ops: &mut S) {
        let slot = self.table.slot_of(f);
        let Some(block) = self.table.remap(slot) else {
            // Both callers guard on an existing tenancy, so this cannot
            // fire; declining to lock is the safe response if it ever did.
            debug_assert!(false, "lock_remap requires a tenant");
            return;
        };
        let full = self.geom.full_mask();
        let mut missing = !self.table.bitvec(slot) & full;
        while missing != 0 {
            let off = missing.trailing_zeros();
            missing &= missing - 1;
            self.exchange(ops, f, block, off, false, MemKind::Far);
        }
        self.table.fill_residency(slot, full);
        self.table.set_lock(slot, LockState::LockedRemap);
        self.locks += 1;
        if T::ENABLED {
            self.tracer.record(
                self.trace_now,
                Event::LockPromote {
                    frame: f as u32,
                    native: false,
                },
            );
        }
    }

    /// Locks frame `f`'s native block in place by undoing any interleaving.
    fn lock_native<S: OpSink>(&mut self, f: u64, ops: &mut S) {
        self.restore_frame(f, ops);
        let slot = self.table.slot_of(f);
        self.table.set_lock(slot, LockState::LockedNative);
        self.locks += 1;
        if T::ENABLED {
            self.tracer.record(
                self.trace_now,
                Event::LockPromote {
                    frame: f as u32,
                    native: true,
                },
            );
        }
    }

    // ---- aging ------------------------------------------------------------

    fn maybe_age(&mut self) {
        if self.access_count < self.next_aging {
            return;
        }
        self.next_aging += self.params.aging_period;
        let threshold = self.params.lock_threshold;
        // Halve the counters in bulk over the two contiguous byte arrays
        // (each slot only touches itself, so slot order vs frame order is
        // immaterial), then demote cooled locks in frame-id order — the
        // order the old per-frame loop emitted `LockDemote` events in.
        self.table.age_all();
        for f in 0..self.table.len() as u64 {
            let slot = self.table.slot_of(f);
            let demote = match self.table.lock(slot) {
                // Unlocking has no immediate data movement: the frame
                // behaves as an unlocked block with all bits set.
                LockState::LockedRemap => self.table.fm_counter(slot) < threshold,
                LockState::LockedNative => self.table.nm_counter(slot) < threshold,
                LockState::Unlocked => false,
            };
            if demote {
                self.table.set_lock(slot, LockState::Unlocked);
                self.unlocks += 1;
                if T::ENABLED {
                    self.tracer
                        .record(self.trace_now, Event::LockDemote { frame: f as u32 });
                }
            }
        }
    }

    // ---- fault plane (DESIGN.md §10) ---------------------------------------
    //
    // None of these are reachable from `access`: fault delivery is a
    // separate entry point (`MemoryScheme::apply_fault`) the driving loop
    // calls only when a schedule is armed, so the healthy hot path carries
    // no fault-handling code beyond the `degraded_ways` victim check and
    // the `failover ||` in the bypass decision.

    /// Re-evaluates the failover state after `degraded_ways` changed,
    /// emitting a `Failover` edge event on transitions. Hysteresis: engage
    /// at ≥ ceil(assoc/2) degraded ways, disengage at ≤ assoc/4.
    fn update_failover(&mut self) {
        let degraded = self.degraded_ways.count_ones();
        if !self.failover && degraded >= failover_engage_threshold(self.params.associativity) {
            self.failover = true;
            self.failover_transitions += 1;
            if T::ENABLED {
                self.tracer
                    .record(self.trace_now, Event::Failover { engaged: true });
            }
        } else if self.failover
            && degraded <= failover_disengage_threshold(self.params.associativity)
        {
            self.failover = false;
            self.failover_transitions += 1;
            if T::ENABLED {
                self.tracer
                    .record(self.trace_now, Event::Failover { engaged: false });
            }
        }
    }

    /// Degrades way `way`: evacuates every tenancy in it (restoring data to
    /// FM while the way is still readable — degradation is a warning, not
    /// loss), demotes its locked pages, and masks it out of victim
    /// selection. Returns `Recovered` if any data moved, `Corrected` for an
    /// empty or already-degraded way, `Masked` for an out-of-range way.
    fn degrade_way<S: OpSink>(&mut self, way: u8, bg: &mut S) -> FaultEffect {
        let w = u32::from(way);
        if w >= self.params.associativity {
            return FaultEffect::Masked;
        }
        let mask = 1u32 << w;
        if self.degraded_ways & mask != 0 {
            return FaultEffect::Corrected;
        }
        self.degraded_ways |= mask;
        let mut evacuated = false;
        for set in 0..self.sets {
            let f = self.frame_id(set, w);
            let slot = self.table.slot_at(set, w);
            if self.table.remap(slot).is_some() {
                // Tenant (possibly locked): swap every resident subblock
                // home and clear the entry — restore_frame demotes the
                // lock as a side effect of resetting the metadata.
                self.restore_frame(f, bg);
                evacuated = true;
                if T::ENABLED {
                    self.tracer
                        .record(self.trace_now, Event::Recovered { frame: f as u32 });
                }
            } else if self.table.lock(slot).is_locked() {
                // A natively locked frame holds no foreign data; demoting
                // the lock is enough to stop pinning the degraded way.
                self.table.set_lock(slot, LockState::Unlocked);
                self.unlocks += 1;
                if T::ENABLED {
                    self.tracer
                        .record(self.trace_now, Event::LockDemote { frame: f as u32 });
                }
            }
        }
        self.update_failover();
        if evacuated {
            FaultEffect::Recovered
        } else {
            FaultEffect::Corrected
        }
    }

    /// Repairs way `way`: unmasks it so it can accept tenancies again,
    /// possibly disengaging failover.
    fn repair_way(&mut self, way: u8) -> FaultEffect {
        let w = u32::from(way);
        if w >= self.params.associativity || self.degraded_ways & (1 << w) == 0 {
            return FaultEffect::Masked;
        }
        self.degraded_ways &= !(1 << w);
        self.update_failover();
        FaultEffect::Corrected
    }

    /// A transient bit flip in frame `frame`'s resident subblock, with the
    /// ECC outcome pre-drawn by the schedule. A DUE always poisons: the
    /// flat organization keeps exactly one valid copy of whatever occupies
    /// the slot (a swapped-in tenant subblock, or the native subblock whose
    /// home *is* this frame), so there is nothing to restore from.
    fn bit_flip(&mut self, frame: u32, _subblock: u8, ecc: EccOutcome) -> FaultEffect {
        if u64::from(frame) >= self.space.nm_blocks(self.geom) {
            return FaultEffect::Masked;
        }
        match ecc {
            EccOutcome::Corrected => FaultEffect::Corrected,
            EccOutcome::Undetected => FaultEffect::Masked,
            EccOutcome::DetectedUncorrectable => {
                if T::ENABLED {
                    self.tracer
                        .record(self.trace_now, Event::Poisoned { frame });
                }
                FaultEffect::Poisoned
            }
        }
    }

    /// A parity error in frame `frame`'s remap/metadata entry. The entry
    /// can no longer be trusted, so it is invalidated; whether that loses
    /// data depends on the residency bit vector (§III-A): with no resident
    /// subblocks the FM home still holds every byte of the tenant (and the
    /// frame its own native block), with resident subblocks the pairwise
    /// exchange mapping — the only record of where both blocks' data
    /// lives — is gone.
    fn metadata_parity<S: OpSink>(&mut self, frame: u32, bg: &mut S) -> FaultEffect {
        let f = u64::from(frame);
        if f >= self.space.nm_blocks(self.geom) {
            return FaultEffect::Masked;
        }
        let slot = self.table.slot_of(f);
        if self.table.remap(slot).is_none() {
            // Empty entry: parity scrub rewrites it, nothing referenced it.
            return FaultEffect::Corrected;
        }
        let lost = self.table.bitvec(slot) != 0;
        // Invalidate the entry either way (keeping LRU and the native
        // activity counter, as a restore does) and schedule the metadata
        // rewrite.
        self.table.invalidate(slot);
        bg.push_op(MemOp::metadata_write(
            MemKind::Near,
            self.metadata_addr(f),
            METADATA_BYTES,
        ));
        if lost {
            if T::ENABLED {
                self.tracer
                    .record(self.trace_now, Event::Poisoned { frame });
            }
            FaultEffect::Poisoned
        } else {
            if T::ENABLED {
                self.tracer
                    .record(self.trace_now, Event::Recovered { frame });
            }
            FaultEffect::Recovered
        }
    }

    // ---- the two request paths ---------------------------------------------

    /// Handles a request whose address lies in the NM space (Table I rows
    /// with "NM address = yes", plus locked-frame handling). Migration
    /// traffic is appended to `bg` (the caller's background list).
    fn access_near<S: OpSink>(
        &mut self,
        block: BlockIndex,
        off: u32,
        bypassing: bool,
        bg: &mut S,
    ) -> Resolution {
        let f = block.value();
        let slot = self.table.slot_of(f);
        let now = self.access_count;
        self.table.set_lru(slot, now);
        let lock = self.table.lock(slot);
        let remap = self.table.remap(slot);
        let bit = self.table.bit(slot, off);
        let threshold = self.params.lock_threshold;
        let bg_start = bg.ops_len();

        // Pairing the lock state with the tenancy makes the impossible
        // states (a locked remap or a set bit without a tenant) explicit:
        // both fold into the native-service row under a debug assertion
        // instead of aborting the run.
        match (lock, remap) {
            (LockState::LockedNative, _) | (LockState::LockedRemap, None) => {
                debug_assert!(lock == LockState::LockedNative, "locked remap has a tenant");
                self.table.bump_nm(slot);
                Resolution {
                    serviced_from: MemKind::Near,
                    data_addr: self.nm_subblock_addr(f, off),
                    metadata_reads: 1,
                    way: self.way_of(f),
                    metadata_dirty: false,
                }
            }
            (LockState::LockedRemap, Some(tenant)) => {
                // The native block's data lives wholesale at the locked
                // tenant's FM location; the lock forbids disturbing it.
                self.table.bump_nm(slot);
                Resolution {
                    serviced_from: MemKind::Far,
                    data_addr: self.fm_subblock_addr(tenant, off),
                    metadata_reads: 1,
                    way: self.way_of(f),
                    metadata_dirty: false,
                }
            }
            (LockState::Unlocked, remap) => {
                let count = self.table.bump_nm(slot);
                debug_assert!(!bit || remap.is_some(), "a set bit implies a tenant");
                if let Some(tenant) = remap.filter(|_| bit) {
                    // Row 3: remap mismatch, bit set, NM address → the
                    // native subblock was swapped out; it lives at the
                    // tenant's FM location. Swap it back (unless bypassing).
                    let data_addr = self.fm_subblock_addr(tenant, off);
                    let mut metadata_dirty = false;
                    if !bypassing {
                        self.exchange(bg, f, tenant, off, true, MemKind::Far);
                        self.table.clear_bit(slot, off);
                        metadata_dirty = true;
                        if self.params.locking && count >= threshold {
                            self.lock_native(f, bg);
                        }
                    }
                    Resolution {
                        serviced_from: MemKind::Far,
                        data_addr,
                        metadata_reads: 1,
                        way: self.way_of(f),
                        metadata_dirty,
                    }
                } else {
                    // Row 4: remap mismatch, bit clear, NM address →
                    // the native subblock is resident; service from NM.
                    if self.params.locking && !bypassing && count >= threshold && remap.is_some() {
                        self.lock_native(f, bg);
                    }
                    Resolution {
                        serviced_from: MemKind::Near,
                        data_addr: self.nm_subblock_addr(f, off),
                        metadata_reads: 1,
                        way: self.way_of(f),
                        metadata_dirty: bg.ops_len() > bg_start,
                    }
                }
            }
        }
    }

    /// Handles a request whose address lies in the FM space (Table I rows 1,
    /// 2, 5 and 6). Migration traffic is appended to `bg` (the caller's
    /// background list).
    fn access_far<S: OpSink>(
        &mut self,
        block: BlockIndex,
        off: u32,
        pc: u64,
        bypassing: bool,
        bg: &mut S,
    ) -> Resolution {
        let set = self.set_of(block.value());
        let assoc = self.params.associativity;
        let threshold = self.params.lock_threshold;

        // Search the set for a matching remap entry: a branch-free scan of
        // `associativity` adjacent tag words (see [`FrameTable::probe`]).
        let want = block.value() + 1;
        let hit_way = self.table.probe(set, want);

        if let Some(way) = hit_way {
            let f = self.frame_id(set, way);
            let slot = self.table.slot_at(set, way);
            let now = self.access_count;
            self.table.set_lru(slot, now);
            let count = self.table.bump_fm(slot);
            let bg_start = bg.ops_len();

            if self.table.bit(slot, off) {
                // Row 1: remap match, bit set → service from NM.
                if self.params.locking
                    && !bypassing
                    && self.table.lock(slot) == LockState::Unlocked
                    && count >= threshold
                    && self.table.bitvec_history(slot).count_ones() >= self.params.lock_min_resident
                {
                    self.lock_remap(f, bg);
                }
                return Resolution {
                    serviced_from: MemKind::Near,
                    data_addr: self.nm_subblock_addr(f, off),
                    metadata_reads: assoc,
                    way: way as u8,
                    metadata_dirty: bg.ops_len() > bg_start,
                };
            }
            // Row 2: remap match, bit clear → the block's subblock is still
            // at its FM home; swap it in (unless bypassing).
            let data_addr = self.fm_subblock_addr(block, off);
            let mut metadata_dirty = false;
            if !bypassing {
                self.exchange(bg, f, block, off, true, MemKind::Far);
                self.table.set_bit(slot, off);
                metadata_dirty = true;
                if self.params.locking
                    && count >= threshold
                    && self.table.bitvec_history(slot).count_ones() >= self.params.lock_min_resident
                {
                    self.lock_remap(f, bg);
                }
            } else {
                self.bypassed += 1;
                self.last_flags.insert(AccessFlags::BYPASS);
            }
            return Resolution {
                serviced_from: MemKind::Far,
                data_addr,
                metadata_reads: assoc,
                way: way as u8,
                metadata_dirty,
            };
        }

        // Rows 5/6: the block is not interleaved anywhere in its set.
        let data_addr = self.fm_subblock_addr(block, off);
        if bypassing {
            self.bypassed += 1;
            self.last_flags.insert(AccessFlags::BYPASS);
            return Resolution {
                serviced_from: MemKind::Far,
                data_addr,
                metadata_reads: assoc,
                way: 0,
                metadata_dirty: false,
            };
        }

        // Victimize the LRU unlocked way — but protect tenancies that are
        // actively in use (§III-C: the associative structure "protects
        // those pages that are not locked and are actively participating in
        // hardware data migrations from being frequently swapped out"). A
        // single cold touch may not displace a tenant with recent activity.
        // The protection comes with the associative organization; the
        // direct-mapped configuration victimizes unconditionally, as a
        // direct-mapped structure must.
        // Degraded ways (DESIGN.md §10) never accept tenancies; the mask is
        // zero in a healthy run, so this adds one always-false bit test.
        // The scan is mask-select over contiguous per-field arrays (see
        // [`FrameTable::victim`]).
        let Some(way) = self.table.victim(set, self.degraded_ways) else {
            // Every way is locked or actively used: service from FM in
            // place; aging reopens the set as tenants cool.
            self.all_locked_serves += 1;
            self.last_flags.insert(AccessFlags::LOCKED);
            return Resolution {
                serviced_from: MemKind::Far,
                data_addr,
                metadata_reads: assoc,
                way: 0,
                metadata_dirty: false,
            };
        };

        let f = self.frame_id(set, way);
        self.restore_frame(f, bg);

        // Begin the new tenancy. The history key pairs the PC with the
        // block's base address: the paper keys on the first swapped-in
        // subblock's address, whose block bits dominate; keying at block
        // granularity keeps the correlation robust when successive visits
        // enter the block at different offsets.
        let key = pc ^ block.base_addr(self.geom).value();
        let bits = if self.params.history_fetch {
            self.history.lookup(key).unwrap_or(0)
        } else {
            0
        } | (1 << off);
        let now = self.access_count;
        // One call sets the tenant tag (which *is* the probe's tag store),
        // the history key, the fresh activity counter and the LRU touch.
        self.table
            .start_tenancy(self.table.slot_at(set, way), block, key, now);
        let extra_bits = (bits & !(1u64 << off)).count_ones();
        if extra_bits > 0 {
            self.history_bulk_fetches += 1;
            self.history_bulk_bits += u64::from(extra_bits);
            if T::ENABLED {
                self.tracer.record(
                    self.trace_now,
                    Event::HistoryFetch {
                        bits: extra_bits as u8,
                    },
                );
            }
        }
        let mut remaining = bits;
        while remaining != 0 {
            let o = remaining.trailing_zeros();
            remaining &= remaining - 1;
            self.exchange(bg, f, block, o, o == off, MemKind::Far);
            let slot = self.table.slot_at(set, way);
            self.table.set_bit(slot, o);
        }

        Resolution {
            serviced_from: MemKind::Far,
            data_addr,
            metadata_reads: assoc,
            way: way as u8,
            metadata_dirty: true,
        }
    }

    /// The whole access path, generic over the op sinks: the scalar
    /// [`MemoryScheme::access`] drives it with the two `OpList`s of a
    /// (cleared) [`SchemeOutcome`], the batched
    /// [`MemoryScheme::access_batch`] with the flat vectors of a
    /// [`BatchOutcome`] — one body, bit-identical traffic (pinned by the
    /// batch property tests). Returns where the demand was serviced from;
    /// SILC-FM never charges global stall cycles.
    fn access_core<S: OpSink>(
        &mut self,
        access: &Access,
        critical: &mut S,
        background: &mut S,
    ) -> MemKind {
        self.access_count += 1;
        self.maybe_age();
        // Failover (NM unhealthy, DESIGN.md §10) forces bypass-all-FM mode:
        // resident data still hits, but no new migration starts. `false ||`
        // in a healthy run.
        let bypassing = self.failover || self.bypassing();
        // Per-access service-path markers for latency attribution: the
        // request paths below add BYPASS/LOCKED where the corresponding
        // counters increment; DEGRADED marks every access issued while the
        // fault plane has the controller off its healthy configuration.
        self.last_flags = AccessFlags::NONE;
        if self.failover || self.degraded_ways != 0 {
            self.last_flags.insert(AccessFlags::DEGRADED);
        }
        if T::ENABLED && bypassing != self.last_bypassing {
            self.last_bypassing = bypassing;
            self.tracer
                .record(self.trace_now, Event::BypassDecision { engaged: bypassing });
        }

        let block = BlockIndex::containing(access.addr, self.geom);
        let off = SubblockIndex::containing(access.addr, self.geom).offset_in_block(self.geom);
        let pred_key = access.pc ^ block.value();
        let prediction = if self.params.predictor {
            self.predictor.predict(pred_key)
        } else {
            Prediction {
                way: 0,
                in_fm: false,
            }
        };

        // Resolution appends its migration traffic straight into the
        // (cleared) background sink; nothing on this path allocates.
        let is_near_request = self.space.block_is_near(block, self.geom);
        let resolution = if is_near_request {
            self.access_near(block, off, bypassing, background)
        } else {
            self.access_far(block, off, access.pc, bypassing, background)
        };

        // Assemble the critical path. The demand op reads/writes the
        // subblock wherever it currently lives.
        let sb = self.geom.subblock_bytes() as u32;
        let demand = if access.is_write() {
            MemOp::demand_write(resolution.serviced_from, resolution.data_addr, sb)
        } else {
            MemOp::demand_read(resolution.serviced_from, resolution.data_addr, sb)
        };

        // Metadata fetch (§III-F). Three latency regimes:
        //
        // * NM-native requests address a fixed frame, and a correctly
        //   way-predicted set access starts the data fetch at the predicted
        //   way immediately — the 8-byte remap entry arrives from its
        //   dedicated channel before the data burst, so the check is fully
        //   overlapped (the paper: "the saved time is the NM access
        //   latency").
        // * A correct FM location speculation likewise sends the FM request
        //   in parallel with the metadata check.
        // * Only a way misprediction pays the serialized scan of all ways'
        //   remap entries.
        let way_predicted = is_near_request
            || (self.params.predictor && prediction.way == resolution.way)
            || self.params.associativity == 1;
        let metadata_reads = if way_predicted {
            1
        } else {
            resolution.metadata_reads
        };
        let fm_speculated =
            self.params.predictor && prediction.in_fm && resolution.serviced_from == MemKind::Far;
        // Overlapped metadata checks ride behind the demand (background);
        // a mispredicted way pays them serialized on the critical path.
        let meta_list: &mut S = if fm_speculated || way_predicted {
            &mut *background
        } else {
            &mut *critical
        };
        for i in 0..metadata_reads {
            let f = self.frame_id(
                self.set_of(block.value()),
                i.min(self.params.associativity - 1),
            );
            meta_list.push_op(MemOp::metadata_read(
                MemKind::Near,
                self.metadata_addr(f),
                METADATA_BYTES,
            ));
        }
        critical.push_op(demand);
        if resolution.metadata_dirty {
            let f = self.frame_id(self.set_of(block.value()), u32::from(resolution.way));
            background.push_op(MemOp::metadata_write(
                MemKind::Near,
                self.metadata_addr(f),
                METADATA_BYTES,
            ));
        }

        if self.params.predictor {
            if T::ENABLED {
                let correct = prediction.way == resolution.way
                    && prediction.in_fm == (resolution.serviced_from == MemKind::Far);
                self.tracer.record(
                    self.trace_now,
                    if correct {
                        Event::PredictorHit
                    } else {
                        Event::PredictorMiss
                    },
                );
            }
            self.predictor.update(
                pred_key,
                prediction,
                resolution.way,
                resolution.serviced_from == MemKind::Far,
            );
        }
        self.rate.record(resolution.serviced_from == MemKind::Near);
        if resolution.serviced_from == MemKind::Near {
            self.serviced_from_nm += 1;
        }

        resolution.serviced_from
    }
}

impl<T: Tracer> MemoryScheme for SilcFm<T> {
    fn access(&mut self, access: &Access, out: &mut SchemeOutcome) {
        out.clear();
        // Destructure for disjoint borrows of the two op lists.
        let SchemeOutcome {
            critical,
            background,
            serviced_from,
            ..
        } = out;
        *serviced_from = self.access_core(access, critical, background);
        out.flags = self.last_flags;
    }

    /// The batch-native hot path: one virtual dispatch, one outcome-storage
    /// round and one scratch hand-off for the whole batch, with every
    /// access's operations appended to two flat, contiguous vectors. Entry
    /// `i` is byte-identical to what the scalar loop would have produced
    /// (pinned by `tests/properties.rs`); SILC-FM charges no global stalls,
    /// so every entry commits zero stall cycles — exactly like the scalar
    /// path's cleared outcome.
    fn access_batch(&mut self, accesses: &[Access], out: &mut BatchOutcome) {
        out.clear();
        for access in accesses {
            let (critical, background) = out.sinks();
            let from = self.access_core(access, critical, background);
            out.commit(from, self.last_flags, 0);
        }
    }

    fn name(&self) -> &'static str {
        "silcfm"
    }

    fn apply_fault(&mut self, fault: &SchemeFault, out: &mut SchemeOutcome) -> FaultEffect {
        out.clear();
        if T::ENABLED {
            let (kind, target) = match *fault {
                SchemeFault::DegradeWay { way } => (FaultClass::DegradedWay, u32::from(way)),
                SchemeFault::RestoreWay { way } => (FaultClass::RestoredWay, u32::from(way)),
                SchemeFault::BitFlip { frame, .. } => (FaultClass::BitFlip, frame),
                SchemeFault::MetadataParity { frame } => (FaultClass::MetadataParity, frame),
            };
            self.tracer
                .record(self.trace_now, Event::FaultInjected { kind, target });
        }
        let effect = match *fault {
            SchemeFault::DegradeWay { way } => self.degrade_way(way, &mut out.background),
            SchemeFault::RestoreWay { way } => self.repair_way(way),
            SchemeFault::BitFlip {
                frame,
                subblock,
                ecc,
            } => self.bit_flip(frame, subblock, ecc),
            SchemeFault::MetadataParity { frame } => {
                self.metadata_parity(frame, &mut out.background)
            }
        };
        self.faults_injected += 1;
        match effect {
            FaultEffect::Corrected => self.fault_corrected += 1,
            FaultEffect::Recovered => self.fault_recovered += 1,
            FaultEffect::Poisoned => self.fault_poisoned += 1,
            FaultEffect::Masked => self.fault_masked += 1,
        }
        effect
    }

    fn trace_clock(&mut self, cycle: u64) {
        if T::ENABLED {
            self.trace_now = cycle;
        }
    }

    fn drain_trace(&mut self) -> Vec<TraceEvent> {
        self.tracer.drain()
    }

    fn trace_dropped(&self) -> u64 {
        self.tracer.dropped()
    }

    fn trace_counters(&self) -> [u64; silcfm_types::obs::EVENT_KINDS] {
        self.tracer.counters()
    }

    fn stats(&self) -> SchemeStats {
        let mut stats = SchemeStats {
            accesses: self.access_count,
            serviced_from_nm: self.serviced_from_nm,
            subblocks_moved: self.subblock_exchanges,
            blocks_migrated: self.locks,
            details: Vec::new(),
        };
        stats.detail("locks", self.locks as f64);
        stats.detail("unlocks", self.unlocks as f64);
        stats.detail("restores", self.restores as f64);
        stats.detail("bypassed", self.bypassed as f64);
        stats.detail("all_locked_serves", self.all_locked_serves as f64);
        stats.detail("way_accuracy", self.predictor.way_accuracy());
        stats.detail("location_accuracy", self.predictor.location_accuracy());
        stats.detail("history_hit_rate", self.history.hit_rate());
        stats.detail(
            "history_bits_per_fetch",
            if self.history_bulk_fetches == 0 {
                0.0
            } else {
                self.history_bulk_bits as f64 / self.history_bulk_fetches as f64
            },
        );
        stats.detail("faults_injected", self.faults_injected as f64);
        stats.detail("fault_corrected", self.fault_corrected as f64);
        stats.detail("fault_recovered", self.fault_recovered as f64);
        stats.detail("fault_poisoned", self.fault_poisoned as f64);
        stats.detail("fault_masked", self.fault_masked as f64);
        stats.detail("failover_transitions", self.failover_transitions as f64);
        stats.detail("degraded_ways", f64::from(self.degraded_ways.count_ones()));
        stats
    }

    fn reset(&mut self) {
        self.table.reset();
        self.history.reset();
        self.predictor.reset();
        self.rate.reset();
        self.access_count = 0;
        self.next_aging = self.params.aging_period;
        self.serviced_from_nm = 0;
        self.subblock_exchanges = 0;
        self.locks = 0;
        self.unlocks = 0;
        self.restores = 0;
        self.bypassed = 0;
        self.all_locked_serves = 0;
        self.history_bulk_bits = 0;
        self.history_bulk_fetches = 0;
        self.degraded_ways = 0;
        self.failover = false;
        self.faults_injected = 0;
        self.fault_corrected = 0;
        self.fault_recovered = 0;
        self.fault_poisoned = 0;
        self.fault_masked = 0;
        self.failover_transitions = 0;
        self.trace_now = 0;
        self.last_bypassing = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silcfm_types::CoreId;

    const NM_BLOCKS: u64 = 64;
    const FM_BLOCKS: u64 = 256;

    fn space() -> AddressSpace {
        AddressSpace::new(NM_BLOCKS * 2048, FM_BLOCKS * 2048)
    }

    fn scheme(params: SilcFmParams) -> SilcFm {
        SilcFm::new(space(), Geometry::paper(), params)
    }

    fn fm_addr(block: u64, off: u64) -> PhysAddr {
        PhysAddr::new(block * 2048 + off * 64)
    }

    fn read(s: &mut SilcFm, addr: PhysAddr) -> SchemeOutcome {
        s.access_fresh(&Access::read(addr, 0x400, CoreId::new(0)))
    }

    fn read_pc(s: &mut SilcFm, addr: PhysAddr, pc: u64) -> SchemeOutcome {
        s.access_fresh(&Access::read(addr, pc, CoreId::new(0)))
    }

    // ---- Table I row coverage ---------------------------------------------

    #[test]
    fn row4_native_subblock_serviced_from_nm() {
        let mut s = scheme(SilcFmParams::swap_only());
        let out = read(&mut s, PhysAddr::new(5 * 2048));
        assert_eq!(out.serviced_from, MemKind::Near);
        // The (overlapped) metadata verify is the only other traffic.
        assert!(out
            .background
            .iter()
            .all(|op| op.class == silcfm_types::TrafficClass::Metadata));
        assert_eq!(out.critical.len(), 1, "data fetch only");
    }

    #[test]
    fn rows5_6_first_fm_touch_interleaves() {
        let mut s = scheme(SilcFmParams::swap_only());
        let block = NM_BLOCKS + 1; // maps to set/frame 1 (direct-mapped, 64 sets)
        let out = read(&mut s, fm_addr(block, 3));
        assert_eq!(out.serviced_from, MemKind::Far);
        // Exchange traffic: the NM victim subblock moves out, remap updates.
        assert!(!out.background.is_empty());
        let f = s.frame(block % NM_BLOCKS);
        assert_eq!(f.remap, Some(BlockIndex::new(block)));
        assert!(f.bit(3));
    }

    #[test]
    fn row1_second_touch_is_an_nm_hit() {
        let mut s = scheme(SilcFmParams::swap_only());
        let block = NM_BLOCKS + 1;
        let _ = read(&mut s, fm_addr(block, 3));
        let out = read(&mut s, fm_addr(block, 3));
        assert_eq!(out.serviced_from, MemKind::Near);
        assert_eq!(s.stats().serviced_from_nm, 1);
    }

    #[test]
    fn row2_same_block_new_subblock_swaps_in() {
        let mut s = scheme(SilcFmParams::swap_only());
        let block = NM_BLOCKS + 1;
        let _ = read(&mut s, fm_addr(block, 3));
        let out = read(&mut s, fm_addr(block, 9));
        assert_eq!(out.serviced_from, MemKind::Far, "first touch of subblock 9");
        assert!(s.frame(block % NM_BLOCKS).bit(9));
        let out = read(&mut s, fm_addr(block, 9));
        assert_eq!(out.serviced_from, MemKind::Near);
    }

    #[test]
    fn row3_native_subblock_swapped_out_comes_back() {
        let mut s = scheme(SilcFmParams::swap_only());
        let block = NM_BLOCKS + 1;
        let frame = block % NM_BLOCKS; // frame 1
        let _ = read(&mut s, fm_addr(block, 3));
        assert!(s.frame(frame).bit(3));
        // The native block's subblock 3 now lives at the tenant's FM home.
        let out = read(&mut s, PhysAddr::new(frame * 2048 + 3 * 64));
        assert_eq!(out.serviced_from, MemKind::Far);
        assert_eq!(
            out.critical.last().unwrap().addr,
            fm_addr(block, 3),
            "data comes from the tenant's FM location"
        );
        // Swapped back: the bit is cleared and the next native touch hits NM.
        assert!(!s.frame(frame).bit(3));
        let out = read(&mut s, PhysAddr::new(frame * 2048 + 3 * 64));
        assert_eq!(out.serviced_from, MemKind::Near);
    }

    #[test]
    fn rows5_6_conflicting_block_restores_previous_tenant() {
        let mut s = scheme(SilcFmParams::swap_only());
        let a = NM_BLOCKS + 1;
        let b = a + NM_BLOCKS; // same set (direct-mapped)
        let _ = read(&mut s, fm_addr(a, 3));
        let out = read(&mut s, fm_addr(b, 4));
        assert_eq!(out.serviced_from, MemKind::Far);
        let f = s.frame(a % NM_BLOCKS);
        assert_eq!(f.remap, Some(BlockIndex::new(b)), "b evicted a");
        assert!(!f.bit(3));
        assert!(f.bit(4));
        // a's subblock went home: touching it is an FM access again (rows 5/6).
        let out = read(&mut s, fm_addr(a, 3));
        assert_eq!(out.serviced_from, MemKind::Far);
    }

    // ---- associativity -----------------------------------------------------

    #[test]
    fn associativity_avoids_conflict_restores() {
        let mut s = scheme(SilcFmParams::with_associativity());
        // 64 frames / 4 ways = 16 sets. These two blocks share set 1.
        let a = NM_BLOCKS + 1;
        let b = a + s.sets();
        let _ = read(&mut s, fm_addr(a, 3));
        let _ = read(&mut s, fm_addr(b, 4));
        // Both resident simultaneously.
        assert_eq!(read(&mut s, fm_addr(a, 3)).serviced_from, MemKind::Near);
        assert_eq!(read(&mut s, fm_addr(b, 4)).serviced_from, MemKind::Near);
    }

    #[test]
    fn lru_victimizes_the_coldest_way() {
        let mut s = scheme(SilcFmParams::with_associativity());
        let sets = s.sets();
        let blocks: Vec<u64> = (0..5).map(|i| NM_BLOCKS + 16 + 1 + i * sets).collect();
        // Fill all 4 ways of the set, touching block 0 again to refresh it.
        for &b in &blocks[..4] {
            let _ = read(&mut s, fm_addr(b, 0));
        }
        let _ = read(&mut s, fm_addr(blocks[0], 0)); // refresh LRU of block 0
        let _ = read(&mut s, fm_addr(blocks[4], 0)); // evicts blocks[1]
        assert_eq!(
            read(&mut s, fm_addr(blocks[0], 0)).serviced_from,
            MemKind::Near
        );
        assert_eq!(
            read(&mut s, fm_addr(blocks[1], 0)).serviced_from,
            MemKind::Far,
            "blocks[1] was the LRU victim"
        );
    }

    // ---- history-guided bulk fetch ------------------------------------------

    #[test]
    fn history_replays_the_previous_tenancy_pattern() {
        let mut p = SilcFmParams::swap_only();
        p.history_fetch = true;
        let mut s = scheme(p);
        let a = NM_BLOCKS + 1;
        let b = a + NM_BLOCKS;
        let pc = 0x400;
        // First tenancy of a: touch subblocks 3, 4, 5 (first touch has pc-keyed history).
        let _ = read_pc(&mut s, fm_addr(a, 3), pc);
        let _ = read_pc(&mut s, fm_addr(a, 4), pc);
        let _ = read_pc(&mut s, fm_addr(a, 5), pc);
        // Evict a, then bring it back with the same pc and first subblock.
        let _ = read_pc(&mut s, fm_addr(b, 0), pc);
        let _ = read_pc(&mut s, fm_addr(a, 3), pc);
        let f = s.frame(a % NM_BLOCKS);
        assert!(
            f.bit(3) && f.bit(4) && f.bit(5),
            "history bulk-fetched 4 and 5"
        );
        // Subblocks 4 and 5 are NM hits without individual misses.
        assert_eq!(
            read_pc(&mut s, fm_addr(a, 4), pc).serviced_from,
            MemKind::Near
        );
        assert_eq!(
            read_pc(&mut s, fm_addr(a, 5), pc).serviced_from,
            MemKind::Near
        );
    }

    #[test]
    fn history_disabled_fetches_only_the_demand_subblock() {
        let mut with_history = SilcFmParams::swap_only(); // history on
        with_history.aging_period = 4;
        let mut s = scheme(with_history);
        let mut p = SilcFmParams::swap_only();
        p.history_fetch = false;
        p.aging_period = 4;
        let mut s2 = scheme(p);
        let a = NM_BLOCKS + 1;
        let b = a + NM_BLOCKS;
        for s in [&mut s, &mut s2] {
            let _ = read(s, fm_addr(a, 3));
            let _ = read(s, fm_addr(a, 4));
            // Let a's activity counter age to zero so it loses its
            // tenancy protection, then evict it with b.
            for i in 0..12 {
                let _ = read(s, PhysAddr::new((i % 4) * 2048));
            }
            let _ = read(s, fm_addr(b, 0));
            let _ = read(s, fm_addr(a, 3));
        }
        assert!(s.frame(a % NM_BLOCKS).bit(4), "history replays subblock 4");
        assert!(!s2.frame(a % NM_BLOCKS).bit(4), "no history, no replay");
    }

    // ---- locking -------------------------------------------------------------

    #[test]
    fn hot_fm_block_gets_locked_and_fully_resident() {
        let mut p = SilcFmParams::with_locking();
        p.lock_threshold = 5;
        p.lock_min_resident = 1;
        let mut s = scheme(p);
        let block = NM_BLOCKS + 1;
        for i in 0..6 {
            let _ = read(&mut s, fm_addr(block, i % 4));
        }
        let f = s.frame(block % NM_BLOCKS);
        assert_eq!(f.lock, LockState::LockedRemap);
        assert_eq!(f.bitvec, Geometry::paper().full_mask());
        assert_eq!(s.stats().blocks_migrated, 1);
        // Every subblock of the locked block is an NM hit now.
        assert_eq!(
            read(&mut s, fm_addr(block, 31)).serviced_from,
            MemKind::Near
        );
    }

    #[test]
    fn locked_frame_resists_conflicting_blocks() {
        let mut p = SilcFmParams::with_locking();
        p.lock_threshold = 5;
        p.lock_min_resident = 1;
        let mut s = scheme(p);
        let a = NM_BLOCKS + 1;
        let b = a + NM_BLOCKS; // direct-mapped conflict
        for i in 0..6 {
            let _ = read(&mut s, fm_addr(a, i % 4));
        }
        // b maps to the same (locked) frame: serviced from FM, no eviction.
        let out = read(&mut s, fm_addr(b, 0));
        assert_eq!(out.serviced_from, MemKind::Far);
        assert_eq!(s.frame(a % NM_BLOCKS).remap, Some(BlockIndex::new(a)));
        // a is still locked-resident.
        assert_eq!(read(&mut s, fm_addr(a, 9)).serviced_from, MemKind::Near);
    }

    #[test]
    fn native_request_to_locked_remap_frame_is_serviced_from_fm() {
        let mut p = SilcFmParams::with_locking();
        p.lock_threshold = 3;
        p.lock_min_resident = 1;
        let mut s = scheme(p);
        let block = NM_BLOCKS + 2;
        let frame = block % NM_BLOCKS;
        for i in 0..4 {
            let _ = read(&mut s, fm_addr(block, i));
        }
        assert_eq!(s.frame(frame).lock, LockState::LockedRemap);
        // The native block's data now lives wholesale at the tenant's home.
        let out = read(&mut s, PhysAddr::new(frame * 2048));
        assert_eq!(out.serviced_from, MemKind::Far);
        assert_eq!(out.critical.last().unwrap().addr, fm_addr(block, 0));
    }

    #[test]
    fn hot_native_block_gets_locked() {
        let mut p = SilcFmParams::with_locking();
        p.lock_threshold = 5;
        let mut s = scheme(p);
        let block = NM_BLOCKS + 3;
        let frame = block % NM_BLOCKS;
        // Interleave a tenant subblock first.
        let _ = read(&mut s, fm_addr(block, 7));
        assert!(s.frame(frame).bit(7));
        // Hammer the native block until it locks.
        for i in 0..6 {
            let _ = read(&mut s, PhysAddr::new(frame * 2048 + (i % 4) * 64));
        }
        let f = s.frame(frame);
        assert_eq!(f.lock, LockState::LockedNative);
        assert_eq!(f.bitvec, 0, "locking natively restores the frame");
        assert_eq!(f.remap, None);
    }

    #[test]
    fn aging_unlocks_cold_blocks() {
        let mut p = SilcFmParams::with_locking();
        p.lock_threshold = 5;
        p.lock_min_resident = 1;
        p.aging_period = 100;
        let mut s = scheme(p);
        let block = NM_BLOCKS + 1;
        for i in 0..6 {
            let _ = read(&mut s, fm_addr(block, i % 4));
        }
        assert_eq!(s.frame(block % NM_BLOCKS).lock, LockState::LockedRemap);
        // Touch other blocks until several agings halve the counter below 5.
        for i in 0..400u64 {
            let _ = read(&mut s, PhysAddr::new((i % NM_BLOCKS) * 2048));
        }
        assert_eq!(s.frame(block % NM_BLOCKS).lock, LockState::Unlocked);
        // Unlocking keeps the bits set: the tenant still hits in NM.
        assert_eq!(read(&mut s, fm_addr(block, 9)).serviced_from, MemKind::Near);
        let stats = s.stats();
        let unlocks = stats
            .details
            .iter()
            .find(|(n, _)| *n == "unlocks")
            .unwrap()
            .1;
        assert!(unlocks >= 1.0);
    }

    #[test]
    fn interleave_to_lock_promotion_crosses_threshold_exactly() {
        // Table I → §III-C: an FM block first interleaves subblock by
        // subblock (Unlocked, partial bit vector) and is promoted to
        // LockedRemap on the access that carries its activity counter to
        // the threshold — not before.
        let mut p = SilcFmParams::with_locking();
        p.lock_threshold = 5;
        p.lock_min_resident = 1;
        let mut s = scheme(p);
        let block = NM_BLOCKS + 1;
        let frame = block % NM_BLOCKS;

        // First touch: interleaved, unlocked, exactly one bit set.
        let _ = read(&mut s, fm_addr(block, 0));
        assert_eq!(s.frame(frame).lock, LockState::Unlocked);
        assert_eq!(s.frame(frame).bitvec.count_ones(), 1);

        // Accesses 2..=4 keep it below threshold: still interleaving.
        for i in 1..4 {
            let _ = read(&mut s, fm_addr(block, i % 4));
            assert_eq!(s.frame(frame).lock, LockState::Unlocked, "access {}", i + 1);
            assert!(s.frame(frame).bitvec != Geometry::paper().full_mask());
        }
        assert_eq!(s.stats().blocks_migrated, 0, "no lock fetch yet");

        // The 5th access crosses lock_threshold: promotion completes the
        // exchange and the whole block becomes resident.
        let _ = read(&mut s, fm_addr(block, 0));
        let f = s.frame(frame);
        assert_eq!(f.lock, LockState::LockedRemap);
        assert_eq!(f.bitvec, Geometry::paper().full_mask());
        assert_eq!(s.stats().blocks_migrated, 1);
    }

    #[test]
    fn bypass_suppresses_lock_fetches() {
        // §III-E: when the access-rate estimator says NM is already
        // saturated, crossing the lock threshold must NOT trigger the
        // lock's bulk fetch — bypassing suppresses all migration,
        // including promotions.
        let mut p = SilcFmParams::paper();
        p.bypass_window = 100;
        p.lock_threshold = 5;
        p.lock_min_resident = 1;
        let mut s = scheme(p);
        let block = NM_BLOCKS + 1; // frame 1 under direct mapping

        // Interleave one subblock while bypassing is still disengaged.
        let _ = read(&mut s, fm_addr(block, 0));
        assert!(!s.bypassing());

        // Saturate the estimator with native NM hits on other frames.
        for i in 0..200u64 {
            let _ = read(&mut s, PhysAddr::new((8 + i % 8) * 2048));
        }
        assert!(s.bypassing(), "rate = {}", s.access_rate_estimate());
        let locks_before = s.stats().blocks_migrated;

        // Hammer the interleaved block far past the lock threshold.
        for _ in 0..10 {
            let out = read(&mut s, fm_addr(block, 0));
            assert_eq!(out.serviced_from, MemKind::Near, "row 1 still hits");
            assert!(
                out.background
                    .iter()
                    .all(|op| op.class != silcfm_types::TrafficClass::Migration),
                "bypassing emits no migration traffic"
            );
        }
        let f = s.frame(block % NM_BLOCKS);
        assert_eq!(f.lock, LockState::Unlocked, "no promotion under bypass");
        assert_ne!(f.bitvec, Geometry::paper().full_mask(), "no bulk fetch");
        assert_eq!(s.stats().blocks_migrated, locks_before);
    }

    #[test]
    fn aging_counter_decays_on_epoch_boundaries() {
        // §III-C: activity counters halve on every aging epoch. Build a
        // counter up to 4, then watch it decay 4 → 2 → 1 with the two
        // halvings exactly one aging period apart.
        let mut p = SilcFmParams::with_locking();
        p.lock_threshold = 60; // out of reach: isolate aging from locking
        p.aging_period = 32;
        let mut s = scheme(p);
        let block = NM_BLOCKS + 1;
        let frame = block % NM_BLOCKS;

        for i in 0..4 {
            let _ = read(&mut s, fm_addr(block, i));
        }
        assert_eq!(s.frame(frame).fm_counter, 4);

        // Filler accesses to unrelated native frames; record the access
        // numbers at which the tenant's counter changes.
        let mut changes = Vec::new();
        let mut last = s.frame(frame).fm_counter;
        for i in 0..80u64 {
            let _ = read(&mut s, PhysAddr::new((8 + i % 8) * 2048));
            let now = s.frame(frame).fm_counter;
            if now != last {
                changes.push((i, now));
                last = now;
            }
        }
        let values: Vec<u8> = changes.iter().map(|&(_, v)| v).collect();
        assert_eq!(values, [2, 1], "counter halves 4 -> 2 -> 1");
        assert_eq!(
            changes[1].0 - changes[0].0,
            p.aging_period,
            "halvings are one aging period apart"
        );
    }

    // ---- bypassing -------------------------------------------------------------

    #[test]
    fn bypass_engages_above_target_rate() {
        let mut p = SilcFmParams::paper();
        p.bypass_window = 100;
        p.locking = false;
        let mut s = scheme(p);
        // Drive NM-native hits until the estimator exceeds 0.8.
        for i in 0..200u64 {
            let _ = read(&mut s, PhysAddr::new((i % 8) * 2048));
        }
        assert!(s.bypassing(), "rate = {}", s.access_rate_estimate());
        // Now an FM access is serviced from FM with no swap.
        let block = NM_BLOCKS + 9;
        let out = read(&mut s, fm_addr(block, 0));
        assert_eq!(out.serviced_from, MemKind::Far);
        assert!(out
            .background
            .iter()
            .all(|op| op.class != silcfm_types::TrafficClass::Migration));
        assert_eq!(s.frame(block % NM_BLOCKS).remap, None, "no tenancy started");
    }

    #[test]
    fn bypass_disengages_when_rate_drops() {
        let mut p = SilcFmParams::paper();
        p.bypass_window = 50;
        let mut s = scheme(p);
        for i in 0..100u64 {
            let _ = read(&mut s, PhysAddr::new((i % 8) * 2048));
        }
        assert!(s.bypassing());
        // A burst of distinct FM accesses drags the rate down.
        for i in 0..300u64 {
            let _ = read(&mut s, fm_addr(NM_BLOCKS + (i % 200), 0));
        }
        assert!(!s.bypassing(), "rate = {}", s.access_rate_estimate());
    }

    #[test]
    fn bypass_disabled_never_engages() {
        let mut s = scheme(SilcFmParams::with_associativity());
        for i in 0..200u64 {
            let _ = read(&mut s, PhysAddr::new((i % 8) * 2048));
        }
        assert!(!s.bypassing());
    }

    // ---- predictor ---------------------------------------------------------------

    #[test]
    fn correct_fm_speculation_moves_metadata_off_critical_path() {
        let mut s = scheme(SilcFmParams::paper());
        let block = NM_BLOCKS + 1;
        // Train: repeated row-2 style FM touches with the same pc.
        let _ = read_pc(&mut s, fm_addr(block, 0), 0x40);
        let _ = read_pc(&mut s, fm_addr(block, 1), 0x40);
        // Predictor now says (way 0, FM). Next new-subblock access: the
        // critical path is just the FM demand read.
        let out = read_pc(&mut s, fm_addr(block, 2), 0x40);
        assert_eq!(out.serviced_from, MemKind::Far);
        assert_eq!(out.critical.len(), 1);
        assert_eq!(out.critical[0].mem, MemKind::Far);
    }

    #[test]
    fn predicted_nm_hit_overlaps_metadata_check() {
        let mut s = scheme(SilcFmParams::paper());
        let block = NM_BLOCKS + 1;
        let _ = read_pc(&mut s, fm_addr(block, 0), 0x40);
        let _ = read_pc(&mut s, fm_addr(block, 0), 0x40); // NM hit, trains way
        let out = read_pc(&mut s, fm_addr(block, 0), 0x40);
        assert_eq!(out.serviced_from, MemKind::Near);
        // A correctly way-predicted hit starts the data access immediately;
        // the remap verify proceeds in parallel from its dedicated channel.
        assert_eq!(out.critical.len(), 1);
        assert_eq!(out.critical[0].mem, MemKind::Near);
        assert!(out
            .background
            .iter()
            .any(|op| op.class == silcfm_types::TrafficClass::Metadata));
    }

    #[test]
    fn mispredicted_way_pays_serialized_metadata_reads() {
        let mut p = SilcFmParams::with_associativity();
        p.predictor = true;
        let mut s = scheme(p);
        let sets = s.sets();
        let a = NM_BLOCKS + 1;
        let b = a + sets;
        // Interleave b into way 1 (way 0 taken by a).
        let _ = read_pc(&mut s, fm_addr(a, 0), 0x40);
        let _ = read_pc(&mut s, fm_addr(b, 0), 0x44);
        let _ = read_pc(&mut s, fm_addr(b, 0), 0x44); // trains way 1 for pc 0x44
                                                      // A *different* pc that predicts way 0 touches b: 4 serialized reads.
        let out = read_pc(&mut s, fm_addr(b, 0), 0x99);
        let meta_reads = out
            .critical
            .iter()
            .filter(|op| op.class == silcfm_types::TrafficClass::Metadata)
            .count();
        assert_eq!(meta_reads, 4, "mispredicted way scans the whole set");
    }

    // ---- conservation / invariants ------------------------------------------------

    #[test]
    fn swap_traffic_is_balanced() {
        // Every exchange moves equal bytes in and out of each memory.
        let mut s = scheme(SilcFmParams::paper());
        let mut rd_nm = 0u64;
        let mut wr_nm = 0u64;
        let mut rd_fm = 0u64;
        let mut wr_fm = 0u64;
        for i in 0..500u64 {
            let out = read(
                &mut s,
                fm_addr(NM_BLOCKS + (i * 7) % FM_BLOCKS.min(200), i % 32),
            );
            for op in out
                .background
                .iter()
                .filter(|o| o.class == silcfm_types::TrafficClass::Migration)
            {
                match (op.mem, op.kind.is_write()) {
                    (MemKind::Near, false) => rd_nm += u64::from(op.bytes),
                    (MemKind::Near, true) => wr_nm += u64::from(op.bytes),
                    (MemKind::Far, false) => rd_fm += u64::from(op.bytes),
                    (MemKind::Far, true) => wr_fm += u64::from(op.bytes),
                }
            }
        }
        // What leaves NM enters FM and vice versa. Demand-covered fetches
        // mean FM reads are undercounted by exactly the demand reads, so
        // compare writes (every exchanged subblock is written somewhere).
        assert_eq!(wr_nm + wr_fm, 2 * s.stats().subblocks_moved * 64);
        assert!(rd_nm <= wr_fm, "NM data read out lands in FM");
        let _ = rd_fm;
    }

    #[test]
    fn set_probe_agrees_with_frame_metadata() {
        // The probe runs on the SoA tag array; the assembled per-frame view
        // must agree with it exactly. Drive a workload that exercises
        // tenancy creation, eviction, restores, locking and aging, then
        // check every tenancy is found by the probe at its own way, every
        // tenant sits in its home congruence set, and no set holds the same
        // tenant twice.
        for params in [
            SilcFmParams::swap_only(),
            SilcFmParams::with_associativity(),
            SilcFmParams::paper(),
        ] {
            let mut s = scheme(params);
            for i in 0..3000u64 {
                let addr = if i % 3 == 0 {
                    PhysAddr::new((i * 11 % NM_BLOCKS) * 2048 + (i % 32) * 64)
                } else {
                    fm_addr(NM_BLOCKS + (i * 7) % FM_BLOCKS, i % 32)
                };
                let _ = read_pc(&mut s, addr, 0x40 + i % 5);
            }
            let sets = s.sets();
            let mut tenants = silcfm_types::FxHashSet::default();
            let mut any = false;
            for f in 0..NM_BLOCKS {
                let set = f % sets;
                let way = (f / sets) as u32;
                if let Some(b) = s.frame(f).remap {
                    any = true;
                    assert_eq!(b.value() % sets, set, "tenant outside its set");
                    assert!(tenants.insert(b.value()), "tenant {b:?} held twice");
                    assert_eq!(
                        s.table.probe(set, b.value() + 1),
                        Some(way),
                        "frame {f}: probe diverged from metadata"
                    );
                }
            }
            assert!(any, "workload should have created tenancies");
            s.reset();
            for f in 0..NM_BLOCKS {
                assert_eq!(s.frame(f).remap, None, "reset clears tenancies");
            }
        }
    }

    #[test]
    fn stats_and_reset_round_trip() {
        let mut s = scheme(SilcFmParams::paper());
        let _ = read(&mut s, fm_addr(NM_BLOCKS + 1, 0));
        let st = s.stats();
        assert_eq!(st.accesses, 1);
        assert!(st.details.iter().any(|(n, _)| *n == "locks"));
        s.reset();
        assert_eq!(s.stats().accesses, 0);
        assert_eq!(s.frame(1).remap, None);
        assert_eq!(s.name(), "silcfm");
    }

    #[test]
    #[should_panic(expected = "invalid SILC-FM parameters")]
    fn invalid_params_panic() {
        let mut p = SilcFmParams::paper();
        p.associativity = 3;
        let _ = scheme(p);
    }

    #[test]
    fn try_constructors_return_typed_errors() {
        let mut p = SilcFmParams::paper();
        p.associativity = 3;
        let e = SilcFm::try_new(space(), Geometry::paper(), p).unwrap_err();
        assert!(matches!(e, SilcFmError::Params { .. }));
        assert!(SilcFm::try_new(space(), Geometry::paper(), SilcFmParams::paper()).is_ok());
        // Geometry that cannot form one full set.
        let tiny = AddressSpace::new(2 * 2048, 16 * 2048);
        let e = SilcFm::try_new(tiny, Geometry::paper(), SilcFmParams::paper()).unwrap_err();
        assert!(e.to_string().contains("full set"));
    }

    // ---- fault plane ---------------------------------------------------------

    fn inject(s: &mut SilcFm, fault: SchemeFault) -> (FaultEffect, SchemeOutcome) {
        let mut out = SchemeOutcome::empty();
        let e = s.apply_fault(&fault, &mut out);
        (e, out)
    }

    #[test]
    fn degraded_way_evacuates_tenants_and_stops_accepting() {
        let mut s = scheme(SilcFmParams::with_associativity());
        let sets = s.sets(); // 16
        let a = NM_BLOCKS + 1; // set 1
        let _ = read(&mut s, fm_addr(a, 3));
        assert_eq!(s.frame(1).remap, Some(BlockIndex::new(a)), "tenants way 0");

        let (effect, out) = inject(&mut s, SchemeFault::DegradeWay { way: 0 });
        assert_eq!(effect, FaultEffect::Recovered, "tenant data was evacuated");
        assert!(
            !out.background.is_empty(),
            "evacuation emits swap-back traffic"
        );
        assert_eq!(s.frame(1).remap, None);
        assert_eq!(s.degraded_way_count(), 1);

        // The same block interleaves again — into a healthy way, not way 0.
        let _ = read(&mut s, fm_addr(a, 3));
        assert_eq!(s.frame(1).remap, None, "degraded way stays tenant-free");
        assert_eq!(s.frame(1 + sets).remap, Some(BlockIndex::new(a)));

        // Degrading the same way again is absorbed without data movement.
        let (effect, out) = inject(&mut s, SchemeFault::DegradeWay { way: 0 });
        assert_eq!(effect, FaultEffect::Corrected);
        assert!(out.background.is_empty());
        // Out-of-range ways have no modeled target.
        let (effect, _) = inject(&mut s, SchemeFault::DegradeWay { way: 9 });
        assert_eq!(effect, FaultEffect::Masked);
    }

    #[test]
    fn failover_engages_and_disengages_with_hysteresis() {
        let mut s = scheme(SilcFmParams::with_associativity()); // 4-way
        let (_, _) = inject(&mut s, SchemeFault::DegradeWay { way: 0 });
        assert!(!s.failover_engaged(), "1 of 4 degraded: below threshold");
        let (_, _) = inject(&mut s, SchemeFault::DegradeWay { way: 1 });
        assert!(s.failover_engaged(), "2 of 4 degraded: engage");

        // Failover behaves as bypass-all: a new FM block starts no tenancy.
        let b = NM_BLOCKS + 2;
        let out = read(&mut s, fm_addr(b, 0));
        assert_eq!(out.serviced_from, MemKind::Far);
        for way in 0..4u64 {
            assert_eq!(s.frame(2 + way * s.sets()).remap, None);
        }

        // Repairing one way leaves 1 degraded <= assoc/4: disengage.
        let (effect, _) = inject(&mut s, SchemeFault::RestoreWay { way: 0 });
        assert_eq!(effect, FaultEffect::Corrected);
        assert!(!s.failover_engaged(), "hysteresis lower bound reached");
        // Tenancies resume.
        let _ = read(&mut s, fm_addr(b, 0));
        assert!((0..4u64).any(|w| s.frame(2 + w * s.sets()).remap.is_some()));
        // Repairing a healthy way is a no-op fault.
        let (effect, _) = inject(&mut s, SchemeFault::RestoreWay { way: 0 });
        assert_eq!(effect, FaultEffect::Masked);
    }

    #[test]
    fn metadata_parity_recovers_empty_entries_and_poisons_resident_ones() {
        let mut s = scheme(SilcFmParams::swap_only());
        // Frame 5 has no tenant: the scrub rewrites the entry, no loss.
        let (effect, out) = inject(&mut s, SchemeFault::MetadataParity { frame: 5 });
        assert_eq!(effect, FaultEffect::Corrected);
        assert!(out.background.is_empty());

        // Tenant with zero resident subblocks: invalidate, FM home intact.
        // (Interleave then swap the lone subblock back out via a native
        // row-3 touch, leaving remap set with an empty bit vector.)
        let a = NM_BLOCKS + 7;
        let frame = a % NM_BLOCKS;
        let _ = read(&mut s, fm_addr(a, 2));
        let _ = read(&mut s, PhysAddr::new(frame * 2048 + 2 * 64)); // swap back
        assert_eq!(s.frame(frame).remap, Some(BlockIndex::new(a)));
        assert_eq!(s.frame(frame).bitvec, 0);
        let (effect, out) = inject(
            &mut s,
            SchemeFault::MetadataParity {
                frame: frame as u32,
            },
        );
        assert_eq!(effect, FaultEffect::Recovered);
        assert_eq!(s.frame(frame).remap, None, "entry invalidated");
        assert!(
            out.background
                .iter()
                .any(|op| op.class == silcfm_types::TrafficClass::Metadata),
            "entry rewrite scheduled"
        );

        // Resident subblocks: the exchange mapping is the only record of
        // where the data lives — poison.
        let b = NM_BLOCKS + 9;
        let frame_b = b % NM_BLOCKS;
        let _ = read(&mut s, fm_addr(b, 4));
        assert!(s.frame(frame_b).bit(4));
        let (effect, _) = inject(
            &mut s,
            SchemeFault::MetadataParity {
                frame: frame_b as u32,
            },
        );
        assert_eq!(effect, FaultEffect::Poisoned);
        assert_eq!(s.frame(frame_b).remap, None);
        let details = s.stats().details;
        let get = |k: &str| details.iter().find(|(n, _)| *n == k).unwrap().1;
        assert_eq!(get("fault_poisoned"), 1.0);
        assert_eq!(get("faults_injected"), 3.0);
    }

    #[test]
    fn bit_flip_outcomes_follow_the_pre_drawn_ecc_result() {
        let mut s = scheme(SilcFmParams::swap_only());
        let flip = |ecc| SchemeFault::BitFlip {
            frame: 3,
            subblock: 1,
            ecc,
        };
        assert_eq!(
            inject(&mut s, flip(EccOutcome::Corrected)).0,
            FaultEffect::Corrected
        );
        assert_eq!(
            inject(&mut s, flip(EccOutcome::Undetected)).0,
            FaultEffect::Masked,
            "silent corruption is counted but invisible"
        );
        assert_eq!(
            inject(&mut s, flip(EccOutcome::DetectedUncorrectable)).0,
            FaultEffect::Poisoned,
            "DUE always poisons: the flat organization has one copy"
        );
        let details = s.stats().details;
        let get = |k: &str| details.iter().find(|(n, _)| *n == k).unwrap().1;
        assert_eq!(get("faults_injected"), 3.0);
        assert_eq!(
            get("fault_corrected")
                + get("fault_recovered")
                + get("fault_poisoned")
                + get("fault_masked"),
            3.0,
            "every injected fault has exactly one accounted effect"
        );
        s.reset();
        let details = s.stats().details;
        assert_eq!(
            details
                .iter()
                .find(|(n, _)| *n == "faults_injected")
                .unwrap()
                .1,
            0.0
        );
    }

    #[test]
    fn remap_mirror_survives_fault_recovery() {
        let mut s = scheme(SilcFmParams::with_associativity());
        for i in 0..800u64 {
            let addr = fm_addr(NM_BLOCKS + (i * 7) % FM_BLOCKS, i % 32);
            let _ = read_pc(&mut s, addr, 0x40 + i % 5);
            match i % 97 {
                13 => {
                    let _ = inject(&mut s, SchemeFault::DegradeWay { way: (i % 4) as u8 });
                }
                41 => {
                    let _ = inject(&mut s, SchemeFault::RestoreWay { way: (i % 4) as u8 });
                }
                71 => {
                    let _ = inject(
                        &mut s,
                        SchemeFault::MetadataParity {
                            frame: (i % NM_BLOCKS) as u32,
                        },
                    );
                }
                _ => {}
            }
        }
        for f in 0..NM_BLOCKS {
            let set = f % s.sets();
            let way = (f / s.sets()) as u32;
            let meta = s.frame(f);
            match meta.remap {
                Some(b) => {
                    assert_eq!(
                        s.table.probe(set, b.value() + 1),
                        Some(way),
                        "frame {f}: probe diverged from metadata"
                    );
                    assert!(
                        s.degraded_ways & (1 << way) == 0,
                        "frame {f}: tenant in a degraded way"
                    );
                }
                None => {
                    assert_eq!(meta.history_key, 0, "frame {f}: stale tenancy state");
                    assert_eq!(meta.bitvec, 0, "frame {f}: resident bits with no tenant");
                }
            }
        }
    }
}
