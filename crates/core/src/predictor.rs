//! The way + location predictor (§III-F).
//!
//! Fetching the remap entries of a 4-way set from NM is serialized, adding
//! latency to every access. A small PC⊕address-indexed table remembers the
//! way last used for each index so only one remap entry need be fetched on a
//! correct prediction, and an extra bit speculates whether the data lives in
//! NM or FM: on an FM speculation the request is forwarded to FM in parallel
//! with the NM metadata check, hiding the NM access entirely when correct.

/// One prediction: which way the data's frame is in, and whether the demand
/// data will come from FM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted way within the congruence set.
    pub way: u8,
    /// Speculated location: `true` = far memory.
    pub in_fm: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    way: u8,
    in_fm: bool,
}

/// A direct-mapped way/location predictor.
#[derive(Debug, Clone)]
pub struct WayPredictor {
    entries: Vec<Entry>,
    mask: usize,
    way_correct: u64,
    way_total: u64,
    loc_correct: u64,
    loc_total: u64,
}

impl WayPredictor {
    /// Creates a predictor with `entries` slots (rounded up to a power of
    /// two; the paper uses 4 K).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "predictor must have at least one entry");
        let n = entries.next_power_of_two();
        Self {
            entries: vec![Entry::default(); n],
            mask: n - 1,
            way_correct: 0,
            way_total: 0,
            loc_correct: 0,
            loc_total: 0,
        }
    }

    /// Predicts for the access identified by `key` (PC ⊕ block address).
    pub fn predict(&self, key: u64) -> Prediction {
        // silcfm-lint: allow(P1) -- index() masks the hash into the power-of-two table
        let e = self.entries[self.index(key)];
        Prediction {
            way: e.way,
            in_fm: e.in_fm,
        }
    }

    /// Trains the predictor with the resolved way and location, and records
    /// accuracy against the earlier prediction.
    pub fn update(&mut self, key: u64, predicted: Prediction, actual_way: u8, actual_in_fm: bool) {
        self.way_total += 1;
        self.loc_total += 1;
        if predicted.way == actual_way {
            self.way_correct += 1;
        }
        if predicted.in_fm == actual_in_fm {
            self.loc_correct += 1;
        }
        let idx = self.index(key);
        // silcfm-lint: allow(P1) -- index() masks the hash into the power-of-two table
        self.entries[idx] = Entry {
            way: actual_way,
            in_fm: actual_in_fm,
        };
    }

    /// Fraction of way predictions that were correct.
    pub fn way_accuracy(&self) -> f64 {
        if self.way_total == 0 {
            0.0
        } else {
            self.way_correct as f64 / self.way_total as f64
        }
    }

    /// Fraction of location predictions that were correct.
    pub fn location_accuracy(&self) -> f64 {
        if self.loc_total == 0 {
            0.0
        } else {
            self.loc_correct as f64 / self.loc_total as f64
        }
    }

    /// Clears all entries and statistics.
    pub fn reset(&mut self) {
        self.entries.fill(Entry::default());
        self.way_correct = 0;
        self.way_total = 0;
        self.loc_correct = 0;
        self.loc_total = 0;
    }

    fn index(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_the_way() {
        let mut p = WayPredictor::new(64);
        let key = 0x1234;
        let first = p.predict(key);
        p.update(key, first, 3, true);
        let second = p.predict(key);
        assert_eq!(
            second,
            Prediction {
                way: 3,
                in_fm: true
            }
        );
    }

    #[test]
    fn accuracy_tracking() {
        let mut p = WayPredictor::new(64);
        let key = 9;
        let pred = p.predict(key); // way 0, in_fm false
        p.update(key, pred, 0, false); // both correct
        let pred = p.predict(key);
        p.update(key, pred, 2, true); // both wrong
        assert!((p.way_accuracy() - 0.5).abs() < 1e-12);
        assert!((p.location_accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_predictor_reports_zero_accuracy() {
        let p = WayPredictor::new(16);
        assert_eq!(p.way_accuracy(), 0.0);
        assert_eq!(p.location_accuracy(), 0.0);
    }

    #[test]
    fn reset_clears_learning() {
        let mut p = WayPredictor::new(16);
        let pred = p.predict(1);
        p.update(1, pred, 3, true);
        p.reset();
        assert_eq!(
            p.predict(1),
            Prediction {
                way: 0,
                in_fm: false
            }
        );
        assert_eq!(p.way_accuracy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_panics() {
        let _ = WayPredictor::new(0);
    }
}
