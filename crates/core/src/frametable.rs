//! Structure-of-arrays frame metadata: every [`FrameMeta`] field split into
//! its own parallel array, laid out `[set][way]` contiguously.
//!
//! The controller's two hottest scans — the set probe on every FM request
//! and the victim scan on every tenancy start — touch one field of every
//! way in a set. With the array-of-structs `Vec<FrameMeta>` those loads
//! were strided `sets` frames apart (64 B of unrelated metadata between
//! consecutive ways); here each field's ways sit in adjacent words, so a
//! whole 4-way set probe reads one cache line of one array. Both scans are
//! also written mask-select style (no early exit, no data-dependent
//! branches), which lets the compiler keep them branch-free.
//!
//! The `remap` array doubles as the probe tag store (`block + 1`, `0` = no
//! tenant) — it *is* the single source of truth for tenancies, absorbing
//! the separate tag mirror the controller used to keep in sync by hand.
//!
//! Indexing: a *slot* is `set * associativity + way`. The controller's
//! frame ids (`set + way * sets`) convert through [`FrameTable::slot_of`];
//! hot paths that already know `(set, way)` use [`FrameTable::slot_at`]
//! directly. The full-struct [`get`](FrameTable::get) /
//! [`set`](FrameTable::set) round trip exists for tests, diagnostics and
//! cold paths; hot paths use the per-field accessors so one probe does not
//! drag eight arrays into cache.

use silcfm_types::BlockIndex;

use crate::metadata::{FrameMeta, LockState, COUNTER_MAX};

/// Frame metadata in structure-of-arrays form (see the [module
/// docs](self)).
#[derive(Debug, Clone)]
pub struct FrameTable {
    sets: u64,
    assoc: u32,
    /// Tenant tag per slot: `block + 1`, `0` = no tenant. This is the
    /// probe's tag array *and* the authoritative remap store.
    remap: Vec<u64>,
    /// Residency bit vector per slot (bit `i` ⇔ subblock `i` holds the
    /// tenant's data).
    bitvec: Vec<u64>,
    /// Union of all residency bits of the current tenancy, per slot.
    bitvec_history: Vec<u64>,
    /// History-table key of the current tenancy, per slot.
    history_key: Vec<u64>,
    /// LRU stamp (access count at last touch), per slot.
    lru: Vec<u64>,
    /// NM-native activity counter, per slot.
    nm_counter: Vec<u8>,
    /// Remapped-block activity counter, per slot.
    fm_counter: Vec<u8>,
    /// Lock state, per slot.
    lock: Vec<LockState>,
    /// Per-set memo of a victim scan that came up empty: byte `s` is 1
    /// when the last [`victim`](Self::victim) call for set `s` (under
    /// [`Self::cached_degraded`]) found every way ineligible. Workloads
    /// that saturate their sets with locked frames spend close to half
    /// their accesses re-discovering this; the memo turns those scans
    /// into one byte load. Cleared by exactly the mutations that can
    /// make a way eligible again (unlock, invalidate, tenancy restart,
    /// aging, whole-struct writes, reset) — counter bumps and LRU
    /// touches only *shrink* eligibility, so they leave it standing.
    no_victim: Vec<u8>,
    /// The degraded-way mask the `no_victim` memo was recorded under; a
    /// different mask invalidates the whole memo.
    cached_degraded: u32,
}

impl FrameTable {
    /// A table for `sets` congruence sets of `assoc` ways, all frames in
    /// their initial (empty, unlocked) state.
    pub fn new(sets: u64, assoc: u32) -> Self {
        let n = (sets * u64::from(assoc)) as usize;
        Self {
            sets,
            assoc,
            remap: vec![0; n],
            bitvec: vec![0; n],
            bitvec_history: vec![0; n],
            history_key: vec![0; n],
            lru: vec![0; n],
            nm_counter: vec![0; n],
            fm_counter: vec![0; n],
            lock: vec![LockState::Unlocked; n],
            no_victim: vec![0; sets as usize],
            cached_degraded: 0,
        }
    }

    /// The congruence set owning `slot`.
    fn set_of(&self, slot: usize) -> usize {
        slot / self.assoc as usize
    }

    /// Drops the no-victim memo for `slot`'s set (a mutation may have
    /// made one of its ways eligible again).
    fn uncache_no_victim(&mut self, slot: usize) {
        let set = self.set_of(slot);
        *Self::at_mut(&mut self.no_victim, set) = 0;
    }

    /// Number of frames held.
    pub fn len(&self) -> usize {
        self.remap.len()
    }

    /// Whether the table holds no frames.
    pub fn is_empty(&self) -> bool {
        self.remap.is_empty()
    }

    /// Shared read funnel: every slot is produced by [`Self::slot_of`] or
    /// [`Self::slot_at`] from a frame id / `(set, way)` pair `< len` by
    /// construction.
    fn at<V: Copy>(v: &[V], slot: usize) -> V {
        debug_assert!(slot < v.len(), "slot exceeds the frame table");
        // silcfm-lint: allow(P1) -- single indexing funnel with the invariant documented and debug-asserted above
        v[slot]
    }

    /// Shared write funnel; see [`Self::at`] for the invariant.
    fn at_mut<V>(v: &mut [V], slot: usize) -> &mut V {
        debug_assert!(slot < v.len(), "slot exceeds the frame table");
        // silcfm-lint: allow(P1) -- single indexing funnel with the invariant documented and debug-asserted above
        &mut v[slot]
    }

    /// Slot of frame id `f` (the controller's `set + way * sets`
    /// numbering). Every Table II geometry has a power-of-two set count,
    /// so the hot path reduces to mask + shift.
    pub fn slot_of(&self, f: u64) -> usize {
        let (set, way) = if self.sets.is_power_of_two() {
            (f & (self.sets - 1), f >> self.sets.trailing_zeros())
        } else {
            (f % self.sets, f / self.sets)
        };
        (set * u64::from(self.assoc) + way) as usize
    }

    /// Slot of `(set, way)`.
    pub fn slot_at(&self, set: u64, way: u32) -> usize {
        (set * u64::from(self.assoc) + u64::from(way)) as usize
    }

    // ---- per-field accessors (the hot-path interface) ---------------------

    /// The tenant of `slot`, if any.
    pub fn remap(&self, slot: usize) -> Option<BlockIndex> {
        match Self::at(&self.remap, slot) {
            0 => None,
            tag => Some(BlockIndex::new(tag - 1)),
        }
    }

    /// The residency bit vector of `slot`.
    pub fn bitvec(&self, slot: usize) -> u64 {
        Self::at(&self.bitvec, slot)
    }

    /// The tenancy-history bit vector of `slot`.
    pub fn bitvec_history(&self, slot: usize) -> u64 {
        Self::at(&self.bitvec_history, slot)
    }

    /// The history-table key of `slot`'s tenancy.
    pub fn history_key(&self, slot: usize) -> u64 {
        Self::at(&self.history_key, slot)
    }

    /// The LRU stamp of `slot`.
    pub fn lru(&self, slot: usize) -> u64 {
        Self::at(&self.lru, slot)
    }

    /// Stamps `slot` as touched at access count `now`.
    pub fn set_lru(&mut self, slot: usize, now: u64) {
        *Self::at_mut(&mut self.lru, slot) = now;
    }

    /// The NM-native activity counter of `slot`.
    pub fn nm_counter(&self, slot: usize) -> u8 {
        Self::at(&self.nm_counter, slot)
    }

    /// The remapped-block activity counter of `slot`.
    pub fn fm_counter(&self, slot: usize) -> u8 {
        Self::at(&self.fm_counter, slot)
    }

    /// The lock state of `slot`.
    pub fn lock(&self, slot: usize) -> LockState {
        Self::at(&self.lock, slot)
    }

    /// Sets the lock state of `slot`.
    pub fn set_lock(&mut self, slot: usize, lock: LockState) {
        *Self::at_mut(&mut self.lock, slot) = lock;
        // Unlocking can make the way victimizable; locking only removes
        // eligibility, so a standing no-victim memo stays true.
        if !lock.is_locked() {
            self.uncache_no_victim(slot);
        }
    }

    /// Whether subblock `off` of `slot` holds remapped FM data.
    pub fn bit(&self, slot: usize, off: u32) -> bool {
        Self::at(&self.bitvec, slot) & (1 << off) != 0
    }

    /// Sets the residency bit for `off` and records it in the tenancy
    /// history (mirrors [`FrameMeta::set_bit`]).
    pub fn set_bit(&mut self, slot: usize, off: u32) {
        *Self::at_mut(&mut self.bitvec, slot) |= 1 << off;
        *Self::at_mut(&mut self.bitvec_history, slot) |= 1 << off;
    }

    /// Clears the residency bit for `off` (mirrors
    /// [`FrameMeta::clear_bit`]: the history keeps it).
    pub fn clear_bit(&mut self, slot: usize, off: u32) {
        *Self::at_mut(&mut self.bitvec, slot) &= !(1 << off);
    }

    /// Saturating increment of `slot`'s NM-native activity counter
    /// (mirrors [`FrameMeta::bump_nm`]).
    pub fn bump_nm(&mut self, slot: usize) -> u8 {
        let c = Self::at_mut(&mut self.nm_counter, slot);
        *c = c.saturating_add(1).min(COUNTER_MAX);
        *c
    }

    /// Saturating increment of `slot`'s remapped-block activity counter
    /// (mirrors [`FrameMeta::bump_fm`]).
    pub fn bump_fm(&mut self, slot: usize) -> u8 {
        let c = Self::at_mut(&mut self.fm_counter, slot);
        *c = c.saturating_add(1).min(COUNTER_MAX);
        *c
    }

    /// Starts a tenancy: `block` moves in with a fresh activity counter,
    /// its history key, and an LRU touch. The caller interleaves the
    /// actual subblocks (and their residency bits) afterwards.
    pub fn start_tenancy(&mut self, slot: usize, block: BlockIndex, key: u64, now: u64) {
        *Self::at_mut(&mut self.remap, slot) = block.value() + 1;
        *Self::at_mut(&mut self.history_key, slot) = key;
        *Self::at_mut(&mut self.fm_counter, slot) = 1;
        *Self::at_mut(&mut self.lru, slot) = now;
        // The fresh counter (1 <= cold threshold) makes this way
        // victimizable whatever it held before.
        self.uncache_no_victim(slot);
    }

    /// Fills the residency and history bit vectors with `mask` (a locked
    /// remap holds every subblock).
    pub fn fill_residency(&mut self, slot: usize, mask: u64) {
        *Self::at_mut(&mut self.bitvec, slot) = mask;
        *Self::at_mut(&mut self.bitvec_history, slot) = mask;
    }

    /// Invalidates `slot` back to its native-only state, keeping the LRU
    /// stamp and the NM-native activity counter (what a restore and a
    /// metadata-parity scrub both preserve).
    pub fn invalidate(&mut self, slot: usize) {
        *Self::at_mut(&mut self.remap, slot) = 0;
        *Self::at_mut(&mut self.bitvec, slot) = 0;
        *Self::at_mut(&mut self.bitvec_history, slot) = 0;
        *Self::at_mut(&mut self.history_key, slot) = 0;
        *Self::at_mut(&mut self.fm_counter, slot) = 0;
        *Self::at_mut(&mut self.lock, slot) = LockState::Unlocked;
        self.uncache_no_victim(slot);
    }

    /// Ages every frame's activity counters (right shift), in bulk over
    /// the two contiguous counter arrays (mirrors [`FrameMeta::age`] per
    /// frame; slot order vs frame order is immaterial, each slot only
    /// touches itself).
    pub fn age_all(&mut self) {
        for c in &mut self.nm_counter {
            *c >>= 1;
        }
        for c in &mut self.fm_counter {
            *c >>= 1;
        }
        // Cooled counters can cross back under the cold threshold.
        self.no_victim.fill(0);
    }

    // ---- set scans --------------------------------------------------------

    /// The first way of `set` whose tenant tag equals `want` (`block + 1`;
    /// must be nonzero — zero is the empty-slot marker). Branch-free: the
    /// compare of every way folds into a hit mask, then one
    /// `trailing_zeros` picks the first match — same result as an
    /// early-exit scan, no data-dependent branches.
    pub fn probe(&self, set: u64, want: u64) -> Option<u32> {
        debug_assert!(want != 0, "0 is the empty-slot marker");
        let base = self.slot_at(set, 0);
        let tags = self.remap.get(base..base + self.assoc as usize)?;
        let mut hits = 0u32;
        for (w, &tag) in tags.iter().enumerate() {
            hits |= u32::from(tag == want) << w;
        }
        if hits == 0 {
            None
        } else {
            Some(hits.trailing_zeros())
        }
    }

    /// The LRU victimizable way of `set`, or `None` when every way is
    /// pinned. A way is victimizable when it is not degraded (its bit in
    /// `degraded_ways` is clear), not locked, and — under associativity —
    /// either tenant-free or cold (`fm_counter <= 1`); see §III-C's
    /// protection of actively migrating tenancies. Mask-select: ineligible
    /// ways take a key no live LRU stamp can reach (stamps are access
    /// counts, far below `u64::MAX`), and a strict `<` scan keeps the
    /// first of equal minima — exactly the old filtered `min_by_key`.
    ///
    /// Takes `&mut self` only to maintain the `no_victim` memo (see the
    /// field docs); the scan's result is unchanged by the caching.
    pub fn victim(&mut self, set: u64, degraded_ways: u32) -> Option<u32> {
        if degraded_ways != self.cached_degraded {
            // The memo was recorded under a different degraded mask;
            // none of it is trustworthy.
            self.no_victim.fill(0);
            self.cached_degraded = degraded_ways;
        }
        if Self::at(&self.no_victim, set as usize) != 0 {
            return None;
        }
        let base = self.slot_at(set, 0);
        let n = self.assoc as usize;
        let mut best_key = u64::MAX;
        let mut best_way = 0u32;
        for w in 0..n {
            let slot = base + w;
            let healthy = degraded_ways & (1u32 << w) == 0;
            let unlocked = !Self::at(&self.lock, slot).is_locked();
            let replaceable =
                n == 1 || Self::at(&self.remap, slot) == 0 || Self::at(&self.fm_counter, slot) <= 1;
            let eligible = healthy && unlocked && replaceable;
            let key = if eligible {
                Self::at(&self.lru, slot)
            } else {
                u64::MAX
            };
            if key < best_key {
                best_key = key;
                best_way = w as u32;
            }
        }
        if best_key == u64::MAX {
            *Self::at_mut(&mut self.no_victim, set as usize) = 1;
            None
        } else {
            Some(best_way)
        }
    }

    // ---- whole-struct view (tests, diagnostics, cold paths) ---------------

    /// Assembles the array-of-structs view of `slot`.
    pub fn get(&self, slot: usize) -> FrameMeta {
        FrameMeta {
            remap: self.remap(slot),
            bitvec: Self::at(&self.bitvec, slot),
            bitvec_history: Self::at(&self.bitvec_history, slot),
            history_key: Self::at(&self.history_key, slot),
            nm_counter: Self::at(&self.nm_counter, slot),
            fm_counter: Self::at(&self.fm_counter, slot),
            lock: Self::at(&self.lock, slot),
            lru: Self::at(&self.lru, slot),
        }
    }

    /// Scatters the array-of-structs view of `slot` back into the arrays
    /// (the inverse of [`get`](Self::get)).
    pub fn set(&mut self, slot: usize, meta: FrameMeta) {
        *Self::at_mut(&mut self.remap, slot) = meta.remap.map_or(0, |b| b.value() + 1);
        *Self::at_mut(&mut self.bitvec, slot) = meta.bitvec;
        *Self::at_mut(&mut self.bitvec_history, slot) = meta.bitvec_history;
        *Self::at_mut(&mut self.history_key, slot) = meta.history_key;
        *Self::at_mut(&mut self.nm_counter, slot) = meta.nm_counter;
        *Self::at_mut(&mut self.fm_counter, slot) = meta.fm_counter;
        *Self::at_mut(&mut self.lock, slot) = meta.lock;
        *Self::at_mut(&mut self.lru, slot) = meta.lru;
        // A whole-struct write can change anything, eligibility included.
        self.uncache_no_victim(slot);
    }

    /// Returns every frame to its initial state, keeping the allocations.
    pub fn reset(&mut self) {
        self.remap.fill(0);
        self.bitvec.fill(0);
        self.bitvec_history.fill(0);
        self.history_key.fill(0);
        self.lru.fill(0);
        self.nm_counter.fill(0);
        self.fm_counter.fill(0);
        self.lock.fill(LockState::Unlocked);
        self.no_victim.fill(0);
        self.cached_degraded = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silcfm_types::check::forall;
    use silcfm_types::rng::{Rng, Xoshiro256StarStar};

    fn random_meta(rng: &mut Xoshiro256StarStar) -> FrameMeta {
        FrameMeta {
            remap: if rng.gen_range(0..2u64) == 0 {
                None
            } else {
                Some(BlockIndex::new(rng.gen_range(0..1u64 << 20)))
            },
            bitvec: rng.gen_range(0..u64::MAX),
            bitvec_history: rng.gen_range(0..u64::MAX),
            history_key: rng.gen_range(0..u64::MAX),
            nm_counter: rng.gen_range(0..64u64) as u8,
            fm_counter: rng.gen_range(0..64u64) as u8,
            lock: match rng.gen_range(0..3u64) {
                0 => LockState::Unlocked,
                1 => LockState::LockedNative,
                _ => LockState::LockedRemap,
            },
            lru: rng.gen_range(0..1u64 << 40),
        }
    }

    #[test]
    fn aos_view_round_trips() {
        forall("frametable_aos_round_trip", |rng| {
            let sets = 1u64 << rng.gen_range(0..4u64);
            let assoc = rng.gen_range(1..5u64) as u32;
            let mut t = FrameTable::new(sets, assoc);
            let models: Vec<FrameMeta> = (0..t.len()).map(|_| random_meta(rng)).collect();
            for (slot, m) in models.iter().enumerate() {
                t.set(slot, *m);
            }
            for (slot, m) in models.iter().enumerate() {
                assert_eq!(t.get(slot), *m, "slot {slot}");
                // Per-field accessors agree with the assembled view.
                assert_eq!(t.remap(slot), m.remap);
                assert_eq!(t.bitvec(slot), m.bitvec);
                assert_eq!(t.bitvec_history(slot), m.bitvec_history);
                assert_eq!(t.history_key(slot), m.history_key);
                assert_eq!(t.lru(slot), m.lru);
                assert_eq!(t.nm_counter(slot), m.nm_counter);
                assert_eq!(t.fm_counter(slot), m.fm_counter);
                assert_eq!(t.lock(slot), m.lock);
            }
        });
    }

    #[test]
    fn slot_of_inverts_frame_ids() {
        for sets in [1u64, 2, 3, 4, 8, 16] {
            for assoc in 1u32..=4 {
                let t = FrameTable::new(sets, assoc);
                for f in 0..sets * u64::from(assoc) {
                    let set = f % sets;
                    let way = (f / sets) as u32;
                    assert_eq!(
                        t.slot_of(f),
                        t.slot_at(set, way),
                        "sets={sets} assoc={assoc}"
                    );
                }
                // Slots cover 0..len exactly once.
                let mut seen = vec![false; t.len()];
                for f in 0..t.len() as u64 {
                    seen[t.slot_of(f)] = true;
                }
                assert!(seen.iter().all(|&s| s));
            }
        }
    }

    #[test]
    fn probe_matches_the_early_exit_reference() {
        // Exhaustive small-geometry sweep: every assignment of a few tag
        // values to every way must agree with the naive first-match scan.
        for assoc in 1u32..=4 {
            let sets = 2u64;
            let values_per_way = 3u64; // tags 0 (empty), 1, 2
            let mut t = FrameTable::new(sets, assoc);
            let combos = values_per_way.pow(assoc);
            for combo in 0..combos {
                let mut c = combo;
                let mut tags = Vec::new();
                for w in 0..assoc {
                    let tag = c % values_per_way;
                    c /= values_per_way;
                    tags.push(tag);
                    let mut m = FrameMeta::empty();
                    m.remap = if tag == 0 {
                        None
                    } else {
                        Some(BlockIndex::new(tag - 1))
                    };
                    t.set(t.slot_at(1, w), m);
                }
                for want in 1..values_per_way + 1 {
                    let reference = tags.iter().position(|&tag| tag == want).map(|w| w as u32);
                    assert_eq!(
                        t.probe(1, want),
                        reference,
                        "assoc={assoc} tags={tags:?} want={want}"
                    );
                }
            }
        }
    }

    #[test]
    fn victim_matches_the_min_by_key_reference() {
        forall("frametable_victim_reference", |rng| {
            let assoc = rng.gen_range(1..5u64) as u32;
            let mut t = FrameTable::new(4, assoc);
            let degraded = rng.gen_range(0..16u64) as u32;
            let metas: Vec<FrameMeta> = (0..assoc)
                .map(|w| {
                    let mut m = random_meta(rng);
                    m.lru = rng.gen_range(0..4u64); // force LRU ties
                    m.fm_counter = rng.gen_range(0..4u64) as u8;
                    t.set(t.slot_at(2, w), m);
                    m
                })
                .collect();
            let reference = (0..assoc)
                .filter(|&w| {
                    let m = &metas[w as usize];
                    degraded & (1 << w) == 0
                        && !m.lock.is_locked()
                        && (assoc == 1 || m.remap.is_none() || m.fm_counter <= 1)
                })
                .min_by_key(|&w| metas[w as usize].lru);
            assert_eq!(
                t.victim(2, degraded),
                reference,
                "assoc={assoc} degraded={degraded:#b}"
            );
        });
    }

    #[test]
    fn no_victim_memo_clears_on_every_reenabling_event() {
        // Drive the cached and the memo-free answers side by side through
        // each mutation that can re-create an eligible way; the cached
        // table must agree with a freshly scanned clone at every step.
        let hot = |t: &mut FrameTable, set: u64| {
            for w in 0..2 {
                let slot = t.slot_at(set, w);
                let mut m = FrameMeta::empty();
                m.remap = Some(BlockIndex::new(u64::from(w) + 1));
                m.fm_counter = COUNTER_MAX; // hot tenant: not replaceable
                t.set(slot, m);
            }
        };
        let check = |t: &mut FrameTable, set: u64, mask: u32, ctx: &str| {
            let want = t.clone().victim(set, mask); // clone: memo-free scan
            assert_eq!(t.victim(set, mask), want, "{ctx}");
            // Ask again to exercise the memo fast path itself.
            assert_eq!(t.victim(set, mask), want, "{ctx} (memoized)");
        };

        let mut t = FrameTable::new(4, 2);
        hot(&mut t, 1);
        check(&mut t, 1, 0, "all ways hot");
        t.set_lock(t.slot_at(1, 0), LockState::LockedRemap);
        check(&mut t, 1, 0, "locking keeps the memo true");
        t.set_lock(t.slot_at(1, 0), LockState::Unlocked);
        check(&mut t, 1, 0, "unlock alone re-enables nothing here");
        t.invalidate(t.slot_at(1, 1));
        check(&mut t, 1, 0, "invalidate re-enables its way");

        hot(&mut t, 2);
        check(&mut t, 2, 0, "second set hot");
        t.start_tenancy(t.slot_at(2, 0), BlockIndex::new(9), 0xbeef, 7);
        check(&mut t, 2, 0, "tenancy restart resets the counter");

        hot(&mut t, 3);
        check(&mut t, 3, 0b10, "hot under a degraded mask");
        check(&mut t, 3, 0, "mask change drops the memo");
        t.age_all();
        check(&mut t, 3, 0, "aging cools the counters");

        hot(&mut t, 0);
        check(&mut t, 0, 0, "fourth set hot");
        let mut cold = FrameMeta::empty();
        cold.remap = Some(BlockIndex::new(5));
        cold.fm_counter = 1;
        t.set(t.slot_at(0, 1), cold);
        check(&mut t, 0, 0, "whole-struct write re-enables its way");
        t.reset();
        check(&mut t, 0, 0, "reset re-enables everything");
    }

    #[test]
    fn invalidate_keeps_lru_and_nm_counter() {
        let mut t = FrameTable::new(2, 2);
        let mut m = FrameMeta::empty();
        m.remap = Some(BlockIndex::new(77));
        m.bitvec = 0b1010;
        m.bitvec_history = 0b1110;
        m.history_key = 9;
        m.nm_counter = 5;
        m.fm_counter = 6;
        m.lock = LockState::LockedRemap;
        m.lru = 123;
        t.set(1, m);
        t.invalidate(1);
        assert_eq!(
            t.get(1),
            FrameMeta {
                lru: 123,
                nm_counter: 5,
                ..FrameMeta::empty()
            }
        );
        // The probe no longer finds the old tenant.
        assert_eq!(t.probe(0, 78), None);
    }

    #[test]
    fn counters_and_bits_mirror_frame_meta_semantics() {
        let mut t = FrameTable::new(1, 1);
        let mut m = FrameMeta::empty();
        for _ in 0..100 {
            t.bump_nm(0);
            t.bump_fm(0);
            m.bump_nm();
            m.bump_fm();
        }
        t.set_bit(0, 3);
        t.set_bit(0, 7);
        t.clear_bit(0, 3);
        m.set_bit(3);
        m.set_bit(7);
        m.clear_bit(3);
        t.set_lru(0, 42);
        m.lru = 42;
        assert_eq!(t.get(0), m);
        t.age_all();
        m.age();
        assert_eq!(t.get(0), m);
        assert!(t.bit(0, 7) && !t.bit(0, 3));
    }

    #[test]
    fn reset_restores_the_initial_state() {
        let mut t = FrameTable::new(2, 2);
        t.start_tenancy(3, BlockIndex::new(9), 0xbeef, 7);
        t.set_bit(3, 1);
        t.set_lock(3, LockState::LockedRemap);
        t.reset();
        for slot in 0..t.len() {
            assert_eq!(t.get(slot), FrameMeta::empty(), "slot {slot}");
        }
        assert!(!t.is_empty());
    }
}
