//! SILC-FM configuration parameters and the Fig. 6 feature ladder.

use core::fmt;

/// Tunable parameters of the SILC-FM controller.
///
/// Defaults are the paper's published values: 4-way associativity, lock
/// threshold 50 on 6-bit aging counters halved every million accesses,
/// bypass target 0.8, a 4 K-entry way predictor and a 1 M-entry bit-vector
/// history table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SilcFmParams {
    /// Ways per congruence set (1, 2 or 4 in the paper's sweep).
    pub associativity: u32,
    /// Whether hot blocks are locked into NM (§III-C).
    pub locking: bool,
    /// Minimum number of distinct subblocks a tenancy must have used before
    /// its block may be locked. Locking fetches the whole 2 KB block, which
    /// only pays back for blocks whose observed footprint is dense; the
    /// paper locks on access count alone but leaves the density question
    /// open.
    pub lock_min_resident: u32,
    /// Hotness threshold on the 6-bit activity counters (50 in the paper).
    pub lock_threshold: u8,
    /// Memory accesses between counter agings (right shifts); 1 M in the
    /// paper.
    pub aging_period: u64,
    /// Whether bandwidth-balancing bypass is enabled (§III-E).
    pub bypass: bool,
    /// Access-rate target above which swap-ins are suspended (0.8 for the
    /// 4:1 NM:FM bandwidth ratio).
    pub bypass_target: f64,
    /// Effective window (accesses) of the access-rate estimator.
    pub bypass_window: u64,
    /// Whether evicted bit vectors are saved and replayed (§III-A).
    pub history_fetch: bool,
    /// Entries in the bit-vector history table (1 M in the paper).
    pub history_entries: usize,
    /// Whether the way/location predictor is enabled (§III-F).
    pub predictor: bool,
    /// Entries in the predictor (4 K in the paper).
    pub predictor_entries: usize,
}

impl SilcFmParams {
    /// The paper's full configuration.
    pub const fn paper() -> Self {
        Self {
            associativity: 4,
            locking: true,
            lock_min_resident: 8,
            lock_threshold: 50,
            aging_period: 1_000_000,
            bypass: true,
            bypass_target: 0.8,
            bypass_window: 10_000,
            history_fetch: true,
            history_entries: 1 << 20,
            predictor: true,
            predictor_entries: 4 << 10,
        }
    }

    /// Fig. 6 rung 1 — "SILC-FM swap": direct-mapped subblock swapping only
    /// (no locking, associativity or bypassing).
    pub const fn swap_only() -> Self {
        Self {
            associativity: 1,
            locking: false,
            bypass: false,
            ..Self::paper()
        }
    }

    /// Fig. 6 rung 2 — adds hot-block locking.
    pub const fn with_locking() -> Self {
        Self {
            locking: true,
            ..Self::swap_only()
        }
    }

    /// Fig. 6 rung 3 — adds 4-way associativity.
    pub const fn with_associativity() -> Self {
        Self {
            associativity: 4,
            ..Self::with_locking()
        }
    }

    /// Fig. 6 rung 4 — adds bypassing; identical to [`SilcFmParams::paper`].
    pub const fn with_bypass() -> Self {
        Self {
            bypass: true,
            ..Self::with_associativity()
        }
    }

    /// Validates invariants the controller relies on.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated invariant.
    pub fn validate(&self) -> Result<(), ParamsError> {
        if !self.associativity.is_power_of_two() || self.associativity > 16 {
            return Err(ParamsError::BadAssociativity(self.associativity));
        }
        if self.lock_threshold > 63 {
            return Err(ParamsError::ThresholdExceedsCounter(self.lock_threshold));
        }
        if !(0.0..=1.0).contains(&self.bypass_target) {
            return Err(ParamsError::BadBypassTarget(self.bypass_target));
        }
        if self.history_entries == 0 || self.predictor_entries == 0 {
            return Err(ParamsError::EmptyTable);
        }
        Ok(())
    }
}

impl Default for SilcFmParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// Invalid [`SilcFmParams`] combination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamsError {
    /// Associativity must be a power of two up to 16.
    BadAssociativity(u32),
    /// The lock threshold must fit a 6-bit counter.
    ThresholdExceedsCounter(u8),
    /// The bypass target must lie in `[0, 1]`.
    BadBypassTarget(f64),
    /// Table sizes must be non-zero.
    EmptyTable,
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadAssociativity(a) => write!(f, "associativity {a} is not a power of two <= 16"),
            Self::ThresholdExceedsCounter(t) => {
                write!(
                    f,
                    "lock threshold {t} exceeds the 6-bit counter maximum of 63"
                )
            }
            Self::BadBypassTarget(t) => write!(f, "bypass target {t} is outside [0, 1]"),
            Self::EmptyTable => write!(f, "history and predictor tables must be non-empty"),
        }
    }
}

impl std::error::Error for ParamsError {}

impl From<ParamsError> for silcfm_types::SilcFmError {
    fn from(e: ParamsError) -> Self {
        silcfm_types::SilcFmError::params(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let p = SilcFmParams::paper();
        assert_eq!(p.associativity, 4);
        assert_eq!(p.lock_threshold, 50);
        assert_eq!(p.aging_period, 1_000_000);
        assert!((p.bypass_target - 0.8).abs() < 1e-12);
        assert_eq!(p.history_entries, 1 << 20);
        assert_eq!(p.predictor_entries, 4096);
        assert_eq!(SilcFmParams::default(), p);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn feature_ladder_is_monotone() {
        let swap = SilcFmParams::swap_only();
        assert_eq!(swap.associativity, 1);
        assert!(!swap.locking);
        assert!(!swap.bypass);

        let lock = SilcFmParams::with_locking();
        assert!(lock.locking);
        assert_eq!(lock.associativity, 1);

        let assoc = SilcFmParams::with_associativity();
        assert_eq!(assoc.associativity, 4);
        assert!(!assoc.bypass);

        let full = SilcFmParams::with_bypass();
        assert_eq!(full, SilcFmParams::paper());
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut p = SilcFmParams::paper();
        p.associativity = 3;
        assert_eq!(p.validate(), Err(ParamsError::BadAssociativity(3)));

        let mut p = SilcFmParams::paper();
        p.lock_threshold = 64;
        assert_eq!(p.validate(), Err(ParamsError::ThresholdExceedsCounter(64)));

        let mut p = SilcFmParams::paper();
        p.bypass_target = 1.5;
        assert!(matches!(p.validate(), Err(ParamsError::BadBypassTarget(_))));

        let mut p = SilcFmParams::paper();
        p.history_entries = 0;
        assert_eq!(p.validate(), Err(ParamsError::EmptyTable));
    }

    #[test]
    fn params_error_converts_to_typed_workspace_error() {
        let e: silcfm_types::SilcFmError = ParamsError::BadAssociativity(3).into();
        assert!(matches!(e, silcfm_types::SilcFmError::Params { .. }));
        assert!(e.to_string().contains("associativity 3"));
    }

    #[test]
    fn error_messages_are_nonempty() {
        for e in [
            ParamsError::BadAssociativity(3),
            ParamsError::ThresholdExceedsCounter(99),
            ParamsError::BadBypassTarget(2.0),
            ParamsError::EmptyTable,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
