//! ROB-window out-of-order core approximation.
//!
//! The paper simulates 4-wide out-of-order cores with 128-entry reorder
//! buffers. Full microarchitectural simulation is unnecessary for a memory-
//! system study; what matters is (a) how many instructions separate memory
//! accesses (memory intensity) and (b) how many misses can overlap
//! (memory-level parallelism, bounded by the ROB). [`Core`] models exactly
//! those two effects:
//!
//! * instructions dispatch at up to `width` per cycle;
//! * a memory access issues at the current dispatch time and completes when
//!   the memory system says so;
//! * dispatch stalls when an outstanding access is more than `rob_entries`
//!   instructions old (in-order retirement backs up the window);
//! * accesses marked *dependent* additionally wait for the previous access's
//!   data (pointer chasing has no MLP).
//!
//! # Example
//!
//! ```
//! use silcfm_cpu::Core;
//! use silcfm_types::CoreId;
//!
//! let mut core = Core::new(CoreId::new(0), 128, 4);
//! core.execute_compute(400);          // 400 instructions, 4-wide → 100 cycles
//! let issue = core.now();
//! assert_eq!(issue, 100);
//! core.execute_memory(issue + 200, false); // a 200-cycle miss
//! assert_eq!(core.finish(), 300);
//! ```

use std::collections::VecDeque;

use silcfm_types::CoreId;

/// One simulated core.
#[derive(Debug, Clone)]
pub struct Core {
    id: CoreId,
    rob_entries: u64,
    width: u64,
    /// `width.trailing_zeros()` when the width is a power of two (the
    /// paper's cores are 4-wide): [`Core::now`] runs several times per
    /// simulated access, so the slot→cycle conversion becomes a shift.
    width_shift: Option<u32>,
    /// Dispatch progress in *slot* units (1 slot = 1 instruction issue
    /// opportunity); the current cycle is `slots / width`.
    slots: u64,
    /// Instructions dispatched so far.
    seq: u64,
    /// Outstanding memory accesses: (sequence number, completion cycle).
    inflight: VecDeque<(u64, u64)>,
    /// Completion time of the most recent memory access (for dependences).
    last_mem_completion: u64,
    /// Retired-instruction counter.
    instructions: u64,
}

impl Core {
    /// Creates a core with the given ROB size and dispatch width.
    ///
    /// # Panics
    ///
    /// Panics if `rob_entries` or `width` is zero.
    pub fn new(id: CoreId, rob_entries: u64, width: u64) -> Self {
        assert!(rob_entries > 0, "ROB must have at least one entry");
        assert!(width > 0, "width must be positive");
        Self {
            id,
            rob_entries,
            width,
            width_shift: width.is_power_of_two().then(|| width.trailing_zeros()),
            slots: 0,
            seq: 0,
            inflight: VecDeque::new(),
            last_mem_completion: 0,
            instructions: 0,
        }
    }

    /// This core's identifier.
    pub const fn id(&self) -> CoreId {
        self.id
    }

    /// The current dispatch time in cycles — the time at which the next
    /// instruction (e.g. a memory access) would issue.
    pub fn now(&self) -> u64 {
        match self.width_shift {
            Some(s) => (self.slots + self.width - 1) >> s,
            None => self.slots.div_ceil(self.width),
        }
    }

    /// Instructions executed so far.
    pub const fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Number of memory accesses currently outstanding.
    pub fn outstanding(&self) -> usize {
        self.inflight.len()
    }

    /// Dispatches `n` non-memory instructions.
    pub fn execute_compute(&mut self, n: u64) {
        self.slots += n;
        self.seq += n;
        self.instructions += n;
        self.drain_window();
    }

    /// Dispatches one memory instruction whose data returns at cycle
    /// `completion`. If `dependent` is true the instruction could not have
    /// issued before the previous memory access completed; callers should
    /// obtain the issue time from [`Core::issue_time`], which accounts for
    /// the dependence.
    pub fn execute_memory(&mut self, completion: u64, dependent: bool) {
        if dependent {
            // Dispatch cannot proceed past the dependent instruction until
            // the producer's data is back.
            self.advance_to(self.last_mem_completion);
        }
        self.slots += 1;
        self.seq += 1;
        self.instructions += 1;
        self.inflight.push_back((self.seq, completion));
        self.last_mem_completion = completion;
        self.drain_window();
    }

    /// The issue time the next memory access would have, accounting for a
    /// dependence on the previous access if `dependent`.
    pub fn issue_time(&self, dependent: bool) -> u64 {
        if dependent {
            self.now().max(self.last_mem_completion)
        } else {
            self.now()
        }
    }

    /// Stalls dispatch until at least `cycle` — used for global software
    /// overheads such as HMA's epoch-boundary TLB shootdowns, which halt
    /// every core.
    pub fn stall_until(&mut self, cycle: u64) {
        self.advance_to(cycle);
    }

    /// Retires everything outstanding and returns the cycle at which the
    /// core's work so far is architecturally complete.
    pub fn finish(&mut self) -> u64 {
        let mut done = self.now();
        while let Some((_, completion)) = self.inflight.pop_front() {
            done = done.max(completion);
        }
        self.advance_to(done);
        done
    }

    /// Pops accesses that have retired and enforces the ROB window: if the
    /// oldest outstanding access is `rob_entries` instructions older than
    /// the newest dispatched instruction, dispatch stalls until it completes.
    fn drain_window(&mut self) {
        let now = self.now();
        while let Some(&(seq, completion)) = self.inflight.front() {
            if completion <= now {
                self.inflight.pop_front();
            } else if seq + self.rob_entries <= self.seq {
                // Window full: wall-clock must advance to the oldest miss's
                // completion before younger instructions can dispatch.
                self.advance_to(completion);
                self.inflight.pop_front();
            } else {
                break;
            }
        }
    }

    /// Moves the dispatch clock forward to at least `cycle`.
    fn advance_to(&mut self, cycle: u64) {
        let target_slots = cycle * self.width;
        if target_slots > self.slots {
            self.slots = target_slots;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> Core {
        Core::new(CoreId::new(0), 128, 4)
    }

    #[test]
    fn compute_advances_at_width() {
        let mut c = core();
        c.execute_compute(400);
        assert_eq!(c.now(), 100);
        assert_eq!(c.instructions(), 400);
    }

    #[test]
    fn fractional_cycles_round_up_for_issue() {
        let mut c = core();
        c.execute_compute(3);
        assert_eq!(c.now(), 1, "3 slots of a 4-wide core round up to 1 cycle");
    }

    #[test]
    fn independent_misses_overlap() {
        let mut c = core();
        // Two misses of 200 cycles issued back to back: both outstanding.
        let t0 = c.issue_time(false);
        c.execute_memory(t0 + 200, false);
        let t1 = c.issue_time(false);
        c.execute_memory(t1 + 200, false);
        assert_eq!(c.outstanding(), 2);
        // Completion is ~200, not 400: they overlapped.
        assert_eq!(c.finish(), t1 + 200);
        assert!(t1 <= 1);
    }

    #[test]
    fn dependent_misses_serialize() {
        let mut c = core();
        let t0 = c.issue_time(false);
        c.execute_memory(t0 + 200, false);
        let t1 = c.issue_time(true);
        assert_eq!(t1, t0 + 200, "dependent access waits for producer");
        c.execute_memory(t1 + 200, true);
        assert_eq!(c.finish(), t0 + 400);
    }

    #[test]
    fn rob_fills_after_window_instructions() {
        let mut c = core();
        // One long miss, then > 128 instructions of compute: dispatch must
        // stall at the window limit until the miss returns.
        c.execute_memory(10_000, false);
        c.execute_compute(1_000);
        // Dispatch time cannot be the pure compute time (250 cycles); the
        // window stalled it until cycle 10_000.
        assert!(c.now() >= 10_000);
    }

    #[test]
    fn short_latency_ops_never_block() {
        let mut c = core();
        for _ in 0..1_000 {
            let t = c.issue_time(false);
            c.execute_memory(t + 4, false); // L1 hits
            c.execute_compute(10);
        }
        // ~11 instructions per iteration at width 4 : about 2750 cycles.
        let done = c.finish();
        assert!(done < 3_500, "L1 hits must not serialize: {done}");
    }

    #[test]
    fn mlp_is_bounded_by_rob() {
        let mut c = Core::new(CoreId::new(0), 8, 4);
        // Issue 16 far misses, 1 compute instruction apart. With an 8-entry
        // window only ~4 memory ops (each +1 compute) fit at once.
        for i in 0..16u64 {
            let t = c.issue_time(false);
            c.execute_memory(t + 1_000, false);
            c.execute_compute(1);
            let _ = i;
        }
        let done = c.finish();
        // Perfect overlap would be ~1000; full serialization 16_000. The
        // window forces several serialization rounds.
        assert!(done > 3_000, "window must limit MLP: {done}");
        assert!(done < 16_000, "but not fully serialize: {done}");
    }

    #[test]
    fn finish_is_idempotent_at_rest() {
        let mut c = core();
        c.execute_compute(40);
        let d1 = c.finish();
        let d2 = c.finish();
        assert_eq!(d1, 10);
        assert_eq!(d2, 10);
    }

    #[test]
    fn id_accessor() {
        assert_eq!(core().id(), CoreId::new(0));
    }
}
