//! Device-local address → (channel, rank, bank, row) mapping.
//!
//! Channels interleave at 64 B granularity so that a 2 KB large block spreads
//! across all channels (maximizing bandwidth for block migrations), while
//! each channel's 256 B share of the block stays within a single row
//! (preserving row-buffer locality). Within a channel, consecutive rows
//! rotate across banks and ranks for bank-level parallelism.

use crate::config::DramConfig;

/// Interleave granularity across channels, in bytes. Matches the subblock
/// size so a demand access touches exactly one channel.
pub const CHANNEL_INTERLEAVE_BYTES: u64 = 64;

/// A decoded DRAM location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Location {
    /// Channel index.
    pub channel: u32,
    /// Rank within the channel.
    pub rank: u32,
    /// Bank within the rank.
    pub bank: u32,
    /// Row within the bank.
    pub row: u64,
}

impl Location {
    /// Flat bank index within the owning channel (`rank * banks + bank`).
    pub fn bank_in_channel(&self, cfg: &DramConfig) -> usize {
        (self.rank * cfg.banks + self.bank) as usize
    }
}

/// Maps device-local byte addresses to DRAM locations for one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AddressMapper {
    channels: u64,
    ranks: u64,
    banks: u64,
    row_bytes: u64,
    /// Set when every dimension is a power of two (true of all real DRAM
    /// shapes): [`decode`] then runs on shifts and masks. Decode is invoked
    /// for every DRAM transfer, so the division-free path matters.
    ///
    /// [`decode`]: AddressMapper::decode
    shifts: Option<Shifts>,
}

/// Precomputed shift amounts for the power-of-two decode path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Shifts {
    channel: u32,
    row: u32,
    bank: u32,
    rank: u32,
}

impl AddressMapper {
    /// Creates a mapper for the given device configuration.
    pub fn new(cfg: &DramConfig) -> Self {
        let channels = u64::from(cfg.channels);
        let ranks = u64::from(cfg.ranks);
        let banks = u64::from(cfg.banks);
        let row_bytes = cfg.row_bytes;
        let shifts = ([channels, ranks, banks, row_bytes]
            .iter()
            .all(|d| d.is_power_of_two()))
        .then(|| Shifts {
            channel: channels.trailing_zeros(),
            row: row_bytes.trailing_zeros(),
            bank: banks.trailing_zeros(),
            rank: ranks.trailing_zeros(),
        });
        Self {
            channels,
            ranks,
            banks,
            row_bytes,
            shifts,
        }
    }

    /// Decodes a device-local byte address.
    pub fn decode(&self, device_addr: u64) -> Location {
        if let Some(s) = self.shifts {
            let chunk = device_addr / CHANNEL_INTERLEAVE_BYTES;
            let channel = chunk & (self.channels - 1);
            // Channel-local compressed byte address: drop the channel bits.
            let local = ((chunk >> s.channel) * CHANNEL_INTERLEAVE_BYTES)
                + (device_addr % CHANNEL_INTERLEAVE_BYTES);
            let global_row = local >> s.row;
            let bank = global_row & (self.banks - 1);
            let rank = (global_row >> s.bank) & (self.ranks - 1);
            let row = global_row >> (s.bank + s.rank);
            return Location {
                channel: channel as u32,
                rank: rank as u32,
                bank: bank as u32,
                row,
            };
        }
        let chunk = device_addr / CHANNEL_INTERLEAVE_BYTES;
        let channel = chunk % self.channels;
        // Channel-local compressed byte address: drop the channel bits.
        let local = (chunk / self.channels) * CHANNEL_INTERLEAVE_BYTES
            + device_addr % CHANNEL_INTERLEAVE_BYTES;
        let global_row = local / self.row_bytes;
        let bank = global_row % self.banks;
        let rank = (global_row / self.banks) % self.ranks;
        let row = global_row / (self.banks * self.ranks);
        Location {
            channel: channel as u32,
            rank: rank as u32,
            bank: bank as u32,
            row,
        }
    }
}

/// Walks the locations of consecutive 64 B chunks with one full [`decode`]
/// up front and pure increments afterwards.
///
/// Consecutive chunks rotate through the channels; the channel-local address
/// (and with it bank/rank/row) advances only when the rotation wraps, and
/// since rows are whole multiples of the interleave granularity the row
/// fields change only when that advance crosses a row boundary. A 32-beat
/// block transfer therefore performs one division-heavy decode instead of 32.
///
/// [`decode`]: AddressMapper::decode
#[derive(Debug, Clone)]
pub struct ChunkWalker {
    mapper: AddressMapper,
    loc: Location,
    /// Index of the current chunk within its channel (`chunk / channels`).
    local_chunk: u64,
    /// Channel-local chunks per DRAM row (`row_bytes / 64`).
    chunks_per_row: u64,
}

impl ChunkWalker {
    /// Starts a walk at `device_addr` (any byte within the first chunk).
    pub fn new(mapper: &AddressMapper, device_addr: u64) -> Self {
        let chunk = device_addr / CHANNEL_INTERLEAVE_BYTES;
        Self {
            mapper: *mapper,
            loc: mapper.decode(device_addr),
            local_chunk: match mapper.shifts {
                Some(s) => chunk >> s.channel,
                None => chunk / mapper.channels,
            },
            chunks_per_row: mapper.row_bytes / CHANNEL_INTERLEAVE_BYTES,
        }
    }

    /// The location of the current chunk.
    pub const fn location(&self) -> Location {
        self.loc
    }

    /// Advances to the next consecutive 64 B chunk.
    pub fn advance(&mut self) {
        self.loc.channel += 1;
        if u64::from(self.loc.channel) == self.mapper.channels {
            self.loc.channel = 0;
            self.local_chunk += 1;
            if self.local_chunk.is_multiple_of(self.chunks_per_row) {
                let global_row = self.local_chunk / self.chunks_per_row;
                self.loc.bank = (global_row % self.mapper.banks) as u32;
                self.loc.rank = ((global_row / self.mapper.banks) % self.mapper.ranks) as u32;
                self.loc.row = global_row / (self.mapper.banks * self.mapper.ranks);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;

    fn mapper() -> (AddressMapper, DramConfig) {
        let cfg = DramConfig::hbm2();
        (AddressMapper::new(&cfg), cfg)
    }

    #[test]
    fn consecutive_subblocks_rotate_channels() {
        let (m, _) = mapper();
        let locs: Vec<u32> = (0..8).map(|i| m.decode(i * 64).channel).collect();
        assert_eq!(locs, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        // Wraps around.
        assert_eq!(m.decode(8 * 64).channel, 0);
    }

    #[test]
    fn same_chunk_same_location() {
        let (m, _) = mapper();
        let a = m.decode(100);
        let b = m.decode(64);
        assert_eq!(a, b, "bytes within one 64B chunk share a location");
    }

    #[test]
    fn block_stays_in_one_row_per_channel() {
        let (m, _) = mapper();
        // A 2 KB block = 32 subblocks = 4 per channel. All four in channel 0
        // should decode to the same row and bank.
        let base = 0u64;
        let ch0: Vec<Location> = (0..32)
            .map(|i| m.decode(base + i * 64))
            .filter(|l| l.channel == 0)
            .collect();
        assert_eq!(ch0.len(), 4);
        assert!(ch0
            .iter()
            .all(|l| l.row == ch0[0].row && l.bank == ch0[0].bank));
    }

    #[test]
    fn rows_rotate_banks() {
        let (m, cfg) = mapper();
        // Jump one full row within channel 0: 8 KB x 8 channels apart.
        let stride = cfg.row_bytes * u64::from(cfg.channels);
        let l0 = m.decode(0);
        let l1 = m.decode(stride);
        assert_eq!(l1.channel, 0);
        assert_ne!(l0.bank, l1.bank, "consecutive rows use different banks");
    }

    #[test]
    fn bank_in_channel_flattening() {
        let cfg = DramConfig::ddr3();
        let loc = Location {
            channel: 1,
            rank: 0,
            bank: 5,
            row: 7,
        };
        assert_eq!(loc.bank_in_channel(&cfg), 5);
    }

    #[test]
    fn decode_is_total_over_large_addresses() {
        let (m, cfg) = mapper();
        let loc = m.decode(u64::from(u32::MAX) * 64);
        assert!(loc.channel < cfg.channels);
        assert!(loc.bank < cfg.banks);
        assert!(loc.rank < cfg.ranks);
    }

    #[test]
    fn walker_matches_per_chunk_decode() {
        use silcfm_types::check::forall;
        use silcfm_types::rng::Rng;

        for cfg in [DramConfig::hbm2(), DramConfig::ddr3()] {
            let m = AddressMapper::new(&cfg);
            forall("chunk_walker_matches_decode", |rng| {
                // Arbitrary (unaligned) start, long enough to cross rows
                // and banks in every configuration.
                let start = rng.gen_range(0..1u64 << 34);
                let chunks = rng.gen_range(1..200u64);
                let mut walker = ChunkWalker::new(&m, start);
                for i in 0..chunks {
                    let addr = (start / CHANNEL_INTERLEAVE_BYTES + i) * CHANNEL_INTERLEAVE_BYTES;
                    assert_eq!(
                        walker.location(),
                        m.decode(addr),
                        "chunk {i} of walk from {start:#x}"
                    );
                    walker.advance();
                }
            });
        }
    }
}
