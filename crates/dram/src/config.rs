//! DRAM device configuration and the Table II presets.

use core::fmt;

use silcfm_types::SilcFmError;

use crate::energy::EnergyParams;

/// Core DRAM timing constraints, in memory-controller cycles.
///
/// Table II's timing cells did not survive the source text's OCR; standard
/// DDR3-1600 values (11-11-11-28) are used for both devices, consistent with
/// the paper's statement that NM offers only "slightly reduced" latency and
/// that its advantage is bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramTimings {
    /// CAS latency (column access) in memory cycles.
    pub t_cas: u64,
    /// RAS-to-CAS delay (activate to column command).
    pub t_rcd: u64,
    /// Row precharge time.
    pub t_rp: u64,
    /// Minimum row-active time (activate to precharge).
    pub t_ras: u64,
}

impl DramTimings {
    /// DDR3-1600-like 11-11-11-28.
    pub const fn ddr3_1600() -> Self {
        Self {
            t_cas: 11,
            t_rcd: 11,
            t_rp: 11,
            t_ras: 28,
        }
    }

    /// HBM generation 2 at the same 800 MHz bus clock; identical cycle
    /// counts, marginally lower effective latency through wider/closer I/O.
    pub const fn hbm2() -> Self {
        Self {
            t_cas: 10,
            t_rcd: 10,
            t_rp: 10,
            t_ras: 26,
        }
    }

    /// Closed-row access latency: activate + column access.
    pub const fn row_miss_latency(&self) -> u64 {
        self.t_rcd + self.t_cas
    }

    /// Conflict latency: precharge + activate + column access.
    pub const fn row_conflict_latency(&self) -> u64 {
        self.t_rp + self.t_rcd + self.t_cas
    }
}

/// Full configuration of one DRAM device (NM or FM).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Human-readable device name.
    pub name: &'static str,
    /// Number of independent channels.
    pub channels: u32,
    /// Ranks per channel.
    pub ranks: u32,
    /// Banks per rank.
    pub banks: u32,
    /// Row-buffer size in bytes (open-page policy).
    pub row_bytes: u64,
    /// Data-bus width in bits (per channel).
    pub bus_bits: u32,
    /// Bus clock in MHz (double data rate assumed).
    pub bus_mhz: u32,
    /// Read-queue capacity per channel.
    pub read_queue: u32,
    /// Write-queue capacity per channel.
    pub write_queue: u32,
    /// Timing constraints.
    pub timings: DramTimings,
    /// Energy model parameters.
    pub energy: EnergyParams,
    /// CPU cycles per memory cycle (3.2 GHz CPU / 800 MHz bus = 4).
    pub cpu_cycles_per_mem_cycle: u64,
}

impl DramConfig {
    /// The Table II HBM2 near memory: 8 channels × 128-bit @ 800 MHz
    /// (1.6 GT/s), 8 banks, 8 KB rows, 32-entry queues.
    pub const fn hbm2() -> Self {
        Self {
            name: "HBM2",
            channels: 8,
            ranks: 1,
            banks: 8,
            row_bytes: 8 << 10,
            bus_bits: 128,
            bus_mhz: 800,
            read_queue: 32,
            write_queue: 32,
            timings: DramTimings::hbm2(),
            energy: EnergyParams::hbm2(),
            cpu_cycles_per_mem_cycle: 4,
        }
    }

    /// The Table II DDR3 far memory: 4 channels × 64-bit @ 800 MHz
    /// (1.6 GT/s), 8 banks, 8 KB rows, 32-entry queues.
    pub const fn ddr3() -> Self {
        Self {
            name: "DDR3",
            channels: 4,
            ranks: 1,
            banks: 8,
            row_bytes: 8 << 10,
            bus_bits: 64,
            bus_mhz: 800,
            read_queue: 32,
            write_queue: 32,
            timings: DramTimings::ddr3_1600(),
            energy: EnergyParams::ddr3(),
            cpu_cycles_per_mem_cycle: 4,
        }
    }

    /// Bytes transferred per memory cycle per channel (double data rate).
    pub const fn bus_bytes_per_cycle(&self) -> u64 {
        (self.bus_bits as u64 / 8) * 2
    }

    /// Memory cycles the data bus is occupied by a transfer of `bytes`.
    ///
    /// Called once per 64 B chunk of every transfer; real bus widths make
    /// `bus_bytes_per_cycle` a power of two, turning the rounding division
    /// into a shift.
    pub fn burst_cycles(&self, bytes: u32) -> u64 {
        let per_cycle = self.bus_bytes_per_cycle();
        if per_cycle.is_power_of_two() {
            (u64::from(bytes) + per_cycle - 1) >> per_cycle.trailing_zeros()
        } else {
            u64::from(bytes).div_ceil(per_cycle)
        }
    }

    /// Theoretical peak bandwidth across all channels, in GB/s.
    pub fn peak_bandwidth_gbs(&self) -> f64 {
        let bytes_per_sec = self.bus_bytes_per_cycle() as f64
            * f64::from(self.bus_mhz)
            * 1e6
            * f64::from(self.channels);
        bytes_per_sec / 1e9
    }

    /// Total banks across the device.
    pub const fn total_banks(&self) -> u32 {
        self.channels * self.ranks * self.banks
    }

    /// Validates the structural invariants the address mapper and channel
    /// model rely on. The Table II presets always pass; hand-built
    /// configurations go through here before a model is constructed.
    ///
    /// # Errors
    ///
    /// Returns [`SilcFmError::DramConfig`] naming the first violated
    /// invariant.
    pub fn validate(&self) -> Result<(), SilcFmError> {
        if self.channels == 0 {
            return Err(SilcFmError::dram_config("channel count must be non-zero"));
        }
        if self.ranks == 0 || self.banks == 0 {
            return Err(SilcFmError::dram_config(
                "ranks and banks per channel must be non-zero",
            ));
        }
        if self.row_bytes == 0 || !self.row_bytes.is_power_of_two() {
            return Err(SilcFmError::dram_config(format!(
                "row size must be a non-zero power of two, got {}",
                self.row_bytes
            )));
        }
        if self.bus_bits == 0 || !self.bus_bits.is_multiple_of(8) {
            return Err(SilcFmError::dram_config(format!(
                "bus width must be a non-zero multiple of 8 bits, got {}",
                self.bus_bits
            )));
        }
        if self.bus_mhz == 0 {
            return Err(SilcFmError::dram_config("bus clock must be non-zero"));
        }
        if self.read_queue == 0 || self.write_queue == 0 {
            return Err(SilcFmError::dram_config(
                "read and write queue capacities must be non-zero",
            ));
        }
        if self.cpu_cycles_per_mem_cycle == 0 {
            return Err(SilcFmError::dram_config(
                "CPU:memory clock ratio must be non-zero",
            ));
        }
        Ok(())
    }
}

impl fmt::Display for DramConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}ch x {}bit @ {}MHz DDR ({:.1} GB/s peak)",
            self.name,
            self.channels,
            self.bus_bits,
            self.bus_mhz,
            self.peak_bandwidth_gbs()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_bandwidth_ratio_is_4_to_1() {
        let nm = DramConfig::hbm2();
        let fm = DramConfig::ddr3();
        assert!((nm.peak_bandwidth_gbs() - 204.8).abs() < 1e-9);
        assert!((fm.peak_bandwidth_gbs() - 51.2).abs() < 1e-9);
        assert!((nm.peak_bandwidth_gbs() / fm.peak_bandwidth_gbs() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn burst_cycles() {
        let nm = DramConfig::hbm2();
        // 128-bit DDR = 32 B per memory cycle; 64 B takes 2 cycles.
        assert_eq!(nm.bus_bytes_per_cycle(), 32);
        assert_eq!(nm.burst_cycles(64), 2);
        let fm = DramConfig::ddr3();
        // 64-bit DDR = 16 B per memory cycle; 64 B takes 4 cycles.
        assert_eq!(fm.burst_cycles(64), 4);
        // Partial transfers round up.
        assert_eq!(fm.burst_cycles(8), 1);
    }

    #[test]
    fn timing_helpers() {
        let t = DramTimings::ddr3_1600();
        assert_eq!(t.row_miss_latency(), 22);
        assert_eq!(t.row_conflict_latency(), 33);
    }

    #[test]
    fn bank_counts_match_table2() {
        assert_eq!(DramConfig::hbm2().total_banks(), 64);
        assert_eq!(DramConfig::ddr3().total_banks(), 32);
    }

    #[test]
    fn presets_validate() {
        assert!(DramConfig::hbm2().validate().is_ok());
        assert!(DramConfig::ddr3().validate().is_ok());
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        type Breakage = (&'static str, fn(&mut DramConfig));
        let breakages: [Breakage; 7] = [
            ("channel", |c| c.channels = 0),
            ("banks", |c| c.banks = 0),
            ("row", |c| c.row_bytes = 3000),
            ("bus width", |c| c.bus_bits = 12),
            ("bus clock", |c| c.bus_mhz = 0),
            ("queue", |c| c.read_queue = 0),
            ("clock ratio", |c| c.cpu_cycles_per_mem_cycle = 0),
        ];
        for (what, breakage) in breakages {
            let mut cfg = DramConfig::ddr3();
            breakage(&mut cfg);
            let err = cfg.validate().expect_err(what);
            assert!(
                matches!(err, SilcFmError::DramConfig { .. }),
                "{what}: {err}"
            );
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn display_is_informative() {
        let s = DramConfig::hbm2().to_string();
        assert!(s.contains("HBM2"));
        assert!(s.contains("204.8"));
    }
}
