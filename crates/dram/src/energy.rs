//! DRAM energy model.
//!
//! The paper reports a 13 % Energy-Delay-Product improvement over CAMEO,
//! driven by die-stacked DRAM's lower per-bit access energy. We model energy
//! as: `row activations × activate energy + bits transferred × I/O energy +
//! elapsed time × background power`, with constants drawn from public HBM and
//! DDR3 characterizations (≈4 pJ/bit vs ≈20 pJ/bit access energy).

/// Per-device energy constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Energy per bit transferred on the data pins (pJ/bit).
    pub pj_per_bit: f64,
    /// Energy per row activation+precharge pair (pJ).
    pub pj_per_activate: f64,
    /// Standby/background power for the whole device (mW).
    pub background_mw: f64,
}

impl EnergyParams {
    /// HBM2-class energy: ~4 pJ/bit, cheap activates (short wires).
    pub const fn hbm2() -> Self {
        Self {
            pj_per_bit: 4.0,
            pj_per_activate: 900.0,
            background_mw: 350.0,
        }
    }

    /// DDR3-class energy: ~20 pJ/bit, expensive activates and termination.
    pub const fn ddr3() -> Self {
        Self {
            pj_per_bit: 20.0,
            pj_per_activate: 2500.0,
            background_mw: 700.0,
        }
    }

    /// Energy in picojoules for `bytes` transferred, `activates` row
    /// activations and `seconds` of elapsed wall-clock.
    pub fn energy_pj(&self, bytes: u64, activates: u64, seconds: f64) -> f64 {
        let transfer = self.pj_per_bit * (bytes as f64) * 8.0;
        let activate = self.pj_per_activate * activates as f64;
        let background = self.background_mw * 1e-3 * seconds * 1e12;
        transfer + activate + background
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm_is_cheaper_per_bit_than_ddr3() {
        assert!(EnergyParams::hbm2().pj_per_bit < EnergyParams::ddr3().pj_per_bit);
    }

    #[test]
    fn energy_components_add_up() {
        let e = EnergyParams {
            pj_per_bit: 1.0,
            pj_per_activate: 10.0,
            background_mw: 0.0,
        };
        // 8 bytes = 64 bits at 1 pJ/bit plus 2 activates at 10 pJ.
        assert!((e.energy_pj(8, 2, 0.0) - 84.0).abs() < 1e-9);
    }

    #[test]
    fn background_energy_scales_with_time() {
        let e = EnergyParams {
            pj_per_bit: 0.0,
            pj_per_activate: 0.0,
            background_mw: 1000.0, // 1 W
        };
        // 1 W for 1 s = 1 J = 1e12 pJ.
        assert!((e.energy_pj(0, 0, 1.0) - 1e12).abs() < 1.0);
    }
}
