//! DRAM device statistics.

use core::fmt;

use silcfm_types::stats::ratio;

/// Counters accumulated by a [`crate::DramModel`] over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Logical read transactions.
    pub reads: u64,
    /// Logical write transactions.
    pub writes: u64,
    /// Bytes read from the device.
    pub bytes_read: u64,
    /// Bytes written to the device.
    pub bytes_written: u64,
    /// 64 B beats that hit an open row.
    pub row_hits: u64,
    /// Beats that found the bank idle (activate only).
    pub row_misses: u64,
    /// Beats that required precharge + activate.
    pub row_conflicts: u64,
    /// Memory cycles the data buses were occupied (summed over channels).
    pub bus_busy_cycles: u64,
    /// Beats NACKed by a hard-failed channel (fault injection; the data
    /// never moved, only the penalty was charged).
    pub nacks: u64,
    /// Beats whose arrival was delayed by a transient channel stall.
    pub stall_delays: u64,
}

impl DramStats {
    /// Total bytes transferred in either direction.
    pub const fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Row activations performed (misses + conflicts).
    pub const fn activations(&self) -> u64 {
        self.row_misses + self.row_conflicts
    }

    /// Fraction of beats that hit an open row.
    pub fn row_hit_rate(&self) -> f64 {
        ratio(
            self.row_hits,
            self.row_hits + self.row_misses + self.row_conflicts,
        )
    }

    /// Average data-bus utilization over `elapsed_mem_cycles`, across
    /// `channels` channels. Values are in `[0, 1]` for a causally consistent
    /// trace.
    pub fn bus_utilization(&self, elapsed_mem_cycles: u64, channels: u32) -> f64 {
        ratio(
            self.bus_busy_cycles,
            elapsed_mem_cycles.saturating_mul(u64::from(channels)),
        )
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl fmt::Display for DramStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads={} writes={} bytes={} row_hit_rate={:.3}",
            self.reads,
            self.writes,
            self.total_bytes(),
            self.row_hit_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = DramStats {
            reads: 10,
            writes: 5,
            bytes_read: 640,
            bytes_written: 320,
            row_hits: 9,
            row_misses: 3,
            row_conflicts: 3,
            bus_busy_cycles: 50,
            nacks: 0,
            stall_delays: 0,
        };
        assert_eq!(s.total_bytes(), 960);
        assert_eq!(s.activations(), 6);
        assert!((s.row_hit_rate() - 0.6).abs() < 1e-12);
        assert!((s.bus_utilization(100, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = DramStats::default();
        assert_eq!(s.row_hit_rate(), 0.0);
        assert_eq!(s.bus_utilization(0, 8), 0.0);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = DramStats {
            reads: 1,
            ..Default::default()
        };
        s.reset();
        assert_eq!(s, DramStats::default());
    }

    #[test]
    fn display_nonempty() {
        assert!(DramStats::default().to_string().contains("reads=0"));
    }
}
