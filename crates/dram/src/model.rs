//! The top-level DRAM device model.

use silcfm_types::fault::{ChannelFault, FaultEffect};
use silcfm_types::obs::{Event, FaultClass, NullTracer, RowKind, TraceEvent, Tracer};

use crate::bank::RowOutcome;
use crate::channel::{Channel, ChannelHealth};
use crate::config::DramConfig;
use crate::mapping::{AddressMapper, ChunkWalker, CHANNEL_INTERLEAVE_BYTES};
use crate::stats::DramStats;

/// The observability spelling of a row-buffer outcome.
const fn row_kind(outcome: RowOutcome) -> RowKind {
    match outcome {
        RowOutcome::Hit => RowKind::Hit,
        RowOutcome::Miss => RowKind::Miss,
        RowOutcome::Conflict => RowKind::Conflict,
    }
}

/// An event-driven model of one DRAM device (the NM or the FM).
///
/// The public interface works in **CPU cycles**; internally the model runs on
/// the memory-bus clock (`cfg.cpu_cycles_per_mem_cycle` CPU cycles per bus
/// cycle). Transactions larger than the 64 B channel-interleave granularity
/// are split into per-channel beats that proceed in parallel across
/// channels; the transaction completes when its last beat completes.
///
/// # Example
///
/// ```
/// use silcfm_dram::{DramConfig, DramModel};
/// let mut fm = DramModel::new(DramConfig::ddr3());
/// let t1 = fm.read(0, 0, 64);
/// let t2 = fm.read(t1, 0, 64); // same row: faster
/// assert!(t2 - t1 < t1);
/// ```
#[derive(Debug, Clone)]
pub struct DramModel<T: Tracer = NullTracer> {
    cfg: DramConfig,
    mapper: AddressMapper,
    channels: Vec<Channel>,
    stats: DramStats,
    // Observability (a ZST plus an empty Vec when T = NullTracer).
    tracer: T,
    /// Per-channel `busy_cycles` at the previous queue sample, so each
    /// `QueueDepthSample` carries the busy delta of its epoch.
    last_busy: Vec<u64>,
}

impl DramModel {
    /// Creates an untraced device model from a configuration.
    pub fn new(cfg: DramConfig) -> Self {
        DramModel::with_tracer(cfg, NullTracer)
    }
}

impl<T: Tracer> DramModel<T> {
    /// Creates a device model that records command-issue and queue-depth
    /// events into `tracer`; see [`DramModel::new`] for the untraced
    /// spelling.
    pub fn with_tracer(cfg: DramConfig, tracer: T) -> Self {
        Self {
            mapper: AddressMapper::new(&cfg),
            channels: (0..cfg.channels).map(|_| Channel::new(&cfg)).collect(),
            stats: DramStats::default(),
            tracer,
            last_busy: vec![0; cfg.channels as usize],
            cfg,
        }
    }

    /// The device configuration.
    pub const fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub const fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Performs a read of `bytes` at device-local address `addr`, arriving at
    /// CPU-cycle `now`. Returns the CPU-cycle completion time of the last
    /// beat.
    pub fn read(&mut self, now: u64, addr: u64, bytes: u32) -> u64 {
        self.stats.reads += 1;
        self.stats.bytes_read += u64::from(bytes);
        self.transfer(now, addr, bytes, false)
    }

    /// Performs a write of `bytes` at device-local address `addr`, arriving
    /// at CPU-cycle `now`. Writes are posted: the returned completion time is
    /// when the data has drained to the array, which callers typically use
    /// only for accounting.
    pub fn write(&mut self, now: u64, addr: u64, bytes: u32) -> u64 {
        self.stats.writes += 1;
        self.stats.bytes_written += u64::from(bytes);
        self.transfer(now, addr, bytes, true)
    }

    /// Performs a low-priority streamed transfer (migration, prefetch or
    /// other management traffic) of `bytes` at device-local address `addr`.
    ///
    /// Streamed transfers consume data-bus bandwidth and write-queue slots
    /// but bypass the bank/row model: controllers schedule such traffic in
    /// row-sorted batches during idle slots, so it contends with demand for
    /// *bandwidth* without inflating demand *latency* the way a same-queue
    /// FIFO would.
    pub fn stream(&mut self, now: u64, addr: u64, bytes: u32, is_write: bool) -> u64 {
        if is_write {
            self.stats.writes += 1;
            self.stats.bytes_written += u64::from(bytes);
        } else {
            self.stats.reads += 1;
            self.stats.bytes_read += u64::from(bytes);
        }
        // Route through the bus-only path used for writes.
        self.transfer(now, addr, bytes, true)
    }

    /// Energy consumed so far in picojoules, given the elapsed CPU cycles of
    /// the run (for background power).
    pub fn energy_pj(&self, elapsed_cpu_cycles: u64) -> f64 {
        let cpu_hz = f64::from(self.cfg.bus_mhz) * 1e6 * self.cfg.cpu_cycles_per_mem_cycle as f64;
        let seconds = elapsed_cpu_cycles as f64 / cpu_hz;
        self.cfg
            .energy
            .energy_pj(self.stats.total_bytes(), self.stats.activations(), seconds)
    }

    /// Resets all channel state and statistics.
    pub fn reset(&mut self) {
        self.channels = (0..self.cfg.channels)
            .map(|_| Channel::new(&self.cfg))
            .collect();
        self.stats.reset();
        self.last_busy.fill(0);
    }

    /// Emits one [`Event::QueueDepthSample`] per channel, stamped at CPU
    /// cycle `now_cpu`: outstanding read/write queue entries plus the data
    /// bus's busy cycles since the previous sample. A no-op when tracing
    /// is disabled.
    pub fn sample_queues(&mut self, now_cpu: u64) {
        if !T::ENABLED {
            return;
        }
        let now_mem = now_cpu / self.cfg.cpu_cycles_per_mem_cycle;
        for (i, (channel, last)) in self
            .channels
            .iter()
            .zip(self.last_busy.iter_mut())
            .enumerate()
        {
            let busy = channel.busy_cycles();
            let delta = busy.saturating_sub(*last);
            *last = busy;
            let (reads, writes) = channel.queue_depths(now_mem);
            self.tracer.record(
                now_cpu,
                Event::QueueDepthSample {
                    channel: i as u8,
                    reads: reads.min(u16::MAX as usize) as u16,
                    writes: writes.min(u16::MAX as usize) as u16,
                    busy: delta.min(u64::from(u32::MAX)) as u32,
                },
            );
        }
    }

    /// Summed outstanding (read, write) queue entries across channels at
    /// CPU cycle `now_cpu`, for the epoch time series.
    pub fn queue_depth_totals(&self, now_cpu: u64) -> (u64, u64) {
        let now_mem = now_cpu / self.cfg.cpu_cycles_per_mem_cycle;
        self.channels.iter().fold((0, 0), |(r, w), channel| {
            let (cr, cw) = channel.queue_depths(now_mem);
            (r + cr as u64, w + cw as u64)
        })
    }

    /// Applies a channel fault arriving at CPU cycle `now_cpu` and returns
    /// its effect classification (DESIGN.md §10).
    ///
    /// Stall durations in the fault are CPU cycles and are converted to the
    /// memory clock here. Faults naming a channel the device does not have
    /// are absorbed as [`FaultEffect::Masked`].
    pub fn inject_channel_fault(&mut self, fault: ChannelFault, now_cpu: u64) -> FaultEffect {
        let ratio = self.cfg.cpu_cycles_per_mem_cycle;
        let now_mem = now_cpu / ratio;
        let Some(channel) = self.channels.get_mut(fault.channel() as usize) else {
            return FaultEffect::Masked;
        };
        let (class, effect) = match fault {
            ChannelFault::Stall {
                duration_cycles, ..
            } => {
                let until = now_mem + duration_cycles.div_ceil(ratio).max(1);
                channel.set_health(ChannelHealth::Stalled { until });
                // Timing-only: every access still completes, just later.
                (FaultClass::ChannelStall, FaultEffect::Corrected)
            }
            ChannelFault::Fail { .. } => {
                channel.set_health(ChannelHealth::Failed);
                // Service survives through the NACK-and-retry path; no data
                // is lost, so the failure is recovered rather than corrected.
                (FaultClass::ChannelFail, FaultEffect::Recovered)
            }
            ChannelFault::Repair { .. } => {
                let effect = if channel.health() == ChannelHealth::Healthy {
                    FaultEffect::Masked
                } else {
                    channel.set_health(ChannelHealth::Healthy);
                    FaultEffect::Corrected
                };
                (FaultClass::ChannelRepair, effect)
            }
        };
        if T::ENABLED {
            self.tracer.record(
                now_cpu,
                Event::FaultInjected {
                    kind: class,
                    target: u32::from(fault.channel()),
                },
            );
        }
        effect
    }

    /// Health of channel `ch`, or `None` for a channel the device lacks
    /// (diagnostics and the chaos harness).
    pub fn channel_health(&self, ch: u32) -> Option<ChannelHealth> {
        self.channels.get(ch as usize).map(Channel::health)
    }

    /// Takes the buffered trace events (oldest first).
    pub fn drain_trace(&mut self) -> Vec<TraceEvent> {
        self.tracer.drain()
    }

    /// Events discarded because the trace buffer was full.
    pub fn trace_dropped(&self) -> u64 {
        self.tracer.dropped()
    }

    fn transfer(&mut self, now_cpu: u64, addr: u64, bytes: u32, is_write: bool) -> u64 {
        let ratio = self.cfg.cpu_cycles_per_mem_cycle;
        // The CPU:bus clock ratio is 4 in every Table II configuration, so
        // the rounding division reduces to a shift.
        let now_mem = if ratio.is_power_of_two() {
            (now_cpu + ratio - 1) >> ratio.trailing_zeros()
        } else {
            now_cpu.div_ceil(ratio)
        };
        let mut last_completion = now_mem;

        let end = addr + u64::from(bytes);
        let mut cursor = addr;
        // One decode for the whole transfer; the walker's increments track
        // the channel rotation and row crossings of consecutive chunks.
        let mut walker = ChunkWalker::new(&self.mapper, addr);
        while cursor < end {
            let chunk_end = ((cursor / CHANNEL_INTERLEAVE_BYTES) + 1) * CHANNEL_INTERLEAVE_BYTES;
            let chunk_bytes = (chunk_end.min(end) - cursor) as u32;
            let loc = walker.location();
            let burst = self.cfg.burst_cycles(chunk_bytes);
            // The mapper reduces every address modulo `cfg.channels`, so the
            // probe cannot miss; breaking keeps the walk panic-free anyway.
            let Some(channel) = self.channels.get_mut(loc.channel as usize) else {
                debug_assert!(false, "mapper yields channel < cfg.channels");
                break;
            };
            let acc = channel.access(now_mem, loc, burst, is_write, &self.cfg);
            if T::ENABLED {
                self.tracer.record(
                    now_cpu,
                    Event::DramCmdIssue {
                        channel: loc.channel as u8,
                        write: is_write,
                        outcome: row_kind(acc.outcome),
                    },
                );
            }
            // Row-buffer statistics describe the read stream; writes are
            // batch-drained and bypass the bank model (see `Channel`), and a
            // NACKed beat never reached a bank at all.
            if acc.nacked {
                self.stats.nacks += 1;
            } else if !is_write {
                match acc.outcome {
                    RowOutcome::Hit => self.stats.row_hits += 1,
                    RowOutcome::Miss => self.stats.row_misses += 1,
                    RowOutcome::Conflict => self.stats.row_conflicts += 1,
                }
            }
            if acc.stalled {
                self.stats.stall_delays += 1;
            }
            self.stats.bus_busy_cycles += acc.burst;
            last_completion = last_completion.max(acc.completion);
            cursor = chunk_end.min(end);
            walker.advance();
        }
        last_completion * ratio
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_latency_components() {
        let cfg = DramConfig::ddr3();
        let mut m = DramModel::new(cfg);
        let done = m.read(0, 0, 64);
        // Row miss: tRCD + tCAS + burst(4) memory cycles, ×4 CPU cycles.
        let expected = (cfg.timings.row_miss_latency() + 4) * 4;
        assert_eq!(done, expected);
    }

    #[test]
    fn row_hit_is_faster_than_miss() {
        let mut m = DramModel::new(DramConfig::ddr3());
        let t1 = m.read(0, 0, 64);
        let t2 = m.read(t1, 0, 64);
        assert!(t2 - t1 < t1);
        assert_eq!(m.stats().row_hits, 1);
        assert_eq!(m.stats().row_misses, 1);
    }

    #[test]
    fn large_transfer_spreads_across_channels() {
        let cfg = DramConfig::hbm2();
        let mut m = DramModel::new(cfg);
        // 2 KB = 32 beats over 8 channels = 4 beats per channel.
        let done = m.read(0, 0, 2048);
        // Each channel: miss latency + 4 bursts of 2 cycles = 20+8 = 28 mem cycles.
        let expected = (cfg.timings.row_miss_latency() + 4 * 2) * 4;
        assert_eq!(done, expected);
        assert_eq!(m.stats().row_hits + m.stats().row_misses, 32);
    }

    #[test]
    fn hbm_moves_2kb_faster_than_ddr3() {
        let mut nm = DramModel::new(DramConfig::hbm2());
        let mut fm = DramModel::new(DramConfig::ddr3());
        assert!(nm.read(0, 0, 2048) < fm.read(0, 0, 2048));
    }

    #[test]
    fn sustained_streaming_approaches_peak_bandwidth() {
        let cfg = DramConfig::hbm2();
        let mut m = DramModel::new(cfg);
        // Issue the whole 1 MiB stream at time 0; the finite read queues
        // provide back-pressure and the model pipelines the beats.
        let total_bytes = 1u64 << 20;
        let mut t = 0u64;
        let mut addr = 0u64;
        while addr < total_bytes {
            t = t.max(m.read(0, addr, 64));
            addr += 64;
        }
        // Achieved bandwidth in bytes per CPU cycle vs peak.
        let cpu_hz = 3.2e9;
        let seconds = t as f64 / cpu_hz;
        let gbs = total_bytes as f64 / seconds / 1e9;
        let peak = cfg.peak_bandwidth_gbs();
        assert!(
            gbs > peak * 0.5,
            "streaming should reach at least half of peak: {gbs:.1} vs {peak:.1} GB/s"
        );
        assert!(gbs <= peak * 1.01, "cannot exceed peak: {gbs:.1} GB/s");
    }

    #[test]
    fn writes_are_counted() {
        let mut m = DramModel::new(DramConfig::ddr3());
        let _ = m.write(0, 0, 64);
        assert_eq!(m.stats().writes, 1);
        assert_eq!(m.stats().bytes_written, 64);
    }

    #[test]
    fn energy_grows_with_traffic() {
        let mut m = DramModel::new(DramConfig::ddr3());
        let e0 = m.energy_pj(1000);
        let _ = m.read(0, 0, 2048);
        let e1 = m.energy_pj(1000);
        assert!(e1 > e0);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut m = DramModel::new(DramConfig::ddr3());
        let t1 = m.read(0, 0, 64);
        m.reset();
        assert_eq!(m.stats().reads, 0);
        assert_eq!(
            m.read(0, 0, 64),
            t1,
            "reset model repeats first-access timing"
        );
    }

    #[test]
    fn arrival_time_is_respected() {
        let mut m = DramModel::new(DramConfig::ddr3());
        let done = m.read(10_000, 0, 64);
        assert!(done > 10_000);
    }

    #[test]
    fn failed_channel_nacks_reads_until_repaired() {
        let cfg = DramConfig::ddr3();
        let mut m = DramModel::new(cfg);
        let healthy = m.read(0, 0, 64);
        m.reset();
        assert_eq!(
            m.inject_channel_fault(ChannelFault::Fail { channel: 0 }, 0),
            FaultEffect::Recovered
        );
        assert_eq!(m.channel_health(0), Some(ChannelHealth::Failed));
        // Address 0 maps to channel 0: the read bounces with the penalty.
        let nacked = m.read(0, 0, 64);
        assert_eq!(m.stats().nacks, 1);
        assert_eq!(m.stats().row_hits + m.stats().row_misses, 0);
        assert_eq!(
            nacked,
            2 * cfg.timings.row_conflict_latency() * cfg.cpu_cycles_per_mem_cycle
        );
        // Other channels are unaffected.
        let other = m.read(0, 64, 64);
        assert!(!matches!(m.channel_health(1), Some(ChannelHealth::Failed)));
        assert!(other >= healthy);
        assert_eq!(
            m.inject_channel_fault(ChannelFault::Repair { channel: 0 }, 0),
            FaultEffect::Corrected
        );
        m.reset();
        assert_eq!(m.read(0, 0, 64), healthy);
    }

    #[test]
    fn stalled_channel_delays_and_self_heals() {
        let cfg = DramConfig::ddr3();
        let mut m = DramModel::new(cfg);
        let healthy = m.read(0, 0, 64);
        m.reset();
        assert_eq!(
            m.inject_channel_fault(
                ChannelFault::Stall {
                    channel: 0,
                    duration_cycles: 4_000,
                },
                0,
            ),
            FaultEffect::Corrected
        );
        // The beat arrives at CPU cycle 0 but is held to the stall horizon.
        let delayed = m.read(0, 0, 64);
        assert!(delayed >= 4_000, "stall must delay completion: {delayed}");
        assert_eq!(m.stats().stall_delays, 1);
        // A later arrival finds the channel healed.
        let after = m.read(40_000, 0, 64);
        assert_eq!(m.channel_health(0), Some(ChannelHealth::Healthy));
        assert!(after - 40_000 <= healthy);
    }

    #[test]
    fn faults_on_absent_channels_are_masked() {
        let mut m = DramModel::new(DramConfig::ddr3());
        assert_eq!(
            m.inject_channel_fault(ChannelFault::Fail { channel: 200 }, 0),
            FaultEffect::Masked
        );
        // Repairing an already-healthy channel has no observable target.
        assert_eq!(
            m.inject_channel_fault(ChannelFault::Repair { channel: 0 }, 0),
            FaultEffect::Masked
        );
        assert_eq!(m.channel_health(200), None);
    }
}
