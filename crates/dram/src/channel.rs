//! Per-channel state: banks, shared data bus, and read/write queues.

use std::collections::VecDeque;

use crate::bank::{Bank, RowOutcome};
use crate::config::DramConfig;
use crate::mapping::Location;

/// Health of one channel under fault injection (DESIGN.md §10).
///
/// A healthy channel serves accesses normally. A stalled channel holds
/// arrivals until a known memory cycle and then heals itself (a recoverable
/// glitch: retraining, refresh storm, thermal throttle). A failed channel
/// NACKs every access after a fixed penalty until an explicit repair fault
/// restores it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChannelHealth {
    /// Normal service.
    #[default]
    Healthy,
    /// Transiently stalled: arrivals are delayed to `until`, after which
    /// the channel heals itself.
    Stalled {
        /// Memory cycle at which service resumes.
        until: u64,
    },
    /// Hard-failed: every access is NACKed until an explicit repair.
    Failed,
}

/// One DRAM channel: a set of banks behind a shared command/data bus, with
/// finite read and write queues providing back-pressure.
///
/// All times are memory cycles.
#[derive(Debug, Clone)]
pub struct Channel {
    banks: Vec<Bank>,
    bus_free_at: u64,
    read_inflight: VecDeque<u64>,
    write_inflight: VecDeque<u64>,
    read_cap: usize,
    write_cap: usize,
    /// Total memory cycles the data bus has been held (for occupancy
    /// metrics; the observability layer samples deltas of this).
    busy_cycles: u64,
    /// Fault-injection health state; `Healthy` unless a fault plane says
    /// otherwise, so the faults-off path is untouched.
    health: ChannelHealth,
}

/// Timing result of a channel access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelAccess {
    /// Memory-cycle timestamp at which the transfer finishes.
    pub completion: u64,
    /// Row-buffer outcome at the target bank.
    pub outcome: RowOutcome,
    /// Memory cycles the data bus was held.
    pub burst: u64,
    /// The access was NACKed by a hard-failed channel (no data moved).
    pub nacked: bool,
    /// The access's arrival was delayed by a transient channel stall.
    pub stalled: bool,
}

impl Channel {
    /// Creates a channel with the bank count and queue depths of `cfg`.
    pub fn new(cfg: &DramConfig) -> Self {
        Self {
            banks: vec![Bank::new(); (cfg.ranks * cfg.banks) as usize],
            bus_free_at: 0,
            read_inflight: VecDeque::new(),
            write_inflight: VecDeque::new(),
            read_cap: cfg.read_queue as usize,
            write_cap: cfg.write_queue as usize,
            busy_cycles: 0,
            health: ChannelHealth::Healthy,
        }
    }

    /// Performs one transfer of `burst` bus cycles to `loc`, arriving at
    /// memory-cycle `at`.
    pub fn access(
        &mut self,
        at: u64,
        loc: Location,
        burst: u64,
        is_write: bool,
        cfg: &DramConfig,
    ) -> ChannelAccess {
        let (at, stalled) = match self.health {
            ChannelHealth::Healthy => (at, false),
            ChannelHealth::Stalled { until } => {
                if at >= until {
                    // The stall window has passed: self-heal.
                    self.health = ChannelHealth::Healthy;
                    (at, false)
                } else {
                    (until, true)
                }
            }
            ChannelHealth::Failed => {
                // NACK: the access bounces after a fixed penalty (roughly a
                // worst-case bank turnaround) without touching bus, banks or
                // queues. The retry goes elsewhere or waits for repair.
                return ChannelAccess {
                    completion: at + 2 * cfg.timings.row_conflict_latency(),
                    outcome: RowOutcome::Conflict,
                    burst: 0,
                    nacked: true,
                    stalled: false,
                };
            }
        };
        if is_write {
            // Writes are buffered and drained in row-sorted batches by real
            // controllers (write-combining), so they are modelled as pure
            // bus-bandwidth consumers: they occupy the data bus for their
            // burst but do not perturb per-bank row-buffer state, and they
            // apply back-pressure only through the finite write queue.
            let admitted = Self::admit(&mut self.write_inflight, self.write_cap, at);
            let data_start = admitted.max(self.bus_free_at);
            let completion = data_start + burst;
            self.bus_free_at = completion;
            self.busy_cycles += burst;
            self.write_inflight.push_back(completion);
            return ChannelAccess {
                completion,
                outcome: RowOutcome::Hit,
                burst,
                nacked: false,
                stalled,
            };
        }

        let admitted = Self::admit(&mut self.read_inflight, self.read_cap, at);
        let bank = &mut self.banks[loc.bank_in_channel(cfg)];
        let (data_at, outcome) = bank.access(admitted, loc.row, &cfg.timings);
        let data_start = data_at.max(self.bus_free_at);
        let completion = data_start + burst;
        self.bus_free_at = completion;
        self.busy_cycles += burst;
        self.read_inflight.push_back(completion);
        ChannelAccess {
            completion,
            outcome,
            burst,
            nacked: false,
            stalled,
        }
    }

    /// Current fault-injection health state.
    pub const fn health(&self) -> ChannelHealth {
        self.health
    }

    /// Sets the health state (called by the fault plane).
    pub fn set_health(&mut self, health: ChannelHealth) {
        self.health = health;
    }

    /// Earliest time the shared data bus is free.
    pub const fn bus_free_at(&self) -> u64 {
        self.bus_free_at
    }

    /// Number of reads currently in flight (for tests/diagnostics).
    pub fn reads_in_flight(&self) -> usize {
        self.read_inflight.len()
    }

    /// Total memory cycles the data bus has been held.
    pub const fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Entries still outstanding (completion after `now`) in the read and
    /// write queues, for queue-depth sampling.
    pub fn queue_depths(&self, now: u64) -> (usize, usize) {
        let depth = |q: &VecDeque<u64>| q.iter().filter(|&&t| t > now).count();
        (depth(&self.read_inflight), depth(&self.write_inflight))
    }

    /// Queue admission: drains completed entries and, if the queue is full,
    /// stalls the arrival until a slot frees up. Completion times are pushed
    /// in increasing order because the channel data bus serializes transfer
    /// ends, so the front entries are always the oldest.
    fn admit(queue: &mut VecDeque<u64>, cap: usize, at: u64) -> u64 {
        while queue.front().is_some_and(|&t| t <= at) {
            queue.pop_front();
        }
        let mut admitted = at;
        if queue.len() >= cap {
            // Wait for the entry whose completion frees the needed slot.
            admitted = queue[queue.len() - cap];
            while queue.front().is_some_and(|&t| t <= admitted) {
                queue.pop_front();
            }
        }
        admitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::AddressMapper;

    fn setup() -> (Channel, DramConfig, AddressMapper) {
        let cfg = DramConfig::ddr3();
        (Channel::new(&cfg), cfg, AddressMapper::new(&cfg))
    }

    #[test]
    fn bus_serializes_back_to_back_row_hits() {
        let (mut ch, cfg, m) = setup();
        let loc = m.decode(0);
        let a = ch.access(0, loc, 4, false, &cfg);
        let b = ch.access(0, loc, 4, false, &cfg);
        assert_eq!(a.outcome, RowOutcome::Miss);
        assert_eq!(b.outcome, RowOutcome::Hit);
        // Second transfer cannot start before the first releases the bus.
        assert!(b.completion >= a.completion + 4);
    }

    #[test]
    fn different_banks_overlap_commands() {
        let (mut ch, cfg, m) = setup();
        // Two rows in different banks of channel 0.
        let stride = cfg.row_bytes * u64::from(cfg.channels);
        let l0 = m.decode(0);
        let l1 = m.decode(stride);
        assert_ne!(l0.bank, l1.bank);
        let a = ch.access(0, l0, 4, false, &cfg);
        let b = ch.access(0, l1, 4, false, &cfg);
        // Bank 1's activate overlaps bank 0's access; only the bus serializes,
        // so the second completes soon after the first.
        assert!(b.completion <= a.completion.max(b.burst + cfg.timings.row_miss_latency()) + 4);
    }

    #[test]
    fn full_read_queue_back_pressures() {
        let (mut ch, cfg, m) = setup();
        let loc = m.decode(0);
        // Saturate the 32-entry read queue with same-cycle arrivals.
        let mut completions = Vec::new();
        for _ in 0..33 {
            completions.push(ch.access(0, loc, 4, false, &cfg).completion);
        }
        // The 33rd must have been admitted no earlier than the 1st completion.
        assert!(completions[32] > completions[0]);
        assert!(ch.reads_in_flight() <= 33);
    }

    #[test]
    fn writes_use_separate_queue() {
        let (mut ch, cfg, m) = setup();
        let loc = m.decode(0);
        for _ in 0..32 {
            ch.access(0, loc, 4, false, &cfg);
        }
        // A write is not blocked by the full read queue (only by the bus).
        let w = ch.access(0, loc, 4, true, &cfg);
        assert!(w.completion > 0);
    }

    #[test]
    fn admit_drains_completed() {
        let mut q = VecDeque::from(vec![5u64, 10, 15]);
        let admitted = Channel::admit(&mut q, 8, 12);
        assert_eq!(admitted, 12);
        assert_eq!(q.len(), 1); // only the 15 remains
    }

    #[test]
    fn failed_channel_nacks_without_bus_activity() {
        let (mut ch, cfg, m) = setup();
        let loc = m.decode(0);
        ch.set_health(ChannelHealth::Failed);
        let a = ch.access(100, loc, 4, false, &cfg);
        assert!(a.nacked);
        assert_eq!(a.burst, 0);
        assert_eq!(a.completion, 100 + 2 * cfg.timings.row_conflict_latency());
        assert_eq!(ch.busy_cycles(), 0);
        assert_eq!(ch.reads_in_flight(), 0);
        // Failure persists until an explicit repair.
        assert!(ch.access(1_000_000, loc, 4, false, &cfg).nacked);
        ch.set_health(ChannelHealth::Healthy);
        assert!(!ch.access(1_000_001, loc, 4, false, &cfg).nacked);
    }

    #[test]
    fn stalled_channel_delays_arrivals_then_self_heals() {
        let (mut ch, cfg, m) = setup();
        let loc = m.decode(0);
        ch.set_health(ChannelHealth::Stalled { until: 500 });
        let a = ch.access(0, loc, 4, false, &cfg);
        assert!(a.stalled && !a.nacked);
        // Arrival was pushed to the end of the stall window.
        assert!(a.completion >= 500 + cfg.timings.row_miss_latency() + 4);
        // An arrival past the window heals the channel in place.
        let b = ch.access(5_000, loc, 4, false, &cfg);
        assert!(!b.stalled);
        assert_eq!(ch.health(), ChannelHealth::Healthy);
    }

    #[test]
    fn admit_waits_when_full() {
        let mut q: VecDeque<u64> = (1..=4).map(|i| i * 10).collect();
        let admitted = Channel::admit(&mut q, 4, 5);
        // Queue of cap 4 is full; must wait until the first (t=10) completes.
        assert_eq!(admitted, 10);
    }
}
