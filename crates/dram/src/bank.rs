//! Per-bank open-row state and ready-time tracking.

use crate::config::DramTimings;

/// Result class of a column access with respect to the row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowOutcome {
    /// The requested row was already open.
    Hit,
    /// The bank was idle (no open row) — activate needed.
    Miss,
    /// A different row was open — precharge + activate needed.
    Conflict,
}

/// One DRAM bank under an open-page policy.
///
/// Times are in memory cycles on the device's clock. Column accesses to an
/// open row pipeline freely (the channel's data bus is the serializing
/// resource); only activates and precharges occupy the bank, and precharge
/// respects `tRAS` since the previous activate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Bank {
    open_row: Option<u64>,
    /// Earliest time the row is open and column commands may issue.
    ready_at: u64,
    /// Time of the last activate (for tRAS enforcement before precharge).
    activated_at: u64,
}

impl Bank {
    /// Creates an idle bank.
    pub const fn new() -> Self {
        Self {
            open_row: None,
            ready_at: 0,
            activated_at: 0,
        }
    }

    /// The currently open row, if any.
    pub const fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Earliest time a column command can issue.
    pub const fn ready_at(&self) -> u64 {
        self.ready_at
    }

    /// Performs a column access to `row` starting no earlier than `at`.
    ///
    /// Returns `(data_ready_time, outcome)`: the memory-cycle timestamp at
    /// which the first data beat can appear on the bus, and whether the
    /// access was a row hit, miss or conflict. The caller serializes the
    /// actual data transfer on the channel bus.
    pub fn access(&mut self, at: u64, row: u64, t: &DramTimings) -> (u64, RowOutcome) {
        let start = at.max(self.ready_at);
        let (data_at, outcome) = match self.open_row {
            Some(open) if open == row => (start + t.t_cas, RowOutcome::Hit),
            Some(_) => {
                // Precharge may not begin before tRAS has elapsed since the
                // last activate.
                let pre_start = start.max(self.activated_at + t.t_ras);
                let act_at = pre_start + t.t_rp;
                self.activated_at = act_at;
                self.ready_at = act_at + t.t_rcd;
                (act_at + t.t_rcd + t.t_cas, RowOutcome::Conflict)
            }
            None => {
                self.activated_at = start;
                self.ready_at = start + t.t_rcd;
                (start + t.t_rcd + t.t_cas, RowOutcome::Miss)
            }
        };
        self.open_row = Some(row);
        (data_at, outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: DramTimings = DramTimings::ddr3_1600();

    #[test]
    fn first_access_is_a_miss() {
        let mut b = Bank::new();
        let (data, outcome) = b.access(0, 5, &T);
        assert_eq!(outcome, RowOutcome::Miss);
        assert_eq!(data, T.t_rcd + T.t_cas);
        assert_eq!(b.open_row(), Some(5));
        assert_eq!(b.ready_at(), T.t_rcd);
    }

    #[test]
    fn same_row_hits_and_pipelines() {
        let mut b = Bank::new();
        let _ = b.access(0, 5, &T);
        let (data, outcome) = b.access(40, 5, &T);
        assert_eq!(outcome, RowOutcome::Hit);
        assert_eq!(data, 40 + T.t_cas);
        // Back-to-back hits do not serialize at the bank.
        let (data2, _) = b.access(40, 5, &T);
        assert_eq!(data2, data);
    }

    #[test]
    fn different_row_conflicts_and_respects_tras() {
        let mut b = Bank::new();
        let _ = b.access(0, 5, &T); // activate at 0
                                    // Request row 6 at time 14; precharge cannot start before tRAS=28.
        let (data, outcome) = b.access(14, 6, &T);
        assert_eq!(outcome, RowOutcome::Conflict);
        let expected = 28 + T.t_rp + T.t_rcd + T.t_cas;
        assert_eq!(data, expected);
        assert_eq!(b.open_row(), Some(6));
    }

    #[test]
    fn conflict_after_long_idle_skips_tras_wait() {
        let mut b = Bank::new();
        let _ = b.access(0, 5, &T);
        let (data, outcome) = b.access(1000, 6, &T);
        assert_eq!(outcome, RowOutcome::Conflict);
        assert_eq!(data, 1000 + T.row_conflict_latency());
    }

    #[test]
    fn column_command_waits_for_row_to_open() {
        let mut b = Bank::new();
        let _ = b.access(0, 5, &T); // row open at tRCD = 11
        let (data, outcome) = b.access(5, 5, &T);
        assert_eq!(outcome, RowOutcome::Hit);
        assert_eq!(
            data,
            T.t_rcd + T.t_cas,
            "column issues once the row is open"
        );
    }
}
