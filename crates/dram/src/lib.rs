//! Event-driven DRAM timing model for the SILC-FM simulator.
//!
//! This is the substrate that replaces Ramulator in the paper's setup. It is
//! a *resource-reservation* model rather than a per-cycle finite-state
//! machine: every bank tracks its open row and the time it next becomes
//! ready, every channel tracks data-bus availability and read/write queue
//! occupancy, and each transaction's completion time is computed analytically
//! against those timelines. This preserves what the paper's evaluation
//! depends on — row-buffer locality, bank conflicts, queueing delay and the
//! 4:1 NM:FM bandwidth ratio — while simulating tens of millions of requests
//! per second of host time.
//!
//! Two presets mirror Table II of the paper:
//!
//! * [`DramConfig::hbm2`] — 8 channels × 128-bit @ 800 MHz DDR (204.8 GB/s);
//! * [`DramConfig::ddr3`] — 4 channels × 64-bit @ 800 MHz DDR (51.2 GB/s).
//!
//! # Example
//!
//! ```
//! use silcfm_dram::{DramConfig, DramModel};
//!
//! let mut nm = DramModel::new(DramConfig::hbm2());
//! // A read at time 0 completes after activate + CAS + burst.
//! let done = nm.read(0, 0x1000, 64);
//! assert!(done > 0);
//! assert_eq!(nm.stats().reads, 1);
//! ```

pub mod bank;
pub mod channel;
pub mod config;
pub mod energy;
pub mod mapping;
pub mod model;
pub mod stats;

pub use channel::ChannelHealth;
pub use config::{DramConfig, DramTimings};
pub use energy::EnergyParams;
pub use mapping::{AddressMapper, ChunkWalker, Location};
pub use model::DramModel;
pub use stats::DramStats;
