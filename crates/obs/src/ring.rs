//! The fixed-capacity ring-buffer event tracer.

use silcfm_types::obs::{Event, TraceEvent, Tracer};

/// A [`Tracer`] that keeps the newest `capacity` events in a preallocated
/// ring buffer.
///
/// Recording never allocates after construction: once the buffer fills,
/// each new event overwrites the oldest one and bumps the drop counter.
/// Long runs therefore keep the most recent window of activity — the part
/// a debugging session actually wants — at a hard memory bound.
#[derive(Debug, Clone)]
pub struct RingTracer {
    buf: Vec<TraceEvent>,
    /// Index of the oldest event once the buffer has wrapped; equivalently
    /// the slot the next overwrite lands in.
    head: usize,
    dropped: u64,
}

impl RingTracer {
    /// Creates a tracer holding at most `capacity` events (must be > 0).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "ring tracer needs at least one slot");
        Self {
            buf: Vec::with_capacity(capacity),
            head: 0,
            dropped: 0,
        }
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The fixed capacity chosen at construction.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }
}

impl Tracer for RingTracer {
    const ENABLED: bool = true;

    #[inline]
    fn record(&mut self, cycle: u64, event: Event) {
        let e = TraceEvent { at: cycle, event };
        if self.buf.len() < self.buf.capacity() {
            self.buf.push(e);
        } else if let Some(slot) = self.buf.get_mut(self.head) {
            *slot = e;
            self.head += 1;
            if self.head == self.buf.len() {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }

    fn drain(&mut self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(self.buf.get(self.head..).unwrap_or(&[]));
        out.extend_from_slice(self.buf.get(..self.head).unwrap_or(&[]));
        self.buf.clear();
        self.head = 0;
        out
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64) -> Event {
        let _ = at;
        Event::PredictorHit
    }

    #[test]
    fn keeps_everything_under_capacity() {
        let mut t = RingTracer::with_capacity(8);
        for i in 0..5 {
            t.record(i, ev(i));
        }
        let events = t.drain();
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].at, 0);
        assert_eq!(events[4].at, 4);
        assert_eq!(t.dropped(), 0);
        assert!(t.is_empty());
    }

    #[test]
    fn wraparound_keeps_newest() {
        let mut t = RingTracer::with_capacity(4);
        for i in 0..10 {
            t.record(i, ev(i));
        }
        assert_eq!(t.dropped(), 6);
        let events = t.drain();
        let stamps: Vec<u64> = events.iter().map(|e| e.at).collect();
        assert_eq!(stamps, vec![6, 7, 8, 9]);
    }

    #[test]
    fn drain_resets_the_window() {
        let mut t = RingTracer::with_capacity(3);
        for i in 0..7 {
            t.record(i, ev(i));
        }
        let _ = t.drain();
        t.record(100, ev(100));
        let events = t.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].at, 100);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_rejected() {
        let _ = RingTracer::with_capacity(0);
    }
}
