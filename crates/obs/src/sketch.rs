//! Deterministic, mergeable quantile sketches over the u64 cycle domain.
//!
//! The paper's argument is a tail story — subblocked interleaving keeps hot
//! subblocks in NM so the *p99* of demand latency collapses, not just the
//! mean — and tails need principled quantiles. [`QuantileSketch`] is an
//! HdrHistogram-style log-bucketed histogram with [`SUB_BUCKETS`] linear
//! sub-buckets per power of two: fixed storage, no allocation after
//! construction, and every reported quantile within a relative error of
//! `1/SUB_BUCKETS` (3.125%) of the true order statistic.
//!
//! Determinism is the design center, not an afterthought:
//!
//! * **Recording** touches one counter plus four scalars — no floats, no
//!   wall clock, no allocation.
//! * **[`merge`](QuantileSketch::merge)** is pointwise wrapping addition of
//!   counters plus min/max folds: commutative and associative, so any
//!   permutation of partial sketches — `(epoch, lane)` shard folds,
//!   grid-job aggregation, journal resume — produces byte-identical state
//!   and therefore byte-identical reports (lint N1/F1 hold by
//!   construction).
//! * **[`encode`](QuantileSketch::encode)/[`decode`](QuantileSketch::decode)**
//!   round-trip the sketch through sparse whitespace-separated text fields,
//!   bit-exactly, for the experiment journal.
//!
//! [`LatencyReservoir`] rides along for validation: a fixed-capacity
//! uniform sample (Vitter's algorithm R) seeded from the run's SplitMix64
//! stream — never the wall clock — whose quantiles are *exact* while the
//! stream fits the capacity. The sketch property tests compare the two
//! within the sketch's error bound.
//!
//! [`LatencyBreakdown`] bundles one sketch per [`AccessClass`] so per-class
//! attribution (NM hit / FM hit / swap-path / bypass / locked /
//! fault-degraded) shares the machinery; classes are mutually exclusive and
//! total, so the merged union of the class sketches *is* the per-scheme
//! distribution.

use silcfm_types::rng::{Rng, Xoshiro256StarStar};
use silcfm_types::AccessClass;

/// Log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = 5;

/// Linear sub-buckets per power-of-two range. The relative error bound of
/// every reported quantile is `1/SUB_BUCKETS`.
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// Total counters: the first [`SUB_BUCKETS`] values are exact, then each of
/// the `64 - SUB_BITS` remaining exponent ranges splits into
/// [`SUB_BUCKETS`] linear sub-buckets (1920 total at `SUB_BITS = 5`).
pub const SKETCH_BUCKETS: usize = (SUB_BUCKETS as usize) * (64 - SUB_BITS as usize + 1);

/// Upper bound on the relative error of any quantile the sketch reports.
pub const REL_ERROR_BOUND: f64 = 1.0 / SUB_BUCKETS as f64;

/// Index of the bucket holding `v`. Values below [`SUB_BUCKETS`] map to
/// themselves (exact); above, the exponent picks a run of [`SUB_BUCKETS`]
/// sub-buckets and the top `SUB_BITS` mantissa bits pick the slot.
const fn bucket_of(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    let shift = exp - SUB_BITS;
    let sub = (v >> shift) - SUB_BUCKETS;
    (SUB_BUCKETS + shift as u64 * SUB_BUCKETS + sub) as usize
}

/// Inclusive upper edge of bucket `index` — the value the sketch reports
/// for quantiles landing in that bucket.
const fn bucket_high(index: usize) -> u64 {
    if index < SUB_BUCKETS as usize {
        return index as u64;
    }
    let k = (index - SUB_BUCKETS as usize) as u64;
    let shift = (k / SUB_BUCKETS) as u32;
    let sub = k % SUB_BUCKETS;
    let low = (SUB_BUCKETS + sub) << shift;
    // Parenthesized so the topmost bucket's edge (u64::MAX) can't overflow.
    low + ((1 << shift) - 1)
}

/// A deterministic, mergeable, relative-error-bounded quantile sketch over
/// u64 cycle counts. See the [module docs](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileSketch {
    counts: Box<[u64; SKETCH_BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// An empty sketch. Allocates its fixed counter array once; recording
    /// and merging never allocate.
    pub fn new() -> Self {
        Self {
            counts: Box::new([0; SKETCH_BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value. Constant time, allocation-free.
    pub fn record(&mut self, v: u64) {
        // `bucket_of` maps the whole u64 domain inside the table, so the
        // probe cannot miss; `get_mut` keeps the hot path panic-free anyway.
        if let Some(slot) = self.counts.get_mut(bucket_of(v)) {
            *slot = slot.wrapping_add(1);
        }
        self.count = self.count.wrapping_add(1);
        self.sum = self.sum.wrapping_add(v);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of recorded values.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (wrapping, like the counters).
    pub const fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, or 0 when empty.
    pub const fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub const fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` (clamped to `[0, 1]`): an upper bound on
    /// the true order statistic within [`REL_ERROR_BOUND`] relative error,
    /// clamped to the recorded maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q * n) as a rank in [1, n]; f64 has 53 mantissa bits, far
        // beyond any realistic sample count, so the rank is deterministic.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (index, &c) in self.counts.iter().enumerate() {
            cumulative = cumulative.wrapping_add(c);
            if cumulative >= rank {
                return bucket_high(index).min(self.max);
            }
        }
        self.max
    }

    /// p50 (median).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// p95.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// p99.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// p999 (99.9th percentile).
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// The report row `[p50, p95, p99, p999]`.
    pub fn percentiles(&self) -> [u64; 4] {
        [self.p50(), self.p95(), self.p99(), self.p999()]
    }

    /// Folds `other` into `self`. Pointwise wrapping addition plus min/max
    /// folds — commutative and associative, so any merge order over any
    /// partition of the sample stream yields byte-identical state.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.wrapping_add(*b);
        }
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Resets to the empty state, keeping the counter storage.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Appends the sketch as whitespace-separated fields:
    /// `count sum min max nnz (index count)*` — sparse (only non-zero
    /// buckets), deterministic, and bit-exact under
    /// [`decode`](Self::decode). Used by the experiment journal, whose
    /// tokens never contain whitespace.
    pub fn encode(&self, line: &mut String) {
        use core::fmt::Write as _;
        let nnz = self.counts.iter().filter(|&&c| c != 0).count();
        let _ = write!(
            line,
            " {} {} {} {} {nnz}",
            self.count, self.sum, self.min, self.max
        );
        for (index, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                let _ = write!(line, " {index} {c}");
            }
        }
    }

    /// Parses fields appended by [`encode`](Self::encode) from a token
    /// stream. Returns `None` on any shortfall or malformed field, exactly
    /// like the journal's record decoder.
    pub fn decode<'a, I: Iterator<Item = &'a str>>(it: &mut I) -> Option<Self> {
        let mut int = || it.next()?.parse::<u64>().ok();
        let mut sketch = Self::new();
        sketch.count = int()?;
        sketch.sum = int()?;
        sketch.min = int()?;
        sketch.max = int()?;
        let nnz = int()? as usize;
        if nnz > SKETCH_BUCKETS {
            return None;
        }
        for _ in 0..nnz {
            let index = int()? as usize;
            let c = int()?;
            *sketch.counts.get_mut(index)? = c;
        }
        Some(sketch)
    }
}

/// A fixed-capacity uniform sample of a latency stream (Vitter's algorithm
/// R), for exact small-N validation of [`QuantileSketch`]. Deterministic:
/// the replacement draws come from an in-tree generator seeded by the
/// caller — derive the seed from the run's SplitMix64 stream, never a
/// clock. While `seen() <= capacity` the reservoir holds *every* sample, so
/// its quantiles are exact order statistics.
#[derive(Debug, Clone)]
pub struct LatencyReservoir {
    samples: Vec<u64>,
    capacity: usize,
    seen: u64,
    rng: Xoshiro256StarStar,
}

impl LatencyReservoir {
    /// A reservoir holding at most `capacity` samples, with replacement
    /// draws seeded from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "a zero-capacity reservoir holds nothing");
        Self {
            samples: Vec::with_capacity(capacity),
            capacity,
            seen: 0,
            rng: Xoshiro256StarStar::seed_from_u64(seed),
        }
    }

    /// Offers one value to the reservoir.
    pub fn observe(&mut self, v: u64) {
        if self.samples.len() < self.capacity {
            self.samples.push(v);
        } else {
            // Keep each prefix uniformly represented: replace a random slot
            // with probability capacity / (seen + 1).
            let j = self.rng.gen_range(0..=self.seen);
            if let Some(slot) = self.samples.get_mut(j as usize) {
                *slot = v;
            }
        }
        self.seen += 1;
    }

    /// Total values offered so far.
    pub const fn seen(&self) -> u64 {
        self.seen
    }

    /// Whether the reservoir still holds every offered value, making its
    /// quantiles exact.
    pub fn is_exact(&self) -> bool {
        self.seen as usize <= self.capacity
    }

    /// The value at quantile `q` over the held samples (the exact order
    /// statistic while [`is_exact`](Self::is_exact)). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }
}

/// One [`QuantileSketch`] per [`AccessClass`], plus the derived overall
/// distribution. Classes are mutually exclusive and total, so
/// [`overall`](Self::overall) — the merged union of the class sketches —
/// is exactly the per-scheme demand-latency distribution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LatencyBreakdown {
    /// Per-class sketches, indexed by [`AccessClass::index`].
    pub class: [QuantileSketch; AccessClass::COUNT],
}

impl LatencyBreakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one classified sample.
    pub fn record(&mut self, class: AccessClass, v: u64) {
        // `index()` is dense over `AccessClass::COUNT`, so the probe cannot
        // miss; `get_mut` keeps the hot path panic-free anyway.
        if let Some(sketch) = self.class.get_mut(class.index()) {
            sketch.record(v);
        }
    }

    /// The sketch of one class.
    pub fn sketch(&self, class: AccessClass) -> &QuantileSketch {
        &self.class[class.index()]
    }

    /// The per-scheme distribution: the merged union of every class.
    pub fn overall(&self) -> QuantileSketch {
        let mut all = QuantileSketch::new();
        for sketch in &self.class {
            all.merge(sketch);
        }
        all
    }

    /// Total samples across all classes.
    pub fn count(&self) -> u64 {
        self.class.iter().map(QuantileSketch::count).sum()
    }

    /// Folds `other` in, class by class. Inherits the sketch merge's
    /// order-invariance.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.class.iter_mut().zip(other.class.iter()) {
            a.merge(b);
        }
    }

    /// Appends every class sketch as journal fields, in
    /// [`AccessClass::ALL`] order.
    pub fn encode(&self, line: &mut String) {
        for sketch in &self.class {
            sketch.encode(line);
        }
    }

    /// Parses fields appended by [`encode`](Self::encode).
    pub fn decode<'a, I: Iterator<Item = &'a str>>(it: &mut I) -> Option<Self> {
        let mut breakdown = Self::new();
        for sketch in &mut breakdown.class {
            *sketch = QuantileSketch::decode(it)?;
        }
        Some(breakdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silcfm_types::check::{forall, forall_cases};

    fn encoded(s: &QuantileSketch) -> String {
        let mut line = String::new();
        s.encode(&mut line);
        line
    }

    #[test]
    fn bucket_layout_is_monotone_and_exhaustive() {
        // Probe around every power of two plus extremes, sorted: bucket
        // indexes must be non-decreasing in the value, every high edge must
        // upper-bound its contents within the relative error, and the whole
        // domain must stay inside the table.
        let mut probes = vec![0u64, 1, u64::MAX - 1, u64::MAX];
        for shift in 1..64u32 {
            let p = 1u64 << shift;
            probes.extend([p - 1, p, p + 1, p + (p >> 1)]);
        }
        probes.sort_unstable();
        let mut last = 0usize;
        for &v in &probes {
            let index = bucket_of(v);
            assert!(index < SKETCH_BUCKETS, "index {index} out of table at {v}");
            assert!(index >= last, "index regressed at {v}");
            let high = bucket_high(index);
            assert!(high >= v, "high edge below value at {v}");
            assert!(
                (high - v) as f64 <= REL_ERROR_BOUND * v as f64 + 1.0,
                "edge {high} too far above {v}"
            );
            last = index;
        }
        assert_eq!(bucket_high(bucket_of(u64::MAX)), u64::MAX);
        // Small values are exact.
        for v in 0..SUB_BUCKETS {
            assert_eq!(bucket_high(bucket_of(v)), v);
        }
    }

    #[test]
    fn quantiles_hold_the_relative_error_bound() {
        forall_cases("sketch_relative_error", 64, |rng| {
            let mut sketch = QuantileSketch::new();
            let mut values: Vec<u64> = (0..500).map(|_| rng.gen_range(1u64..1_000_000)).collect();
            for &v in &values {
                sketch.record(v);
            }
            values.sort_unstable();
            for q in [0.5, 0.95, 0.99, 0.999] {
                let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
                let exact = values[rank - 1];
                let approx = sketch.quantile(q);
                assert!(
                    approx >= exact,
                    "sketch must upper-bound: {approx} < {exact}"
                );
                let err = (approx - exact) as f64 / exact as f64;
                assert!(
                    err <= REL_ERROR_BOUND + 1e-12,
                    "relative error {err} over bound at q={q}"
                );
            }
        });
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        forall_cases("sketch_quantile_monotone", 64, |rng| {
            let mut sketch = QuantileSketch::new();
            for _ in 0..200 {
                sketch.record(rng.next_u64() >> rng.gen_range(0u32..60));
            }
            let qs = [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0];
            for pair in qs.windows(2) {
                assert!(
                    sketch.quantile(pair[0]) <= sketch.quantile(pair[1]),
                    "quantile must be monotone in q"
                );
            }
            let [p50, p95, p99, p999] = sketch.percentiles();
            assert!(p50 <= p95 && p95 <= p99 && p99 <= p999);
            assert!(p999 <= sketch.max());
        });
    }

    #[test]
    fn merge_is_order_invariant_to_the_byte() {
        forall_cases("sketch_merge_order_invariance", 64, |rng| {
            // Partition one stream into several partial sketches, then
            // merge them in two random orders: identical encodings.
            let parts = rng.gen_range(2usize..6);
            let mut partials = vec![QuantileSketch::new(); parts];
            for _ in 0..300 {
                let v = rng.next_u64() >> rng.gen_range(0u32..56);
                partials[rng.gen_range(0..parts as u64) as usize].record(v);
            }
            let mut order: Vec<usize> = (0..parts).collect();
            let mut a = QuantileSketch::new();
            for &i in &order {
                a.merge(&partials[i]);
            }
            rng.shuffle(&mut order);
            let mut b = QuantileSketch::new();
            for &i in &order {
                b.merge(&partials[i]);
            }
            assert_eq!(a, b, "merge must be order-invariant");
            assert_eq!(encoded(&a), encoded(&b), "encodings must be byte-identical");
            // And the merged sketch equals recording the stream serially.
            let mut serial = QuantileSketch::new();
            for p in &partials {
                serial.merge(p);
            }
            assert_eq!(encoded(&serial), encoded(&a));
        });
    }

    #[test]
    fn reservoir_agrees_with_sketch_within_error_bound() {
        forall_cases("reservoir_vs_sketch", 64, |rng| {
            let capacity = 256usize;
            let n = rng.gen_range(1u64..=capacity as u64);
            let mut sketch = QuantileSketch::new();
            let mut reservoir = LatencyReservoir::new(capacity, rng.next_u64());
            for _ in 0..n {
                let v = rng.gen_range(1u64..100_000);
                sketch.record(v);
                reservoir.observe(v);
            }
            assert!(reservoir.is_exact(), "N <= capacity must stay exact");
            for q in [0.5, 0.95, 0.99, 0.999] {
                let exact = reservoir.quantile(q);
                let approx = sketch.quantile(q);
                assert!(approx >= exact);
                let err = (approx - exact) as f64 / exact.max(1) as f64;
                assert!(err <= REL_ERROR_BOUND + 1e-12, "err {err} at q={q}");
            }
        });
    }

    #[test]
    fn reservoir_is_seed_deterministic_and_bounded() {
        let mut a = LatencyReservoir::new(16, 42);
        let mut b = LatencyReservoir::new(16, 42);
        for v in 0..10_000u64 {
            a.observe(v);
            b.observe(v);
        }
        assert_eq!(a.samples, b.samples, "same seed, same sample");
        assert_eq!(a.samples.len(), 16);
        assert!(!a.is_exact());
        assert_eq!(a.seen(), 10_000);
        // Past capacity the reservoir is a uniform subsample: its median
        // should land well inside the stream's range.
        let med = a.quantile(0.5);
        assert!(med > 0 && med < 10_000);
    }

    #[test]
    fn encode_decode_round_trips_bit_exactly() {
        forall("sketch_codec_round_trip", |rng| {
            let mut sketch = QuantileSketch::new();
            for _ in 0..rng.gen_range(0u64..200) {
                sketch.record(rng.next_u64() >> rng.gen_range(0u32..60));
            }
            let line = encoded(&sketch);
            let decoded = QuantileSketch::decode(&mut line.split_whitespace())
                .expect("well-formed encoding must decode");
            assert_eq!(decoded, sketch);
            assert_eq!(encoded(&decoded), line);
        });
    }

    #[test]
    fn decode_rejects_malformed_fields() {
        assert!(QuantileSketch::decode(&mut "".split_whitespace()).is_none());
        assert!(QuantileSketch::decode(&mut "1 2 3".split_whitespace()).is_none());
        assert!(QuantileSketch::decode(&mut "1 2 3 4 1 99999999 1".split_whitespace()).is_none());
        assert!(QuantileSketch::decode(&mut "1 2 3 4 zz".split_whitespace()).is_none());
        // nnz larger than the bucket table is rejected outright.
        let huge = format!("1 2 3 4 {}", SKETCH_BUCKETS + 1);
        assert!(QuantileSketch::decode(&mut huge.split_whitespace()).is_none());
    }

    #[test]
    fn empty_sketch_reports_zeros() {
        let s = QuantileSketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
        let mut line = String::new();
        s.encode(&mut line);
        assert_eq!(line, " 0 0 18446744073709551615 0 0");
    }

    #[test]
    fn clear_matches_fresh() {
        let mut s = QuantileSketch::new();
        for v in [1, 5, 70_000] {
            s.record(v);
        }
        s.clear();
        assert_eq!(s, QuantileSketch::new());
    }

    #[test]
    fn breakdown_overall_is_the_union_of_classes() {
        forall_cases("breakdown_union", 32, |rng| {
            let mut breakdown = LatencyBreakdown::new();
            let mut union = QuantileSketch::new();
            for _ in 0..200 {
                let class = AccessClass::ALL[rng.gen_range(0..AccessClass::COUNT as u64) as usize];
                let v = rng.gen_range(1u64..1_000_000);
                breakdown.record(class, v);
                union.record(v);
            }
            assert_eq!(breakdown.overall(), union);
            assert_eq!(breakdown.count(), union.count());
            // Codec round-trips the whole breakdown.
            let mut line = String::new();
            breakdown.encode(&mut line);
            let decoded = LatencyBreakdown::decode(&mut line.split_whitespace()).unwrap();
            assert_eq!(decoded, breakdown);
            // Breakdown merge inherits order-invariance.
            let mut doubled = breakdown.clone();
            doubled.merge(&breakdown);
            assert_eq!(doubled.count(), 2 * breakdown.count());
        });
    }
}
