//! A minimal hand-rolled JSON parser (the workspace is dependency-free).
//!
//! Exists to *validate* the simulator's own exports — the `trace_check`
//! binary parses emitted Chrome traces and asserts their shape — so it
//! favors clarity over speed and keeps object fields in declaration order
//! (deterministic, and no hash maps per lint D1).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (escape sequences decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, fields in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string content if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing whitespace is allowed,
/// trailing garbage is an error. Errors carry a byte offset and reason.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.bump() == Some(c) {
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                c as char,
                self.pos.saturating_sub(1)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("expected `{text}` at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number bytes at {start}"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = self
                            .bytes
                            .get(self.pos..self.pos + 4)
                            .and_then(|h| core::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                        self.pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => {
                        return Err(format!(
                            "bad escape {:?} at byte {}",
                            other.map(|c| c as char),
                            self.pos
                        ))
                    }
                },
                Some(c) if c < 0x80 => out.push(c as char),
                Some(_) => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let rest = core::str::from_utf8(&self.bytes[self.pos - 1..])
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos - 1))?;
                    let ch = rest
                        .chars()
                        .next()
                        .ok_or_else(|| "empty UTF-8 tail".to_string())?;
                    out.push(ch);
                    self.pos += ch.len_utf8() - 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(items)),
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(fields)),
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Num(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".to_string()));
        let v = parse("{\"a\": [1, 2, {\"b\": false}], \"c\": \"x\"}").unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[2].get("b"), Some(&Value::Bool(false)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn unicode_escapes_and_raw_utf8() {
        assert_eq!(
            parse("\"\\u0041\u{e9}\"").unwrap(),
            Value::Str("A\u{e9}".to_string())
        );
    }
}
