//! The assembled observability record of one simulated run.

use silcfm_types::obs::{Event, TraceEvent};

use crate::hist::LatencyHistogram;
use crate::sampler::EpochSampler;
use crate::sketch::LatencyBreakdown;

/// Which simulated component emitted an event; selects its track in the
/// Chrome-trace export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Unit {
    /// The flat-memory placement controller (SILC-FM or a baseline).
    Controller,
    /// The near-memory (HBM) device model.
    Nm,
    /// The far-memory (DDR) device model.
    Fm,
}

impl Unit {
    /// Short lowercase label used by exporters.
    pub fn label(self) -> &'static str {
        match self {
            Unit::Controller => "controller",
            Unit::Nm => "nm",
            Unit::Fm => "fm",
        }
    }
}

/// A [`TraceEvent`] tagged with the unit that emitted it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaggedEvent {
    /// Emitting component.
    pub unit: Unit,
    /// CPU-domain simulation cycle.
    pub at: u64,
    /// What occurred.
    pub event: Event,
}

/// Everything observed during one run: the merged event stream, demand
/// latency histograms, the epoch time series, and bookkeeping totals.
///
/// Reports are plain data; the exporters in [`crate::export`] turn them
/// into Chrome-trace JSON, CSV, or a human summary. All content derives
/// from simulation state only, so identical seeds produce identical
/// reports.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// All captured events, sorted by cycle (stable within a cycle: the
    /// controller's events precede NM's precede FM's).
    pub events: Vec<TaggedEvent>,
    /// Events lost to ring-buffer capacity, across all units.
    pub dropped: u64,
    /// Demand-access service latency when serviced from near memory.
    pub nm_latency: LatencyHistogram,
    /// Demand-access service latency when serviced from far memory.
    pub fm_latency: LatencyHistogram,
    /// Per-class demand-latency quantile sketches (the percentile plane).
    pub latency: LatencyBreakdown,
    /// The sealed per-epoch time series.
    pub series: EpochSampler,
    /// Total simulated cycles of the run.
    pub total_cycles: u64,
}

impl ObsReport {
    /// Builds a report from the per-unit event streams, given in
    /// controller, NM, FM order. The merged stream is sorted by cycle;
    /// ties keep controller → NM → FM order (the construction order below
    /// plus the stable sort).
    pub fn assemble(
        streams: [Vec<TraceEvent>; 3],
        dropped: u64,
        nm_latency: LatencyHistogram,
        fm_latency: LatencyHistogram,
        latency: LatencyBreakdown,
        series: EpochSampler,
        total_cycles: u64,
    ) -> Self {
        let mut events = Vec::with_capacity(streams.iter().map(Vec::len).sum());
        for (unit, stream) in [Unit::Controller, Unit::Nm, Unit::Fm]
            .into_iter()
            .zip(streams)
        {
            events.extend(stream.into_iter().map(|e| TaggedEvent {
                unit,
                at: e.at,
                event: e.event,
            }));
        }
        events.sort_by_key(|e| e.at);
        Self {
            events,
            dropped,
            nm_latency,
            fm_latency,
            latency,
            series,
            total_cycles,
        }
    }

    /// Number of captured events.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Number of captured events emitted by `unit`.
    pub fn events_from(&self, unit: Unit) -> usize {
        self.events.iter().filter(|e| e.unit == unit).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::SeriesSpec;
    use silcfm_types::obs::Event;

    fn te(at: u64) -> TraceEvent {
        TraceEvent {
            at,
            event: Event::PredictorHit,
        }
    }

    #[test]
    fn assemble_merges_sorted_with_stable_ties() {
        let r = ObsReport::assemble(
            [vec![te(5), te(9)], vec![te(5), te(1)], vec![te(5)]],
            3,
            LatencyHistogram::new(),
            LatencyHistogram::new(),
            LatencyBreakdown::new(),
            EpochSampler::new(SeriesSpec::new(), 100, 0),
            1000,
        );
        let order: Vec<(u64, Unit)> = r.events.iter().map(|e| (e.at, e.unit)).collect();
        assert_eq!(
            order,
            vec![
                (1, Unit::Nm),
                (5, Unit::Controller),
                (5, Unit::Nm),
                (5, Unit::Fm),
                (9, Unit::Controller),
            ]
        );
        assert_eq!(r.event_count(), 5);
        assert_eq!(r.events_from(Unit::Controller), 2);
        assert_eq!(r.dropped, 3);
    }
}
