//! The per-epoch time-series sampler.
//!
//! A run is divided into fixed-length epochs of simulation cycles; at each
//! epoch boundary the driving loop records one row of metric values. Column
//! names are declared up front through [`SeriesSpec::series`], which is the
//! stats sink the S1 lint rule audits: every name must be registered in
//! `crates/lint/stat_keys.txt` and must live in the `obs.` namespace.

/// The declared column set of a time series.
///
/// `series` is a *lint-audited sink*: call it only with `&'static` string
/// literals so `silcfm-lint` can check the key against the registry.
#[derive(Debug, Clone, Default)]
pub struct SeriesSpec {
    names: Vec<&'static str>,
}

impl SeriesSpec {
    /// An empty column set.
    pub const fn new() -> Self {
        Self { names: Vec::new() }
    }

    /// Declares one column. Keys must be registered in
    /// `crates/lint/stat_keys.txt` and start with `obs.` (rule S1).
    #[must_use]
    pub fn series(mut self, name: &'static str) -> Self {
        self.names.push(name);
        self
    }

    /// The declared column names, in declaration order.
    pub fn names(&self) -> &[&'static str] {
        &self.names
    }

    /// Number of declared columns.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no columns are declared.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Column index of the epoch NM-service rate in [`run_series`].
pub const COL_HIT_RATE: usize = 0;
/// Column index of the epoch NM demand-byte fraction in [`run_series`].
pub const COL_NM_DEMAND_FRAC: usize = 1;
/// Column index of the epoch subblock-swap count in [`run_series`].
pub const COL_SWAPS: usize = 2;
/// Column index of the epoch lock count in [`run_series`].
pub const COL_LOCKS: usize = 3;
/// Column index of the epoch NM bus utilization in [`run_series`].
pub const COL_NM_BUS_UTIL: usize = 4;
/// Column index of the epoch FM bus utilization in [`run_series`].
pub const COL_FM_BUS_UTIL: usize = 5;
/// Column index of the sampled read-queue depth in [`run_series`].
pub const COL_READ_QUEUE: usize = 6;
/// Column index of the sampled write-queue depth in [`run_series`].
pub const COL_WRITE_QUEUE: usize = 7;
/// Column index of the epoch demand-latency p50 in [`run_series`].
pub const COL_LAT_P50: usize = 8;
/// Column index of the epoch demand-latency p95 in [`run_series`].
pub const COL_LAT_P95: usize = 9;
/// Column index of the epoch demand-latency p99 in [`run_series`].
pub const COL_LAT_P99: usize = 10;
/// Column index of the epoch demand-latency p99.9 in [`run_series`].
pub const COL_LAT_P999: usize = 11;

/// The standard per-run column set sampled by the simulator: NM service
/// rate and demand fraction, swap/lock activity, per-device bus
/// utilization, aggregate queue depths, and within-epoch demand-latency
/// percentiles from the quantile sketch. This is the workspace's single
/// registration site for `obs.*` series keys.
pub fn run_series() -> SeriesSpec {
    SeriesSpec::new()
        .series("obs.hit_rate")
        .series("obs.nm_demand_frac")
        .series("obs.swaps")
        .series("obs.locks")
        .series("obs.nm_bus_util")
        .series("obs.fm_bus_util")
        .series("obs.read_queue")
        .series("obs.write_queue")
        .series("obs.lat.p50")
        .series("obs.lat.p95")
        .series("obs.lat.p99")
        .series("obs.lat.p999")
}

/// Column index of the per-epoch offered-request count in [`slo_series`].
pub const SLO_COL_OFFERED: usize = 0;
/// Column index of the per-epoch completed-request count in [`slo_series`].
pub const SLO_COL_COMPLETED: usize = 1;
/// Column index of the per-epoch shed-request count in [`slo_series`].
pub const SLO_COL_SHED: usize = 2;
/// Column index of the per-epoch timed-out-request count in [`slo_series`].
pub const SLO_COL_TIMED_OUT: usize = 3;
/// Column index of the per-epoch failed-request count in [`slo_series`].
pub const SLO_COL_FAILED: usize = 4;
/// Column index of the per-epoch issued-retry count in [`slo_series`].
pub const SLO_COL_RETRIES: usize = 5;
/// Column index of the per-epoch request-latency p99 in [`slo_series`].
pub const SLO_COL_P99: usize = 6;
/// Column index of the epoch SLO-compliance flag (1.0 / 0.0) in
/// [`slo_series`].
pub const SLO_COL_COMPLIANT: usize = 7;

/// The request-serving plane's per-epoch column set: the conservation
/// ledger's four request dispositions plus offered load, issued retries,
/// the epoch's request-latency p99 and whether the epoch met the SLO.
/// Registration site for the `obs.slo.*` series keys.
pub fn slo_series() -> SeriesSpec {
    SeriesSpec::new()
        .series("obs.slo.offered")
        .series("obs.slo.completed")
        .series("obs.slo.shed")
        .series("obs.slo.timed_out")
        .series("obs.slo.failed")
        .series("obs.slo.retries")
        .series("obs.slo.p99")
        .series("obs.slo.compliant")
}

/// Collects one row of `f64` metric values per epoch of simulation cycles.
///
/// The contract, pinned by property tests: after [`seal`](Self::seal) with
/// the run's total cycle count `T`, the sampler holds exactly
/// `⌈T / epoch⌉` rows — one per started epoch, including a final partial
/// epoch. Storage is preallocated row-major; recording never reallocates
/// when the expected cycle count given at construction was an upper bound.
#[derive(Debug, Clone)]
pub struct EpochSampler {
    spec: SeriesSpec,
    epoch: u64,
    /// End (exclusive) of the epoch the next recorded row describes.
    boundary: u64,
    data: Vec<f64>,
}

impl EpochSampler {
    /// Creates a sampler with `epoch`-cycle granularity (must be > 0),
    /// preallocating for `expected_cycles` of simulated time.
    pub fn new(spec: SeriesSpec, epoch: u64, expected_cycles: u64) -> Self {
        assert!(epoch > 0, "epoch length must be positive");
        let rows = (expected_cycles / epoch + 2) as usize;
        let cols = spec.len();
        Self {
            spec,
            epoch,
            boundary: epoch,
            data: Vec::with_capacity(rows.saturating_mul(cols)),
        }
    }

    /// The epoch length in simulation cycles.
    pub const fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The declared column names.
    pub fn names(&self) -> &[&'static str] {
        self.spec.names()
    }

    /// Whether the epoch containing `cycle` lies beyond the last recorded
    /// row, i.e. the driving loop owes the sampler a row.
    pub fn due(&self, cycle: u64) -> bool {
        cycle >= self.boundary
    }

    /// Records one row of values (one per declared column) for the current
    /// epoch and advances to the next.
    pub fn record(&mut self, row: &[f64]) {
        debug_assert_eq!(row.len(), self.spec.len(), "row arity mismatch");
        self.data.extend_from_slice(row);
        self.boundary += self.epoch;
    }

    /// Finalizes the series for a run of `total_cycles`, topping up with
    /// copies of `row` until exactly `⌈total_cycles / epoch⌉` rows exist
    /// (the last epoch is usually partial).
    pub fn seal(&mut self, total_cycles: u64, row: &[f64]) {
        let target = total_cycles.div_ceil(self.epoch) as usize;
        while self.rows() < target {
            self.record(row);
        }
    }

    /// Number of rows recorded so far.
    pub fn rows(&self) -> usize {
        if self.spec.is_empty() {
            0
        } else {
            self.data.len() / self.spec.len()
        }
    }

    /// The `i`-th row (empty slice when out of range).
    pub fn row(&self, i: usize) -> &[f64] {
        let cols = self.spec.len();
        self.data.get(i * cols..(i + 1) * cols).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_series_columns_line_up() {
        let spec = run_series();
        assert_eq!(spec.names()[COL_HIT_RATE], "obs.hit_rate");
        assert_eq!(spec.names()[COL_NM_DEMAND_FRAC], "obs.nm_demand_frac");
        assert_eq!(spec.names()[COL_SWAPS], "obs.swaps");
        assert_eq!(spec.names()[COL_LOCKS], "obs.locks");
        assert_eq!(spec.names()[COL_NM_BUS_UTIL], "obs.nm_bus_util");
        assert_eq!(spec.names()[COL_FM_BUS_UTIL], "obs.fm_bus_util");
        assert_eq!(spec.names()[COL_READ_QUEUE], "obs.read_queue");
        assert_eq!(spec.names()[COL_WRITE_QUEUE], "obs.write_queue");
        assert_eq!(spec.names()[COL_LAT_P50], "obs.lat.p50");
        assert_eq!(spec.names()[COL_LAT_P95], "obs.lat.p95");
        assert_eq!(spec.names()[COL_LAT_P99], "obs.lat.p99");
        assert_eq!(spec.names()[COL_LAT_P999], "obs.lat.p999");
        assert_eq!(spec.len(), 12);
        assert!(spec.names().iter().all(|n| n.starts_with("obs.")));
    }

    #[test]
    fn slo_series_columns_line_up() {
        let spec = slo_series();
        assert_eq!(spec.names()[SLO_COL_OFFERED], "obs.slo.offered");
        assert_eq!(spec.names()[SLO_COL_COMPLETED], "obs.slo.completed");
        assert_eq!(spec.names()[SLO_COL_SHED], "obs.slo.shed");
        assert_eq!(spec.names()[SLO_COL_TIMED_OUT], "obs.slo.timed_out");
        assert_eq!(spec.names()[SLO_COL_FAILED], "obs.slo.failed");
        assert_eq!(spec.names()[SLO_COL_RETRIES], "obs.slo.retries");
        assert_eq!(spec.names()[SLO_COL_P99], "obs.slo.p99");
        assert_eq!(spec.names()[SLO_COL_COMPLIANT], "obs.slo.compliant");
        assert_eq!(spec.len(), 8);
        assert!(spec.names().iter().all(|n| n.starts_with("obs.slo.")));
    }

    /// A single-column spec without going through the lint-audited literal
    /// sink twice in this file (keys are registered once, by `run_series`).
    fn one_column() -> SeriesSpec {
        const NAME: &str = "obs.hit_rate";
        SeriesSpec::new().series(NAME)
    }

    #[test]
    fn exact_row_count_on_seal() {
        let mut s = EpochSampler::new(one_column(), 100, 1000);
        // Simulate sparse in-run sampling: only one boundary noticed live.
        assert!(!s.due(99));
        assert!(s.due(100));
        s.record(&[0.5]);
        assert!(!s.due(150));
        s.seal(1001, &[0.75]);
        assert_eq!(s.rows(), 11); // ceil(1001 / 100)
        assert_eq!(s.row(0), &[0.5]);
        assert_eq!(s.row(10), &[0.75]);
        assert!(s.row(11).is_empty());
    }

    #[test]
    fn zero_cycles_zero_rows() {
        let mut s = EpochSampler::new(one_column(), 50, 0);
        s.seal(0, &[0.0]);
        assert_eq!(s.rows(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_epoch_rejected() {
        let _ = EpochSampler::new(SeriesSpec::new(), 0, 10);
    }
}
