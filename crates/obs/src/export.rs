//! Exporters: Chrome trace-event JSON, CSV time series, human summary.
//!
//! All three are deterministic functions of an [`ObsReport`]: fixed float
//! precision, stable orderings, no wall-clock or environment input — so
//! identical seeds yield byte-identical artifacts, which the golden tests
//! pin across serial and parallel runs.

use core::fmt::Write as _;
use std::collections::BTreeMap;

use silcfm_types::obs::Event;
use silcfm_types::AccessClass;

use crate::hist::LatencyHistogram;
use crate::report::{ObsReport, TaggedEvent, Unit};
use crate::sketch::QuantileSketch;
use crate::table::{Align, TextTable};

/// The Chrome trace `tid` hosting one event, giving one track per
/// controller/channel unit: controller on 1, NM channels from 16, FM
/// channels from 48.
fn track_of(e: &TaggedEvent) -> u32 {
    let base = match e.unit {
        Unit::Controller => return 1,
        Unit::Nm => 16,
        Unit::Fm => 48,
    };
    match e.event {
        Event::DramCmdIssue { channel, .. } | Event::QueueDepthSample { channel, .. } => {
            base + u32::from(channel)
        }
        _ => base,
    }
}

/// Human-readable name of a track id (inverse of [`track_of`]).
fn track_name(tid: u32) -> String {
    match tid {
        1 => "controller".to_string(),
        16..=47 => format!("nm.ch{}", tid - 16),
        _ => format!("fm.ch{}", tid - 48),
    }
}

/// The `"args"` object body for one event (no surrounding braces).
fn args_of(event: &Event) -> String {
    match event {
        Event::SwapStart { frame, subblock } | Event::SwapDone { frame, subblock } => {
            format!("\"frame\":{frame},\"subblock\":{subblock}")
        }
        Event::LockPromote { frame, native } => format!("\"frame\":{frame},\"native\":{native}"),
        Event::LockDemote { frame } | Event::Recovered { frame } | Event::Poisoned { frame } => {
            format!("\"frame\":{frame}")
        }
        Event::BypassDecision { engaged } | Event::Failover { engaged } => {
            format!("\"engaged\":{engaged}")
        }
        Event::FaultInjected { kind, target } => {
            format!("\"kind\":\"{}\",\"target\":{target}", kind.label())
        }
        Event::HistoryFetch { bits } => format!("\"bits\":{bits}"),
        Event::PredictorHit | Event::PredictorMiss => String::new(),
        Event::DramCmdIssue {
            channel,
            write,
            outcome,
        } => format!(
            "\"channel\":{channel},\"write\":{write},\"outcome\":\"{}\"",
            outcome.label()
        ),
        Event::QueueDepthSample {
            reads,
            writes,
            busy,
            ..
        } => format!("\"reads\":{reads},\"writes\":{writes},\"busy\":{busy}"),
    }
}

/// Renders the report as Chrome trace-event JSON, loadable in
/// `chrome://tracing` or <https://ui.perfetto.dev>. Timestamps are raw
/// simulation cycles. Queue-depth samples become counter tracks; all other
/// events are instants on their unit's thread track.
pub fn chrome_trace(report: &ObsReport) -> String {
    // Declare a thread-name metadata record for every track that has at
    // least one event, in tid order (keeps output deterministic and lets
    // the validator require every declared track to be non-empty).
    let mut tids: Vec<u32> = report.events.iter().map(track_of).collect();
    tids.sort_unstable();
    tids.dedup();

    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"silcfm\"}}",
    );
    for tid in &tids {
        let _ = write!(
            out,
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            track_name(*tid)
        );
    }
    for e in &report.events {
        let tid = track_of(e);
        let args = args_of(&e.event);
        match e.event {
            Event::QueueDepthSample { .. } => {
                let _ = write!(
                    out,
                    ",\n{{\"name\":\"{} queues\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\
                     \"tid\":{tid},\"args\":{{{args}}}}}",
                    track_name(tid),
                    e.at
                );
            }
            _ => {
                let _ = write!(
                    out,
                    ",\n{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\
                     \"tid\":{tid},\"s\":\"t\"{}}}",
                    e.event.label(),
                    e.at,
                    if args.is_empty() {
                        String::new()
                    } else {
                        format!(",\"args\":{{{args}}}")
                    }
                );
            }
        }
    }
    let overall = report.latency.overall();
    let [p50, p95, p99, p999] = overall.percentiles();
    let _ = write!(
        out,
        "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{{\
         \"total_cycles\":{},\"dropped_events\":{},\
         \"demand_lat_count\":{},\"demand_lat_p50\":{p50},\
         \"demand_lat_p95\":{p95},\"demand_lat_p99\":{p99},\
         \"demand_lat_p999\":{p999}}}}}\n",
        report.total_cycles,
        report.dropped,
        overall.count()
    );
    out
}

/// Renders the epoch time series as CSV: `epoch,cycle_start,<columns...>`
/// with six-decimal fixed-point values.
pub fn csv_series(report: &ObsReport) -> String {
    let s = &report.series;
    let mut out = String::from("epoch,cycle_start");
    for name in s.names() {
        out.push(',');
        out.push_str(name);
    }
    out.push('\n');
    for i in 0..s.rows() {
        let _ = write!(out, "{i},{}", i as u64 * s.epoch());
        for v in s.row(i) {
            let _ = write!(out, ",{v:.6}");
        }
        out.push('\n');
    }
    out
}

fn histogram_row(label: &str, h: &LatencyHistogram) -> Vec<String> {
    vec![
        label.to_string(),
        h.count().to_string(),
        format!("{:.1}", h.mean()),
        h.quantile_upper(0.5).to_string(),
        h.quantile_upper(0.99).to_string(),
        h.max().to_string(),
    ]
}

/// Renders the human `--trace-summary` view: run totals, per-unit event
/// counts, and the demand-latency histograms.
pub fn summary(report: &ObsReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace summary: {} cycles, {} events captured, {} dropped, {} epoch rows",
        report.total_cycles,
        report.event_count(),
        report.dropped,
        report.series.rows()
    );

    let mut counts: BTreeMap<(Unit, &'static str), u64> = BTreeMap::new();
    for e in &report.events {
        *counts.entry((e.unit, e.event.label())).or_default() += 1;
    }
    if !counts.is_empty() {
        let mut t = TextTable::new(&[
            ("unit", Align::Left),
            ("event", Align::Left),
            ("count", Align::Right),
        ]);
        for ((unit, label), n) in &counts {
            t.row(vec![
                unit.label().to_string(),
                (*label).to_string(),
                n.to_string(),
            ]);
        }
        out.push('\n');
        out.push_str(&t.render());
    }

    let mut t = TextTable::new(&[
        ("demand latency", Align::Left),
        ("count", Align::Right),
        ("mean", Align::Right),
        ("p50<=", Align::Right),
        ("p99<=", Align::Right),
        ("max", Align::Right),
    ]);
    t.row(histogram_row("nm", &report.nm_latency));
    t.row(histogram_row("fm", &report.fm_latency));
    out.push('\n');
    out.push_str(&t.render());

    // The percentile plane: per-class sketches plus the merged overall row.
    let mut t = TextTable::new(&[
        ("latency class", Align::Left),
        ("count", Align::Right),
        ("mean", Align::Right),
        ("p50", Align::Right),
        ("p95", Align::Right),
        ("p99", Align::Right),
        ("p999", Align::Right),
        ("max", Align::Right),
    ]);
    for class in AccessClass::ALL {
        t.row(sketch_row(class.label(), report.latency.sketch(class)));
    }
    t.row(sketch_row("overall", &report.latency.overall()));
    out.push('\n');
    out.push_str(&t.render());
    out
}

fn sketch_row(label: &str, s: &QuantileSketch) -> Vec<String> {
    let [p50, p95, p99, p999] = s.percentiles();
    vec![
        label.to_string(),
        s.count().to_string(),
        format!("{:.1}", s.mean()),
        p50.to_string(),
        p95.to_string(),
        p99.to_string(),
        p999.to_string(),
        s.max().to_string(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{run_series, EpochSampler};
    use silcfm_types::obs::{RowKind, TraceEvent};

    fn sample_report() -> ObsReport {
        let mut series = EpochSampler::new(run_series(), 100, 300);
        series.seal(
            250,
            &[
                0.5, 0.25, 3.0, 1.0, 0.1, 0.2, 4.0, 2.0, 80.0, 80.0, 80.0, 80.0,
            ],
        );
        let mut nm_latency = LatencyHistogram::new();
        nm_latency.record(80);
        let mut latency = crate::sketch::LatencyBreakdown::new();
        latency.record(AccessClass::NmHit, 80);
        latency.record(AccessClass::SwapPath, 900);
        ObsReport::assemble(
            [
                vec![
                    TraceEvent {
                        at: 10,
                        event: Event::SwapStart {
                            frame: 1,
                            subblock: 2,
                        },
                    },
                    TraceEvent {
                        at: 12,
                        event: Event::PredictorHit,
                    },
                ],
                vec![
                    TraceEvent {
                        at: 11,
                        event: Event::DramCmdIssue {
                            channel: 0,
                            write: false,
                            outcome: RowKind::Miss,
                        },
                    },
                    TraceEvent {
                        at: 100,
                        event: Event::QueueDepthSample {
                            channel: 0,
                            reads: 3,
                            writes: 1,
                            busy: 44,
                        },
                    },
                ],
                vec![TraceEvent {
                    at: 15,
                    event: Event::DramCmdIssue {
                        channel: 2,
                        write: true,
                        outcome: RowKind::Hit,
                    },
                }],
            ],
            0,
            nm_latency,
            LatencyHistogram::new(),
            latency,
            series,
            250,
        )
    }

    #[test]
    fn chrome_trace_shape() {
        let json = chrome_trace(&sample_report());
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"thread_name\""));
        assert!(json.contains("\"name\":\"controller\""));
        assert!(json.contains("\"name\":\"nm.ch0\""));
        assert!(json.contains("\"name\":\"fm.ch2\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"outcome\":\"miss\""));
        // It must parse with the in-tree JSON parser.
        let v = crate::json::parse(&json).expect("chrome trace parses");
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        assert!(events.len() >= 5);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = csv_series(&sample_report());
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "epoch,cycle_start,obs.hit_rate,obs.nm_demand_frac,obs.swaps,obs.locks,\
             obs.nm_bus_util,obs.fm_bus_util,obs.read_queue,obs.write_queue,\
             obs.lat.p50,obs.lat.p95,obs.lat.p99,obs.lat.p999"
        );
        assert_eq!(lines.count(), 3); // ceil(250/100)
        assert!(csv.contains("0.500000"));
    }

    #[test]
    fn summary_mentions_everything() {
        let text = summary(&sample_report());
        assert!(text.contains("250 cycles"));
        assert!(text.contains("swap_start"));
        assert!(text.contains("dram_cmd"));
        assert!(text.contains("demand latency"));
        // The percentile plane lists every class plus the merged overall.
        assert!(text.contains("latency class"));
        for class in AccessClass::ALL {
            assert!(text.contains(class.label()), "missing {class}");
        }
        assert!(text.contains("overall"));
    }

    #[test]
    fn chrome_trace_carries_overall_percentiles() {
        let json = chrome_trace(&sample_report());
        let v = crate::json::parse(&json).expect("chrome trace parses");
        let other = v.get("otherData").unwrap();
        assert_eq!(
            other.get("demand_lat_count").and_then(|n| n.as_f64()),
            Some(2.0)
        );
        // p999 of {80, 900} clamps to the recorded max.
        assert_eq!(
            other.get("demand_lat_p999").and_then(|n| n.as_f64()),
            Some(900.0)
        );
    }
}
