//! `trace_check`: validates Chrome trace-event JSON emitted by the
//! simulator, for the CI trace smoke step.
//!
//! For each path argument the file must (1) parse as JSON, (2) contain a
//! `traceEvents` array, (3) declare at least one named thread track, and
//! (4) have at least one non-metadata event on every declared track with
//! monotone non-negative timestamps per track.
//!
//! Exit code 0 when every file passes; 1 with a diagnostic otherwise.
//!
//! Run with: `cargo run -p silcfm-obs --bin trace_check -- trace.json`

use silcfm_obs::json::{self, Value};

fn check(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{path}: no `traceEvents` array"))?;

    // Declared tracks: thread_name metadata records.
    let mut declared: Vec<(u32, String)> = Vec::new();
    for e in events {
        if e.get("name").and_then(Value::as_str) == Some("thread_name") {
            let tid = e
                .get("tid")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("{path}: thread_name record without tid"))?
                as u32;
            let label = e
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str)
                .ok_or_else(|| format!("{path}: thread_name record without args.name"))?;
            declared.push((tid, label.to_string()));
        }
    }
    if declared.is_empty() {
        return Err(format!("{path}: no thread tracks declared"));
    }

    // Count real (non-metadata) events per track; validate timestamps.
    let mut counts: Vec<u64> = vec![0; declared.len()];
    let mut last_ts: Vec<f64> = vec![-1.0; declared.len()];
    let mut total = 0u64;
    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).unwrap_or("");
        if ph == "M" {
            continue;
        }
        let tid = e.get("tid").and_then(Value::as_f64).unwrap_or(-1.0) as u32;
        let ts = e
            .get("ts")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{path}: event without ts"))?;
        if ts < 0.0 {
            return Err(format!("{path}: negative timestamp {ts}"));
        }
        total += 1;
        let Some(slot) = declared.iter().position(|(t, _)| *t == tid) else {
            return Err(format!("{path}: event on undeclared track tid={tid}"));
        };
        if ts < last_ts[slot] {
            return Err(format!(
                "{path}: timestamps regress on track `{}` ({ts} after {})",
                declared[slot].1, last_ts[slot]
            ));
        }
        last_ts[slot] = ts;
        counts[slot] += 1;
    }
    for ((_, label), n) in declared.iter().zip(&counts) {
        if *n == 0 {
            return Err(format!("{path}: declared track `{label}` has no events"));
        }
    }
    Ok(format!(
        "{path}: ok ({total} events across {} tracks)",
        declared.len()
    ))
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace_check <trace.json>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        match check(path) {
            Ok(msg) => println!("{msg}"),
            Err(msg) => {
                eprintln!("{msg}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
