//! The sampling tracer tier: full counters always, full events 1-in-N.
//!
//! The ring tracer records every event, which costs double-digit
//! percentages of the system's throughput when enabled — roughly half
//! with capture-sized (1 Mi-event) rings — too much to leave on outside
//! a debugging session (see `results/BENCH_throughput.json`,
//! `tracing_overhead`).
//! Most observability questions, though, only need *rates*: how many lock
//! promotions, how many swaps, how often did bypass engage. The
//! [`SamplingTracer`] answers those with a fixed array of per-kind event
//! counters that is always up to date, while recording the *full* event
//! (with its cycle stamp and payload) only once every `period` events —
//! a power of two, so the sample decision is one mask-and-compare.
//!
//! Downstream consumers need no changes: `drain`/`dropped` delegate to the
//! inner ring, so `ObsReport` assembly and the Chrome-trace exporter see an
//! ordinary (sparser) event stream, and [`Tracer::counters`] surfaces the
//! exact totals the samples no longer carry.

use silcfm_types::obs::{Event, TraceEvent, Tracer, EVENT_KINDS};

use crate::ring::RingTracer;

/// A [`Tracer`] that counts every event and records one full event per
/// `period` into an inner [`RingTracer`]. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct SamplingTracer {
    ring: RingTracer,
    /// `period - 1`; the period is a power of two, so `seq & mask == 0`
    /// selects exactly one event in `period`.
    mask: u64,
    /// Events seen so far (the sampling phase).
    seq: u64,
    /// Per-kind totals, indexed by [`Event::kind_index`].
    counts: [u64; EVENT_KINDS],
}

impl SamplingTracer {
    /// Creates a sampling tracer keeping at most `capacity` sampled events
    /// and recording one full event in `period`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `period` is not a power of two
    /// (`period = 1` is allowed and records every event — the ring tier
    /// with counters on top).
    pub fn with_capacity(capacity: usize, period: u64) -> Self {
        assert!(
            period.is_power_of_two(),
            "sampling period must be a power of two"
        );
        Self {
            ring: RingTracer::with_capacity(capacity),
            mask: period - 1,
            seq: 0,
            counts: [0; EVENT_KINDS],
        }
    }

    /// The sampling period (one recorded event per this many seen).
    pub const fn period(&self) -> u64 {
        self.mask + 1
    }

    /// Number of events seen (counted) so far, sampled or not.
    pub const fn seen(&self) -> u64 {
        self.seq
    }

    /// Number of sampled events currently buffered.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no sampled events are buffered.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

impl Tracer for SamplingTracer {
    const ENABLED: bool = true;

    #[inline]
    fn record(&mut self, cycle: u64, event: Event) {
        // The counter tier is unconditional: totals stay exact at any
        // sampling rate.
        if let Some(count) = self.counts.get_mut(event.kind_index()) {
            *count += 1;
        }
        if self.seq & self.mask == 0 {
            self.ring.record(cycle, event);
        }
        self.seq += 1;
    }

    fn drain(&mut self) -> Vec<TraceEvent> {
        self.ring.drain()
    }

    fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    fn counters(&self) -> [u64; EVENT_KINDS] {
        self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silcfm_types::obs::EVENT_KIND_LABELS;

    #[test]
    fn counters_are_exact_at_any_rate() {
        for period in [1u64, 4, 64] {
            let mut t = SamplingTracer::with_capacity(1024, period);
            for i in 0..300u64 {
                t.record(i, Event::PredictorHit);
                t.record(
                    i,
                    Event::SwapStart {
                        frame: 1,
                        subblock: 2,
                    },
                );
            }
            let counts = t.counters();
            assert_eq!(counts[Event::PredictorHit.kind_index()], 300);
            let swap = Event::SwapStart {
                frame: 0,
                subblock: 0,
            };
            assert_eq!(counts[swap.kind_index()], 300);
            assert_eq!(counts.iter().sum::<u64>(), 600, "period {period}");
            assert_eq!(t.seen(), 600);
        }
    }

    #[test]
    fn records_exactly_one_in_period() {
        let mut t = SamplingTracer::with_capacity(1024, 8);
        for i in 0..64u64 {
            t.record(i, Event::PredictorMiss);
        }
        let events = t.drain();
        assert_eq!(events.len(), 8, "64 events at 1-in-8");
        let stamps: Vec<u64> = events.iter().map(|e| e.at).collect();
        assert_eq!(stamps, vec![0, 8, 16, 24, 32, 40, 48, 56]);
    }

    #[test]
    fn period_one_degenerates_to_the_ring() {
        let mut t = SamplingTracer::with_capacity(16, 1);
        for i in 0..10u64 {
            t.record(i, Event::PredictorHit);
        }
        assert_eq!(t.drain().len(), 10);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn dropped_delegates_to_the_ring() {
        let mut t = SamplingTracer::with_capacity(4, 2);
        for i in 0..40u64 {
            t.record(i, Event::PredictorHit);
        }
        // 20 sampled events into 4 slots: 16 overwritten.
        assert_eq!(t.dropped(), 16);
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
    }

    #[test]
    fn counter_labels_cover_every_kind() {
        // The label table and the counter array share indices.
        let t = SamplingTracer::with_capacity(1, 2);
        assert_eq!(t.counters().len(), EVENT_KIND_LABELS.len());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_period_rejected() {
        let _ = SamplingTracer::with_capacity(8, 3);
    }
}
