//! `silcfm-obs`: observability for the SILC-FM simulator.
//!
//! The paper's evaluation (§VI) hinges on *why* SILC-FM wins — swap-engine
//! transitions, lock promotions, bypass decisions, NM/FM bandwidth balance —
//! but end-of-run counters can't answer per-phase questions ("when did the
//! lock set saturate?", "what do the DRAM queues look like during
//! write-drain?"). This crate provides the sinks and exporters behind the
//! tracing vocabulary defined in [`silcfm_types::obs`]:
//!
//! * [`RingTracer`] — a fixed-capacity ring buffer implementing
//!   [`Tracer`]; when full it overwrites the oldest events (and counts the
//!   drops) so long runs keep the most recent window;
//! * [`SamplingTracer`] — the cheap always-on tier: exact per-kind event
//!   counters on every record, full events retained only 1-in-N
//!   (power-of-two N), built for sub-5% overhead;
//! * [`LatencyHistogram`] — log-bucketed (power-of-two) latency histograms
//!   with fixed storage, HdrHistogram style;
//! * [`EpochSampler`] — a per-epoch time-series sampler over a declared
//!   [`SeriesSpec`] column set, with preallocated storage;
//! * [`QuantileSketch`] / [`LatencyBreakdown`] — deterministic, mergeable
//!   quantile sketches for per-class latency percentiles (p50/p95/p99/p999),
//!   with a seeded [`LatencyReservoir`] for exact small-N validation;
//! * [`export`] — Chrome trace-event JSON (`chrome://tracing`-loadable),
//!   CSV time series, and a human summary table;
//! * [`TextTable`] — the shared fixed-width table renderer used by every
//!   binary that prints aligned columns;
//! * [`json`] — a minimal hand-rolled JSON parser backing the
//!   `trace_check` validator binary (the workspace is dependency-free).
//!
//! Everything here is deterministic: timestamps are simulation cycles
//! (never wall clock, per lint D2) and exporters format floats with fixed
//! precision, so identical seeds produce byte-identical artifacts across
//! hosts and across serial/parallel runs.

pub mod export;
pub mod hist;
pub mod json;
pub mod report;
pub mod ring;
pub mod sampler;
pub mod sampling;
pub mod sketch;
pub mod table;

pub use hist::LatencyHistogram;
pub use report::{ObsReport, TaggedEvent, Unit};
pub use ring::RingTracer;
pub use sampler::{run_series, slo_series, EpochSampler, SeriesSpec};
pub use sampling::SamplingTracer;
pub use sketch::{LatencyBreakdown, LatencyReservoir, QuantileSketch};
pub use table::{Align, TextTable};

// Re-export the vocabulary so downstream crates can depend on `silcfm-obs`
// alone for all tracing needs.
pub use silcfm_types::obs::{Event, MetricsOnlyTracer, NullTracer, RowKind, TraceEvent, Tracer};
