//! Log-bucketed latency histograms with fixed storage.

/// Number of buckets: one for zero plus one per power of two up to `2^63`.
const BUCKETS: usize = 65;

/// A power-of-two-bucketed histogram of `u64` samples (latencies in CPU
/// cycles), HdrHistogram style but radically simpler: bucket 0 holds the
/// value 0 and bucket *i* (i ≥ 1) holds values in `[2^(i-1), 2^i - 1]`.
///
/// Storage is a fixed array, so recording never allocates and merging is a
/// pointwise sum — both properties the deterministic parallel runner needs.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total: u64,
    sum: u64,
    max: u64,
}

/// The bucket index for `value`: 0 for 0, otherwise `64 - leading_zeros`.
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The inclusive `[low, high]` value range covered by `bucket`.
///
/// # Panics
///
/// Panics if `bucket >= 65` (there are only 65 buckets).
pub fn bucket_range(bucket: usize) -> (u64, u64) {
    assert!(bucket < BUCKETS, "bucket {bucket} out of range");
    match bucket {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        i => (1 << (i - 1), (1 << i) - 1),
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self {
            counts: [0; BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        if let Some(c) = self.counts.get_mut(bucket_of(value)) {
            *c += 1;
        }
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub const fn count(&self) -> u64 {
        self.total
    }

    /// Largest sample recorded (0 when empty).
    pub const fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// An upper bound on the `q`-quantile (`0.0..=1.0`): the high edge of
    /// the first bucket at which the cumulative count reaches `q * total`.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let threshold = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut cumulative = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= threshold.max(1) {
                let (_, high) = bucket_range(i);
                return high.min(self.max);
            }
        }
        self.max
    }

    /// Pointwise sum with another histogram (for merging per-job results).
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The non-empty buckets as `(low, high, count)` triples, low to high.
    pub fn occupied(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| {
                let (lo, hi) = bucket_range(i);
                (lo, hi, *c)
            })
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_range(0), (0, 0));
        assert_eq!(bucket_range(1), (1, 1));
        assert_eq!(bucket_range(2), (2, 3));
        assert_eq!(bucket_range(64), (1 << 63, u64::MAX));
    }

    #[test]
    fn counts_mean_max() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 21.2).abs() < 1e-9);
        let occupied: Vec<_> = h.occupied().collect();
        assert_eq!(occupied[0], (0, 0, 1));
        assert_eq!(occupied[1], (1, 1, 1));
        assert_eq!(occupied[2], (2, 3, 2));
    }

    #[test]
    fn quantiles_bound_the_data() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert!(h.quantile_upper(0.5) >= 500);
        assert!(h.quantile_upper(1.0) >= 1000);
        assert_eq!(h.quantile_upper(1.0), h.max());
        assert_eq!(LatencyHistogram::new().quantile_upper(0.5), 0);
    }

    #[test]
    fn merge_is_pointwise() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(5);
        b.record(7);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 1000);
    }
}
