//! The shared fixed-width text-table renderer.
//!
//! Every binary that prints aligned columns (trace summaries, the
//! `scheme_shootout` example, benchmark reports) goes through this one
//! renderer so the workspace has a single table idiom instead of N
//! hand-rolled `println!` format strings.

use core::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Pad on the right (labels).
    Left,
    /// Pad on the left (numbers).
    Right,
}

/// A simple monospace table: headers, aligned columns, two-space gutters.
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given `(header, alignment)` columns.
    pub fn new(columns: &[(&str, Align)]) -> Self {
        Self {
            headers: columns.iter().map(|(h, _)| (*h).to_string()).collect(),
            aligns: columns.iter().map(|(_, a)| *a).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Missing cells render empty; extra cells are kept
    /// (and widen nothing, since they have no column).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table: header line, separator, then one line per row.
    /// The output ends with a newline.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().take(cols).enumerate() {
                if let Some(w) = widths.get_mut(i) {
                    *w = (*w).max(cell.len());
                }
            }
        }
        let mut out = String::new();
        self.render_line(&mut out, &self.headers, &widths);
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        self.render_line(&mut out, &rule, &widths);
        for row in &self.rows {
            self.render_line(&mut out, row, &widths);
        }
        out
    }

    fn render_line(&self, out: &mut String, cells: &[String], widths: &[usize]) {
        static EMPTY: String = String::new();
        for (i, w) in widths.iter().enumerate() {
            let cell = cells.get(i).unwrap_or(&EMPTY);
            let align = self.aligns.get(i).copied().unwrap_or(Align::Left);
            if i > 0 {
                out.push_str("  ");
            }
            let pad = w.saturating_sub(cell.len());
            match align {
                Align::Left => {
                    out.push_str(cell);
                    // Trailing spaces on the last column would be noise.
                    if i + 1 < widths.len() {
                        let _ = write!(out, "{:pad$}", "", pad = pad);
                    }
                }
                Align::Right => {
                    let _ = write!(out, "{:pad$}", "", pad = pad);
                    out.push_str(cell);
                }
            }
        }
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&[("scheme", Align::Left), ("rate", Align::Right)]);
        t.row(vec!["silcfm".to_string(), "1234".to_string()]);
        t.row(vec!["pom".to_string(), "7".to_string()]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines[0], "scheme  rate");
        assert_eq!(lines[1], "------  ----");
        assert_eq!(lines[2], "silcfm  1234");
        assert_eq!(lines[3], "pom        7");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn wide_cells_stretch_their_column() {
        let mut t = TextTable::new(&[("a", Align::Left), ("b", Align::Right)]);
        t.row(vec!["very-long-label".to_string(), "1".to_string()]);
        let rendered = t.render();
        assert!(rendered.starts_with("a                b\n"));
    }

    #[test]
    fn missing_cells_render_empty() {
        let mut t = TextTable::new(&[("a", Align::Left), ("b", Align::Right)]);
        t.row(vec!["x".to_string()]);
        let rendered = t.render();
        assert_eq!(rendered.lines().last().unwrap(), "x   ");
    }
}
