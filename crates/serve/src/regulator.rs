//! The AIMD rate regulator searching a scheme's maximum sustainable RPS.
//!
//! Modeled on rd-hashd's load bench: offer a rate, run a full trial,
//! observe whether the SLO held, and adjust — additive increase while
//! compliant, multiplicative decrease on violation. The regulator is a pure
//! state machine over `(rate, observation)`; the engine feedback it
//! consumes crosses *trials*, never a single run's record stream, so each
//! trial remains a pure function of its offered rate and the whole search
//! is deterministic and journal-resumable.

/// AIMD tuning knobs. Rates are requests per million cycles per lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AimdParams {
    /// Floor the multiplicative decrease never crosses.
    pub min_rate: u64,
    /// First trial's rate.
    pub start_rate: u64,
    /// Additive increase applied after a compliant trial.
    pub add_step: u64,
    /// Multiplicative decrease numerator (rate scales by `num/den` on a
    /// violated trial).
    pub decrease_num: u64,
    /// Multiplicative decrease denominator.
    pub decrease_den: u64,
    /// Trials in one search.
    pub trials: u32,
}

impl AimdParams {
    /// Search configuration of the `slo` bench's full mode.
    pub const fn default_search() -> Self {
        Self {
            min_rate: 2,
            start_rate: 20,
            add_step: 6,
            decrease_num: 3,
            decrease_den: 4,
            trials: 12,
        }
    }

    /// A short search for smoke tests and CI.
    pub const fn smoke_search() -> Self {
        Self {
            trials: 5,
            ..Self::default_search()
        }
    }
}

/// The regulator: holds the next rate to offer and the best rate that met
/// the SLO so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aimd {
    params: AimdParams,
    rate: u64,
    best_ok: u64,
    observed: u32,
}

impl Aimd {
    /// A fresh search at `params.start_rate`.
    pub const fn new(params: AimdParams) -> Self {
        Self {
            params,
            rate: params.start_rate,
            best_ok: 0,
            observed: 0,
        }
    }

    /// The rate the next trial should offer.
    pub const fn rate(&self) -> u64 {
        self.rate
    }

    /// Highest rate that met the SLO so far (0 until one does).
    pub const fn best_ok(&self) -> u64 {
        self.best_ok
    }

    /// Trials observed so far.
    pub const fn observed(&self) -> u32 {
        self.observed
    }

    /// Whether the search has consumed its trial budget.
    pub const fn done(&self) -> bool {
        self.observed >= self.params.trials
    }

    /// Feeds one trial's outcome: `met` is whether the offered rate held
    /// the SLO. Additive increase on success, multiplicative decrease on
    /// violation (never below `min_rate`).
    pub fn observe(&mut self, met: bool) {
        self.observed += 1;
        if met {
            self.best_ok = self.best_ok.max(self.rate);
            self.rate = self.rate.saturating_add(self.params.add_step);
        } else {
            let den = self.params.decrease_den.max(1);
            self.rate = (self.rate * self.params.decrease_num / den).max(self.params.min_rate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a search against a synthetic capacity cliff: rates at or
    /// below `capacity` meet the SLO, anything above violates it.
    fn search(capacity: u64, params: AimdParams) -> Aimd {
        let mut a = Aimd::new(params);
        while !a.done() {
            let met = a.rate() <= capacity;
            a.observe(met);
        }
        a
    }

    #[test]
    fn converges_onto_a_synthetic_capacity() {
        let params = AimdParams {
            trials: 30,
            ..AimdParams::default_search()
        };
        let a = search(48, params);
        // best_ok ends within one additive step of the true capacity.
        assert!(a.best_ok() <= 48);
        assert!(
            a.best_ok() + params.add_step > 48,
            "best_ok {} too far below capacity",
            a.best_ok()
        );
    }

    #[test]
    fn floor_is_respected_when_nothing_complies() {
        let a = search(0, AimdParams::default_search());
        assert_eq!(a.best_ok(), 0);
        assert!(a.rate() >= AimdParams::default_search().min_rate);
    }

    #[test]
    fn searches_are_pure_functions_of_observations() {
        let a = search(48, AimdParams::default_search());
        let b = search(48, AimdParams::default_search());
        assert_eq!(a, b);
    }
}
