//! Admission planning: turning an arrival schedule into an engine-ready
//! record stream.
//!
//! The central determinism problem of an open-loop plane is that admission
//! decisions must not depend on engine state — if shedding consulted the
//! live simulation, the admitted stream would differ between the serial
//! and sharded runners (producers pre-generate records epochs ahead of the
//! consumer) and byte-identity would be unprovable. The resolution: the
//! admission controller runs entirely in the *arrival domain*, against a
//! predicted backlog. Each lane's plan — which requests are admitted, which
//! are shed — is a pure function of `(workload profile, arrival profile,
//! rate, ServeParams, lane, seed, records-per-lane)`. The engine then
//! executes the admitted stream through the unmodified run loop; actual
//! queueing (and deadline misses the predictor under-estimated) is measured
//! by the [`crate::tracker::RequestTracker`], never fed back.

use silcfm_trace::arrivals::{ArrivalGen, ArrivalProfile};
use silcfm_trace::{WorkloadGen, WorkloadProfile};
use silcfm_types::{CoreId, TraceRecord};

use silcfm_sim::{LaneSource, RecordStream};

/// Shape of the serving plane: how requests map onto records and what the
/// deadline / retry / SLO contract is. All times are CPU cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeParams {
    /// Memory accesses one request performs (its record footprint).
    pub records_per_request: u64,
    /// Deadline measured from arrival; a request completing later is
    /// `timed_out`, and admission sheds requests *predicted* to exceed it.
    pub deadline_cycles: u64,
    /// Predicted cycles one record costs end-to-end, used by the admission
    /// backlog model and by the retry ladder's re-service estimate.
    pub est_service_cycles: u64,
    /// Retry attempts a channel-NACKed request may issue before it is
    /// abandoned as `failed`.
    pub retry_budget: u32,
    /// Base backoff: attempt `i` waits `base * (2^i - 1)` cycles after the
    /// NACKed completion (cycle-domain exponential backoff).
    pub retry_backoff_cycles: u64,
    /// The SLO: epoch and whole-run p99 request latency must not exceed
    /// this.
    pub slo_p99_cycles: u64,
    /// Epoch length of the `obs.slo.*` time series and of the compliance /
    /// recovery measurement.
    pub epoch_cycles: u64,
}

impl ServeParams {
    /// The default serving contract used by the `slo` bench: 8-access
    /// requests, a deadline of 40 k cycles (~10 µs at 4 GHz), a p99 SLO at
    /// half the deadline, and a 3-attempt retry ladder starting at 2 k
    /// cycles of backoff.
    pub const fn default_plane() -> Self {
        Self {
            records_per_request: 8,
            deadline_cycles: 40_000,
            est_service_cycles: 220,
            retry_budget: 3,
            retry_backoff_cycles: 2_000,
            slo_p99_cycles: 20_000,
            epoch_cycles: 100_000,
        }
    }
}

impl Default for ServeParams {
    fn default() -> Self {
        Self::default_plane()
    }
}

/// One lane's admission decision, fixed before the engine runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LanePlan {
    /// Arrival cycles of admitted requests, in arrival order. Request `r`
    /// occupies records `r*k .. (r+1)*k` of the lane's stream, and its
    /// first record carries `not_before = admitted[r]`.
    pub admitted: Vec<u64>,
    /// Arrival cycles of shed requests (kept for epoch attribution).
    pub shed_arrivals: Vec<u64>,
    /// Requests the generator offered within the horizon.
    pub offered: u64,
}

impl LanePlan {
    /// Requests shed at admission.
    pub fn shed(&self) -> u64 {
        self.shed_arrivals.len() as u64
    }
}

/// Plans one lane's admissions: draws arrivals until the planning horizon,
/// sheds what the backlog model predicts cannot meet its deadline (or what
/// no longer fits the trial's record capacity), and admits the rest.
///
/// The horizon is `records_per_lane * est_service_cycles` — the predicted
/// busy length of the trial — so the loop terminates at any rate: every
/// iteration either consumes capacity or moves the (strictly increasing)
/// arrival clock toward the horizon.
pub fn plan_lane(
    arrival: &ArrivalProfile,
    rate_per_m: u64,
    lane: u16,
    seed: u64,
    records_per_lane: u64,
    params: &ServeParams,
) -> LanePlan {
    let k = params.records_per_request.max(1);
    let capacity = records_per_lane / k;
    let horizon = records_per_lane.saturating_mul(params.est_service_cycles);
    let service = k.saturating_mul(params.est_service_cycles);

    let mut gen = ArrivalGen::new(arrival, rate_per_m, lane, seed);
    let mut plan = LanePlan::default();
    // Cycle at which the predicted backlog drains (the lane is free).
    let mut predicted_free = 0u64;
    loop {
        let at = gen.next_arrival();
        if at > horizon {
            break;
        }
        plan.offered += 1;
        let start = at.max(predicted_free);
        let predicted_latency = (start - at).saturating_add(service);
        if plan.admitted.len() as u64 >= capacity || predicted_latency > params.deadline_cycles {
            plan.shed_arrivals.push(at);
        } else {
            plan.admitted.push(at);
            predicted_free = start + service;
        }
    }
    plan
}

/// The per-lane record stream executing a [`LanePlan`]: the lane's normal
/// workload records, with the first record of each admitted request stamped
/// with its arrival cycle. After the last admitted request the stream keeps
/// yielding unstamped records — the engine contract is a fixed record count
/// per lane, so the tail is *filler*: issued back-to-back like batch work,
/// excluded from the request ledger (the tracker only accounts records
/// belonging to an admitted request).
#[derive(Debug)]
pub struct ServeLaneGen {
    gen: WorkloadGen,
    admitted: Vec<u64>,
    records_per_request: u64,
    issued: u64,
}

impl RecordStream for ServeLaneGen {
    fn next_record(&mut self) -> TraceRecord {
        let rec = WorkloadGen::next_record(&mut self.gen);
        let idx = self.issued;
        self.issued += 1;
        if idx.is_multiple_of(self.records_per_request) {
            let request = (idx / self.records_per_request) as usize;
            if let Some(&at) = self.admitted.get(request) {
                return rec.at(at);
            }
        }
        rec
    }
}

/// A [`LaneSource`] over a set of per-lane plans: `stream(lane)` is a pure
/// function of the construction inputs (the sharded producers and the
/// inline serial path build identical streams), which is what makes the
/// serial-vs-sharded byte-identity gate provable for the serving plane.
#[derive(Debug, Clone, Copy)]
pub struct ServeSource<'a> {
    profile: &'a WorkloadProfile,
    plans: &'a [LanePlan],
    records_per_request: u64,
    seed: u64,
}

impl<'a> ServeSource<'a> {
    /// A source executing `plans` (one per lane, indexed by lane id) over
    /// `profile`'s access stream.
    pub fn new(
        profile: &'a WorkloadProfile,
        plans: &'a [LanePlan],
        params: &ServeParams,
        seed: u64,
    ) -> Self {
        Self {
            profile,
            plans,
            records_per_request: params.records_per_request.max(1),
            seed,
        }
    }
}

impl LaneSource for ServeSource<'_> {
    type Stream = ServeLaneGen;

    fn stream(&self, lane: usize) -> ServeLaneGen {
        let admitted = self
            .plans
            .get(lane)
            .map(|p| p.admitted.clone())
            .unwrap_or_default();
        ServeLaneGen {
            gen: WorkloadGen::new(self.profile, CoreId::new(lane as u16), self.seed),
            admitted,
            records_per_request: self.records_per_request,
            issued: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silcfm_trace::{arrivals, profiles};

    fn params() -> ServeParams {
        ServeParams::default_plane()
    }

    #[test]
    fn plans_are_deterministic_and_conserve_offers() {
        let arrival = arrivals::by_name("poisson").unwrap();
        let a = plan_lane(arrival, 40, 3, 99, 30_000, &params());
        let b = plan_lane(arrival, 40, 3, 99, 30_000, &params());
        assert_eq!(a, b);
        assert_eq!(a.offered, a.admitted.len() as u64 + a.shed());
        assert!(a.offered > 0);
    }

    #[test]
    fn low_rate_admits_everything() {
        let arrival = arrivals::by_name("poisson").unwrap();
        // 1 request per Mcycle over a ~6.6 Mcycle horizon: a handful of
        // arrivals, each meeting an idle predicted backlog.
        let plan = plan_lane(arrival, 1, 0, 7, 30_000, &params());
        assert!(plan.offered > 0);
        assert_eq!(plan.shed(), 0);
        assert_eq!(plan.admitted.len() as u64, plan.offered);
    }

    #[test]
    fn saturating_rate_sheds_and_terminates() {
        let arrival = arrivals::by_name("poisson").unwrap();
        // Far beyond per-lane service capacity: the plan must terminate
        // (horizon break) and shed most offers.
        let p = params();
        let plan = plan_lane(arrival, 100_000, 0, 7, 8_000, &p);
        assert!(plan.shed() > 0, "saturation must shed");
        let capacity = 8_000 / p.records_per_request;
        assert!(plan.admitted.len() as u64 <= capacity);
        // Admitted backlog never predicts past the deadline.
        let service = p.records_per_request * p.est_service_cycles;
        let mut free = 0u64;
        for &at in &plan.admitted {
            let start = at.max(free);
            assert!(start - at + service <= p.deadline_cycles);
            free = start + service;
        }
    }

    #[test]
    fn admitted_arrivals_are_increasing() {
        let arrival = arrivals::by_name("bursty").unwrap();
        let plan = plan_lane(arrival, 60, 1, 11, 30_000, &params());
        assert!(plan.admitted.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn stream_stamps_first_record_of_each_admitted_request() {
        let profile = profiles::by_name("mcf").unwrap();
        let arrival = arrivals::by_name("poisson").unwrap();
        let p = params();
        let plan = plan_lane(arrival, 30, 0, 42, 4_000, &p);
        assert!(!plan.admitted.is_empty());
        let plans = vec![plan.clone()];
        let source = ServeSource::new(profile, &plans, &p, 42);
        let mut stream = source.stream(0);
        let k = p.records_per_request;
        for idx in 0..4_000u64 {
            let rec = stream.next_record();
            let req = (idx / k) as usize;
            if idx % k == 0 && req < plan.admitted.len() {
                assert_eq!(rec.not_before, plan.admitted[req]);
            } else {
                assert_eq!(rec.not_before, 0, "record {idx} must be unstamped");
            }
        }
    }

    #[test]
    fn stream_matches_plain_workload_apart_from_stamps() {
        // The serving stream must be the *same* access stream the batch
        // engine sees — arrival stamping changes timing, never addresses.
        let profile = profiles::by_name("milc").unwrap();
        let arrival = arrivals::by_name("poisson").unwrap();
        let p = params();
        let plans = vec![plan_lane(arrival, 30, 0, 42, 1_000, &p)];
        let source = ServeSource::new(profile, &plans, &p, 42);
        let mut stream = source.stream(0);
        let mut plain = WorkloadGen::new(profile, CoreId::new(0), 42);
        for _ in 0..1_000 {
            let s = stream.next_record();
            let w = plain.next_record();
            assert_eq!(s.at(0), w);
        }
    }
}
