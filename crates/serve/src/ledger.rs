//! The request conservation ledger.
//!
//! Every request the load generator offers must end in exactly one
//! disposition — completed within deadline, shed at admission, timed out,
//! or failed after exhausting its retry budget. [`RequestLedger::conserved`]
//! is the invariant the chaos harness checks on every run: a request that
//! vanishes (or is double-counted) means the serving plane lost track of
//! work, which is precisely the bug class SLO accounting exists to rule
//! out.

/// End-of-run request accounting for one serving trial.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestLedger {
    /// Requests the open-loop generator offered (admitted + shed).
    pub offered: u64,
    /// Requests the admission controller let through to the engine.
    pub admitted: u64,
    /// Admitted requests that completed within their deadline.
    pub completed: u64,
    /// Requests shed at admission (predicted wait exceeded the deadline,
    /// or the trial's record capacity was exhausted).
    pub shed: u64,
    /// Admitted requests that missed their deadline (including retry
    /// ladders that ran past it).
    pub timed_out: u64,
    /// Admitted requests abandoned after exhausting their retry budget.
    pub failed: u64,
    /// Retry attempts actually issued (not a disposition — attempts ride
    /// on their request's final disposition).
    pub retries: u64,
}

impl RequestLedger {
    /// `true` when every offered request has exactly one disposition and
    /// the admitted population is internally consistent.
    pub const fn conserved(&self) -> bool {
        self.offered == self.completed + self.shed + self.timed_out + self.failed
            && self.admitted == self.completed + self.timed_out + self.failed
            && self.offered == self.admitted + self.shed
    }

    /// Completed fraction of offered load (1.0 when nothing was offered).
    pub fn goodput(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.completed as f64 / self.offered as f64
        }
    }

    /// Shed fraction of offered load (0.0 when nothing was offered).
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }

    /// Folds another ledger into this one (per-lane → per-run
    /// aggregation).
    pub fn merge(&mut self, other: &RequestLedger) {
        self.offered += other.offered;
        self.admitted += other.admitted;
        self.completed += other.completed;
        self.shed += other.shed;
        self.timed_out += other.timed_out;
        self.failed += other.failed;
        self.retries += other.retries;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_holds_and_breaks_as_expected() {
        let mut l = RequestLedger {
            offered: 10,
            admitted: 7,
            completed: 5,
            shed: 3,
            timed_out: 1,
            failed: 1,
            retries: 4,
        };
        assert!(l.conserved());
        l.completed += 1; // a request counted twice
        assert!(!l.conserved());
    }

    #[test]
    fn merge_adds_fieldwise() {
        let a = RequestLedger {
            offered: 4,
            admitted: 3,
            completed: 3,
            shed: 1,
            ..RequestLedger::default()
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.offered, 8);
        assert_eq!(b.completed, 6);
        assert!(b.conserved());
    }

    #[test]
    fn rates_handle_empty_runs() {
        let l = RequestLedger::default();
        assert!(l.conserved());
        assert_eq!(l.goodput(), 1.0);
        assert_eq!(l.shed_rate(), 0.0);
    }
}
