//! Request completion tracking, retry accounting, and the per-epoch SLO
//! series.
//!
//! The tracker rides the engine's [`ServiceTap`]: every serviced record
//! reports its lane, issue/completion cycles, and how many channel NACKs
//! the two DRAM devices absorbed while serving it. Records are grouped
//! back into requests (per-lane, in order — the same grouping the
//! admission planner used), and each request resolves into exactly one
//! ledger disposition:
//!
//! * **completed** — last record done within the deadline, no NACKs (or a
//!   retry ladder that reached a healthy channel in time);
//! * **timed_out** — the deadline passed, either in the engine or while
//!   backing off;
//! * **failed** — the retry budget ran dry with a channel still failed.
//!
//! Retries are modeled in the *cycle domain against the fault schedule*:
//! a NACKed request retries with exponential backoff, and an attempt
//! succeeds iff every affected device shows no failed channel at the
//! attempt cycle (the [`FailureTimeline`] derived from the schedule). This
//! keeps the tap a pure observer — retry traffic never re-enters the
//! engine, so the admitted record stream (and with it the sharded
//! byte-identity proof) is untouched.

use silcfm_obs::sampler::{slo_series, EpochSampler};
use silcfm_obs::QuantileSketch;
use silcfm_sim::ServiceTap;
use silcfm_types::fault::{ChannelFault, FaultKind, ScheduledFault};
use silcfm_types::MemKind;

use crate::ledger::RequestLedger;
use crate::plan::{LanePlan, ServeParams};

/// Per-device "some channel is failed" intervals, derived from a fault
/// schedule. `Fail` opens (when the first channel goes down), `Repair`
/// closes (when the last one comes back); an unrepaired failure extends to
/// the end of time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailureTimeline {
    nm: Vec<(u64, u64)>,
    fm: Vec<(u64, u64)>,
}

impl FailureTimeline {
    /// Builds the timeline from a (time-sorted) fault schedule. Non-channel
    /// faults and timing-only stalls are ignored — only hard `Fail` /
    /// `Repair` transitions define the retry ladder's success criterion.
    pub fn from_faults(faults: &[ScheduledFault]) -> Self {
        let mut timeline = Self::default();
        // Per-device per-channel failed counts; a device's interval is open
        // while any channel count is positive.
        let mut counts = [[0u32; 256]; 2];
        let mut down = [0u32; 2];
        let mut open = [None::<u64>; 2];
        for f in faults {
            let FaultKind::Dram { device, fault } = f.kind else {
                continue;
            };
            let d = match device {
                MemKind::Near => 0,
                MemKind::Far => 1,
            };
            let ch = usize::from(fault.channel());
            match fault {
                ChannelFault::Stall { .. } => {}
                ChannelFault::Fail { .. } => {
                    if counts[d][ch] == 0 {
                        down[d] += 1;
                        if down[d] == 1 {
                            open[d] = Some(f.at);
                        }
                    }
                    counts[d][ch] += 1;
                }
                ChannelFault::Repair { .. } => {
                    if counts[d][ch] > 0 {
                        counts[d][ch] -= 1;
                        if counts[d][ch] == 0 {
                            down[d] -= 1;
                            if down[d] == 0 {
                                if let Some(start) = open[d].take() {
                                    timeline.device_mut(d).push((start, f.at));
                                }
                            }
                        }
                    }
                }
            }
        }
        for (d, slot) in open.iter().enumerate() {
            if let Some(start) = *slot {
                timeline.device_mut(d).push((start, u64::MAX));
            }
        }
        timeline
    }

    fn device_mut(&mut self, d: usize) -> &mut Vec<(u64, u64)> {
        if d == 0 {
            &mut self.nm
        } else {
            &mut self.fm
        }
    }

    fn device(&self, device: MemKind) -> &[(u64, u64)] {
        match device {
            MemKind::Near => &self.nm,
            MemKind::Far => &self.fm,
        }
    }

    /// Whether `device` has at least one failed channel at cycle `t`.
    /// Interval bounds are `[start, end)`: at the repair cycle itself the
    /// device is healthy again.
    pub fn failed_at(&self, device: MemKind, t: u64) -> bool {
        let iv = self.device(device);
        let i = iv.partition_point(|&(start, _)| start <= t);
        i > 0 && t < iv[i - 1].1
    }

    /// Cycles at which a device returned to all-channels-healthy, across
    /// both devices, sorted. These are the recovery-measurement anchors.
    pub fn repairs(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .nm
            .iter()
            .chain(self.fm.iter())
            .filter(|&&(_, end)| end != u64::MAX)
            .map(|&(_, end)| end)
            .collect();
        out.sort_unstable();
        out
    }

    /// Whether the schedule contains any hard channel failure at all.
    pub fn has_failures(&self) -> bool {
        !self.nm.is_empty() || !self.fm.is_empty()
    }

    /// Whether the window `[from, to]` overlaps a failed interval of
    /// `device` (the chaos harness's NACK-attribution check).
    pub fn overlaps_failure(&self, device: MemKind, from: u64, to: u64) -> bool {
        self.device(device)
            .iter()
            .any(|&(start, end)| start <= to && from < end)
    }
}

/// How one request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Within deadline.
    Completed,
    /// Deadline passed (in-engine or during backoff).
    TimedOut,
    /// Retry budget exhausted against a still-failed channel.
    Failed,
}

/// Outcome of a retry ladder (or of a clean in-engine completion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolution {
    /// The request's disposition.
    pub disposition: Disposition,
    /// Cycle at which the disposition was known: the (possibly retried)
    /// completion, or the deadline for timeouts, or the last attempt for
    /// failures.
    pub final_at: u64,
    /// Retry attempts actually issued.
    pub attempts: u32,
}

/// Classifies a channel-NACKed request through its retry ladder: attempt
/// `i` fires at `completion + backoff * (2^i - 1)`; an attempt past the
/// deadline is never issued (the request times out), an issued attempt
/// succeeds iff every affected device has no failed channel at that cycle,
/// and a successful attempt completes `est_service_cycles` later (counted
/// against the deadline). Pure function — the property tests drive it
/// directly.
pub fn classify_retry(
    arrival: u64,
    completion: u64,
    nm_affected: bool,
    fm_affected: bool,
    timeline: &FailureTimeline,
    params: &ServeParams,
) -> Resolution {
    let deadline_at = arrival.saturating_add(params.deadline_cycles);
    let mut attempts = 0u32;
    let mut last_attempt = completion;
    for i in 1..=params.retry_budget {
        let factor = (1u64 << i.min(63)) - 1;
        let t = completion.saturating_add(params.retry_backoff_cycles.saturating_mul(factor));
        if t > deadline_at {
            return Resolution {
                disposition: Disposition::TimedOut,
                final_at: deadline_at,
                attempts,
            };
        }
        attempts += 1;
        last_attempt = t;
        let nm_ok = !nm_affected || !timeline.failed_at(MemKind::Near, t);
        let fm_ok = !fm_affected || !timeline.failed_at(MemKind::Far, t);
        if nm_ok && fm_ok {
            let final_at = t.saturating_add(params.est_service_cycles);
            let disposition = if final_at <= deadline_at {
                Disposition::Completed
            } else {
                Disposition::TimedOut
            };
            return Resolution {
                disposition,
                final_at,
                attempts,
            };
        }
    }
    Resolution {
        disposition: Disposition::Failed,
        final_at: last_attempt,
        attempts,
    }
}

/// A channel-NACKed request's audit record, kept for the chaos harness:
/// its engine window and which devices NACKed it, so the harness can check
/// every NACK overlaps a schedule-derived failure interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NackedRequest {
    /// Lane the request ran on.
    pub lane: usize,
    /// Arrival cycle from the admission plan.
    pub arrival: u64,
    /// Issue cycle of the request's first record.
    pub first_issue: u64,
    /// Completion cycle of its last record.
    pub completion: u64,
    /// Whether the NM (HBM) device NACKed any of its records.
    pub nm: bool,
    /// Whether the FM (DDR) device NACKed any of its records.
    pub fm: bool,
    /// How the retry ladder resolved it.
    pub resolution: Resolution,
}

/// Per-epoch request accounting.
#[derive(Debug, Clone)]
struct EpochBucket {
    offered: u64,
    shed: u64,
    completed: u64,
    timed_out: u64,
    failed: u64,
    retries: u64,
    sketch: QuantileSketch,
}

impl EpochBucket {
    fn empty() -> Self {
        Self {
            offered: 0,
            shed: 0,
            completed: 0,
            timed_out: 0,
            failed: 0,
            retries: 0,
            sketch: QuantileSketch::new(),
        }
    }
}

/// Per-lane record-grouping state.
#[derive(Debug, Clone, Copy, Default)]
struct LaneState {
    served: u64,
    first_issue: u64,
    nm_nacks: u64,
    fm_nacks: u64,
}

/// End-of-run serving statistics: the conservation ledger, the
/// completed-request latency sketch, the `obs.slo.*` epoch series, the
/// NACK audit trail, and per-repair recovery times.
#[derive(Debug, Clone)]
pub struct ServeRunStats {
    /// The conservation ledger ([`RequestLedger::conserved`] must hold).
    pub ledger: RequestLedger,
    /// Latency sketch over *completed* requests only (shed, timed-out and
    /// failed requests have no meaningful service latency; their load
    /// shows up in the disposition counts instead).
    pub latency: QuantileSketch,
    /// The `obs.slo.*` per-epoch series.
    pub series: EpochSampler,
    /// Every channel-NACKed request, for the chaos harness.
    pub nacked: Vec<NackedRequest>,
    /// Per-repair recovery: `(repair cycle, cycles until the end of the
    /// first SLO-compliant epoch at or after it)`. `None` when no later
    /// epoch was compliant within the run.
    pub recoveries: Vec<(u64, Option<u64>)>,
}

impl ServeRunStats {
    /// Whole-run p99 of completed-request latency.
    pub fn p99(&self) -> u64 {
        self.latency.p99()
    }

    /// Encodes the run's observable state into a deterministic string:
    /// the ledger, the latency sketch, and every epoch row bit-exactly.
    /// String equality is the serial-vs-sharded byte-identity gate.
    pub fn digest(&self) -> String {
        let l = &self.ledger;
        let mut out = format!(
            "ledger {} {} {} {} {} {} {}\nsketch ",
            l.offered, l.admitted, l.completed, l.shed, l.timed_out, l.failed, l.retries
        );
        self.latency.encode(&mut out);
        out.push('\n');
        for i in 0..self.series.rows() {
            out.push_str("row");
            for v in self.series.row(i) {
                out.push_str(&format!(" {:016x}", v.to_bits()));
            }
            out.push('\n');
        }
        out
    }
}

/// The [`ServiceTap`] implementation: groups serviced records into
/// requests, resolves each through the deadline/retry model, and buckets
/// the outcome into epochs.
#[derive(Debug, Clone)]
pub struct RequestTracker {
    params: ServeParams,
    records_per_request: u64,
    admitted: Vec<Vec<u64>>,
    lanes: Vec<LaneState>,
    timeline: FailureTimeline,
    ledger: RequestLedger,
    latency: QuantileSketch,
    buckets: Vec<EpochBucket>,
    nacked: Vec<NackedRequest>,
}

impl RequestTracker {
    /// A tracker for `plans` (one per lane) under `params`, resolving
    /// retries against `timeline`. The offered / admitted / shed ledger
    /// entries and their epoch attribution are prefilled from the plans —
    /// they are admission-time facts, known before the engine runs.
    pub fn new(plans: &[LanePlan], params: &ServeParams, timeline: FailureTimeline) -> Self {
        let epoch = params.epoch_cycles.max(1);
        let mut tracker = Self {
            params: *params,
            records_per_request: params.records_per_request.max(1),
            admitted: plans.iter().map(|p| p.admitted.clone()).collect(),
            lanes: vec![LaneState::default(); plans.len()],
            timeline,
            ledger: RequestLedger::default(),
            latency: QuantileSketch::new(),
            buckets: Vec::new(),
            nacked: Vec::new(),
        };
        for plan in plans {
            tracker.ledger.offered += plan.offered;
            tracker.ledger.admitted += plan.admitted.len() as u64;
            tracker.ledger.shed += plan.shed();
            for &at in &plan.admitted {
                tracker.bucket_at(at, epoch).offered += 1;
            }
            for &at in &plan.shed_arrivals {
                let b = tracker.bucket_at(at, epoch);
                b.offered += 1;
                b.shed += 1;
            }
        }
        tracker
    }

    fn bucket_at(&mut self, cycle: u64, epoch: u64) -> &mut EpochBucket {
        let idx = (cycle / epoch) as usize;
        while self.buckets.len() <= idx {
            self.buckets.push(EpochBucket::empty());
        }
        &mut self.buckets[idx]
    }

    /// Resolves one fully-serviced request. Runs once per
    /// `records_per_request` serviced records; epoch-bucket growth is
    /// amortized over the requests that fill the epoch (declared as a lint
    /// amortization boundary).
    fn finish_request(
        &mut self,
        lane: usize,
        arrival: u64,
        first_issue: u64,
        completion: u64,
        nm_nacks: u64,
        fm_nacks: u64,
    ) {
        let resolution = if nm_nacks == 0 && fm_nacks == 0 {
            let deadline_at = arrival.saturating_add(self.params.deadline_cycles);
            Resolution {
                disposition: if completion <= deadline_at {
                    Disposition::Completed
                } else {
                    Disposition::TimedOut
                },
                final_at: completion,
                attempts: 0,
            }
        } else {
            let r = classify_retry(
                arrival,
                completion,
                nm_nacks > 0,
                fm_nacks > 0,
                &self.timeline,
                &self.params,
            );
            self.nacked.push(NackedRequest {
                lane,
                arrival,
                first_issue,
                completion,
                nm: nm_nacks > 0,
                fm: fm_nacks > 0,
                resolution: r,
            });
            r
        };

        self.ledger.retries += u64::from(resolution.attempts);
        let latency = resolution.final_at.saturating_sub(arrival);
        match resolution.disposition {
            Disposition::Completed => {
                self.ledger.completed += 1;
                self.latency.record(latency);
            }
            Disposition::TimedOut => self.ledger.timed_out += 1,
            Disposition::Failed => self.ledger.failed += 1,
        }

        let epoch = self.params.epoch_cycles.max(1);
        let attempts = u64::from(resolution.attempts);
        let disposition = resolution.disposition;
        let b = self.bucket_at(resolution.final_at, epoch);
        b.retries += attempts;
        match disposition {
            Disposition::Completed => {
                b.completed += 1;
                b.sketch.record(latency);
            }
            Disposition::TimedOut => b.timed_out += 1,
            Disposition::Failed => b.failed += 1,
        }
    }

    /// Finalizes the run: checks internal conservation, renders the epoch
    /// series, and measures recovery after each channel repair.
    pub fn finish(self, total_cycles: u64) -> ServeRunStats {
        let epoch = self.params.epoch_cycles.max(1);
        let slo = self.params.slo_p99_cycles;
        let expected = total_cycles.max(self.buckets.len() as u64 * epoch);
        let mut series = EpochSampler::new(slo_series(), epoch, expected);
        let mut compliant_flags = Vec::with_capacity(self.buckets.len());
        for b in &self.buckets {
            let p99 = b.sketch.p99();
            let compliant = p99 <= slo && b.failed == 0;
            compliant_flags.push(compliant);
            series.record(&[
                b.offered as f64,
                b.completed as f64,
                b.shed as f64,
                b.timed_out as f64,
                b.failed as f64,
                b.retries as f64,
                p99 as f64,
                f64::from(u8::from(compliant)),
            ]);
        }
        series.seal(expected, &[0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
        // The sealed top-up rows past the last recorded bucket are quiet
        // epochs — no request resolved in them — and count compliant, so a
        // repair landing in the quiet tail still measures a finite recovery.
        let total_epochs = expected.div_ceil(epoch) as usize;
        if total_epochs > compliant_flags.len() {
            compliant_flags.resize(total_epochs, true);
        }

        let recoveries = self
            .timeline
            .repairs()
            .into_iter()
            .map(|repair| {
                let first = (repair / epoch) as usize;
                let recovered = (first..compliant_flags.len())
                    .find(|&e| compliant_flags[e])
                    .map(|e| ((e as u64 + 1) * epoch).saturating_sub(repair));
                (repair, recovered)
            })
            .collect();

        ServeRunStats {
            ledger: self.ledger,
            latency: self.latency,
            series,
            nacked: self.nacked,
            recoveries,
        }
    }
}

impl ServiceTap for RequestTracker {
    fn on_serviced(&mut self, lane: usize, issue: u64, completion: u64, nm: u64, fm: u64) {
        let k = self.records_per_request;
        let Some(st) = self.lanes.get_mut(lane) else {
            return;
        };
        let idx = st.served;
        st.served += 1;
        let within = idx % k;
        if within == 0 {
            st.first_issue = issue;
            st.nm_nacks = 0;
            st.fm_nacks = 0;
        }
        st.nm_nacks += nm;
        st.fm_nacks += fm;
        if within + 1 == k {
            let first_issue = st.first_issue;
            let nm_total = st.nm_nacks;
            let fm_total = st.fm_nacks;
            let request = (idx / k) as usize;
            let arrival = match self.admitted.get(lane).and_then(|a| a.get(request)) {
                Some(&at) => at,
                // Tail filler past the admitted population: batch records
                // that pad the lane to its fixed count, outside the ledger.
                None => return,
            };
            self.finish_request(lane, arrival, first_issue, completion, nm_total, fm_total);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silcfm_types::fault::FaultKind;

    fn fail(device: MemKind, channel: u8, at: u64) -> ScheduledFault {
        ScheduledFault {
            at,
            kind: FaultKind::Dram {
                device,
                fault: ChannelFault::Fail { channel },
            },
        }
    }

    fn repair(device: MemKind, channel: u8, at: u64) -> ScheduledFault {
        ScheduledFault {
            at,
            kind: FaultKind::Dram {
                device,
                fault: ChannelFault::Repair { channel },
            },
        }
    }

    fn params() -> ServeParams {
        ServeParams::default_plane()
    }

    #[test]
    fn timeline_tracks_overlapping_channel_failures() {
        let faults = [
            fail(MemKind::Far, 0, 100),
            fail(MemKind::Far, 1, 150),
            repair(MemKind::Far, 0, 200),
            repair(MemKind::Far, 1, 300),
            fail(MemKind::Near, 2, 500),
        ];
        let t = FailureTimeline::from_faults(&faults);
        assert!(!t.failed_at(MemKind::Far, 99));
        assert!(t.failed_at(MemKind::Far, 100));
        assert!(t.failed_at(MemKind::Far, 250), "ch1 still down");
        assert!(!t.failed_at(MemKind::Far, 300), "repair cycle is healthy");
        // Unrepaired NM failure extends forever.
        assert!(t.failed_at(MemKind::Near, u64::MAX - 1));
        assert_eq!(t.repairs(), vec![300]);
        assert!(t.overlaps_failure(MemKind::Far, 0, 120));
        assert!(!t.overlaps_failure(MemKind::Far, 301, 400));
    }

    #[test]
    fn retry_ladder_respects_deadline_and_budget() {
        let p = params();
        let deadline_at = 1_000 + p.deadline_cycles;
        // Channel repaired early: first attempt succeeds.
        let t = FailureTimeline::from_faults(&[
            fail(MemKind::Far, 0, 0),
            repair(MemKind::Far, 0, 1_500),
        ]);
        let r = classify_retry(1_000, 2_000, false, true, &t, &p);
        assert_eq!(r.disposition, Disposition::Completed);
        assert_eq!(r.attempts, 1);
        assert!(r.final_at <= deadline_at);

        // Channel never repaired: budget exhausted, every attempt within
        // the deadline.
        let t = FailureTimeline::from_faults(&[fail(MemKind::Far, 0, 0)]);
        let r = classify_retry(1_000, 2_000, false, true, &t, &p);
        assert_eq!(r.disposition, Disposition::Failed);
        assert_eq!(r.attempts, p.retry_budget);

        // Completion so late every attempt would blow the deadline: no
        // attempt is issued.
        let r = classify_retry(1_000, 1_000 + p.deadline_cycles, false, true, &t, &p);
        assert_eq!(r.disposition, Disposition::TimedOut);
        assert_eq!(r.attempts, 0);
        assert_eq!(r.final_at, deadline_at);
    }

    #[test]
    fn tracker_resolves_requests_and_conserves() {
        let p = ServeParams {
            records_per_request: 2,
            epoch_cycles: 1_000,
            ..params()
        };
        let plans = vec![LanePlan {
            admitted: vec![100, 400],
            shed_arrivals: vec![450],
            offered: 3,
        }];
        let mut tr = RequestTracker::new(&plans, &p, FailureTimeline::default());
        // Request 0: two records, clean, completes at 700.
        tr.on_serviced(0, 150, 300, 0, 0);
        tr.on_serviced(0, 320, 700, 0, 0);
        // Request 1: clean but past the deadline.
        tr.on_serviced(0, 500, 600, 0, 0);
        tr.on_serviced(0, 620, 400 + p.deadline_cycles + 1, 0, 0);
        // Tail filler: ignored.
        tr.on_serviced(0, 1_000, 1_100, 0, 0);
        let stats = tr.finish(50_000);
        assert!(stats.ledger.conserved(), "{:?}", stats.ledger);
        assert_eq!(stats.ledger.completed, 1);
        assert_eq!(stats.ledger.timed_out, 1);
        assert_eq!(stats.ledger.shed, 1);
        assert_eq!(stats.latency.count(), 1);
        assert_eq!(stats.latency.p99(), stats.latency.quantile(0.5));
        // Row 0 saw all three arrivals and the clean completion.
        let row = stats.series.row(0).to_vec();
        assert_eq!(row[0], 3.0); // offered
        assert_eq!(row[1], 1.0); // completed
        assert_eq!(row[2], 1.0); // shed
        assert_eq!(stats.series.rows(), 50);
    }

    #[test]
    fn nacked_requests_are_audited_and_retries_counted() {
        let p = ServeParams {
            records_per_request: 1,
            ..params()
        };
        let plans = vec![LanePlan {
            admitted: vec![1_000],
            shed_arrivals: vec![],
            offered: 1,
        }];
        let t = FailureTimeline::from_faults(&[
            fail(MemKind::Far, 0, 0),
            repair(MemKind::Far, 0, 2_500),
        ]);
        let mut tr = RequestTracker::new(&plans, &p, t);
        tr.on_serviced(0, 1_100, 2_000, 0, 3);
        let stats = tr.finish(10_000);
        assert!(stats.ledger.conserved());
        assert_eq!(stats.nacked.len(), 1);
        let n = stats.nacked[0];
        assert!(n.fm && !n.nm);
        assert_eq!(n.resolution.disposition, Disposition::Completed);
        assert_eq!(stats.ledger.retries, u64::from(n.resolution.attempts));
        assert!(stats.ledger.retries > 0);
    }

    #[test]
    fn recovery_is_measured_from_repair_to_compliant_epoch() {
        let p = ServeParams {
            records_per_request: 1,
            epoch_cycles: 1_000,
            ..params()
        };
        let plans = vec![LanePlan {
            admitted: vec![500, 2_500],
            shed_arrivals: vec![],
            offered: 2,
        }];
        let t = FailureTimeline::from_faults(&[
            fail(MemKind::Far, 0, 100),
            repair(MemKind::Far, 0, 1_200),
        ]);
        let mut tr = RequestTracker::new(&plans, &p, t);
        // Request 0 NACKed, never recovers in time? It completes via retry
        // after the repair (attempt at 900+2000*1=2900 > repair 1200 OK).
        tr.on_serviced(0, 600, 900, 0, 1);
        // Request 1 clean in epoch 2.
        tr.on_serviced(0, 2_600, 2_800, 0, 0);
        let stats = tr.finish(5_000);
        assert_eq!(stats.recoveries.len(), 1);
        let (repair_at, rec) = stats.recoveries[0];
        assert_eq!(repair_at, 1_200);
        // First compliant epoch at/after the repair ends at a multiple of
        // the epoch length; recovery is that boundary minus the repair.
        let rec = rec.expect("a compliant epoch exists");
        assert_eq!((repair_at + rec) % p.epoch_cycles, 0);
    }

    #[test]
    fn digests_are_deterministic() {
        let p = params();
        let plans = vec![LanePlan {
            admitted: vec![100],
            shed_arrivals: vec![],
            offered: 1,
        }];
        let run = || {
            let mut tr = RequestTracker::new(&plans, &p, FailureTimeline::default());
            tr.on_serviced(0, 150, 5_000, 0, 0);
            for i in 1..p.records_per_request {
                tr.on_serviced(0, 5_000 + i, 6_000 + i, 0, 0);
            }
            tr.finish(200_000).digest()
        };
        assert_eq!(run(), run());
        assert!(run().starts_with("ledger 1 1 1 0 0 0 0"));
    }
}
