//! `silcfm-serve`: the request-serving SLO plane for the SILC-FM
//! simulator.
//!
//! Every harness so far drives the engine *closed-loop*: cores issue their
//! next access as soon as they can, so offered load shrinks exactly when
//! the memory system slows down — the opposite of how a serving system
//! experiences a failed channel or a migration storm. This crate adds the
//! *open-loop* view the paper's datacenter framing implies:
//!
//! * **arrivals** live in [`silcfm_trace::arrivals`]: seeded Poisson /
//!   bursty / diurnal request schedules in the cycle domain;
//! * **admission** ([`plan`]) sheds requests whose predicted queueing
//!   would blow their deadline — decided entirely in the arrival domain,
//!   so admitted streams stay pure functions of their seeds and the
//!   serial/sharded byte-identity contract survives;
//! * **tracking** ([`tracker`]) groups serviced records back into
//!   requests via the engine's [`silcfm_sim::ServiceTap`], resolves
//!   channel-NACKed requests through a cycle-domain exponential-backoff
//!   retry ladder against the fault schedule, and buckets everything into
//!   the `obs.slo.*` epoch series;
//! * **the ledger** ([`ledger`]) enforces conservation: `offered =
//!   completed + shed + timed_out + failed`, on every run;
//! * **regulation** ([`regulator`]) is an AIMD search for the maximum
//!   sustainable rate under a p99 SLO, trial by trial;
//! * **journaling** ([`journal`]) makes a killed search resumable by
//!   replaying recorded verdicts through fresh regulators.
//!
//! # Example
//!
//! ```
//! use silcfm_serve::{run_serve, ServeParams};
//! use silcfm_sim::{RunParams, SchemeKind, ShardParams};
//! use silcfm_trace::{arrivals, profiles};
//! use silcfm_types::SystemConfig;
//!
//! let profile = profiles::by_name("milc").unwrap();
//! let arrival = arrivals::by_name("poisson").unwrap();
//! let report = run_serve(
//!     profile,
//!     SchemeKind::silcfm(),
//!     &SystemConfig::small(),
//!     &RunParams::smoke(),
//!     &ServeParams::default_plane(),
//!     arrival,
//!     8,
//!     None,
//!     &ShardParams::with_threads(1),
//! )
//! .unwrap();
//! assert!(report.stats.ledger.conserved());
//! ```

pub mod journal;
pub mod ledger;
pub mod plan;
pub mod regulator;
pub mod runner;
pub mod tracker;

pub use journal::{search_digest, SloJournalWriter, TrialRecord};
pub use ledger::RequestLedger;
pub use plan::{plan_lane, LanePlan, ServeLaneGen, ServeParams, ServeSource};
pub use regulator::{Aimd, AimdParams};
pub use runner::{plan_trial, run_serve, ServeReport};
pub use tracker::{
    classify_retry, Disposition, FailureTimeline, NackedRequest, RequestTracker, Resolution,
    ServeRunStats,
};
