//! Crash-safe journal for the SLO max-RPS search.
//!
//! An AIMD search is a chain: trial `n+1`'s offered rate depends on every
//! prior trial's verdict. A killed search therefore cannot resume from
//! anywhere but an exact replay — so the journal records, per finished
//! trial, the offered rate, the full conservation ledger, the p99 and the
//! SLO verdict. On resume the recorded verdicts are fed back through fresh
//! regulators in order, which reconstructs the exact regulator state (the
//! regulator is a pure state machine over its observations) and the search
//! continues byte-identically to an uninterrupted run.
//!
//! Format, one line per record:
//!
//! * header `silcfm-slo-journal v1 grid=<hex>`, binding the journal to one
//!   search grid (schemes × arrival profiles × parameters);
//! * `trial <search> <trial> <rate> <offered> <admitted> <completed>
//!   <shed> <timed_out> <failed> <retries> <p99> <met>` per finished
//!   trial, appended and flushed before the next trial starts.
//!
//! The reader follows the workspace journal contract (`sim::journal`): a
//! torn final line is a crash artifact and is healed away with `set_len`;
//! a malformed interior line is corruption and an error.

use std::fs::{File, OpenOptions};
use std::hash::{Hash, Hasher};
use std::io::{BufWriter, Read as _, Write as _};
use std::path::Path;

use silcfm_types::{FxHasher, SilcFmError};

use crate::ledger::RequestLedger;

/// Digest binding a journal to one search grid. Hash the search's full
/// configuration rendering (schemes, arrival profiles, rates, serve and
/// AIMD parameters) — any change invalidates old journals.
pub fn search_digest(spec: &str) -> u64 {
    let mut h = FxHasher::default();
    spec.hash(&mut h);
    h.finish()
}

/// One finished trial: enough to replay the regulator and to re-emit the
/// trial's row in the final artifact without re-running it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialRecord {
    /// Index of the (scheme × arrival) search this trial belongs to.
    pub search: usize,
    /// Trial index within its search.
    pub trial: u32,
    /// Offered rate, requests per million cycles per lane.
    pub rate: u64,
    /// The trial's conservation ledger.
    pub ledger: RequestLedger,
    /// Whole-run p99 of completed-request latency.
    pub p99: u64,
    /// Whether the trial met the SLO.
    pub met: bool,
}

fn encode(r: &TrialRecord) -> String {
    let l = &r.ledger;
    format!(
        "trial {} {} {} {} {} {} {} {} {} {} {} {}",
        r.search,
        r.trial,
        r.rate,
        l.offered,
        l.admitted,
        l.completed,
        l.shed,
        l.timed_out,
        l.failed,
        l.retries,
        r.p99,
        u8::from(r.met),
    )
}

/// Parses one `trial` line (sans the leading token). `None` on any
/// shortfall — torn tail or corruption, the caller's call.
fn decode(tokens: &[&str]) -> Option<TrialRecord> {
    let mut it = tokens.iter();
    let mut int = || it.next()?.parse::<u64>().ok();
    let search = int()? as usize;
    let trial = int()? as u32;
    let rate = int()?;
    let ledger = RequestLedger {
        offered: int()?,
        admitted: int()?,
        completed: int()?,
        shed: int()?,
        timed_out: int()?,
        failed: int()?,
        retries: int()?,
    };
    let p99 = int()?;
    let met = match int()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    if it.next().is_some() {
        return None; // trailing junk: treat as malformed
    }
    Some(TrialRecord {
        search,
        trial,
        rate,
        ledger,
        p99,
        met,
    })
}

fn header_line(digest: u64) -> String {
    format!("silcfm-slo-journal v1 grid={digest:016x}")
}

/// The write side: created fresh or reopened by [`resume`], appends one
/// flushed line per finished trial.
#[derive(Debug)]
pub struct SloJournalWriter {
    out: BufWriter<File>,
}

impl SloJournalWriter {
    /// Creates (truncating) a journal for a search grid and writes the
    /// header.
    ///
    /// # Errors
    ///
    /// Returns [`SilcFmError::Journal`] on any I/O failure.
    pub fn create(path: &Path, digest: u64) -> Result<Self, SilcFmError> {
        let file = File::create(path)?;
        let mut out = BufWriter::new(file);
        writeln!(out, "{}", header_line(digest))?;
        out.flush()?;
        Ok(Self { out })
    }

    /// Appends one finished trial and flushes, so a crash after this call
    /// never loses the record.
    ///
    /// # Errors
    ///
    /// Returns [`SilcFmError::Journal`] on any I/O failure.
    pub fn append(&mut self, record: &TrialRecord) -> Result<(), SilcFmError> {
        writeln!(self.out, "{}", encode(record))?;
        self.out.flush()?;
        Ok(())
    }
}

/// Reads a journal back: validates the header against `digest`, returns
/// the finished trials in append order, heals a torn tail with `set_len`,
/// and reopens the file for appending.
///
/// # Errors
///
/// Returns [`SilcFmError::Journal`] when the file is unreadable, the
/// header names a different search grid, or an interior line is malformed.
pub fn resume(
    path: &Path,
    digest: u64,
) -> Result<(SloJournalWriter, Vec<TrialRecord>), SilcFmError> {
    let mut text = String::new();
    File::open(path)?.read_to_string(&mut text)?;
    // Bytes past the last newline are the in-flight record of a crash.
    let complete_up_to = text.rfind('\n').map_or(0, |i| i + 1);
    let body = &text[..complete_up_to];
    let header_end = body
        .find('\n')
        .map(|i| i + 1)
        .ok_or_else(|| SilcFmError::journal("SLO journal is empty (no header line)"))?;
    let header = body[..header_end].trim_end();
    if header != header_line(digest) {
        return Err(SilcFmError::journal(format!(
            "SLO journal belongs to a different search grid: found {header:?}, expected {:?}",
            header_line(digest)
        )));
    }
    let mut done = Vec::new();
    let mut valid_up_to = header_end;
    let mut offset = header_end;
    let mut rest = body[header_end..].split_inclusive('\n').peekable();
    while let Some(raw) = rest.next() {
        let line = raw.trim_end_matches('\n');
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let parsed = match tokens.split_first() {
            Some((&"trial", fields)) => decode(fields),
            _ => None,
        };
        offset += raw.len();
        match parsed {
            Some(record) => {
                done.push(record);
                valid_up_to = offset;
            }
            // A malformed *last* line can be a crash artifact and is
            // dropped; a malformed interior line means corruption.
            None if rest.peek().is_none() => break,
            None => {
                return Err(SilcFmError::journal(format!(
                    "malformed SLO journal line: {line:?}"
                )))
            }
        }
    }
    if valid_up_to < text.len() {
        // Heal the crash damage so appended records start on a fresh line.
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_up_to as u64)?;
    }
    let file = OpenOptions::new().append(true).open(path)?;
    Ok((
        SloJournalWriter {
            out: BufWriter::new(file),
        },
        done,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(search: usize, trial: u32, rate: u64, met: bool) -> TrialRecord {
        TrialRecord {
            search,
            trial,
            rate,
            ledger: RequestLedger {
                offered: 100,
                admitted: 90,
                completed: 80,
                shed: 10,
                timed_out: 8,
                failed: 2,
                retries: 5,
            },
            p99: 17_000,
            met,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = option_env!("CARGO_TARGET_TMPDIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(std::env::temp_dir)
            .join("silcfm-slo-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_preserves_trials_in_order() {
        let path = tmp("roundtrip.journal");
        let mut w = SloJournalWriter::create(&path, 42).unwrap();
        w.append(&record(0, 0, 20, true)).unwrap();
        w.append(&record(0, 1, 26, false)).unwrap();
        w.append(&record(1, 0, 20, true)).unwrap();
        drop(w);
        let (_w, done) = resume(&path, 42).unwrap();
        assert_eq!(
            done,
            vec![
                record(0, 0, 20, true),
                record(0, 1, 26, false),
                record(1, 0, 20, true),
            ]
        );
    }

    #[test]
    fn torn_tail_is_discarded_and_healed() {
        let path = tmp("torn.journal");
        let mut w = SloJournalWriter::create(&path, 9).unwrap();
        w.append(&record(0, 0, 20, true)).unwrap();
        drop(w);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "trial 0 1 26 100 9").unwrap();
        drop(f);
        let (mut w, done) = resume(&path, 9).unwrap();
        assert_eq!(done.len(), 1, "torn record must be dropped");
        w.append(&record(0, 1, 26, false)).unwrap();
        drop(w);
        let (_w, done) = resume(&path, 9).unwrap();
        assert_eq!(done.len(), 2);
        assert_eq!(done[1], record(0, 1, 26, false));
    }

    #[test]
    fn grid_mismatch_and_interior_corruption_are_errors() {
        let path = tmp("mismatch.journal");
        drop(SloJournalWriter::create(&path, 1).unwrap());
        let err = resume(&path, 2).unwrap_err();
        assert!(err.to_string().contains("different search grid"), "{err}");

        let path = tmp("corrupt.journal");
        let mut w = SloJournalWriter::create(&path, 5).unwrap();
        w.append(&record(0, 0, 20, true)).unwrap();
        drop(w);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        writeln!(f, "trial zzz corrupt").unwrap();
        writeln!(f, "{}", encode(&record(0, 1, 26, false))).unwrap();
        drop(f);
        let err = resume(&path, 5).unwrap_err();
        assert!(err.to_string().contains("malformed"), "{err}");
    }

    #[test]
    fn digest_is_sensitive_to_the_spec() {
        assert_ne!(search_digest("a"), search_digest("b"));
        assert_eq!(search_digest("a"), search_digest("a"));
    }
}
