//! One serving trial end-to-end: plan admissions, run the engine with the
//! request tracker riding the service tap, resolve the ledger.
//!
//! A trial is a pure function of `(workload, scheme, config, run params,
//! serve params, arrival profile, rate, fault params)` — the admitted
//! record stream is planned before the engine starts, the tracker is a
//! pure observer, and retries resolve against the schedule-derived failure
//! timeline. Consequently the whole [`ServeReport`] (ledger, sketch, epoch
//! series) is byte-identical between the serial path (`threads <= 1`) and
//! any sharded thread count — the gate the `slo` bench enforces.

use silcfm_fault::{FaultDriver, FaultSchedule, FaultStats};
use silcfm_sim::{run_system_sharded_tapped, FaultParams, RunParams, SchemeKind, ShardParams};
use silcfm_sim::{ShardReport, System};
use silcfm_trace::arrivals::ArrivalProfile;
use silcfm_trace::{profiles, WorkloadProfile};
use silcfm_types::{SchemeStats, SilcFmError, SystemConfig};

use crate::plan::{plan_lane, LanePlan, ServeParams, ServeSource};
use crate::tracker::{FailureTimeline, RequestTracker, ServeRunStats};

/// Everything one serving trial measured.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Scheme label (`silcfm`, `hma`, ...).
    pub scheme: String,
    /// Workload profile name.
    pub workload: String,
    /// Arrival profile name.
    pub arrival: String,
    /// Offered rate, requests per million cycles per lane.
    pub rate_per_m: u64,
    /// Engine cycles the trial ran.
    pub cycles: u64,
    /// The serving-plane statistics (ledger, latency sketch, epoch series,
    /// NACK audit, recovery samples).
    pub stats: ServeRunStats,
    /// The engine's fault ledger (zeroed when no faults were armed).
    pub fault_stats: FaultStats,
    /// Faults actually delivered to the engine before it finished.
    pub faults_delivered: usize,
    /// End-of-run scheme statistics.
    pub scheme_stats: SchemeStats,
    /// Producer threads the sharded runner actually spawned.
    pub producer_threads: usize,
}

impl ServeReport {
    /// Whether this trial met the SLO: whole-run completed-latency p99
    /// within the target AND goodput (completed/offered) at or above
    /// `min_goodput`.
    pub fn slo_met(&self, serve: &ServeParams, min_goodput: f64) -> bool {
        self.stats.p99() <= serve.slo_p99_cycles && self.stats.ledger.goodput() >= min_goodput
    }

    /// Deterministic rendering of the trial's serving-plane state; string
    /// equality between a serial and a sharded trial is the byte-identity
    /// gate.
    pub fn digest(&self) -> String {
        format!("cycles {}\n{}", self.cycles, self.stats.digest())
    }
}

/// Plans every lane's admissions for one trial.
pub fn plan_trial(
    arrival: &ArrivalProfile,
    rate_per_m: u64,
    lanes: u16,
    seed: u64,
    records_per_lane: u64,
    serve: &ServeParams,
) -> Vec<LanePlan> {
    (0..lanes)
        .map(|lane| plan_lane(arrival, rate_per_m, lane, seed, records_per_lane, serve))
        .collect()
}

/// Runs one serving trial: `rate_per_m` requests per million cycles per
/// lane, shaped by `arrival`, against `scheme`. `faults: Some(..)` arms the
/// engine's fault driver *and* the retry ladder's failure timeline from the
/// same schedule. `shard.threads <= 1` is the serial engine; any higher
/// count must produce a byte-identical report.
///
/// # Errors
///
/// Returns [`SilcFmError::FaultConfig`] when the fault configuration is
/// invalid.
#[allow(clippy::too_many_arguments)]
pub fn run_serve(
    profile: &WorkloadProfile,
    scheme: SchemeKind,
    cfg: &SystemConfig,
    params: &RunParams,
    serve: &ServeParams,
    arrival: &ArrivalProfile,
    rate_per_m: u64,
    faults: Option<&FaultParams>,
    shard: &ShardParams,
) -> Result<ServeReport, SilcFmError> {
    let scaled = profiles::scaled(profile, params.footprint_scale);
    let space = silcfm_sim::experiment::space_for(&scaled, cfg, params);
    let total_accesses = params.accesses_per_core * u64::from(cfg.core.cores);

    let plans = plan_trial(
        arrival,
        rate_per_m,
        cfg.core.cores,
        params.seed,
        params.accesses_per_core,
        serve,
    );

    let mut system = System::new(
        *cfg,
        space,
        scheme.placement(params.seed),
        scheme.build(space, total_accesses),
    );

    let (timeline, scheduled) = match faults {
        Some(f) => {
            let topo = FaultParams::topology_for(&scheme, space);
            let schedule =
                FaultSchedule::generate(f.fault_seed, f.horizon_cycles, &f.rates, &topo)?;
            let timeline = FailureTimeline::from_faults(schedule.faults());
            let scheduled = schedule.faults().len();
            system.set_fault_driver(FaultDriver::new(schedule));
            (timeline, scheduled)
        }
        None => (FailureTimeline::default(), 0),
    };

    let mut tracker = RequestTracker::new(&plans, serve, timeline);
    let source = ServeSource::new(&scaled, &plans, serve, params.seed);
    let (outcome, shard_report): (_, ShardReport) = run_system_sharded_tapped(
        &mut system,
        &source,
        params.accesses_per_core,
        shard,
        &mut tracker,
    );

    let faults_delivered = scheduled - system.faults_remaining();
    Ok(ServeReport {
        scheme: scheme.label().to_string(),
        workload: profile.name.to_string(),
        arrival: arrival.name.to_string(),
        rate_per_m,
        cycles: outcome.cycles,
        stats: tracker.finish(outcome.cycles),
        fault_stats: *system.fault_stats(),
        faults_delivered,
        scheme_stats: system.scheme().stats(),
        producer_threads: shard_report.producer_threads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use silcfm_fault::FaultRates;
    use silcfm_trace::arrivals;

    fn base() -> (
        &'static WorkloadProfile,
        SystemConfig,
        RunParams,
        ServeParams,
    ) {
        let profile = profiles::by_name("milc").unwrap();
        let cfg = SystemConfig::small();
        let params = RunParams::smoke();
        let serve = ServeParams {
            epoch_cycles: 200_000,
            ..ServeParams::default_plane()
        };
        (profile, cfg, params, serve)
    }

    #[test]
    fn serial_trial_conserves_and_completes() {
        let (profile, cfg, params, serve) = base();
        let arrival = arrivals::by_name("poisson").unwrap();
        let r = run_serve(
            profile,
            SchemeKind::silcfm(),
            &cfg,
            &params,
            &serve,
            arrival,
            10,
            None,
            &ShardParams::with_threads(1),
        )
        .unwrap();
        assert!(r.stats.ledger.conserved(), "{:?}", r.stats.ledger);
        assert!(r.stats.ledger.offered > 0);
        assert!(r.stats.ledger.completed > 0);
        assert!(r.cycles > 0);
        assert_eq!(r.fault_stats.injected, 0);
        assert_eq!(r.producer_threads, 0);
    }

    #[test]
    fn sharded_trials_are_byte_identical_to_serial() {
        let (profile, cfg, params, serve) = base();
        let arrival = arrivals::by_name("bursty").unwrap();
        let run_at = |threads| {
            run_serve(
                profile,
                SchemeKind::silcfm(),
                &cfg,
                &params,
                &serve,
                arrival,
                12,
                None,
                &ShardParams::with_threads(threads),
            )
            .unwrap()
        };
        let serial = run_at(1);
        for threads in [2usize, 4] {
            let sharded = run_at(threads);
            assert_eq!(
                serial.digest(),
                sharded.digest(),
                "threads={threads} must match serial byte for byte"
            );
            assert!(sharded.stats.ledger.conserved());
        }
    }

    #[test]
    fn faulted_trial_resolves_every_request() {
        let (profile, cfg, params, serve) = base();
        let arrival = arrivals::by_name("poisson").unwrap();
        let faults = FaultParams {
            fault_seed: 11,
            horizon_cycles: 3_000_000,
            rates: FaultRates::harsh(),
        };
        let r = run_serve(
            profile,
            SchemeKind::silcfm(),
            &cfg,
            &params,
            &serve,
            arrival,
            10,
            Some(&faults),
            &ShardParams::with_threads(1),
        )
        .unwrap();
        assert!(r.stats.ledger.conserved(), "{:?}", r.stats.ledger);
        assert!(r.fault_stats.conserved());
        assert!(r.faults_delivered > 0, "harsh rates must deliver faults");
        // Every NACK-audited request names at least one affected device.
        for n in &r.stats.nacked {
            assert!(n.nm || n.fm);
        }
    }
}
