//! Property tests for the serving plane: thread-invariance of the full
//! request-plane digest, ledger conservation under randomized fault
//! schedules, the retry ladder's budget/deadline bounds, and AIMD
//! convergence onto randomized capacity cliffs.

use silcfm_fault::FaultRates;
use silcfm_serve::{
    classify_retry, run_serve, Aimd, AimdParams, Disposition, FailureTimeline, ServeParams,
};
use silcfm_sim::{FaultParams, RunParams, SchemeKind, ShardParams};
use silcfm_trace::{arrivals, profiles};
use silcfm_types::fault::{ChannelFault, FaultKind, ScheduledFault};
use silcfm_types::rng::{Rng, SplitMix64, Xoshiro256StarStar};
use silcfm_types::{MemKind, SystemConfig};

fn serve_params() -> ServeParams {
    ServeParams {
        epoch_cycles: 200_000,
        ..ServeParams::default_plane()
    }
}

#[allow(clippy::too_many_arguments)]
fn run_once(
    workload: &str,
    arrival: &str,
    rate: u64,
    threads: usize,
    faults: Option<&FaultParams>,
) -> silcfm_serve::ServeReport {
    run_serve(
        profiles::by_name(workload).unwrap(),
        SchemeKind::silcfm(),
        &SystemConfig::small(),
        &RunParams::smoke(),
        &serve_params(),
        arrivals::by_name(arrival).unwrap(),
        rate,
        faults,
        &ShardParams::with_threads(threads),
    )
    .unwrap()
}

/// The full serving-plane digest — ledger, latency sketch, epoch series —
/// must be a pure function of the trial's inputs, independent of the
/// engine's thread count, for every arrival shape. Faults included: fault
/// delivery happens on the consumer, so arming the driver must not break
/// the identity either.
#[test]
fn request_plane_digest_is_thread_invariant() {
    for (workload, arrival, rate) in [("lib", "diurnal", 25), ("mcf", "poisson", 40)] {
        let serial = run_once(workload, arrival, rate, 1, None);
        for threads in [2usize, 4] {
            let sharded = run_once(workload, arrival, rate, threads, None);
            assert_eq!(
                serial.digest(),
                sharded.digest(),
                "{workload}/{arrival} threads={threads} diverged from serial"
            );
        }
    }

    let faults = FaultParams {
        fault_seed: 7,
        horizon_cycles: 3_000_000,
        rates: FaultRates::harsh(),
    };
    let serial = run_once("milc", "bursty", 30, 1, Some(&faults));
    assert!(serial.faults_delivered > 0);
    for threads in [2usize, 4] {
        let sharded = run_once("milc", "bursty", 30, threads, Some(&faults));
        assert_eq!(
            serial.digest(),
            sharded.digest(),
            "faulted trial threads={threads} diverged from serial"
        );
    }
}

/// `offered = completed + shed + timed_out + failed` on every run, for
/// randomized fault schedules, rates and arrival shapes — along with the
/// fault plane's own effect-conservation ledger.
#[test]
fn ledger_conserves_under_random_fault_schedules() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(SplitMix64::new(2017).split(0x0510));
    let profiles_pool = ["milc", "lib", "mcf"];
    let arrivals_pool = ["poisson", "bursty", "diurnal"];
    for round in 0..6u64 {
        let workload = profiles_pool[rng.gen_range(0..profiles_pool.len())];
        let arrival = arrivals_pool[rng.gen_range(0..arrivals_pool.len())];
        let rate = rng.gen_range(5u64..500);
        let faults = FaultParams {
            fault_seed: rng.next_u64(),
            horizon_cycles: rng.gen_range(500_000u64..5_000_000),
            rates: if rng.gen_bool(0.5) {
                FaultRates::gentle()
            } else {
                FaultRates::harsh()
            },
        };
        let r = run_once(workload, arrival, rate, 1, Some(&faults));
        assert!(
            r.stats.ledger.conserved(),
            "round {round} ({workload}/{arrival} rate={rate}): ledger leaks: {:?}",
            r.stats.ledger
        );
        assert!(
            r.fault_stats.conserved(),
            "round {round}: effect ledger leaks: {:?}",
            r.fault_stats
        );
        assert!(r.stats.ledger.offered > 0, "round {round} offered nothing");
    }
}

fn dram_fault(device: MemKind, channel: u8, at: u64, up: bool) -> ScheduledFault {
    let fault = if up {
        ChannelFault::Repair { channel }
    } else {
        ChannelFault::Fail { channel }
    };
    ScheduledFault {
        at,
        kind: FaultKind::Dram { device, fault },
    }
}

/// The retry ladder never issues more than `retry_budget` attempts, never
/// issues an attempt past the deadline, and every resolution lands at a
/// cycle consistent with the exponential-backoff schedule.
#[test]
fn retry_ladder_respects_budget_and_deadline_bounds() {
    let p = ServeParams::default_plane();
    let mut rng = Xoshiro256StarStar::seed_from_u64(SplitMix64::new(2017).split(0x0511));
    for round in 0..200u64 {
        // A randomized failure timeline over both devices.
        let mut faults = Vec::new();
        for _ in 0..rng.gen_range(0usize..4) {
            let device = if rng.gen_bool(0.5) {
                MemKind::Near
            } else {
                MemKind::Far
            };
            let channel = rng.gen_range(0u32..4) as u8;
            let down = rng.gen_range(0u64..60_000);
            faults.push(dram_fault(device, channel, down, false));
            if rng.gen_bool(0.7) {
                let up = down + rng.gen_range(1u64..50_000);
                faults.push(dram_fault(device, channel, up, true));
            }
        }
        faults.sort_by_key(|f| f.at);
        let timeline = FailureTimeline::from_faults(&faults);

        let arrival = rng.gen_range(0u64..30_000);
        let completion = arrival + rng.gen_range(1u64..50_000);
        let nm = rng.gen_bool(0.5);
        let fm = !nm || rng.gen_bool(0.5);
        let r = classify_retry(arrival, completion, nm, fm, &timeline, &p);
        let deadline_at = arrival + p.deadline_cycles;
        let tag = format!("round {round}: {r:?} (completion {completion}, deadline {deadline_at})");

        assert!(r.attempts <= p.retry_budget, "{tag}: budget exceeded");
        // Every issued attempt fired within the deadline.
        for i in 1..=r.attempts {
            let t = completion + p.retry_backoff_cycles * ((1u64 << i) - 1);
            assert!(t <= deadline_at, "{tag}: attempt {i} fired past deadline");
        }
        match r.disposition {
            Disposition::Completed => {
                assert!(r.final_at <= deadline_at, "{tag}: late completion");
                assert!(r.attempts >= 1, "{tag}: completion without an attempt");
                let t = completion + p.retry_backoff_cycles * ((1u64 << r.attempts) - 1);
                assert_eq!(r.final_at, t + p.est_service_cycles, "{tag}");
            }
            Disposition::TimedOut => {
                // Either no further attempt fit the deadline, or the last
                // attempt's re-service overshot it.
                assert!(
                    r.final_at == deadline_at
                        || (r.final_at > deadline_at
                            && r.final_at <= deadline_at + p.est_service_cycles),
                    "{tag}"
                );
            }
            Disposition::Failed => {
                assert_eq!(r.attempts, p.retry_budget, "{tag}: early abandonment");
                assert!(r.final_at <= deadline_at, "{tag}");
            }
        }
    }
}

/// AIMD converges to within one additive step of any capacity cliff inside
/// its search range, from either side.
#[test]
fn aimd_converges_onto_random_capacity_cliffs() {
    let params = AimdParams {
        trials: 40,
        ..AimdParams::default_search()
    };
    let mut rng = Xoshiro256StarStar::seed_from_u64(SplitMix64::new(2017).split(0x0512));
    for _ in 0..12 {
        // Keep the cliff well inside what 40 trials of additive climb from
        // `start_rate` can reach, so convergence is actually demanded.
        let capacity = rng.gen_range(params.min_rate..150);
        let mut a = Aimd::new(params);
        while !a.done() {
            let met = a.rate() <= capacity;
            a.observe(met);
        }
        assert!(a.best_ok() <= capacity, "overshot capacity {capacity}");
        assert!(
            a.best_ok() + params.add_step > capacity,
            "best_ok {} stalled below capacity {capacity}",
            a.best_ok()
        );
    }
}
