//! Search-level kill/resume: an AIMD search journaled trial by trial,
//! killed at an arbitrary cut, must resume through verdict replay and end
//! byte-identical to an uninterrupted search — for every cut point.

use std::io::Write as _;
use std::path::PathBuf;

use silcfm_serve::{journal, Aimd, AimdParams, RequestLedger, SloJournalWriter, TrialRecord};

const DIGEST: u64 = 0x517c_f00d;

fn params() -> AimdParams {
    AimdParams {
        trials: 8,
        ..AimdParams::default_search()
    }
}

/// A deterministic stand-in for a serving trial: met iff the rate is at or
/// below the search's synthetic capacity.
fn trial(search: usize, index: u32, rate: u64, capacity: u64) -> TrialRecord {
    let offered = 100 + rate;
    let met = rate <= capacity;
    let completed = if met { offered } else { offered / 2 };
    TrialRecord {
        search,
        trial: index,
        rate,
        ledger: RequestLedger {
            offered,
            admitted: offered,
            completed,
            shed: 0,
            timed_out: offered - completed,
            failed: 0,
            retries: 0,
        },
        p99: if met { 1_000 } else { 50_000 },
        met,
    }
}

/// Runs the two-search grid, journaling each finished trial, starting from
/// whatever `resumed` verdicts the journal already held.
fn run_search(writer: &mut SloJournalWriter, resumed: &[TrialRecord]) -> Vec<TrialRecord> {
    let capacities = [48u64, 30];
    let mut all = Vec::new();
    for (si, &capacity) in capacities.iter().enumerate() {
        let mut aimd = Aimd::new(params());
        for r in resumed.iter().filter(|r| r.search == si) {
            assert_eq!(r.trial, aimd.observed(), "replay out of order");
            assert_eq!(r.rate, aimd.rate(), "replay diverges from regulator");
            aimd.observe(r.met);
            all.push(*r);
        }
        while !aimd.done() {
            let rec = trial(si, aimd.observed(), aimd.rate(), capacity);
            writer.append(&rec).unwrap();
            aimd.observe(rec.met);
            all.push(rec);
        }
    }
    all
}

fn tmp(name: &str) -> PathBuf {
    let dir = option_env!("CARGO_TARGET_TMPDIR")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir)
        .join("silcfm-slo-resume-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn killed_search_resumes_byte_identically_at_every_cut() {
    // The uninterrupted reference search.
    let reference_path = tmp("reference.journal");
    let mut w = SloJournalWriter::create(&reference_path, DIGEST).unwrap();
    let reference = run_search(&mut w, &[]);
    drop(w);
    assert_eq!(reference.len(), 16, "two searches of eight trials");

    for cut in 0..reference.len() {
        let path = tmp(&format!("cut-{cut}.journal"));
        // Phase 1: journal the first `cut` trials, then "crash" leaving a
        // torn half-record on the tail.
        let mut w = SloJournalWriter::create(&path, DIGEST).unwrap();
        for rec in &reference[..cut] {
            w.append(rec).unwrap();
        }
        drop(w);
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        write!(f, "trial 1 3 2").unwrap();
        drop(f);

        // Phase 2: resume. The torn tail is healed, the finished trials
        // replay, and the completed search matches the reference exactly.
        let (mut w, resumed) = journal::resume(&path, DIGEST).unwrap();
        assert_eq!(resumed, reference[..cut].to_vec(), "cut {cut}: replay set");
        let finished = run_search(&mut w, &resumed);
        drop(w);
        assert_eq!(finished, reference, "cut {cut}: resumed search diverged");

        // The healed journal now holds the full search: a second resume
        // replays everything with nothing left to run.
        let (_w, full) = journal::resume(&path, DIGEST).unwrap();
        assert_eq!(full, reference, "cut {cut}: journal contents diverged");
    }
}
