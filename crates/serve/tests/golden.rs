//! Golden pin of the request-plane digest: one fixed serving trial, its
//! full digest string (ledger + latency sketch + epoch series) hashed and
//! compared against a committed literal, serial and sharded alike.
//!
//! If this test fails, either the engine's timing, the arrival generator,
//! the admission model, or the tracker changed behavior — all of which
//! invalidate every artifact in `results/`. Regenerate deliberately (the
//! failure message prints the new hash) and re-run the benches.

use std::hash::Hasher as _;

use silcfm_serve::{run_serve, ServeParams};
use silcfm_sim::{RunParams, SchemeKind, ShardParams};
use silcfm_trace::{arrivals, profiles};
use silcfm_types::{FxHasher, SystemConfig};

/// FxHash of the serial trial's digest string at the pinned configuration.
const GOLDEN_DIGEST_HASH: u64 = 0x2968_0976_fd52_7675;

fn digest_at(threads: usize) -> String {
    run_serve(
        profiles::by_name("mcf").unwrap(),
        SchemeKind::silcfm(),
        &SystemConfig::small(),
        &RunParams::smoke(),
        &ServeParams::default_plane(),
        arrivals::by_name("bursty").unwrap(),
        35,
        None,
        &ShardParams::with_threads(threads),
    )
    .unwrap()
    .digest()
}

#[test]
fn request_plane_digest_is_pinned_serial_and_sharded() {
    let serial = digest_at(1);
    let mut h = FxHasher::default();
    h.write(serial.as_bytes());
    let got = h.finish();
    assert_eq!(
        got, GOLDEN_DIGEST_HASH,
        "request-plane digest drifted: update GOLDEN_DIGEST_HASH to {got:#018x} \
         only if the behavior change is intentional"
    );
    for threads in [2usize, 4] {
        assert_eq!(
            digest_at(threads),
            serial,
            "threads={threads} diverged from the pinned serial digest"
        );
    }
}
