//! Virtual → physical translation with a 2 KB page size.
//!
//! The paper implements virtual-to-physical translation with 2 KB pages and
//! ensures rate-mode benchmark copies do not share physical pages (§IV-B).
//! [`PageMapper`] reproduces that: every `(core, virtual page)` pair is
//! allocated a distinct physical page on first touch, under one of three
//! static placement policies.

use silcfm_types::rng::{Rng, Xoshiro256StarStar};
use silcfm_types::{AddressSpace, CoreId, FxHashMap, PhysAddr, VirtAddr};

/// Page size used for translation (the paper's 2 KB).
pub const PAGE_BYTES: u64 = 2048;

/// How first-touch allocation places pages across the flat NM+FM space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Pages are placed uniformly at random over NM+FM (the paper's
    /// *Random* static baseline, and the initial layout every hardware
    /// scheme starts from).
    RandomSeeded(u64),
    /// Every page goes to far memory (the paper's no-NM baseline system).
    /// Pages are scattered uniformly within FM, exactly as [`RandomSeeded`]
    /// scatters them within NM+FM, so the baseline differs from the other
    /// policies only in *which memories* it uses, not in row-buffer
    /// locality.
    ///
    /// [`RandomSeeded`]: PlacementPolicy::RandomSeeded
    FarOnly,
    /// Deterministic proportional interleave: one page to NM for every
    /// `fm:nm` ratio's worth to FM.
    Interleaved,
}

/// First-touch page allocator and translator.
#[derive(Debug, Clone)]
pub struct PageMapper {
    space: AddressSpace,
    policy: PlacementPolicy,
    /// Keyed on `(core << 48) | vpage` so a translation hashes one u64
    /// through the multiply-xor [`FxHashMap`] — the hottest map in the
    /// simulator (one lookup per generated access).
    map: FxHashMap<u64, u64>,
    /// Last `(key, physical page)` translated. Page mappings are immutable
    /// once allocated, so this one-entry cache can never go stale; spatial
    /// locality within 2 KB pages makes it hit on most accesses, skipping
    /// the map probe entirely.
    last: Option<(u64, u64)>,
    /// Shuffled physical page pool (RandomSeeded) consumed from the back.
    pool: Vec<u64>,
    next_nm: u64,
    next_fm: u64,
    counter: u64,
}

impl PageMapper {
    /// Creates a mapper over `space`.
    pub fn new(space: AddressSpace, policy: PlacementPolicy) -> Self {
        let nm_pages = space.nm_bytes() / PAGE_BYTES;
        let total_pages = space.total_bytes() / PAGE_BYTES;
        let pool = match policy {
            PlacementPolicy::RandomSeeded(seed) => {
                Self::shuffled_pool((0..total_pages).collect(), seed)
            }
            PlacementPolicy::FarOnly => {
                // A fixed internal seed: the baseline must be reproducible
                // regardless of the workload seed.
                Self::shuffled_pool((nm_pages..total_pages).collect(), 0x5E_EDF0_FA11)
            }
            PlacementPolicy::Interleaved => Vec::new(),
        };
        Self {
            space,
            policy,
            map: FxHashMap::default(),
            last: None,
            pool,
            next_nm: 0,
            next_fm: nm_pages,
            counter: 0,
        }
    }

    /// The address space this mapper allocates within.
    pub const fn space(&self) -> AddressSpace {
        self.space
    }

    /// Number of physical pages allocated so far.
    pub fn pages_allocated(&self) -> usize {
        self.map.len()
    }

    /// Translates `vaddr` for `core`, allocating a physical page on first
    /// touch. Returns `None` when physical memory is exhausted.
    pub fn translate(&mut self, core: CoreId, vaddr: VirtAddr) -> Option<PhysAddr> {
        let vpage = vaddr.page_number(PAGE_BYTES);
        debug_assert!(vpage < 1 << 48, "vpage must leave 16 bits for the core");
        let key = (u64::from(core.value()) << 48) | vpage;
        let ppage = match self.last {
            Some((k, p)) if k == key => p,
            _ => {
                let p = match self.map.get(&key) {
                    Some(&p) => p,
                    None => {
                        let p = self.allocate()?;
                        self.map.insert(key, p);
                        p
                    }
                };
                self.last = Some((key, p));
                p
            }
        };
        Some(PhysAddr::new(
            ppage * PAGE_BYTES + vaddr.page_offset(PAGE_BYTES),
        ))
    }

    fn shuffled_pool(mut pages: Vec<u64>, seed: u64) -> Vec<u64> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        rng.shuffle(&mut pages);
        pages
    }

    fn allocate(&mut self) -> Option<u64> {
        let nm_pages = self.space.nm_bytes() / PAGE_BYTES;
        let total_pages = self.space.total_bytes() / PAGE_BYTES;
        match self.policy {
            PlacementPolicy::RandomSeeded(_) | PlacementPolicy::FarOnly => self.pool.pop(),
            PlacementPolicy::Interleaved => {
                // Place 1 page in NM per (ratio+1) allocations.
                let ratio = self.space.fm_bytes() / self.space.nm_bytes();
                let want_nm = self.counter.is_multiple_of(ratio + 1);
                self.counter += 1;
                let nm_ok = self.next_nm < nm_pages;
                let fm_ok = self.next_fm < total_pages;
                if nm_ok && (want_nm || !fm_ok) {
                    let p = self.next_nm;
                    self.next_nm += 1;
                    Some(p)
                } else if fm_ok {
                    let p = self.next_fm;
                    self.next_fm += 1;
                    Some(p)
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silcfm_types::MemKind;

    fn space() -> AddressSpace {
        // 64 NM pages + 256 FM pages.
        AddressSpace::new(64 * PAGE_BYTES, 256 * PAGE_BYTES)
    }

    #[test]
    fn translation_is_stable() {
        let mut m = PageMapper::new(space(), PlacementPolicy::RandomSeeded(1));
        let a = m.translate(CoreId::new(0), VirtAddr::new(5000)).unwrap();
        let b = m.translate(CoreId::new(0), VirtAddr::new(5000)).unwrap();
        assert_eq!(a, b);
        assert_eq!(m.pages_allocated(), 1);
    }

    #[test]
    fn page_offset_is_preserved() {
        let mut m = PageMapper::new(space(), PlacementPolicy::FarOnly);
        let p = m
            .translate(CoreId::new(0), VirtAddr::new(2048 + 100))
            .unwrap();
        assert_eq!(p.offset(PAGE_BYTES), 100);
    }

    #[test]
    fn cores_get_disjoint_physical_pages() {
        let mut m = PageMapper::new(space(), PlacementPolicy::RandomSeeded(1));
        let a = m.translate(CoreId::new(0), VirtAddr::new(0)).unwrap();
        let b = m.translate(CoreId::new(1), VirtAddr::new(0)).unwrap();
        assert_ne!(a.align_down(PAGE_BYTES), b.align_down(PAGE_BYTES));
    }

    #[test]
    fn far_only_never_touches_nm() {
        let mut m = PageMapper::new(space(), PlacementPolicy::FarOnly);
        for v in 0..100u64 {
            let p = m
                .translate(CoreId::new(0), VirtAddr::new(v * PAGE_BYTES))
                .unwrap();
            assert_eq!(m.space().kind_of(p), MemKind::Far);
        }
    }

    #[test]
    fn random_spreads_proportionally() {
        let mut m = PageMapper::new(space(), PlacementPolicy::RandomSeeded(7));
        let mut nm = 0;
        let total = 320;
        for v in 0..total {
            let p = m
                .translate(CoreId::new(0), VirtAddr::new(v * PAGE_BYTES))
                .unwrap();
            if m.space().kind_of(p) == MemKind::Near {
                nm += 1;
            }
        }
        assert_eq!(nm, 64, "allocating everything uses exactly the NM pages");
    }

    #[test]
    fn random_allocation_exhausts_exactly() {
        let mut m = PageMapper::new(space(), PlacementPolicy::RandomSeeded(7));
        for v in 0..320u64 {
            assert!(m
                .translate(CoreId::new(0), VirtAddr::new(v * PAGE_BYTES))
                .is_some());
        }
        assert!(
            m.translate(CoreId::new(0), VirtAddr::new(320 * PAGE_BYTES))
                .is_none(),
            "321st page must fail"
        );
    }

    #[test]
    fn interleaved_ratio() {
        let mut m = PageMapper::new(space(), PlacementPolicy::Interleaved);
        let mut nm = 0;
        for v in 0..100u64 {
            let p = m
                .translate(CoreId::new(0), VirtAddr::new(v * PAGE_BYTES))
                .unwrap();
            if m.space().kind_of(p) == MemKind::Near {
                nm += 1;
            }
        }
        assert_eq!(nm, 20, "1 in 5 pages goes to NM at a 4:1 ratio");
    }

    #[test]
    fn random_is_seed_deterministic() {
        let mut a = PageMapper::new(space(), PlacementPolicy::RandomSeeded(9));
        let mut b = PageMapper::new(space(), PlacementPolicy::RandomSeeded(9));
        for v in 0..50u64 {
            assert_eq!(
                a.translate(CoreId::new(2), VirtAddr::new(v * PAGE_BYTES)),
                b.translate(CoreId::new(2), VirtAddr::new(v * PAGE_BYTES))
            );
        }
    }
}
