//! Synthetic SPEC-like workloads and virtual memory for the SILC-FM simulator.
//!
//! The paper drives its evaluation with Pin traces of 14 SPEC CPU2006
//! benchmarks (Table III), run in rate mode (one copy per core). Those
//! traces are not reproducible here, so this crate provides *parametric
//! generators* calibrated to the axes the paper's analysis attributes
//! per-benchmark behaviour to:
//!
//! * **memory intensity** — LLC misses per kilo-instruction (low / medium /
//!   high classes of Table III);
//! * **footprint** — pages touched per core;
//! * **page-level spatial locality** — distinct 64 B subblocks used per 2 KB
//!   page visit (drives subblocking vs. whole-page migration);
//! * **hot-set skew** — a small set of pages receiving most accesses (drives
//!   locking);
//! * **hot-set churn** — how quickly the hot set rotates (punishes epoch
//!   schemes like HMA);
//! * **set clustering** — hot pages crowding into few congruence sets
//!   (drives associativity and locking, e.g. `xalancbmk`);
//! * **dependence structure** — pointer chasing vs. streaming (bounds MLP).
//!
//! See [`profiles::all`] for the 14 calibrated profiles and `DESIGN.md`
//! (repository root) for the substitution rationale.
//!
//! # Example
//!
//! ```
//! use silcfm_trace::{profiles, WorkloadGen};
//! use silcfm_types::CoreId;
//!
//! let profile = profiles::by_name("mcf").unwrap();
//! let mut gen = WorkloadGen::new(profile, CoreId::new(0), 42);
//! let rec = gen.next_record();
//! assert!(rec.vaddr.value() < profile.footprint_pages * 2048);
//! ```

pub mod arrivals;
pub mod generator;
pub mod profiles;
pub mod vm;

pub use arrivals::{ArrivalGen, ArrivalKind, ArrivalProfile};
pub use generator::WorkloadGen;
pub use profiles::{AccessPattern, MpkiClass, WorkloadProfile};
pub use vm::{PageMapper, PlacementPolicy};
