//! Open-loop request arrival processes for the serving plane.
//!
//! A batch workload issues its next access as soon as the core is ready —
//! a *closed* loop whose offered load collapses under slowdown. A serving
//! system faces the opposite: requests arrive on the clients' schedule,
//! whether or not the machine keeps up, and overload shows up as queueing,
//! shed load and blown deadlines. This module generates those schedules
//! deterministically in the cycle domain: per-lane arrival cycles that are
//! a pure function of `(profile, rate, lane, seed)`, never of anything the
//! engine does — the purity the sharded byte-identity contract rests on.
//!
//! Three shapes (rd-hashd-style load profiles, scaled to cycles):
//!
//! * **poisson** — a stationary Poisson process at the regulator's rate;
//! * **bursty** — a square wave: short windows at a multiple of the mean
//!   rate, quiet troughs between them (tail-latency stress);
//! * **diurnal** — a triangular ramp up to a peak and back down each
//!   period (slow load swing, exercises admission at the crest).
//!
//! Non-stationary shapes are sampled by *thinning*: candidates are drawn
//! from a homogeneous process at the shape's peak intensity and accepted
//! with probability `ρ(t)/ρ_max`, where `ρ` is the relative intensity
//! (mean 1.0 over a period). Rates are expressed in requests per million
//! CPU cycles per lane, matching the fault plane's rate unit.

use silcfm_types::rng::{Rng, SplitMix64, Xoshiro256StarStar};

/// Stream salt decorrelating arrival draws from every other consumer of
/// the run seed (workload generation, fault schedules, placement).
const ARRIVAL_SALT: u64 = 0xA771;

/// The shape of an arrival process (its relative intensity over time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Stationary: constant intensity.
    Poisson,
    /// Square-wave bursts: for the first `duty_pct`% of each `period`,
    /// intensity is `peak_x10`/10 times the mean; the trough between
    /// bursts is scaled down so the period mean stays 1.0.
    Bursty {
        /// Cycles per burst period.
        period: u64,
        /// Percent of the period spent in the burst (0 < duty < 100).
        duty_pct: u8,
        /// Burst intensity as a multiple of the mean, times 10.
        peak_x10: u8,
    },
    /// Triangular ramp: intensity climbs linearly from a trough to a crest
    /// at mid-`period` and back — a compressed diurnal load swing.
    DiurnalRamp {
        /// Cycles per full up-and-down swing.
        period: u64,
    },
}

/// A named arrival shape, analogous to [`crate::profiles`]' workload table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrivalProfile {
    /// Short identifier used in artifacts and on the command line.
    pub name: &'static str,
    /// The intensity shape.
    pub kind: ArrivalKind,
}

/// Diurnal trough intensity relative to the mean (crest is chosen so the
/// period mean is exactly 1.0: crest = 2 − trough).
const DIURNAL_TROUGH: f64 = 0.25;

const PROFILES: &[ArrivalProfile] = &[
    ArrivalProfile {
        name: "poisson",
        kind: ArrivalKind::Poisson,
    },
    ArrivalProfile {
        name: "bursty",
        kind: ArrivalKind::Bursty {
            period: 200_000,
            duty_pct: 25,
            peak_x10: 30,
        },
    },
    ArrivalProfile {
        name: "diurnal",
        kind: ArrivalKind::DiurnalRamp { period: 400_000 },
    },
];

/// Every calibrated arrival profile.
pub fn all() -> &'static [ArrivalProfile] {
    PROFILES
}

/// Looks an arrival profile up by its short name.
pub fn by_name(name: &str) -> Option<&'static ArrivalProfile> {
    PROFILES.iter().find(|p| p.name == name)
}

impl ArrivalKind {
    /// Peak relative intensity `ρ_max` (the thinning envelope).
    fn peak_relative(&self) -> f64 {
        match self {
            ArrivalKind::Poisson => 1.0,
            ArrivalKind::Bursty { peak_x10, .. } => f64::from(*peak_x10) / 10.0,
            ArrivalKind::DiurnalRamp { .. } => 2.0 - DIURNAL_TROUGH,
        }
    }

    /// Relative intensity `ρ(t)` (period mean 1.0).
    fn relative(&self, t: u64) -> f64 {
        match self {
            ArrivalKind::Poisson => 1.0,
            ArrivalKind::Bursty {
                period,
                duty_pct,
                peak_x10,
            } => {
                let period = (*period).max(1);
                let duty = f64::from((*duty_pct).clamp(1, 99)) / 100.0;
                let peak = f64::from(*peak_x10) / 10.0;
                let phase = (t % period) as f64 / period as f64;
                if phase < duty {
                    peak
                } else {
                    // Trough level keeping the period mean at exactly 1.
                    ((1.0 - peak * duty) / (1.0 - duty)).max(0.0)
                }
            }
            ArrivalKind::DiurnalRamp { period } => {
                let period = (*period).max(1);
                let phase = (t % period) as f64 / period as f64;
                // Triangle 0 → 1 → 0 across the period.
                let tri = 1.0 - (2.0 * phase - 1.0).abs();
                DIURNAL_TROUGH + 2.0 * (1.0 - DIURNAL_TROUGH) * tri
            }
        }
    }
}

/// One lane's deterministic arrival clock: successive calls to
/// [`next_arrival`] yield a non-decreasing sequence of request arrival
/// cycles, a pure function of `(kind, rate, lane, seed)`.
///
/// [`next_arrival`]: ArrivalGen::next_arrival
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    kind: ArrivalKind,
    /// Mean arrival rate, requests per million cycles (per lane).
    rate_per_m: u64,
    rng: Xoshiro256StarStar,
    clock: u64,
}

impl ArrivalGen {
    /// Creates lane `lane`'s arrival stream at `rate_per_m` requests per
    /// million cycles. A zero rate is clamped to 1 (a truly silent lane
    /// would never terminate the admission planner's scan).
    pub fn new(profile: &ArrivalProfile, rate_per_m: u64, lane: u16, seed: u64) -> Self {
        let stream = SplitMix64::new(seed)
            .split(ARRIVAL_SALT)
            .wrapping_add(u64::from(lane).wrapping_mul(0xD1B5_4A32_D192_ED03));
        Self {
            kind: profile.kind,
            rate_per_m: rate_per_m.max(1),
            rng: Xoshiro256StarStar::seed_from_u64(stream),
            clock: 0,
        }
    }

    /// The mean rate in requests per million cycles.
    pub const fn rate_per_m(&self) -> u64 {
        self.rate_per_m
    }

    /// Draws the next arrival cycle (strictly increasing: simultaneous
    /// arrivals are separated by one cycle, which keeps per-lane request
    /// order total and the planner's backlog recursion well-defined).
    pub fn next_arrival(&mut self) -> u64 {
        let peak = self.kind.peak_relative().max(f64::MIN_POSITIVE);
        // Candidate intensity per cycle at the thinning envelope.
        let lambda_max = self.rate_per_m as f64 * peak / 1_000_000.0;
        loop {
            // Exponential gap via inversion; `1 - u` keeps the log finite.
            let u = self.rng.next_f64();
            let gap = (-(1.0 - u).ln() / lambda_max).ceil();
            // Cap one draw at ~u64 range; pathological rates saturate
            // rather than wrap.
            let gap = if gap.is_finite() && gap >= 1.0 {
                gap as u64
            } else {
                1
            };
            self.clock = self.clock.saturating_add(gap);
            let accept = self.kind.relative(self.clock) / peak;
            if accept >= 1.0 || self.rng.next_f64() < accept {
                return self.clock;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrivals(name: &str, rate: u64, lane: u16, seed: u64, n: usize) -> Vec<u64> {
        let mut g = ArrivalGen::new(by_name(name).unwrap(), rate, lane, seed);
        (0..n).map(|_| g.next_arrival()).collect()
    }

    #[test]
    fn profiles_resolve_by_name() {
        assert_eq!(all().len(), 3);
        for p in all() {
            assert_eq!(by_name(p.name).unwrap().kind, p.kind);
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn same_seed_same_schedule() {
        for name in ["poisson", "bursty", "diurnal"] {
            assert_eq!(
                arrivals(name, 50, 2, 42, 500),
                arrivals(name, 50, 2, 42, 500),
                "{name}"
            );
        }
    }

    #[test]
    fn lanes_and_seeds_decorrelate() {
        let a = arrivals("poisson", 50, 0, 42, 200);
        let b = arrivals("poisson", 50, 1, 42, 200);
        let c = arrivals("poisson", 50, 0, 43, 200);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_strictly_increase() {
        for name in ["poisson", "bursty", "diurnal"] {
            let seq = arrivals(name, 200, 1, 7, 1_000);
            assert!(seq.windows(2).all(|w| w[1] > w[0]), "{name}");
        }
    }

    #[test]
    fn mean_rate_is_respected() {
        // 80 req/Mcycle over many arrivals: the empirical rate should land
        // within a few percent for every shape (thinning preserves means).
        for name in ["poisson", "bursty", "diurnal"] {
            let n = 20_000;
            let seq = arrivals(name, 80, 0, 11, n);
            let span = *seq.last().unwrap() as f64;
            let rate = n as f64 / span * 1_000_000.0;
            assert!(
                (rate - 80.0).abs() < 8.0,
                "{name}: empirical rate {rate:.2} per Mcycle"
            );
        }
    }

    #[test]
    fn bursty_concentrates_arrivals_in_the_duty_window() {
        let (period, duty_pct) = match by_name("bursty").unwrap().kind {
            ArrivalKind::Bursty {
                period, duty_pct, ..
            } => (period, duty_pct),
            _ => unreachable!(),
        };
        let seq = arrivals("bursty", 100, 0, 3, 20_000);
        let in_burst = seq
            .iter()
            .filter(|&&t| (t % period) as f64 / (period as f64) < f64::from(duty_pct) / 100.0)
            .count();
        let frac = in_burst as f64 / seq.len() as f64;
        // 25% of the time at 3x the mean rate → 75% of arrivals.
        assert!(
            frac > 0.65,
            "burst window should dominate arrivals: {frac:.3}"
        );
    }

    #[test]
    fn diurnal_peaks_mid_period() {
        let period = match by_name("diurnal").unwrap().kind {
            ArrivalKind::DiurnalRamp { period } => period,
            _ => unreachable!(),
        };
        let seq = arrivals("diurnal", 100, 0, 5, 20_000);
        let crest = seq
            .iter()
            .filter(|&&t| {
                let phase = (t % period) as f64 / period as f64;
                (0.25..0.75).contains(&phase)
            })
            .count();
        let frac = crest as f64 / seq.len() as f64;
        // The middle half of the period carries the intensity crest.
        assert!(frac > 0.60, "crest half should dominate: {frac:.3}");
    }
}
