//! The 14 workload profiles of Table III.
//!
//! Parameter values are calibrated to the paper's per-benchmark narrative
//! (§V): which benchmarks are conflict-prone, which have lukewarm working
//! sets, which churn their hot set, and the MPKI class and relative footprint
//! of each. Footprints are scaled from the paper's gigabytes to megabytes so
//! experiments finish in seconds; all capacity-dependent behaviour is
//! preserved because the simulated NM/FM sizes scale with them.

use core::fmt;

/// Table III's three memory-intensity classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MpkiClass {
    /// LLC MPKI below 11.
    Low,
    /// LLC MPKI between 11 and 32.
    Medium,
    /// LLC MPKI above 32.
    High,
}

impl fmt::Display for MpkiClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Low => "Low MPKI",
            Self::Medium => "Medium MPKI",
            Self::High => "High MPKI",
        })
    }
}

/// How a page visit walks its subblocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// Sequential subblocks from the start of the page (dense loops).
    Streaming,
    /// Fixed-stride subblocks within the page.
    Strided {
        /// Stride in subblocks.
        stride: u32,
    },
    /// Uniformly random subblocks within the page.
    Random,
    /// Serially dependent random subblocks (linked data structures); each
    /// access depends on the previous one, so misses cannot overlap.
    PointerChase,
}

/// A parametric description of one benchmark's memory behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Benchmark name as in Table III.
    pub name: &'static str,
    /// Memory-intensity class.
    pub class: MpkiClass,
    /// Target LLC misses per kilo-instruction per core; sets the compute gap
    /// between memory accesses.
    pub target_mpki: f64,
    /// Pages (2 KB) touched per core.
    pub footprint_pages: u64,
    /// Fraction of the footprint that is hot.
    pub hot_fraction: f64,
    /// Fraction of accesses directed at hot pages.
    pub hot_access_fraction: f64,
    /// Mean distinct subblocks touched per page visit (1..=32).
    pub spatial_subblocks: u32,
    /// Accesses between hot-set rotations; `u64::MAX` means a stable hot set.
    pub churn_interval: u64,
    /// Fraction of the hot set replaced at each rotation.
    pub churn_fraction: f64,
    /// Subblock walk pattern.
    pub pattern: AccessPattern,
    /// Fraction of accesses that are stores.
    pub write_fraction: f64,
    /// Probability that a hot page is drawn from a congruence-clustered pool
    /// (pages sharing their low-order page-number bits, which collide in
    /// set-indexed NM organizations). 0 = spread evenly, 1 = fully clustered.
    pub hot_clustering: f64,
    /// Popularity skew within the hot set: hot page ranks are drawn as
    /// `u^hot_skew` for uniform `u`, so 1.0 is uniform and larger values
    /// concentrate accesses on the hottest few pages (real working sets are
    /// Zipf-like; high skew is what makes locking profitable).
    pub hot_skew: f64,
}

impl WorkloadProfile {
    /// Mean non-memory instructions between memory accesses, derived from
    /// the MPKI target under the approximation that accesses to a
    /// far-larger-than-LLC footprint miss the LLC.
    pub fn mean_compute_gap(&self) -> u32 {
        ((1000.0 / self.target_mpki) - 1.0).max(0.0).round() as u32
    }

    /// Number of hot pages.
    pub fn hot_pages(&self) -> u64 {
        ((self.footprint_pages as f64 * self.hot_fraction).round() as u64).max(1)
    }
}

impl fmt::Display for WorkloadProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, mpki~{}, {} pages)",
            self.name, self.class, self.target_mpki, self.footprint_pages
        )
    }
}

/// Page-number stride used by clustered hot sets. Hot pages chosen
/// `CLUSTER_STRIDE` apart share their index bits in any set-indexed NM
/// organization with at most this many sets, recreating `xalancbmk`-style
/// uneven hot-page distribution.
pub const CLUSTER_STRIDE: u64 = 1024;

const PROFILES: &[WorkloadProfile] = &[
    // ---- Low MPKI --------------------------------------------------------
    WorkloadProfile {
        name: "bwaves",
        class: MpkiClass::Low,
        target_mpki: 8.0,
        footprint_pages: 12_288, // 24 MiB/core
        hot_fraction: 0.14,
        hot_access_fraction: 0.70,
        spatial_subblocks: 28,
        churn_interval: u64::MAX,
        churn_fraction: 0.0,
        pattern: AccessPattern::Streaming,
        write_fraction: 0.25,
        hot_clustering: 0.0,
        hot_skew: 1.5,
    },
    WorkloadProfile {
        name: "cactus",
        class: MpkiClass::Low,
        target_mpki: 6.0,
        footprint_pages: 12_288,
        hot_fraction: 0.10,
        hot_access_fraction: 0.80,
        spatial_subblocks: 14,
        churn_interval: u64::MAX,
        churn_fraction: 0.0,
        pattern: AccessPattern::Strided { stride: 1 },
        write_fraction: 0.30,
        hot_clustering: 0.75, // conflict-prone under direct-mapped schemes
        hot_skew: 2.2,
    },
    WorkloadProfile {
        name: "dealii",
        class: MpkiClass::Low,
        target_mpki: 5.0,
        footprint_pages: 8_192,
        hot_fraction: 0.15,
        hot_access_fraction: 0.75,
        spatial_subblocks: 8,
        churn_interval: u64::MAX,
        churn_fraction: 0.0,
        pattern: AccessPattern::Random,
        write_fraction: 0.20,
        hot_clustering: 0.2,
        hot_skew: 1.8,
    },
    WorkloadProfile {
        name: "xalanc",
        class: MpkiClass::Low,
        target_mpki: 10.0,
        footprint_pages: 20_480,
        hot_fraction: 0.06,
        hot_access_fraction: 0.90, // strongly skewed hot set …
        spatial_subblocks: 10,
        churn_interval: u64::MAX,
        churn_fraction: 0.0,
        pattern: AccessPattern::Random,
        write_fraction: 0.20,
        hot_clustering: 1.0, // … crowded into few sets → locking pays (+14 %)
        hot_skew: 3.0,
    },
    // ---- Medium MPKI -----------------------------------------------------
    WorkloadProfile {
        name: "gcc",
        class: MpkiClass::Medium,
        target_mpki: 14.0,
        footprint_pages: 8_192,
        hot_fraction: 0.15, // a large *lukewarm* working set …
        hot_access_fraction: 0.80,
        spatial_subblocks: 12,
        churn_interval: 400_000,
        churn_fraction: 0.15,
        pattern: AccessPattern::Random,
        write_fraction: 0.30,
        hot_clustering: 0.35, // … that conflicts: associativity pays (+36 %)
        hot_skew: 1.2,
    },
    WorkloadProfile {
        name: "gems",
        class: MpkiClass::Medium,
        target_mpki: 20.0,
        footprint_pages: 10_240,
        hot_fraction: 0.12,
        hot_access_fraction: 0.80,
        spatial_subblocks: 16,
        churn_interval: 120_000, // short-lived hot pages: epochs are too slow
        churn_fraction: 0.50,
        pattern: AccessPattern::Strided { stride: 1 },
        write_fraction: 0.30,
        hot_clustering: 0.2,
        hot_skew: 2.0,
    },
    WorkloadProfile {
        name: "leslie",
        class: MpkiClass::Medium,
        target_mpki: 18.0,
        footprint_pages: 10_240,
        hot_fraction: 0.14,
        hot_access_fraction: 0.70,
        spatial_subblocks: 24,
        churn_interval: u64::MAX,
        churn_fraction: 0.0,
        pattern: AccessPattern::Streaming,
        write_fraction: 0.35,
        hot_clustering: 0.0,
        hot_skew: 1.5,
    },
    WorkloadProfile {
        name: "omnet",
        class: MpkiClass::Medium,
        target_mpki: 25.0,
        footprint_pages: 8_192,
        hot_fraction: 0.15,
        hot_access_fraction: 0.75,
        spatial_subblocks: 6,
        churn_interval: 600_000,
        churn_fraction: 0.25,
        pattern: AccessPattern::PointerChase,
        write_fraction: 0.25,
        hot_clustering: 0.3,
        hot_skew: 1.8,
    },
    WorkloadProfile {
        name: "zeusmp",
        class: MpkiClass::Medium,
        target_mpki: 15.0,
        footprint_pages: 8_192,
        hot_fraction: 0.12,
        hot_access_fraction: 0.75,
        spatial_subblocks: 20,
        churn_interval: u64::MAX,
        churn_fraction: 0.0,
        pattern: AccessPattern::Strided { stride: 1 },
        write_fraction: 0.30,
        hot_clustering: 0.1,
        hot_skew: 1.6,
    },
    // ---- High MPKI -------------------------------------------------------
    WorkloadProfile {
        name: "lbm",
        class: MpkiClass::High,
        target_mpki: 40.0,
        footprint_pages: 16_384, // 32 MiB/core
        hot_fraction: 0.12,
        hot_access_fraction: 0.75,
        spatial_subblocks: 32,
        churn_interval: u64::MAX,
        churn_fraction: 0.0,
        pattern: AccessPattern::Streaming,
        write_fraction: 0.45,
        hot_clustering: 0.0,
        hot_skew: 1.3,
    },
    WorkloadProfile {
        name: "lib",
        class: MpkiClass::High,
        target_mpki: 35.0,
        footprint_pages: 8_192,
        hot_fraction: 0.12,
        hot_access_fraction: 0.85, // stable hot set: HMA does well …
        spatial_subblocks: 30,
        churn_interval: u64::MAX,
        churn_fraction: 0.0,
        pattern: AccessPattern::Streaming,
        write_fraction: 0.20,
        hot_clustering: 0.8, // … but CAMEO conflicts
        hot_skew: 2.0,
    },
    WorkloadProfile {
        name: "mcf",
        class: MpkiClass::High,
        target_mpki: 60.0,
        footprint_pages: 16_384,
        hot_fraction: 0.10,
        hot_access_fraction: 0.65,
        spatial_subblocks: 3,
        churn_interval: 800_000,
        churn_fraction: 0.20,
        pattern: AccessPattern::PointerChase,
        write_fraction: 0.15,
        hot_clustering: 0.2,
        hot_skew: 1.8,
    },
    WorkloadProfile {
        name: "milc",
        class: MpkiClass::High,
        target_mpki: 45.0,
        footprint_pages: 12_288,
        hot_fraction: 0.08,
        hot_access_fraction: 0.90, // very hot small set: access rate > 0.8 …
        spatial_subblocks: 8,
        churn_interval: u64::MAX,
        churn_fraction: 0.0,
        pattern: AccessPattern::Random,
        write_fraction: 0.30,
        hot_clustering: 0.8, // … but conflicts thrash plain swapping
        hot_skew: 2.5,
    },
    WorkloadProfile {
        name: "soplex",
        class: MpkiClass::High,
        target_mpki: 38.0,
        footprint_pages: 10_240,
        hot_fraction: 0.12,
        hot_access_fraction: 0.75,
        spatial_subblocks: 12,
        churn_interval: 500_000,
        churn_fraction: 0.20,
        pattern: AccessPattern::Strided { stride: 2 },
        write_fraction: 0.25,
        hot_clustering: 0.3,
        hot_skew: 1.8,
    },
];

/// All 14 Table III profiles, in the paper's order.
pub fn all() -> &'static [WorkloadProfile] {
    PROFILES
}

/// Looks up a profile by benchmark name.
pub fn by_name(name: &str) -> Option<&'static WorkloadProfile> {
    PROFILES.iter().find(|p| p.name == name)
}

/// Returns a copy of `profile` with its footprint (and churn interval)
/// scaled by `factor`, for `--quick` experiment runs.
pub fn scaled(profile: &WorkloadProfile, factor: f64) -> WorkloadProfile {
    assert!(factor > 0.0, "scale factor must be positive");
    let mut p = *profile;
    p.footprint_pages = ((p.footprint_pages as f64 * factor).round() as u64).max(64);
    if p.churn_interval != u64::MAX {
        p.churn_interval = ((p.churn_interval as f64 * factor).round() as u64).max(1_000);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_all_14_benchmarks() {
        assert_eq!(all().len(), 14);
        let names: Vec<_> = all().iter().map(|p| p.name).collect();
        for expected in [
            "bwaves", "cactus", "dealii", "xalanc", "gcc", "gems", "leslie", "omnet", "zeusmp",
            "lbm", "lib", "mcf", "milc", "soplex",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn class_boundaries_match_the_paper() {
        for p in all() {
            match p.class {
                MpkiClass::Low => assert!(p.target_mpki < 11.0, "{}", p.name),
                MpkiClass::Medium => {
                    assert!(p.target_mpki >= 11.0 && p.target_mpki <= 32.0, "{}", p.name)
                }
                MpkiClass::High => assert!(p.target_mpki > 32.0, "{}", p.name),
            }
        }
    }

    #[test]
    fn parameters_are_sane() {
        for p in all() {
            assert!(
                p.spatial_subblocks >= 1 && p.spatial_subblocks <= 32,
                "{}",
                p.name
            );
            assert!(p.hot_fraction > 0.0 && p.hot_fraction < 1.0, "{}", p.name);
            assert!(
                p.hot_access_fraction > 0.0 && p.hot_access_fraction <= 1.0,
                "{}",
                p.name
            );
            assert!(
                p.write_fraction >= 0.0 && p.write_fraction <= 1.0,
                "{}",
                p.name
            );
            assert!((0.0..=1.0).contains(&p.hot_clustering), "{}", p.name);
            assert!(p.hot_pages() >= 1);
            assert!(p.footprint_pages >= 1024, "{}", p.name);
        }
    }

    #[test]
    fn compute_gap_from_mpki() {
        let p = by_name("mcf").unwrap();
        // 1000/60 - 1 ≈ 16.
        assert_eq!(p.mean_compute_gap(), 16);
        let b = by_name("dealii").unwrap();
        assert_eq!(b.mean_compute_gap(), 199);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("xalanc").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn scaling_shrinks_footprint() {
        let p = by_name("lbm").unwrap();
        let s = scaled(p, 0.25);
        assert_eq!(s.footprint_pages, p.footprint_pages / 4);
        let g = scaled(by_name("gems").unwrap(), 0.5);
        assert_eq!(g.churn_interval, 60_000);
    }

    #[test]
    fn display_forms() {
        assert!(by_name("mcf").unwrap().to_string().contains("High MPKI"));
        assert_eq!(MpkiClass::Low.to_string(), "Low MPKI");
    }
}
