//! The workload generator: turns a [`WorkloadProfile`] into a deterministic
//! stream of [`TraceRecord`]s.

use silcfm_types::rng::{Rng, Xoshiro256StarStar};
use silcfm_types::{CoreId, TraceRecord, VirtAddr};

use crate::profiles::{AccessPattern, WorkloadProfile, CLUSTER_STRIDE};

/// Subblocks per 2 KB page (the generator works in paper geometry).
const SUBBLOCKS_PER_PAGE: u32 = 32;
/// Page size the generator emits addresses for.
const PAGE_BYTES: u64 = 2048;
/// Number of distinct PC sites per visit class; small so that PC/address
/// correlation (exploited by SILC-FM's history table and predictor) exists.
const PC_SITES: u64 = 8;

/// A deterministic generator of one core's access stream.
///
/// Two generators with the same profile, core and seed produce identical
/// streams; different cores produce decorrelated streams over disjoint
/// virtual address spaces (the [`crate::PageMapper`] keeps them physically
/// disjoint too, as in the paper's rate-mode runs).
#[derive(Debug, Clone)]
pub struct WorkloadGen {
    profile: WorkloadProfile,
    rng: Xoshiro256StarStar,
    hot_pages: Vec<u64>,
    accesses: u64,
    next_churn: u64,
    // Current page visit state.
    page: u64,
    remaining: u32,
    cursor: u32,
    stride: u32,
    visit_pc: u64,
    visit_dependent: bool,
    // Streaming cursors.
    stream_cold: u64,
    stream_hot: usize,
    /// Per-page visit-rotation counters: successive visits to a page walk
    /// successive windows of it.
    rotation: silcfm_types::FxHashMap<u64, u32>,
}

impl WorkloadGen {
    /// Creates a generator for `core` with a reproducible `seed`.
    pub fn new(profile: &WorkloadProfile, core: CoreId, seed: u64) -> Self {
        let mut rng = Xoshiro256StarStar::seed_from_u64(
            seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ u64::from(core.value()).wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        let hot_pages = Self::choose_hot_pages(profile, &mut rng);
        let next_churn = if profile.churn_interval == u64::MAX {
            u64::MAX
        } else {
            profile.churn_interval
        };
        let mut gen = Self {
            profile: *profile,
            rng,
            hot_pages,
            accesses: 0,
            next_churn,
            page: 0,
            remaining: 0,
            cursor: 0,
            stride: 1,
            visit_pc: 0,
            visit_dependent: false,
            stream_cold: 0,
            stream_hot: 0,
            rotation: silcfm_types::FxHashMap::default(),
        };
        gen.begin_visit();
        gen
    }

    /// The profile driving this generator.
    pub const fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Accesses emitted so far.
    pub const fn accesses(&self) -> u64 {
        self.accesses
    }

    /// The current hot pages (for tests and diagnostics).
    pub fn hot_pages(&self) -> &[u64] {
        &self.hot_pages
    }

    /// Produces the next trace record. The stream is infinite.
    pub fn next_record(&mut self) -> TraceRecord {
        if self.remaining == 0 {
            self.begin_visit();
        }

        let offset = self.cursor % SUBBLOCKS_PER_PAGE;
        self.cursor = self.cursor.wrapping_add(self.stride.max(1));
        self.remaining -= 1;

        let vaddr = VirtAddr::new(self.page * PAGE_BYTES + u64::from(offset) * 64);
        let gap = self.sample_gap();
        let is_write = self.rng.gen_bool(self.profile.write_fraction);
        let pc = self.visit_pc;
        let dependent = self.visit_dependent;

        self.accesses += 1;
        if self.accesses >= self.next_churn {
            self.churn_hot_set();
            self.next_churn = self.accesses + self.profile.churn_interval;
        }

        let rec = if is_write {
            TraceRecord::store(gap, vaddr, pc)
        } else {
            TraceRecord::load(gap, vaddr, pc)
        };
        if dependent {
            rec.depends()
        } else {
            rec
        }
    }

    fn begin_visit(&mut self) {
        let hot = self.rng.gen_bool(self.profile.hot_access_fraction);
        self.page = if hot {
            match self.profile.pattern {
                AccessPattern::Streaming => {
                    // silcfm-lint: allow(P1) -- modulo len; hot_pages is non-empty by construction
                    let p = self.hot_pages[self.stream_hot % self.hot_pages.len()];
                    self.stream_hot += 1;
                    p
                }
                _ => {
                    // Zipf-like popularity: rank = u^skew biases toward the
                    // head of the hot list.
                    let u: f64 = self.rng.next_f64();
                    let rank =
                        (u.powf(self.profile.hot_skew) * self.hot_pages.len() as f64) as usize;
                    // silcfm-lint: allow(P1) -- rank is clamped to len - 1; hot_pages is non-empty
                    self.hot_pages[rank.min(self.hot_pages.len() - 1)]
                }
            }
        } else {
            match self.profile.pattern {
                AccessPattern::Streaming => {
                    let p = self.stream_cold % self.profile.footprint_pages;
                    self.stream_cold += 7; // co-prime step decorrelates cores
                    p
                }
                _ => self.rng.gen_range(0..self.profile.footprint_pages),
            }
        };

        let mean = self.profile.spatial_subblocks;
        let jitter = (mean / 4).max(1);
        let count = self
            .rng
            .gen_range(mean.saturating_sub(jitter).max(1)..=(mean + jitter).min(32));
        self.remaining = count;

        // The walk start is a deterministic function of the page and of how
        // often it has been visited: programs stream over large structures,
        // so successive visits to a hot page touch successive *windows* of
        // it. Page-level locality (what 2 KB-granularity schemes exploit)
        // stays high while individual lines recur slowly enough that the
        // LLC does not swallow the hot set.
        let page_hash = (self.page.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as u32;
        let window = if matches!(self.profile.pattern, AccessPattern::PointerChase) {
            // Linked-structure nodes sit at fixed offsets: pointer chases
            // revisit the same subblocks of a page, never windows of it.
            page_hash % SUBBLOCKS_PER_PAGE
        } else {
            let rot = self.rotation.entry(self.page).or_insert(0);
            let w = page_hash.wrapping_add(*rot * mean) % SUBBLOCKS_PER_PAGE;
            *rot = rot.wrapping_add(1);
            w
        };
        let (start, stride, dependent) = match self.profile.pattern {
            AccessPattern::Streaming => (0, 1, false),
            AccessPattern::Strided { stride } => (window % stride.max(1), stride, false),
            AccessPattern::Random => (window, 1, false),
            AccessPattern::PointerChase => (window, 11, true),
        };
        self.cursor = start;
        self.stride = stride;
        self.visit_dependent = dependent;
        // A small, page-correlated set of PC sites, disjoint for hot/cold.
        let site = self.page % PC_SITES;
        self.visit_pc = if hot {
            0x0040_0000 + site * 4
        } else {
            0x0050_0000 + site * 4
        };
    }

    fn sample_gap(&mut self) -> u32 {
        let mean = self.profile.mean_compute_gap();
        if mean == 0 {
            return 0;
        }
        let jitter = (mean / 4).max(1);
        self.rng
            .gen_range(mean.saturating_sub(jitter)..=mean + jitter)
    }

    fn choose_hot_pages(profile: &WorkloadProfile, rng: &mut Xoshiro256StarStar) -> Vec<u64> {
        let count = profile.hot_pages() as usize;
        let mut pages = Vec::with_capacity(count);
        let clustered_target = (count as f64 * profile.hot_clustering).round() as usize;

        // Clustered portion: fill whole congruence residues so hot pages
        // collide in set-indexed NM organizations.
        let pages_per_residue = (profile.footprint_pages / CLUSTER_STRIDE).max(1);
        let mut residue = rng.gen_range(0..CLUSTER_STRIDE.min(profile.footprint_pages));
        'outer: while pages.len() < clustered_target {
            for i in 0..pages_per_residue {
                let p = residue + i * CLUSTER_STRIDE;
                if p < profile.footprint_pages {
                    pages.push(p);
                    if pages.len() >= clustered_target {
                        break 'outer;
                    }
                }
            }
            residue = (residue + 1) % CLUSTER_STRIDE.min(profile.footprint_pages);
        }

        // Remainder: uniform random, deduplicated against what we have.
        while pages.len() < count {
            let p = rng.gen_range(0..profile.footprint_pages);
            if !pages.contains(&p) {
                pages.push(p);
            }
        }
        pages
    }

    fn churn_hot_set(&mut self) {
        let replace = ((self.hot_pages.len() as f64 * self.profile.churn_fraction).round()
            as usize)
            .min(self.hot_pages.len());
        for _ in 0..replace {
            let idx = self.rng.gen_range(0..self.hot_pages.len());
            // silcfm-lint: allow(P1) -- gen_range(0..len) keeps idx in bounds
            self.hot_pages[idx] = self.rng.gen_range(0..self.profile.footprint_pages);
        }
    }
}

impl Iterator for WorkloadGen {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        Some(self.next_record())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use silcfm_types::FxHashSet;

    fn gen_for(name: &str) -> WorkloadGen {
        WorkloadGen::new(profiles::by_name(name).unwrap(), CoreId::new(0), 1)
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = gen_for("mcf");
        let mut b = gen_for("mcf");
        for _ in 0..1000 {
            assert_eq!(a.next_record(), b.next_record());
        }
    }

    #[test]
    fn different_cores_diverge() {
        let p = profiles::by_name("mcf").unwrap();
        let mut a = WorkloadGen::new(p, CoreId::new(0), 1);
        let mut b = WorkloadGen::new(p, CoreId::new(1), 1);
        let same = (0..100)
            .filter(|_| a.next_record() == b.next_record())
            .count();
        assert!(
            same < 100,
            "different cores must not emit identical streams"
        );
    }

    #[test]
    fn addresses_stay_in_footprint() {
        let p = profiles::by_name("xalanc").unwrap();
        let mut g = WorkloadGen::new(p, CoreId::new(0), 7);
        for _ in 0..10_000 {
            let r = g.next_record();
            assert!(r.vaddr.value() < p.footprint_pages * PAGE_BYTES);
        }
    }

    #[test]
    fn pointer_chase_is_dependent() {
        let mut g = gen_for("mcf");
        let dependent = (0..1000).filter(|_| g.next_record().dependent).count();
        assert!(
            dependent > 900,
            "mcf should be nearly all dependent: {dependent}"
        );
    }

    #[test]
    fn streaming_is_independent_and_sequential() {
        let mut g = gen_for("lbm");
        let recs: Vec<_> = (0..100).map(|_| g.next_record()).collect();
        assert!(recs.iter().all(|r| !r.dependent));
        // Within a page visit, consecutive records advance by one subblock.
        let sequential = recs
            .windows(2)
            .filter(|w| w[1].vaddr.value() == w[0].vaddr.value() + 64)
            .count();
        assert!(sequential > 50, "streaming mostly sequential: {sequential}");
    }

    #[test]
    fn hot_pages_receive_most_accesses() {
        let p = profiles::by_name("milc").unwrap(); // 90% hot accesses
        let mut g = WorkloadGen::new(p, CoreId::new(0), 3);
        let hot: FxHashSet<u64> = g.hot_pages().iter().copied().collect();
        let mut hot_hits = 0;
        let total = 20_000;
        for _ in 0..total {
            let r = g.next_record();
            if hot.contains(&(r.vaddr.value() / PAGE_BYTES)) {
                hot_hits += 1;
            }
        }
        let frac = hot_hits as f64 / f64::from(total);
        // Churnless profile: the initial hot set stays authoritative.
        assert!(frac > 0.80, "hot fraction = {frac}");
    }

    #[test]
    fn clustered_hot_pages_share_residues() {
        let p = profiles::by_name("xalanc").unwrap(); // clustering 1.0
        let g = WorkloadGen::new(p, CoreId::new(0), 3);
        let residues: FxHashSet<u64> = g.hot_pages().iter().map(|p| p % CLUSTER_STRIDE).collect();
        // ~307 hot pages with only 5 pages per residue → ~62 residues, far
        // fewer than 307 distinct ones an unclustered choice would give.
        assert!(
            residues.len() < g.hot_pages().len() / 3,
            "clustered hot set must reuse residues: {} residues for {} pages",
            residues.len(),
            g.hot_pages().len()
        );
    }

    #[test]
    fn churn_rotates_hot_set() {
        let p = profiles::by_name("gems").unwrap();
        let mut g = WorkloadGen::new(p, CoreId::new(0), 3);
        let before: Vec<u64> = g.hot_pages().to_vec();
        for _ in 0..(p.churn_interval + 10) {
            let _ = g.next_record();
        }
        let after = g.hot_pages();
        let changed = before
            .iter()
            .zip(after.iter())
            .filter(|(a, b)| a != b)
            .count();
        assert!(changed > 0, "hot set must rotate after the churn interval");
    }

    #[test]
    fn compute_gaps_track_mpki() {
        let mut g = gen_for("dealii"); // mean gap 199
        let total: u64 = (0..10_000)
            .map(|_| u64::from(g.next_record().compute))
            .sum();
        let mean = total as f64 / 10_000.0;
        assert!((mean - 199.0).abs() < 20.0, "mean gap = {mean}");
    }

    #[test]
    fn write_fraction_is_respected() {
        let mut g = gen_for("lbm"); // 45% writes
        let writes = (0..10_000)
            .filter(|_| g.next_record().kind.is_write())
            .count();
        let frac = writes as f64 / 10_000.0;
        assert!((frac - 0.45).abs() < 0.05, "write fraction = {frac}");
    }

    #[test]
    fn iterator_interface_is_infinite() {
        let g = gen_for("gcc");
        assert_eq!(g.take(5).count(), 5);
    }
}
