//! The typed error used by every fallible configuration / setup path.
//!
//! Hot-path code (the per-access simulation loop) never returns errors —
//! the P1 lint keeps panics out of it and invariants are enforced by
//! construction. Setup code is different: a bad DRAM geometry, an invalid
//! parameter ladder, a malformed fault schedule or a corrupt resume journal
//! are *user input* problems, and crashing an hours-long grid with a panic
//! is the wrong failure mode. Those paths return [`SilcFmError`] instead,
//! so drivers (the bench binaries, the journaled runner) can report the
//! problem and exit cleanly — or, for the runner, resume past it.

use core::fmt;

/// Everything that can go wrong while *setting up* or *persisting* a run.
///
/// Variants carry a human-readable reason rather than deep structure: these
/// errors terminate in a message to the operator, not in programmatic
/// recovery, so a string keeps the type stable as validations grow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SilcFmError {
    /// A `SilcFmParams` ladder failed validation (see `ParamsError` in
    /// `silcfm-core` for the structured form this wraps).
    Params {
        /// What was wrong with the parameters.
        reason: String,
    },
    /// A `DramConfig` described an impossible device.
    DramConfig {
        /// What was wrong with the configuration.
        reason: String,
    },
    /// A fault schedule or fault-rate configuration was invalid.
    FaultConfig {
        /// What was wrong with the fault configuration.
        reason: String,
    },
    /// The experiment setup (grid, workload, system wiring) was invalid.
    Experiment {
        /// What was wrong with the experiment.
        reason: String,
    },
    /// The crash-safe result journal could not be read, written or matched
    /// against the grid being run.
    Journal {
        /// What went wrong with the journal.
        reason: String,
    },
}

impl SilcFmError {
    /// Builds a [`SilcFmError::Params`] from anything displayable.
    pub fn params(reason: impl fmt::Display) -> Self {
        Self::Params {
            reason: reason.to_string(),
        }
    }

    /// Builds a [`SilcFmError::DramConfig`] from anything displayable.
    pub fn dram_config(reason: impl fmt::Display) -> Self {
        Self::DramConfig {
            reason: reason.to_string(),
        }
    }

    /// Builds a [`SilcFmError::FaultConfig`] from anything displayable.
    pub fn fault_config(reason: impl fmt::Display) -> Self {
        Self::FaultConfig {
            reason: reason.to_string(),
        }
    }

    /// Builds a [`SilcFmError::Experiment`] from anything displayable.
    pub fn experiment(reason: impl fmt::Display) -> Self {
        Self::Experiment {
            reason: reason.to_string(),
        }
    }

    /// Builds a [`SilcFmError::Journal`] from anything displayable.
    pub fn journal(reason: impl fmt::Display) -> Self {
        Self::Journal {
            reason: reason.to_string(),
        }
    }
}

impl fmt::Display for SilcFmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SilcFmError::Params { reason } => write!(f, "invalid SILC-FM parameters: {reason}"),
            SilcFmError::DramConfig { reason } => write!(f, "invalid DRAM config: {reason}"),
            SilcFmError::FaultConfig { reason } => write!(f, "invalid fault config: {reason}"),
            SilcFmError::Experiment { reason } => write!(f, "invalid experiment: {reason}"),
            SilcFmError::Journal { reason } => write!(f, "journal error: {reason}"),
        }
    }
}

impl std::error::Error for SilcFmError {}

impl From<std::io::Error> for SilcFmError {
    fn from(e: std::io::Error) -> Self {
        Self::journal(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_category() {
        assert_eq!(
            SilcFmError::params("associativity must be a power of two").to_string(),
            "invalid SILC-FM parameters: associativity must be a power of two"
        );
        assert!(SilcFmError::dram_config("0 channels")
            .to_string()
            .starts_with("invalid DRAM config"));
        assert!(SilcFmError::fault_config("rate > 1")
            .to_string()
            .starts_with("invalid fault config"));
        assert!(SilcFmError::journal("truncated header")
            .to_string()
            .starts_with("journal error"));
        assert!(SilcFmError::experiment("no jobs")
            .to_string()
            .starts_with("invalid experiment"));
    }

    #[test]
    fn io_errors_become_journal_errors() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: SilcFmError = io.into();
        assert!(matches!(e, SilcFmError::Journal { .. }));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&SilcFmError::params("x"));
    }
}
