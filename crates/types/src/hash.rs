//! A fast multiply-xor hasher for the simulator's hot hash maps.
//!
//! `std`'s default hasher (SipHash) is keyed and DoS-resistant — properties
//! a deterministic single-process simulator does not need and pays dearly
//! for: page translation hashes on *every* simulated access. [`FxHasher`]
//! is the rustc-style rotate-xor-multiply hash: one rotate, one xor and one
//! multiplication per word, unkeyed and fully deterministic across runs and
//! platforms (the build-hasher carries no random state).
//!
//! Use [`FxHashMap`]/[`FxHashSet`] wherever the simulator keys maps by
//! integers or small tuples. Note that `HashMap` iteration order is *still*
//! not part of the simulator's determinism contract: any code whose output
//! depends on map ordering must impose a total order itself (as
//! `Hma::epoch_boundary` does by sorting candidates).

// silcfm-lint: allow(D1) -- this module defines the sanctioned aliases: the std containers are re-exported with the deterministic FxHasher substituted
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash family: a random-ish odd 64-bit constant with
/// good avalanche behaviour under `(h ⋘ 5) ^ w` mixing.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc-style multiply-xor hasher. Not DoS-resistant; do not expose to
/// untrusted keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// Build-hasher for [`FxHasher`]; carries no per-map random state, so hash
/// values are identical across maps, runs and platforms.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` hashed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` hashed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::forall;
    use crate::rng::Rng;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(&0xdead_beefu64), hash_of(&0xdead_beefu64));
        assert_eq!(hash_of(&(7u16, 42u64)), hash_of(&(7u16, 42u64)));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        forall("fxhash_nearby_keys_differ", |rng| {
            let k = rng.gen_range(0..u64::MAX - 1);
            assert_ne!(hash_of(&k), hash_of(&(k + 1)));
        });
    }

    #[test]
    fn byte_stream_matches_word_writes_for_whole_words() {
        // The `write` fallback consumes 8-byte words little-endian, so a
        // byte slice of one u64 hashes like the u64 itself.
        let v = 0x0123_4567_89ab_cdefu64;
        let mut a = FxHasher::default();
        a.write(&v.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(v);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn works_as_a_map_hasher() {
        let mut map: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            map.insert(i, i * 2);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map.get(&999), Some(&1998));
        let mut set: FxHashSet<u64> = FxHashSet::default();
        set.insert(1);
        assert!(set.contains(&1));
    }

    #[test]
    fn spreads_low_bit_entropy() {
        // Page numbers differ only in low bits; the multiply must spread
        // them into the high bits HashMap uses for bucket selection.
        let mut high_bits: FxHashSet<u64> = FxHashSet::default();
        for page in 0..4096u64 {
            high_bits.insert(hash_of(&page) >> 48);
        }
        assert!(
            high_bits.len() > 2048,
            "only {} distinct high-16-bit patterns over 4096 keys",
            high_bits.len()
        );
    }
}
