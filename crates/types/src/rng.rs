//! Hermetic in-tree pseudo-random number generation.
//!
//! The simulator must build and run with **zero external dependencies**, and
//! every run must be reproducible from a single `u64` seed — including runs
//! dispatched across worker threads, where each job derives its own
//! independent stream. This module provides exactly that:
//!
//! * [`SplitMix64`] — a tiny seeder/stream-splitter (Steele et al., OOPSLA
//!   2014). Used to expand one user seed into the 256-bit state of the main
//!   generator and to derive decorrelated per-job seeds in the experiment
//!   runner.
//! * [`Xoshiro256StarStar`] — the workhorse generator (Blackman & Vigna,
//!   2018): 256 bits of state, period 2^256 − 1, passes BigCrush, and is a
//!   few instructions per draw.
//! * [`Rng`] — the trait the rest of the workspace programs against, with
//!   bias-free range sampling ([`Rng::gen_range`]), floats, Bernoulli draws
//!   and Fisher–Yates shuffling.
//!
//! # Example
//!
//! ```
//! use silcfm_types::rng::{Rng, Xoshiro256StarStar};
//!
//! let mut rng = Xoshiro256StarStar::seed_from_u64(42);
//! let die = rng.gen_range(1u32..=6);
//! assert!((1..=6).contains(&die));
//! let p = rng.next_f64();
//! assert!((0.0..1.0).contains(&p));
//!
//! // Same seed, same stream — always.
//! let mut a = Xoshiro256StarStar::seed_from_u64(7);
//! let mut b = Xoshiro256StarStar::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

use core::ops::{Range, RangeInclusive};

/// SplitMix64: a fast, well-mixed 64-bit generator used as a seeder.
///
/// Every output is a bijective mix of a counter, so even adjacent seeds
/// (0, 1, 2, …) yield statistically independent values — which is exactly
/// what per-job seed derivation in a sharded experiment grid needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a seeder starting from `seed`.
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Mixes `salt` into a fresh stream-selection value without advancing
    /// this seeder: `split(a) != split(b)` for `a != b`, and the results are
    /// decorrelated even for adjacent salts.
    pub fn split(&self, salt: u64) -> u64 {
        let mut s = Self::new(self.state ^ salt.wrapping_mul(0xD1B5_4A32_D192_ED03));
        s.next_u64()
    }
}

/// xoshiro256**: the workspace's general-purpose generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Expands a 64-bit seed into the full 256-bit state via [`SplitMix64`],
    /// as the xoshiro authors recommend. The state is never all-zero.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Builds a generator from raw state; any all-zero state is repaired
    /// (xoshiro's one forbidden fixed point).
    pub fn from_state(mut s: [u64; 4]) -> Self {
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 0, 0, 0];
        }
        Self { s }
    }
}

impl Rng for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = &mut self.s;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = *s1 << 17;
        *s2 ^= *s0;
        *s3 ^= *s1;
        *s1 ^= *s2;
        *s0 ^= *s3;
        *s2 ^= t;
        *s3 = s3.rotate_left(45);
        result
    }
}

/// The random-number interface the simulator programs against.
///
/// Only [`next_u64`](Rng::next_u64) is required; everything else derives
/// from it, so any 64-bit generator plugs in.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits (the high half of a draw,
    /// which for xoshiro-family generators is the better-mixed one).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform sample from `range`, without modulo bias.
    ///
    /// Accepts half-open (`lo..hi`) and inclusive (`lo..=hi`) ranges of
    /// `u32`, `u64` and `usize`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Fisher–Yates shuffle of `slice` in place.
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            let j = uniform_below(self, i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// Uniform draw in `[0, span)` using Lemire's widening-multiply rejection
/// method — unbiased and branch-cheap.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut x = rng.next_u64();
    let mut m = u128::from(x) * u128::from(span);
    let mut lo = m as u64;
    if lo < span {
        // Threshold = (2^64 - span) mod span: reject the biased low zone.
        let t = span.wrapping_neg() % span;
        while lo < t {
            x = rng.next_u64();
            m = u128::from(x) * u128::from(span);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// A range that can be sampled uniformly. Mirrors the standard library's
/// range types so call sites read naturally: `rng.gen_range(0..n)`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample an empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vectors() {
        // Reference outputs for seed 1234567 from the canonical C
        // implementation (Vigna's splitmix64.c).
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 0x599e_d017_fb08_fc85);
        assert_eq!(sm.next_u64(), 0x2c73_f084_5854_0fa5);
    }

    #[test]
    fn xoshiro_is_deterministic_and_distinct_across_seeds() {
        let mut a = Xoshiro256StarStar::seed_from_u64(1);
        let mut b = Xoshiro256StarStar::seed_from_u64(1);
        let mut c = Xoshiro256StarStar::seed_from_u64(2);
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn zero_state_is_repaired() {
        let mut r = Xoshiro256StarStar::from_state([0; 4]);
        assert_ne!(r.next_u64() | r.next_u64(), 0, "must not be stuck at 0");
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = Xoshiro256StarStar::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_centered() {
        let mut r = Xoshiro256StarStar::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gen_range_respects_bounds_and_covers() {
        let mut r = Xoshiro256StarStar::seed_from_u64(5);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v = r.gen_range(0u32..6);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..6 appear");
        for _ in 0..1000 {
            let v = r.gen_range(10u64..=12);
            assert!((10..=12).contains(&v));
        }
        // Degenerate inclusive range.
        assert_eq!(r.gen_range(9usize..=9), 9);
    }

    #[test]
    fn gen_range_is_unbiased_enough() {
        // With Lemire rejection the counts over a non-power-of-two span
        // should be flat to within sampling noise.
        let mut r = Xoshiro256StarStar::seed_from_u64(6);
        let mut counts = [0u32; 3];
        let n = 30_000;
        for _ in 0..n {
            counts[r.gen_range(0usize..3)] += 1;
        }
        for c in counts {
            let frac = f64::from(c) / f64::from(n);
            assert!((frac - 1.0 / 3.0).abs() < 0.02, "count fraction {frac}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = Xoshiro256StarStar::seed_from_u64(7);
        let _ = r.gen_range(5u32..5);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Xoshiro256StarStar::seed_from_u64(8);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.02, "frac = {frac}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let mut r1 = Xoshiro256StarStar::seed_from_u64(9);
        let mut r2 = Xoshiro256StarStar::seed_from_u64(9);
        let mut a: Vec<u32> = (0..100).collect();
        let mut b: Vec<u32> = (0..100).collect();
        r1.shuffle(&mut a);
        r2.shuffle(&mut b);
        assert_eq!(a, b, "same seed, same shuffle");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            a, sorted,
            "100 elements virtually never shuffle to identity"
        );
    }

    #[test]
    fn split_streams_are_decorrelated() {
        let base = SplitMix64::new(1);
        let mut a = Xoshiro256StarStar::seed_from_u64(base.split(0));
        let mut b = Xoshiro256StarStar::seed_from_u64(base.split(1));
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "adjacent split streams must not collide");
    }
}
