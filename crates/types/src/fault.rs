//! The fault vocabulary shared by the injector, the DRAM model and the
//! SILC-FM controller.
//!
//! SILC-FM is a *flat* organization: after a subblock exchange the NM frame
//! holds the **only** valid copy of the swapped-in data (the single-copy
//! invariant of §III-B). A hardware fault is therefore a correctness event,
//! not merely a slowdown, and every fault class below comes with a defined
//! recovery outcome ([`FaultEffect`]):
//!
//! * **Transient subblock bit flips** pass through an ECC model. A corrected
//!   flip costs nothing; a detected-uncorrectable error (DUE) in a resident
//!   subblock *poisons* it — there is no second copy to restore from; an
//!   undetected flip is silent data corruption, counted but invisible to the
//!   controller (that is the point of modeling it).
//! * **Remap/metadata parity errors** hit the frame's remap entry. If the
//!   tenant has no subblocks resident (`bitvec == 0`) the FM home still holds
//!   every byte, so the entry is invalidated and the access stream recovers;
//!   if subblocks *were* resident, their only copy just became unreachable —
//!   the frame is poisoned and reported.
//! * **NM way degradation** masks a whole associative way out of the probe:
//!   its frames are evacuated (tenants restored to FM while the data is still
//!   readable — degradation is a *warning*, not data loss) and the way stops
//!   accepting tenancies until repaired. Enough degraded ways trip a
//!   bypass-all failover with hysteresis (see `silcfm-core`).
//! * **DRAM channel faults** live in the timing domain: a stalled channel
//!   delays every command until the stall window closes; a failed channel
//!   NACKs commands at a fixed penalty until repaired.
//!
//! Schedules are *data*, generated deterministically from a seed by
//! `silcfm-fault` and replayed identically on every run — the injector never
//! draws randomness at injection time.

use crate::mem::MemKind;

/// The ECC outcome of one transient bit flip, drawn at schedule-generation
/// time (never at injection time, so replays are bit-identical).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EccOutcome {
    /// Single-bit flip inside ECC's correction budget: fixed in place.
    Corrected,
    /// Multi-bit flip ECC detects but cannot correct (DUE).
    DetectedUncorrectable,
    /// Flip that aliases past the code entirely: silent corruption.
    Undetected,
}

impl EccOutcome {
    /// Short lowercase label used by reports.
    pub fn label(self) -> &'static str {
        match self {
            EccOutcome::Corrected => "corrected",
            EccOutcome::DetectedUncorrectable => "due",
            EccOutcome::Undetected => "undetected",
        }
    }
}

/// A fault targeting the placement scheme's own structures (NM ways,
/// subblocks, remap metadata). Delivered to `MemoryScheme::apply_fault`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeFault {
    /// An NM associative way went unhealthy: evacuate and mask it.
    DegradeWay {
        /// Way index (`< associativity`).
        way: u8,
    },
    /// A previously degraded way was repaired and rejoins the probe.
    RestoreWay {
        /// Way index (`< associativity`).
        way: u8,
    },
    /// A transient bit flip in one resident NM subblock.
    BitFlip {
        /// NM frame index the flip landed in.
        frame: u32,
        /// Subblock slot within the frame.
        subblock: u8,
        /// ECC outcome, pre-drawn by the schedule generator.
        ecc: EccOutcome,
    },
    /// A parity error in the frame's remap/metadata entry.
    MetadataParity {
        /// NM frame index whose metadata was hit.
        frame: u32,
    },
}

/// A fault targeting one DRAM channel's timing behavior. Delivered to
/// `DramModel::inject_channel_fault`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelFault {
    /// The channel stops making progress for a window; queued and newly
    /// arriving commands complete only after the window closes.
    Stall {
        /// Channel index within the device.
        channel: u8,
        /// Stall length in **CPU-domain** cycles (the model converts to its
        /// own memory clock).
        duration_cycles: u64,
    },
    /// The channel hard-fails: every command is NACKed at a fixed penalty
    /// until a matching [`ChannelFault::Repair`] arrives.
    Fail {
        /// Channel index within the device.
        channel: u8,
    },
    /// A failed or stalled channel returns to healthy service.
    Repair {
        /// Channel index within the device.
        channel: u8,
    },
}

impl ChannelFault {
    /// The channel this fault targets.
    pub fn channel(self) -> u8 {
        match self {
            ChannelFault::Stall { channel, .. }
            | ChannelFault::Fail { channel }
            | ChannelFault::Repair { channel } => channel,
        }
    }
}

/// One fault, routed to the component that models it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A fault in the placement scheme's structures.
    Scheme(SchemeFault),
    /// A fault in one DRAM device's channel.
    Dram {
        /// Which device (NM = HBM stack, FM = DDR) is affected.
        device: MemKind,
        /// The channel-level fault.
        fault: ChannelFault,
    },
}

/// A fault stamped with the CPU-domain simulation cycle it fires at.
///
/// Schedules are sorted by `at`; the driver delivers every fault whose time
/// has come before processing the next demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledFault {
    /// CPU-domain cycle at (or after) which the fault is delivered.
    pub at: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// What actually happened when a fault was applied: the recovery outcome
/// the chaos harness checks conservation over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEffect {
    /// The fault was absorbed with no data impact (ECC correction, parity
    /// error on an empty entry, degradation of an already-degraded way).
    Corrected,
    /// Data was moved or invalidated to survive the fault; nothing was lost.
    Recovered,
    /// At least one subblock's only copy became unreachable: data loss,
    /// reported via a `Poisoned` trace event and the poison counters.
    Poisoned,
    /// The fault had no observable target (silent/undetected, or aimed at
    /// state that does not exist) and was dropped.
    Masked,
}

impl FaultEffect {
    /// Short lowercase label used by reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultEffect::Corrected => "corrected",
            FaultEffect::Recovered => "recovered",
            FaultEffect::Poisoned => "poisoned",
            FaultEffect::Masked => "masked",
        }
    }
}

/// Degraded-way count at which the controller engages bypass-all failover:
/// half the ways (rounded up), never less than one. Shared by the
/// controller and the chaos harness so both sides honor one formula.
pub fn failover_engage_threshold(associativity: u32) -> u32 {
    associativity.div_ceil(2).max(1)
}

/// Degraded-way count at (or below) which an engaged failover disengages:
/// a quarter of the ways, rounded down. Strictly below the engage threshold
/// for every associativity, which is what makes the hysteresis band real.
pub fn failover_disengage_threshold(associativity: u32) -> u32 {
    associativity / 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hysteresis_band_is_nonempty_for_all_assocs() {
        for assoc in 1..=64 {
            let engage = failover_engage_threshold(assoc);
            let disengage = failover_disengage_threshold(assoc);
            assert!(engage >= 1);
            assert!(
                disengage < engage,
                "assoc {assoc}: disengage {disengage} >= engage {engage}"
            );
        }
        assert_eq!(failover_engage_threshold(4), 2);
        assert_eq!(failover_disengage_threshold(4), 1);
        assert_eq!(failover_engage_threshold(1), 1);
        assert_eq!(failover_disengage_threshold(1), 0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(EccOutcome::Corrected.label(), "corrected");
        assert_eq!(EccOutcome::DetectedUncorrectable.label(), "due");
        assert_eq!(EccOutcome::Undetected.label(), "undetected");
        assert_eq!(FaultEffect::Poisoned.label(), "poisoned");
        assert_eq!(FaultEffect::Masked.label(), "masked");
    }

    #[test]
    fn channel_accessor_covers_all_variants() {
        assert_eq!(
            ChannelFault::Stall {
                channel: 3,
                duration_cycles: 100
            }
            .channel(),
            3
        );
        assert_eq!(ChannelFault::Fail { channel: 1 }.channel(), 1);
        assert_eq!(ChannelFault::Repair { channel: 7 }.channel(), 7);
    }

    #[test]
    fn scheduled_fault_is_copy_and_small() {
        // Schedules hold thousands of these; keep them compact.
        assert!(core::mem::size_of::<ScheduledFault>() <= 32);
        let f = ScheduledFault {
            at: 10,
            kind: FaultKind::Dram {
                device: MemKind::Near,
                fault: ChannelFault::Fail { channel: 0 },
            },
        };
        let g = f;
        assert_eq!(f, g);
    }
}
