//! Trace records: the unit of work a core consumes.
//!
//! A record batches the non-memory instructions preceding one memory
//! instruction, which keeps billion-instruction workloads tractable while
//! preserving what the memory system sees: the access stream, its
//! instruction spacing (MPKI) and its dependence structure (memory-level
//! parallelism).

use crate::addr::VirtAddr;
use crate::mem::OpKind;

/// One memory instruction plus the compute instructions that precede it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceRecord {
    /// Non-memory instructions executed before this memory instruction.
    pub compute: u32,
    /// Load or store.
    pub kind: OpKind,
    /// Virtual address of the 64 B line touched.
    pub vaddr: VirtAddr,
    /// Program counter of the memory instruction.
    pub pc: u64,
    /// Whether this access depends on the previous memory access's data
    /// (pointer chasing); dependent accesses cannot overlap.
    pub dependent: bool,
}

impl TraceRecord {
    /// An independent load after `compute` non-memory instructions.
    pub const fn load(compute: u32, vaddr: VirtAddr, pc: u64) -> Self {
        Self {
            compute,
            kind: OpKind::Read,
            vaddr,
            pc,
            dependent: false,
        }
    }

    /// An independent store after `compute` non-memory instructions.
    pub const fn store(compute: u32, vaddr: VirtAddr, pc: u64) -> Self {
        Self {
            compute,
            kind: OpKind::Write,
            vaddr,
            pc,
            dependent: false,
        }
    }

    /// Marks this record as dependent on the previous memory access.
    pub const fn depends(mut self) -> Self {
        self.dependent = true;
        self
    }

    /// Total instructions this record accounts for (compute + the memory
    /// instruction itself).
    pub const fn instructions(&self) -> u64 {
        self.compute as u64 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let l = TraceRecord::load(10, VirtAddr::new(64), 0x400);
        assert_eq!(l.kind, OpKind::Read);
        assert!(!l.dependent);
        assert_eq!(l.instructions(), 11);

        let s = TraceRecord::store(0, VirtAddr::new(64), 0x404);
        assert_eq!(s.kind, OpKind::Write);
        assert_eq!(s.instructions(), 1);

        let d = TraceRecord::load(5, VirtAddr::new(0), 0).depends();
        assert!(d.dependent);
    }
}
