//! Trace records: the unit of work a core consumes.
//!
//! A record batches the non-memory instructions preceding one memory
//! instruction, which keeps billion-instruction workloads tractable while
//! preserving what the memory system sees: the access stream, its
//! instruction spacing (MPKI) and its dependence structure (memory-level
//! parallelism).

use crate::addr::VirtAddr;
use crate::mem::OpKind;

/// One memory instruction plus the compute instructions that precede it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceRecord {
    /// Non-memory instructions executed before this memory instruction.
    pub compute: u32,
    /// Load or store.
    pub kind: OpKind,
    /// Virtual address of the 64 B line touched.
    pub vaddr: VirtAddr,
    /// Program counter of the memory instruction.
    pub pc: u64,
    /// Whether this access depends on the previous memory access's data
    /// (pointer chasing); dependent accesses cannot overlap.
    pub dependent: bool,
    /// Earliest CPU cycle at which this record may issue. `0` (the
    /// default) means "as soon as the core is ready" — the closed-loop
    /// behaviour every batch workload uses. The request-serving plane
    /// stamps the first record of each admitted request with its arrival
    /// cycle, so open-loop load reaches the unmodified run loop as plain
    /// records: an underloaded lane idles until the arrival, an overloaded
    /// one queues behind its own backlog.
    pub not_before: u64,
}

impl TraceRecord {
    /// An independent load after `compute` non-memory instructions.
    pub const fn load(compute: u32, vaddr: VirtAddr, pc: u64) -> Self {
        Self {
            compute,
            kind: OpKind::Read,
            vaddr,
            pc,
            dependent: false,
            not_before: 0,
        }
    }

    /// An independent store after `compute` non-memory instructions.
    pub const fn store(compute: u32, vaddr: VirtAddr, pc: u64) -> Self {
        Self {
            compute,
            kind: OpKind::Write,
            vaddr,
            pc,
            dependent: false,
            not_before: 0,
        }
    }

    /// Marks this record as dependent on the previous memory access.
    pub const fn depends(mut self) -> Self {
        self.dependent = true;
        self
    }

    /// Forbids this record from issuing before `cycle` (an open-loop
    /// arrival stamp). Scheduling takes the max with the core's own ready
    /// time, so `at(0)` is the identity.
    pub const fn at(mut self, cycle: u64) -> Self {
        self.not_before = cycle;
        self
    }

    /// Total instructions this record accounts for (compute + the memory
    /// instruction itself).
    pub const fn instructions(&self) -> u64 {
        self.compute as u64 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let l = TraceRecord::load(10, VirtAddr::new(64), 0x400);
        assert_eq!(l.kind, OpKind::Read);
        assert!(!l.dependent);
        assert_eq!(l.instructions(), 11);

        let s = TraceRecord::store(0, VirtAddr::new(64), 0x404);
        assert_eq!(s.kind, OpKind::Write);
        assert_eq!(s.instructions(), 1);

        let d = TraceRecord::load(5, VirtAddr::new(0), 0).depends();
        assert!(d.dependent);
    }

    #[test]
    fn arrival_stamp_defaults_to_zero() {
        let l = TraceRecord::load(10, VirtAddr::new(64), 0x400);
        assert_eq!(l.not_before, 0);
        let stamped = l.at(12_345);
        assert_eq!(stamped.not_before, 12_345);
        // Everything else is untouched by the stamp.
        assert_eq!(stamped.vaddr, l.vaddr);
        assert_eq!(stamped.kind, l.kind);
        assert_eq!(stamped.compute, l.compute);
    }
}
