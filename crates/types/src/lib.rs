//! Core types shared by every crate of the SILC-FM reproduction.
//!
//! This crate defines the vocabulary of the simulator:
//!
//! * [`addr`] — physical/virtual address newtypes and block/subblock indices;
//! * [`geometry`] — the 64 B subblock / 2 KB large-block layout of the paper;
//! * [`layout`] — the flat NM+FM physical address space (NM at low addresses);
//! * [`mem`] — memory operations ([`MemOp`]) produced by placement schemes and
//!   consumed by the DRAM timing model;
//! * [`access`] — post-LLC-miss demand accesses ([`Access`]) as seen by a
//!   flat-memory scheme;
//! * [`scheme`] — the [`MemoryScheme`] trait implemented by SILC-FM and all
//!   baselines;
//! * [`oplist`] — the inline-capacity [`OpList`] that keeps outcome
//!   assembly off the heap on the access hot path, and the [`OpSink`]
//!   abstraction over op destinations;
//! * [`batch`] — the flat [`BatchOutcome`] storage behind
//!   [`MemoryScheme::access_batch`];
//! * [`hash`] — the in-tree multiply-xor [`FxHasher`] used by every hot
//!   `HashMap` (page translation, baseline bookkeeping);
//! * [`config`] — the Table II system configuration;
//! * [`rng`] — hermetic in-tree pseudo-random number generation (SplitMix64
//!   seeding, xoshiro256\*\* streams) used by workload generation, placement
//!   and the experiment runner;
//! * [`check`] — a minimal fixed-seed property-testing harness;
//! * [`stats`] — small counter/ratio helpers used across crates;
//! * [`obs`] — the tracing vocabulary ([`obs::Event`], [`obs::Tracer`],
//!   [`obs::NullTracer`]) that lets components be instrumented with zero
//!   cost when tracing is off (sinks live in `silcfm-obs`);
//! * [`fault`] — the fault-injection vocabulary ([`fault::ScheduledFault`],
//!   [`fault::SchemeFault`], [`fault::ChannelFault`], [`fault::FaultEffect`])
//!   shared by the `silcfm-fault` injector and the components that recover
//!   from faults;
//! * [`error`] — the typed [`error::SilcFmError`] returned by every fallible
//!   configuration/setup path (hot paths never error).
//!
//! # Example
//!
//! ```
//! use silcfm_types::{PhysAddr, Geometry, AddressSpace, MemKind};
//!
//! let geom = Geometry::paper();
//! assert_eq!(geom.subblocks_per_block(), 32);
//!
//! // 256 MiB of near memory followed by 1 GiB of far memory.
//! let space = AddressSpace::new(256 << 20, 1 << 30);
//! assert_eq!(space.kind_of(PhysAddr::new(0)), MemKind::Near);
//! assert_eq!(space.kind_of(PhysAddr::new(256 << 20)), MemKind::Far);
//! ```

pub mod access;
pub mod addr;
pub mod batch;
pub mod check;
pub mod config;
pub mod error;
pub mod fault;
pub mod geometry;
pub mod hash;
pub mod layout;
pub mod mem;
pub mod obs;
pub mod oplist;
pub mod record;
pub mod rng;
pub mod scheme;
pub mod stats;

pub use access::{Access, CoreId};
pub use addr::{BlockIndex, PhysAddr, SubblockIndex, VirtAddr};
pub use batch::{BatchOutcome, BatchView};
pub use config::{CacheParams, CoreParams, SystemConfig};
pub use error::SilcFmError;
pub use fault::{ChannelFault, EccOutcome, FaultEffect, FaultKind, ScheduledFault, SchemeFault};
pub use geometry::Geometry;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use layout::AddressSpace;
pub use mem::{MemKind, MemOp, OpKind, TrafficClass};
pub use obs::{Event, FaultClass, NullTracer, RowKind, TraceEvent, Tracer};
pub use oplist::{OpList, OpSink};
pub use record::TraceRecord;
pub use scheme::{AccessClass, AccessFlags, MemoryScheme, SchemeOutcome, SchemeStats};
