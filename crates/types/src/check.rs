//! A minimal fixed-seed property-testing harness.
//!
//! The workspace's property tests used to ride on an external framework;
//! this harness replaces it with ~60 lines over [`crate::rng`], keeping the
//! build hermetic. The trade-offs are deliberate:
//!
//! * **Fixed seeding.** Every case's generator is derived from a constant
//!   base seed and the case index, so CI failures reproduce locally with no
//!   persistence files.
//! * **No shrinking.** On failure the harness prints the property name, case
//!   index and the exact seed; [`forall_seed`] reruns that one case under a
//!   debugger.
//!
//! # Example
//!
//! ```
//! use silcfm_types::check::forall;
//! use silcfm_types::rng::Rng;
//!
//! forall("addition commutes", |rng| {
//!     let (a, b) = (rng.next_u32(), rng.next_u32());
//!     assert_eq!(u64::from(a) + u64::from(b), u64::from(b) + u64::from(a));
//! });
//! ```

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::rng::{SplitMix64, Xoshiro256StarStar};

/// Cases run per property (the harness's `proptest` heritage shows: enough
/// to catch off-by-ones and invariant violations, small enough for tier-1).
pub const DEFAULT_CASES: u64 = 256;

/// Base seed all properties derive their case seeds from. Changing it
/// reshuffles every property's inputs at once — bump it when a generator
/// change would otherwise silently keep exercising the same corner.
pub const BASE_SEED: u64 = 0x51_1CF1_2017;

/// Runs `property` over [`DEFAULT_CASES`] generated cases.
///
/// # Panics
///
/// Re-raises the property's panic after printing the failing case's seed.
pub fn forall<F>(name: &str, property: F)
where
    F: Fn(&mut Xoshiro256StarStar),
{
    forall_cases(name, DEFAULT_CASES, property);
}

/// Runs `property` over `cases` generated cases (for expensive properties
/// that need fewer, or cheap ones that deserve more).
///
/// # Panics
///
/// Re-raises the property's panic after printing the failing case's seed.
pub fn forall_cases<F>(name: &str, cases: u64, property: F)
where
    F: Fn(&mut Xoshiro256StarStar),
{
    let base = SplitMix64::new(BASE_SEED);
    for case in 0..cases {
        let seed = base.split(case);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
            property(&mut rng);
        }));
        if let Err(panic) = outcome {
            eprintln!(
                "property '{name}' failed at case {case}/{cases} (seed {seed:#018x}); \
                 rerun just this case with `forall_seed(\"{name}\", {seed:#x}, ...)`"
            );
            resume_unwind(panic);
        }
    }
}

/// Reruns a single case by its printed seed — the debugging companion to
/// [`forall`].
pub fn forall_seed<F>(name: &str, seed: u64, property: F)
where
    F: Fn(&mut Xoshiro256StarStar),
{
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        property(&mut rng);
    }));
    if let Err(panic) = outcome {
        eprintln!("property '{name}' failed under seed {seed:#018x}");
        resume_unwind(panic);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn runs_the_requested_number_of_cases() {
        let count = AtomicU64::new(0);
        forall_cases("counter", 17, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 17);
    }

    #[test]
    fn case_seeds_differ() {
        let firsts = std::sync::Mutex::new(crate::FxHashSet::default());
        forall_cases("distinct", 64, |rng| {
            firsts.lock().unwrap().insert(rng.next_u64());
        });
        assert_eq!(
            firsts.lock().unwrap().len(),
            64,
            "every case sees a distinct stream"
        );
    }

    #[test]
    fn failing_property_panics_with_context() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            forall_cases("always fails", 4, |_| panic!("boom"));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn forall_seed_reproduces_a_case() {
        // Whatever case 3 generates under forall, forall_seed regenerates.
        let seed = SplitMix64::new(BASE_SEED).split(3);
        let expected = std::sync::Mutex::new(None);
        forall_seed("repro", seed, |rng| {
            *expected.lock().unwrap() = Some(rng.next_u64());
        });
        let mut again = Xoshiro256StarStar::seed_from_u64(seed);
        assert_eq!(expected.lock().unwrap().unwrap(), again.next_u64());
    }
}
