//! Block geometry: the subblock / large-block sizes of the paper.
//!
//! SILC-FM manages data at two granularities (paper §II): a *small block or
//! subblock* of 64 contiguous bytes, and a *large block* (page) of 2 KB. The
//! geometry is configurable for testing, but [`Geometry::paper`] gives the
//! published values.

use core::fmt;

/// Subblock/large-block geometry of the flat memory organization.
///
/// # Example
///
/// ```
/// use silcfm_types::Geometry;
/// let geom = Geometry::paper();
/// assert_eq!(geom.subblock_bytes(), 64);
/// assert_eq!(geom.block_bytes(), 2048);
/// assert_eq!(geom.subblocks_per_block(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    subblock_bytes: u64,
    block_bytes: u64,
}

impl Geometry {
    /// Creates a geometry with the given subblock and large-block sizes.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] unless both sizes are powers of two and the
    /// block size is a multiple of the subblock size with at most 64
    /// subblocks per block (the residency bit vector is a `u64`).
    pub fn new(subblock_bytes: u64, block_bytes: u64) -> Result<Self, GeometryError> {
        if !subblock_bytes.is_power_of_two() || !block_bytes.is_power_of_two() {
            return Err(GeometryError::NotPowerOfTwo);
        }
        if block_bytes < subblock_bytes {
            return Err(GeometryError::BlockSmallerThanSubblock);
        }
        let per_block = block_bytes / subblock_bytes;
        if per_block > 64 {
            return Err(GeometryError::TooManySubblocks(per_block));
        }
        Ok(Self {
            subblock_bytes,
            block_bytes,
        })
    }

    /// The geometry used throughout the paper: 64 B subblocks in 2 KB blocks.
    pub const fn paper() -> Self {
        Self {
            subblock_bytes: 64,
            block_bytes: 2048,
        }
    }

    /// Size of a subblock (small block) in bytes.
    pub const fn subblock_bytes(self) -> u64 {
        self.subblock_bytes
    }

    /// Size of a large block (page) in bytes.
    pub const fn block_bytes(self) -> u64 {
        self.block_bytes
    }

    /// Number of subblocks per large block (bit-vector width).
    pub const fn subblocks_per_block(self) -> u32 {
        (self.block_bytes / self.subblock_bytes) as u32
    }

    /// A bit mask with one bit set for every subblock position in a block.
    pub const fn full_mask(self) -> u64 {
        let n = self.subblocks_per_block();
        if n == 64 {
            u64::MAX
        } else {
            (1u64 << n) - 1
        }
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Self::paper()
    }
}

impl fmt::Display for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}B subblocks / {}B blocks",
            self.subblock_bytes, self.block_bytes
        )
    }
}

/// Error returned by [`Geometry::new`] for invalid size combinations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryError {
    /// One of the sizes is not a power of two.
    NotPowerOfTwo,
    /// The large-block size is smaller than the subblock size.
    BlockSmallerThanSubblock,
    /// More subblocks per block than the 64-bit residency vector can track.
    TooManySubblocks(u64),
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotPowerOfTwo => write!(f, "sizes must be powers of two"),
            Self::BlockSmallerThanSubblock => {
                write!(f, "block size must be at least the subblock size")
            }
            Self::TooManySubblocks(n) => {
                write!(f, "{n} subblocks per block exceeds the 64-bit vector")
            }
        }
    }
}

impl std::error::Error for GeometryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry() {
        let g = Geometry::paper();
        assert_eq!(g.subblock_bytes(), 64);
        assert_eq!(g.block_bytes(), 2048);
        assert_eq!(g.subblocks_per_block(), 32);
        assert_eq!(g.full_mask(), 0xFFFF_FFFF);
        assert_eq!(Geometry::default(), g);
    }

    #[test]
    fn custom_geometry() {
        let g = Geometry::new(64, 4096).unwrap();
        assert_eq!(g.subblocks_per_block(), 64);
        assert_eq!(g.full_mask(), u64::MAX);
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert_eq!(Geometry::new(63, 2048), Err(GeometryError::NotPowerOfTwo));
        assert_eq!(Geometry::new(64, 3000), Err(GeometryError::NotPowerOfTwo));
    }

    #[test]
    fn rejects_block_smaller_than_subblock() {
        assert_eq!(
            Geometry::new(128, 64),
            Err(GeometryError::BlockSmallerThanSubblock)
        );
    }

    #[test]
    fn rejects_too_many_subblocks() {
        assert_eq!(
            Geometry::new(64, 64 * 128),
            Err(GeometryError::TooManySubblocks(128))
        );
    }

    #[test]
    fn error_display_is_nonempty() {
        for e in [
            GeometryError::NotPowerOfTwo,
            GeometryError::BlockSmallerThanSubblock,
            GeometryError::TooManySubblocks(128),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn display_form() {
        assert_eq!(
            Geometry::paper().to_string(),
            "64B subblocks / 2048B blocks"
        );
    }
}
