//! Small statistics helpers shared across the simulator crates.

use core::fmt;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use silcfm_types::stats::Counter;
/// let mut c = Counter::new();
/// c.incr();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Self(0)
    }

    /// Increments by one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

/// Safe ratio: returns 0 when the denominator is 0.
pub fn ratio(numerator: u64, denominator: u64) -> f64 {
    if denominator == 0 {
        0.0
    } else {
        numerator as f64 / denominator as f64
    }
}

/// Geometric mean of a slice of positive values; the paper reports speedups
/// as geometric means across workloads.
///
/// Returns 0 for an empty slice.
///
/// # Panics
///
/// Panics if any value is not strictly positive.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// An exponentially-decayed windowed rate estimator, used e.g. by SILC-FM's
/// bypass logic to track the current access rate (paper §III-E).
///
/// The estimate is updated per event with weight `1/window`, so it tracks
/// roughly the last `window` events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowedRate {
    value: f64,
    alpha: f64,
    samples: u64,
}

impl WindowedRate {
    /// Creates an estimator with the given effective window length.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            value: 0.0,
            alpha: 1.0 / window as f64,
            samples: 0,
        }
    }

    /// Records one event: `hit = true` counts toward the rate.
    pub fn record(&mut self, hit: bool) {
        let x = if hit { 1.0 } else { 0.0 };
        if self.samples == 0 {
            self.value = x;
        } else {
            self.value += self.alpha * (x - self.value);
        }
        self.samples += 1;
    }

    /// The current rate estimate in `[0, 1]`.
    pub fn rate(&self) -> f64 {
        self.value
    }

    /// Number of events recorded.
    pub const fn samples(&self) -> u64 {
        self.samples
    }

    /// Resets the estimator.
    pub fn reset(&mut self) {
        self.value = 0.0;
        self.samples = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_ops() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "10");
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(ratio(1, 0), 0.0);
        assert!((ratio(1, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_nonpositive() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn windowed_rate_converges() {
        let mut r = WindowedRate::new(100);
        for i in 0..10_000 {
            r.record(i % 10 < 8); // 80% hits
        }
        assert!((r.rate() - 0.8).abs() < 0.1, "rate = {}", r.rate());
        assert_eq!(r.samples(), 10_000);
        r.reset();
        assert_eq!(r.samples(), 0);
        assert_eq!(r.rate(), 0.0);
    }

    #[test]
    fn windowed_rate_first_sample() {
        let mut r = WindowedRate::new(10);
        r.record(true);
        assert_eq!(r.rate(), 1.0);
    }
}
