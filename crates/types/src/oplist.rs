//! An inline-capacity list of [`MemOp`]s for allocation-free outcome
//! assembly.
//!
//! Nearly every [`SchemeOutcome`](crate::SchemeOutcome) holds a handful of
//! operations: a demand access, one or two metadata fetches, and a couple of
//! swap transfers. [`OpList`] stores the first [`INLINE_OPS`] operations in
//! the struct itself and spills to the heap only beyond that, so the access
//! hot path performs no allocation for ordinary misses. Paired with the
//! outcome-reuse protocol (the caller clears and refills one outcome per
//! miss), even spilled capacity is allocated once and reused: [`clear`]
//! keeps the spill buffer.
//!
//! [`clear`]: OpList::clear

use core::fmt;
use core::ops::Index;

use crate::mem::{MemKind, MemOp};

/// Operations stored inline before spilling to the heap. Sized for the
/// common case: demand + metadata + one subblock swap fit inline; only
/// whole-block migrations (locks, epoch moves) spill.
pub const INLINE_OPS: usize = 8;

/// Placeholder occupying unused inline slots; never observable.
const UNUSED: MemOp = MemOp::demand_read(MemKind::Near, crate::addr::PhysAddr::new(0), 0);

/// A `Vec<MemOp>`-like list with inline capacity for [`INLINE_OPS`]
/// operations.
#[derive(Clone)]
pub struct OpList {
    len: usize,
    inline: [MemOp; INLINE_OPS],
    /// Operations past the inline capacity; invariant:
    /// `spill.len() == len.saturating_sub(INLINE_OPS)`.
    spill: Vec<MemOp>,
}

impl OpList {
    /// An empty list. Allocation-free.
    pub const fn new() -> Self {
        Self {
            len: 0,
            inline: [UNUSED; INLINE_OPS],
            // silcfm-lint: allow(A1) -- const Vec::new is capacity 0 and does not allocate
            spill: Vec::new(),
        }
    }

    /// Number of operations held.
    pub const fn len(&self) -> usize {
        self.len
    }

    /// Whether the list holds no operations.
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends an operation, spilling to the heap past [`INLINE_OPS`].
    pub fn push(&mut self, op: MemOp) {
        // `get_mut` misses exactly when the inline array is full (the spill
        // invariant keeps `len` in step), so the two arms are exhaustive.
        if let Some(slot) = self.inline.get_mut(self.len) {
            *slot = op;
        } else {
            self.spill.push(op);
        }
        self.len += 1;
    }

    /// Empties the list, retaining any spill capacity for reuse.
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    /// The operation at `index`, or `None` past the end.
    pub fn get(&self, index: usize) -> Option<&MemOp> {
        if index >= self.len {
            return None;
        }
        // The inline probe misses only for `index >= INLINE_OPS`, so the
        // subtraction in the spill probe cannot underflow.
        self.inline
            .get(index)
            .or_else(|| self.spill.get(index - INLINE_OPS))
    }

    /// The most recently pushed operation.
    pub fn last(&self) -> Option<&MemOp> {
        self.len.checked_sub(1).and_then(|i| self.get(i))
    }

    /// Iterates the operations in push order.
    pub fn iter(&self) -> impl Iterator<Item = &MemOp> + '_ {
        self.inline.iter().take(self.len).chain(self.spill.iter())
    }

    /// The operations as two contiguous slices, `(inline, spilled)`, in
    /// push order. Lets bulk consumers (`BatchOutcome::push_outcome`) copy
    /// with `extend_from_slice` instead of a per-op loop.
    pub fn as_slices(&self) -> (&[MemOp], &[MemOp]) {
        // The `min` keeps the range in bounds, so the probe cannot miss;
        // `get` keeps the hot path panic-free anyway.
        let inline = self.inline.get(..self.len.min(INLINE_OPS)).unwrap_or(&[]);
        (inline, &self.spill)
    }

    /// Whether any operation spilled to the heap.
    pub const fn spilled(&self) -> bool {
        self.len > INLINE_OPS
    }
}

impl Default for OpList {
    fn default() -> Self {
        Self::new()
    }
}

/// An append-only sink of [`MemOp`]s.
///
/// The controller's op-emitting helpers are generic over this trait so one
/// body serves both outcome shapes: the scalar path pushes into the two
/// [`OpList`]s of a `SchemeOutcome`, the batched path into the flat
/// `Vec<MemOp>`s of a `BatchOutcome` — same ops, same order, verified
/// equivalent by the batch property tests.
pub trait OpSink {
    /// Appends one operation.
    fn push_op(&mut self, op: MemOp);

    /// Number of operations currently held. Emitters use before/after
    /// lengths to learn whether a helper produced any traffic.
    fn ops_len(&self) -> usize;
}

impl OpSink for OpList {
    #[inline]
    fn push_op(&mut self, op: MemOp) {
        self.push(op);
    }

    #[inline]
    fn ops_len(&self) -> usize {
        self.len()
    }
}

impl OpSink for Vec<MemOp> {
    #[inline]
    fn push_op(&mut self, op: MemOp) {
        self.push(op);
    }

    #[inline]
    fn ops_len(&self) -> usize {
        self.len()
    }
}

impl Index<usize> for OpList {
    type Output = MemOp;

    fn index(&self, index: usize) -> &MemOp {
        self.get(index)
            // silcfm-lint: allow(P1) -- the Index trait's contract *is* panic-on-out-of-bounds; hot-path code uses get()/iter(), indexing is a test convenience
            .unwrap_or_else(|| panic!("index {index} out of bounds (len {})", self.len))
    }
}

impl Extend<MemOp> for OpList {
    fn extend<T: IntoIterator<Item = MemOp>>(&mut self, iter: T) {
        for op in iter {
            self.push(op);
        }
    }
}

impl FromIterator<MemOp> for OpList {
    fn from_iter<T: IntoIterator<Item = MemOp>>(iter: T) -> Self {
        let mut list = Self::new();
        list.extend(iter);
        list
    }
}

impl From<Vec<MemOp>> for OpList {
    fn from(ops: Vec<MemOp>) -> Self {
        ops.into_iter().collect()
    }
}

impl<'a> IntoIterator for &'a OpList {
    type Item = &'a MemOp;
    type IntoIter = core::iter::Chain<
        core::iter::Take<core::slice::Iter<'a, MemOp>>,
        core::slice::Iter<'a, MemOp>,
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.inline.iter().take(self.len).chain(self.spill.iter())
    }
}

impl PartialEq for OpList {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl Eq for OpList {}

impl PartialEq<[MemOp]> for OpList {
    fn eq(&self, other: &[MemOp]) -> bool {
        self.len == other.len() && self.iter().eq(other.iter())
    }
}

impl PartialEq<Vec<MemOp>> for OpList {
    fn eq(&self, other: &Vec<MemOp>) -> bool {
        self == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[MemOp; N]> for OpList {
    fn eq(&self, other: &[MemOp; N]) -> bool {
        self == other.as_slice()
    }
}

impl fmt::Debug for OpList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PhysAddr;
    use crate::check::forall;
    use crate::rng::Rng;

    fn op(i: u64) -> MemOp {
        MemOp::demand_read(
            if i.is_multiple_of(2) {
                MemKind::Near
            } else {
                MemKind::Far
            },
            PhysAddr::new(i * 64),
            64,
        )
    }

    #[test]
    fn empty_list() {
        let list = OpList::new();
        assert_eq!(list.len(), 0);
        assert!(list.is_empty());
        assert!(list.last().is_none());
        assert!(list.get(0).is_none());
        assert_eq!(list.iter().count(), 0);
        assert!(!list.spilled());
    }

    #[test]
    fn push_across_the_spill_boundary() {
        let mut list = OpList::new();
        for i in 0..(INLINE_OPS as u64 + 3) {
            list.push(op(i));
            assert_eq!(list.len(), i as usize + 1);
            assert_eq!(list.last(), Some(&op(i)));
        }
        assert!(list.spilled());
        for i in 0..list.len() {
            assert_eq!(list[i], op(i as u64));
        }
    }

    #[test]
    fn equality_with_vec_model() {
        forall("oplist_matches_vec_model", |rng| {
            let n = rng.gen_range(0..(3 * INLINE_OPS as u64 + 1)) as usize;
            let model: Vec<MemOp> = (0..n)
                .map(|i| op(rng.gen_range(0..64u64) + i as u64))
                .collect();
            let list: OpList = model.clone().into();
            assert_eq!(list, model, "OpList must mirror the Vec model");
            assert_eq!(list.len(), model.len());
            assert!(list.iter().eq(model.iter()));
            let (a, b) = list.as_slices();
            assert!(
                a.iter().chain(b).eq(model.iter()),
                "as_slices must cover the list in push order"
            );
            assert_eq!(list.last(), model.last());
            assert_eq!(format!("{list:?}"), format!("{model:?}"));
        });
    }

    #[test]
    fn clear_and_reuse_preserves_semantics() {
        forall("oplist_clear_and_reuse", |rng| {
            let mut list = OpList::new();
            // Several rounds of fill/clear through one buffer (the reuse
            // protocol) must behave exactly like a fresh list each round.
            for _ in 0..4 {
                list.clear();
                assert!(list.is_empty());
                let n = rng.gen_range(0..(2 * INLINE_OPS as u64 + 4)) as usize;
                let model: Vec<MemOp> = (0..n).map(|i| op(i as u64)).collect();
                list.extend(model.iter().copied());
                assert_eq!(list, model);
            }
        });
    }

    #[test]
    fn inequality_on_content_and_length() {
        let a: OpList = (0..4).map(op).collect();
        let b: OpList = (0..5).map(op).collect();
        let c: OpList = (1..5).map(op).collect();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(b, (0..5).map(op).collect::<OpList>());
    }

    #[test]
    fn index_panics_out_of_bounds() {
        let list: OpList = (0..2).map(op).collect();
        let caught = std::panic::catch_unwind(|| list[5]);
        assert!(caught.is_err());
    }
}
