//! The interface every flat-memory placement scheme implements.
//!
//! A scheme (SILC-FM or a baseline) receives post-LLC-miss [`Access`]es and
//! decides which DRAM transactions happen: where the demand data is serviced
//! from, what metadata must be consulted, and what swap/migration traffic is
//! generated. The simulator charges the returned [`MemOp`]s against the DRAM
//! timing models.
//!
//! # The outcome-reuse protocol
//!
//! [`MemoryScheme::access`] writes into a caller-owned [`SchemeOutcome`]
//! instead of returning a fresh one. The driving loop (`System::run`) owns a
//! single outcome and hands it back for every miss; the scheme clears and
//! refills it. Combined with [`OpList`]'s inline capacity this makes the
//! access hot path allocation-free: ordinary misses never touch the heap,
//! and the rare spilling outcome (whole-block migrations) reuses the spill
//! buffer from previous misses. Tests and one-shot callers can use
//! [`MemoryScheme::access_fresh`], which allocates a new outcome per call
//! and is behaviorally identical.

use core::fmt;

use crate::access::Access;
use crate::batch::BatchOutcome;
use crate::fault::{FaultEffect, SchemeFault};
use crate::mem::{MemKind, MemOp};
use crate::obs::{TraceEvent, EVENT_KINDS};
use crate::oplist::OpList;

/// Compact per-access service-path markers a scheme sets alongside its
/// operations. The bits record conditions that are *not* reconstructible
/// from the emitted [`MemOp`]s — a bypassed access and an ordinary FM miss
/// emit the same demand read — so latency attribution
/// ([`AccessClass::classify`]) needs the scheme to say which path it took.
/// Schemes without those paths (all the baselines) never set a bit and pay
/// nothing: the field is cleared with the rest of the outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AccessFlags(u8);

impl AccessFlags {
    /// No special service path.
    pub const NONE: Self = Self(0);
    /// The access bypassed NM caching (bypass predictor or failover).
    pub const BYPASS: Self = Self(1 << 0);
    /// The access was serviced by the all-ways-locked fallback path.
    pub const LOCKED: Self = Self(1 << 1);
    /// The controller was running fault-degraded (failover engaged or at
    /// least one way disabled) when the access was serviced.
    pub const DEGRADED: Self = Self(1 << 2);

    /// Sets the bits of `flag`.
    pub fn insert(&mut self, flag: Self) {
        self.0 |= flag.0;
    }

    /// Whether all bits of `flag` are set.
    pub const fn contains(self, flag: Self) -> bool {
        self.0 & flag.0 == flag.0
    }

    /// Whether no bit is set.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }
}

/// The latency-attribution class of one demand access: which service path
/// determined its issue-to-completion time. Every access belongs to exactly
/// one class (the classification is total and mutually exclusive), so the
/// per-class quantile sketches in `silcfm-obs` sum to the per-scheme
/// distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessClass {
    /// Serviced from near memory with no migration traffic.
    NmHit,
    /// Serviced from far memory with no migration traffic.
    FmHit,
    /// The access triggered swap/migration traffic (subblock or block).
    SwapPath,
    /// The access bypassed NM caching.
    Bypass,
    /// Serviced by the all-ways-locked fallback path.
    Locked,
    /// Serviced while the controller ran fault-degraded.
    FaultDegraded,
}

impl AccessClass {
    /// Number of classes; sized for per-class metric arrays.
    pub const COUNT: usize = 6;

    /// All classes in report order.
    pub const ALL: [Self; Self::COUNT] = [
        Self::NmHit,
        Self::FmHit,
        Self::SwapPath,
        Self::Bypass,
        Self::Locked,
        Self::FaultDegraded,
    ];

    /// Dense index in `0..COUNT`, matching [`ALL`](Self::ALL) order.
    pub const fn index(self) -> usize {
        match self {
            Self::NmHit => 0,
            Self::FmHit => 1,
            Self::SwapPath => 2,
            Self::Bypass => 3,
            Self::Locked => 4,
            Self::FaultDegraded => 5,
        }
    }

    /// Short machine-readable label used in reports and artifacts.
    pub const fn label(self) -> &'static str {
        match self {
            Self::NmHit => "nm_hit",
            Self::FmHit => "fm_hit",
            Self::SwapPath => "swap",
            Self::Bypass => "bypass",
            Self::Locked => "locked",
            Self::FaultDegraded => "fault_degraded",
        }
    }

    /// Classifies one finished access from its outcome metadata. Precedence
    /// runs most-exceptional first — fault-degraded over locked over bypass
    /// over swap — so an access is attributed to the strongest condition
    /// that shaped its latency; only unexceptional accesses split into
    /// NM/FM hits by where the demand was serviced.
    pub const fn classify(serviced_from: MemKind, has_migration: bool, flags: AccessFlags) -> Self {
        if flags.contains(AccessFlags::DEGRADED) {
            Self::FaultDegraded
        } else if flags.contains(AccessFlags::LOCKED) {
            Self::Locked
        } else if flags.contains(AccessFlags::BYPASS) {
            Self::Bypass
        } else if has_migration {
            Self::SwapPath
        } else {
            match serviced_from {
                MemKind::Near => Self::NmHit,
                MemKind::Far => Self::FmHit,
            }
        }
    }

    /// [`classify`](Self::classify) reading everything from one scalar
    /// outcome (the migration scan walks both op lists).
    pub fn of_outcome(out: &SchemeOutcome) -> Self {
        let has_migration = out
            .critical
            .iter()
            .chain(out.background.iter())
            .any(|op| matches!(op.class, crate::mem::TrafficClass::Migration));
        Self::classify(out.serviced_from, has_migration, out.flags)
    }
}

impl fmt::Display for AccessClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What a scheme decided for one demand access.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeOutcome {
    /// Operations on the critical path of the demand access, in order.
    /// The demand load completes when the last of these completes; they are
    /// issued back-to-back (each waits for the previous one).
    pub critical: OpList,
    /// Operations that consume bandwidth but do not block the demand access
    /// (swap writes, migration of additional subblocks, prefetches).
    pub background: OpList,
    /// Which memory the demand data was ultimately serviced from. This feeds
    /// the paper's *access rate* metric (Eq. 1).
    pub serviced_from: MemKind,
    /// Extra cycles during which *all* cores stall, used by the epoch-based
    /// HMA scheme to model OS overheads (context switches, TLB shootdowns).
    pub global_stall_cycles: u64,
    /// Service-path markers for latency attribution; see [`AccessFlags`].
    pub flags: AccessFlags,
}

impl SchemeOutcome {
    /// An empty outcome for the reuse protocol. Allocation-free.
    pub const fn empty() -> Self {
        Self {
            critical: OpList::new(),
            background: OpList::new(),
            serviced_from: MemKind::Far,
            global_stall_cycles: 0,
            flags: AccessFlags::NONE,
        }
    }

    /// Resets the outcome for refilling, keeping any heap capacity the op
    /// lists spilled into on earlier misses.
    pub fn clear(&mut self) {
        self.critical.clear();
        self.background.clear();
        self.serviced_from = MemKind::Far;
        self.global_stall_cycles = 0;
        self.flags = AccessFlags::NONE;
    }

    /// An outcome that services the demand from `mem` with the given
    /// critical-path operations and no background traffic.
    pub fn serviced(mem: MemKind, critical: Vec<MemOp>) -> Self {
        Self {
            critical: critical.into(),
            background: OpList::new(),
            serviced_from: mem,
            global_stall_cycles: 0,
            flags: AccessFlags::NONE,
        }
    }

    /// Total bytes moved on the critical path.
    pub fn critical_bytes(&self) -> u64 {
        self.critical.iter().map(|op| u64::from(op.bytes)).sum()
    }

    /// Total bytes moved in the background.
    pub fn background_bytes(&self) -> u64 {
        self.background.iter().map(|op| u64::from(op.bytes)).sum()
    }
}

impl Default for SchemeOutcome {
    fn default() -> Self {
        Self::empty()
    }
}

/// Aggregate statistics a scheme reports at the end of a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchemeStats {
    /// Total demand accesses (LLC misses) seen.
    pub accesses: u64,
    /// Demand accesses serviced from near memory.
    pub serviced_from_nm: u64,
    /// Number of subblock-granularity transfers between NM and FM.
    pub subblocks_moved: u64,
    /// Number of whole-block migrations (locks, PoM migrations, HMA moves).
    pub blocks_migrated: u64,
    /// Scheme-specific named metrics (predictor accuracy, lock counts, …).
    /// Keys are static so building a stats snapshot allocates no strings.
    pub details: Vec<(&'static str, f64)>,
}

impl SchemeStats {
    /// The paper's *access rate* (Eq. 1): fraction of LLC misses serviced
    /// from NM. Returns 0 when no accesses were recorded.
    pub fn access_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.serviced_from_nm as f64 / self.accesses as f64
        }
    }

    /// Adds a named detail metric.
    pub fn detail(&mut self, name: &'static str, value: f64) {
        self.details.push((name, value));
    }

    /// Folds another snapshot into this one: counters add, and detail
    /// metrics with the same key add as well (a key present in only one
    /// side is carried over). Merging preserves the access-rate identity —
    /// the merged rate is the access-weighted mean of the inputs — so
    /// deterministic lane/epoch aggregation (see `silcfm-sim`'s sharded
    /// runner) loses nothing relative to a single serial tally.
    pub fn merge(&mut self, other: &SchemeStats) {
        self.accesses += other.accesses;
        self.serviced_from_nm += other.serviced_from_nm;
        self.subblocks_moved += other.subblocks_moved;
        self.blocks_migrated += other.blocks_migrated;
        for (key, value) in &other.details {
            match self.details.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v += value,
                None => self.details.push((key, *value)),
            }
        }
    }
}

impl fmt::Display for SchemeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accesses={} access_rate={:.3} subblocks_moved={} blocks_migrated={}",
            self.accesses,
            self.access_rate(),
            self.subblocks_moved,
            self.blocks_migrated
        )
    }
}

/// A hardware (or software) data-placement scheme managing the flat NM+FM
/// address space.
///
/// Implementations must be deterministic given the same access sequence so
/// that experiments are reproducible.
pub trait MemoryScheme {
    /// Handles one post-LLC-miss access, writing the memory traffic it
    /// causes into `out`.
    ///
    /// Implementations clear `out` before filling it; callers may pass the
    /// same outcome for every access (the reuse protocol) or a fresh one.
    fn access(&mut self, access: &Access, out: &mut SchemeOutcome);

    /// One-shot convenience around [`access`](MemoryScheme::access): runs
    /// the access against a freshly allocated outcome and returns it.
    /// Behaviorally identical to the reuse protocol (the equivalence is
    /// pinned by `tests/golden.rs`); meant for tests and examples, not the
    /// simulation loop.
    fn access_fresh(&mut self, access: &Access) -> SchemeOutcome {
        let mut out = SchemeOutcome::empty();
        self.access(access, &mut out);
        out
    }

    /// Handles a batch of consecutive accesses, writing each access's
    /// traffic into `out` (cleared first) in batch order.
    ///
    /// Behaviorally identical to calling [`access`](MemoryScheme::access)
    /// once per element — entry `i` of `out` holds exactly what the scalar
    /// path would have produced for `accesses[i]`, and the scheme's stats
    /// advance identically. The default implementation *is* that scalar
    /// loop; schemes with a batch-aware hot path (SILC-FM) override it to
    /// amortize dispatch and metadata-touch costs across the batch.
    fn access_batch(&mut self, accesses: &[Access], out: &mut BatchOutcome) {
        out.clear();
        // One reservation up front: the per-access copy-in then never
        // grows the entry vector, so trivial schemes (one op per access)
        // run the loop at near-scalar cost.
        out.reserve_entries(accesses.len());
        let mut scratch = out.take_scratch();
        for access in accesses {
            self.access(access, &mut scratch);
            out.push_outcome(&scratch);
        }
        out.restore_scratch(scratch);
    }

    /// Short machine-readable name ("silcfm", "cameo", "pom", …).
    fn name(&self) -> &'static str;

    /// Statistics accumulated so far.
    fn stats(&self) -> SchemeStats;

    /// Resets all internal state and statistics, as if freshly constructed.
    fn reset(&mut self);

    /// Delivers one scheme-level fault, writing any recovery traffic
    /// (evacuation swaps, restored subblocks) into `out` and returning what
    /// the fault did to the data.
    ///
    /// Schemes without fault-plane support — all the baselines — keep this
    /// default: the fault has no modeled target, so it is [`Masked`]
    /// (`FaultEffect::Masked`) and generates no traffic. The default leaves
    /// `out` untouched; implementations clear it before filling it, exactly
    /// like [`access`](MemoryScheme::access).
    fn apply_fault(&mut self, _fault: &SchemeFault, _out: &mut SchemeOutcome) -> FaultEffect {
        FaultEffect::Masked
    }

    /// Informs a tracing scheme of the simulation cycle the *next*
    /// [`access`](MemoryScheme::access) will be stamped with. Schemes have
    /// no clock of their own (the simulator owns time), so the driving loop
    /// injects it just before each access — and only when tracing is
    /// enabled, so the untraced path never pays the virtual call.
    fn trace_clock(&mut self, _cycle: u64) {}

    /// Removes and returns the scheme's buffered trace events, oldest
    /// first. Untraced schemes return nothing (and do not allocate: an
    /// empty `Vec` holds no heap memory).
    fn drain_trace(&mut self) -> Vec<TraceEvent> {
        Vec::new()
    }

    /// Number of trace events the scheme's sink dropped to capacity limits.
    fn trace_dropped(&self) -> u64 {
        0
    }

    /// Monotonic per-kind event totals from the scheme's tracer, indexed by
    /// [`Event::kind_index`](crate::obs::Event::kind_index). Only counting
    /// sinks (the sampling tier in `silcfm-obs`) report nonzero values;
    /// everything else inherits this all-zeros default.
    fn trace_counters(&self) -> [u64; EVENT_KINDS] {
        [0; EVENT_KINDS]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PhysAddr;

    #[test]
    fn outcome_byte_accounting() {
        let out = SchemeOutcome {
            critical: vec![
                MemOp::metadata_read(MemKind::Near, PhysAddr::new(0), 8),
                MemOp::demand_read(MemKind::Near, PhysAddr::new(64), 64),
            ]
            .into(),
            background: vec![MemOp::migration_write(MemKind::Far, PhysAddr::new(128), 64)].into(),
            serviced_from: MemKind::Near,
            global_stall_cycles: 0,
            flags: AccessFlags::NONE,
        };
        assert_eq!(out.critical_bytes(), 72);
        assert_eq!(out.background_bytes(), 64);
    }

    #[test]
    fn serviced_helper() {
        let out = SchemeOutcome::serviced(
            MemKind::Far,
            vec![MemOp::demand_read(MemKind::Far, PhysAddr::new(0), 64)],
        );
        assert_eq!(out.serviced_from, MemKind::Far);
        assert!(out.background.is_empty());
        assert_eq!(out.global_stall_cycles, 0);
    }

    #[test]
    fn clear_resets_everything_observable() {
        let mut out = SchemeOutcome::serviced(
            MemKind::Near,
            vec![MemOp::demand_read(MemKind::Near, PhysAddr::new(0), 64)],
        );
        out.global_stall_cycles = 17;
        out.flags.insert(AccessFlags::BYPASS);
        out.clear();
        assert_eq!(out, SchemeOutcome::empty());
        assert_eq!(out.critical_bytes(), 0);
        assert!(out.flags.is_empty());
    }

    #[test]
    fn classification_is_total_and_precedence_ordered() {
        use crate::mem::TrafficClass;

        // Unexceptional accesses split by where the demand was serviced.
        let nm = SchemeOutcome::serviced(
            MemKind::Near,
            vec![MemOp::demand_read(MemKind::Near, PhysAddr::new(0), 64)],
        );
        assert_eq!(AccessClass::of_outcome(&nm), AccessClass::NmHit);
        let fm = SchemeOutcome::serviced(
            MemKind::Far,
            vec![MemOp::demand_read(MemKind::Far, PhysAddr::new(0), 64)],
        );
        assert_eq!(AccessClass::of_outcome(&fm), AccessClass::FmHit);

        // Migration traffic anywhere in the outcome marks the swap path.
        let mut swap = nm.clone();
        swap.background
            .push(MemOp::migration_write(MemKind::Near, PhysAddr::new(64), 64));
        assert_eq!(AccessClass::of_outcome(&swap), AccessClass::SwapPath);
        assert!(swap
            .background
            .iter()
            .any(|op| op.class == TrafficClass::Migration));

        // Flags take precedence over the op scan, strongest condition first.
        let mut flagged = swap.clone();
        flagged.flags.insert(AccessFlags::BYPASS);
        assert_eq!(AccessClass::of_outcome(&flagged), AccessClass::Bypass);
        flagged.flags.insert(AccessFlags::LOCKED);
        assert_eq!(AccessClass::of_outcome(&flagged), AccessClass::Locked);
        flagged.flags.insert(AccessFlags::DEGRADED);
        assert_eq!(
            AccessClass::of_outcome(&flagged),
            AccessClass::FaultDegraded
        );

        // The dense index and label tables agree with ALL's order.
        for (i, class) in AccessClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), i);
            assert_eq!(class.to_string(), class.label());
        }
    }

    #[test]
    fn flags_bit_algebra() {
        let mut f = AccessFlags::NONE;
        assert!(f.is_empty());
        assert!(f.contains(AccessFlags::NONE));
        assert!(!f.contains(AccessFlags::LOCKED));
        f.insert(AccessFlags::LOCKED);
        f.insert(AccessFlags::DEGRADED);
        assert!(f.contains(AccessFlags::LOCKED));
        assert!(f.contains(AccessFlags::DEGRADED));
        assert!(!f.contains(AccessFlags::BYPASS));
        assert!(!f.is_empty());
    }

    #[test]
    fn access_rate() {
        let mut s = SchemeStats {
            accesses: 10,
            serviced_from_nm: 8,
            ..Default::default()
        };
        assert!((s.access_rate() - 0.8).abs() < 1e-12);
        s.detail("predictor_accuracy", 0.95);
        assert_eq!(s.details.len(), 1);
        let empty = SchemeStats::default();
        assert_eq!(empty.access_rate(), 0.0);
    }

    #[test]
    fn stats_display_is_nonempty() {
        let s = SchemeStats::default();
        assert!(s.to_string().contains("accesses=0"));
    }

    #[test]
    fn merge_adds_counters_and_unions_details() {
        let mut a = SchemeStats {
            accesses: 10,
            serviced_from_nm: 8,
            subblocks_moved: 3,
            blocks_migrated: 1,
            ..Default::default()
        };
        a.detail("locks", 2.0);
        let b = SchemeStats {
            accesses: 30,
            serviced_from_nm: 6,
            subblocks_moved: 4,
            blocks_migrated: 0,
            details: vec![("locks", 5.0), ("epochs", 7.0)],
        };
        a.merge(&b);
        assert_eq!(a.accesses, 40);
        assert_eq!(a.serviced_from_nm, 14);
        assert_eq!(a.subblocks_moved, 7);
        assert_eq!(a.blocks_migrated, 1);
        assert_eq!(a.details, vec![("locks", 7.0), ("epochs", 7.0)]);
        // The merged rate is the access-weighted mean: 14/40.
        assert!((a.access_rate() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn default_access_batch_matches_the_scalar_loop() {
        use crate::access::CoreId;

        /// Toy scheme: odd addresses hit NM, every third access stalls.
        struct Toy {
            n: u64,
        }
        impl MemoryScheme for Toy {
            fn access(&mut self, access: &Access, out: &mut SchemeOutcome) {
                out.clear();
                self.n += 1;
                let near = access.addr.value().is_multiple_of(128);
                let mem = if near { MemKind::Near } else { MemKind::Far };
                out.critical.push(MemOp::demand_read(mem, access.addr, 64));
                if !near {
                    out.background
                        .push(MemOp::migration_write(MemKind::Near, access.addr, 64));
                }
                out.serviced_from = mem;
                out.global_stall_cycles = if self.n.is_multiple_of(3) { 11 } else { 0 };
            }
            fn name(&self) -> &'static str {
                "toy"
            }
            fn stats(&self) -> SchemeStats {
                SchemeStats {
                    accesses: self.n,
                    ..Default::default()
                }
            }
            fn reset(&mut self) {
                self.n = 0;
            }
        }

        let accesses: Vec<Access> = (0..13)
            .map(|i| Access::read(PhysAddr::new(i * 64), 0, CoreId::new(0)))
            .collect();
        let mut scalar = Toy { n: 0 };
        let mut batched = Toy { n: 0 };
        let mut out = BatchOutcome::new();
        batched.access_batch(&accesses, &mut out);
        assert_eq!(out.len(), accesses.len());
        for (i, access) in accesses.iter().enumerate() {
            let expected = scalar.access_fresh(access);
            assert!(
                out.entry(i).unwrap().matches(&expected),
                "batched entry {i} diverged from the scalar path"
            );
        }
        assert_eq!(scalar.stats(), batched.stats());
        // Reuse across batches: clear() keeps capacity but no stale entries.
        batched.access_batch(&accesses[..2], &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = SchemeStats {
            accesses: 5,
            serviced_from_nm: 2,
            ..Default::default()
        };
        a.detail("swaps", 1.0);
        let before = a.clone();
        a.merge(&SchemeStats::default());
        assert_eq!(a, before);
    }
}
