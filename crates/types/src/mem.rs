//! Memory operations exchanged between placement schemes and the DRAM models.

use core::fmt;

use crate::addr::PhysAddr;

/// Which of the two memories an address or operation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemKind {
    /// Near memory: small, fast, die-stacked (HBM-like).
    Near,
    /// Far memory: large, slow, off-chip (DDR-like).
    Far,
}

impl MemKind {
    /// The other memory.
    pub const fn other(self) -> Self {
        match self {
            Self::Near => Self::Far,
            Self::Far => Self::Near,
        }
    }

    /// Short lowercase label used in reports ("nm" / "fm").
    pub const fn label(self) -> &'static str {
        match self {
            Self::Near => "nm",
            Self::Far => "fm",
        }
    }
}

impl fmt::Display for MemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Near => "NM",
            Self::Far => "FM",
        })
    }
}

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A read transfers data from the memory device.
    Read,
    /// A write transfers data to the memory device.
    Write,
}

impl OpKind {
    /// Whether this is a write.
    pub const fn is_write(self) -> bool {
        matches!(self, Self::Write)
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Read => "RD",
            Self::Write => "WR",
        })
    }
}

/// Why an operation exists; used for bandwidth accounting (Fig. 8 separates
/// demand traffic from migration traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// A demand access servicing an LLC miss.
    Demand,
    /// Data movement caused by swapping/migration between NM and FM.
    Migration,
    /// Remap-table / bit-vector metadata access.
    Metadata,
    /// Speculative fetch issued by a prefetching scheme (CAMEO+P).
    Prefetch,
    /// Dirty-data writeback from the LLC.
    Writeback,
}

impl TrafficClass {
    /// Whether this class counts as demand bandwidth in Fig. 8.
    pub const fn is_demand(self) -> bool {
        matches!(self, Self::Demand | Self::Writeback)
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Demand => "demand",
            Self::Migration => "migration",
            Self::Metadata => "metadata",
            Self::Prefetch => "prefetch",
            Self::Writeback => "writeback",
        })
    }
}

/// A single memory transaction issued to one of the DRAM devices.
///
/// `addr` is a *global* physical address; the simulator converts it to a
/// device-local address with [`crate::AddressSpace::device_addr`] before
/// handing it to the DRAM model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemOp {
    /// Read or write.
    pub kind: OpKind,
    /// Which memory services the operation.
    pub mem: MemKind,
    /// Global physical byte address of the first byte touched.
    pub addr: PhysAddr,
    /// Number of bytes transferred.
    pub bytes: u32,
    /// Accounting class.
    pub class: TrafficClass,
}

impl MemOp {
    /// A demand read of `bytes` at `addr` from `mem`.
    pub const fn demand_read(mem: MemKind, addr: PhysAddr, bytes: u32) -> Self {
        Self {
            kind: OpKind::Read,
            mem,
            addr,
            bytes,
            class: TrafficClass::Demand,
        }
    }

    /// A demand write of `bytes` at `addr` to `mem`.
    pub const fn demand_write(mem: MemKind, addr: PhysAddr, bytes: u32) -> Self {
        Self {
            kind: OpKind::Write,
            mem,
            addr,
            bytes,
            class: TrafficClass::Demand,
        }
    }

    /// A migration read (swap traffic) of `bytes` at `addr` from `mem`.
    pub const fn migration_read(mem: MemKind, addr: PhysAddr, bytes: u32) -> Self {
        Self {
            kind: OpKind::Read,
            mem,
            addr,
            bytes,
            class: TrafficClass::Migration,
        }
    }

    /// A migration write (swap traffic) of `bytes` at `addr` to `mem`.
    pub const fn migration_write(mem: MemKind, addr: PhysAddr, bytes: u32) -> Self {
        Self {
            kind: OpKind::Write,
            mem,
            addr,
            bytes,
            class: TrafficClass::Migration,
        }
    }

    /// A metadata read (remap entry / bit vector) of `bytes` at `addr`.
    pub const fn metadata_read(mem: MemKind, addr: PhysAddr, bytes: u32) -> Self {
        Self {
            kind: OpKind::Read,
            mem,
            addr,
            bytes,
            class: TrafficClass::Metadata,
        }
    }

    /// A metadata write of `bytes` at `addr`.
    pub const fn metadata_write(mem: MemKind, addr: PhysAddr, bytes: u32) -> Self {
        Self {
            kind: OpKind::Write,
            mem,
            addr,
            bytes,
            class: TrafficClass::Metadata,
        }
    }
}

impl fmt::Display for MemOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}B @ {} ({})",
            self.kind, self.mem, self.bytes, self.addr, self.class
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_kind_other_and_labels() {
        assert_eq!(MemKind::Near.other(), MemKind::Far);
        assert_eq!(MemKind::Far.other(), MemKind::Near);
        assert_eq!(MemKind::Near.label(), "nm");
        assert_eq!(MemKind::Far.to_string(), "FM");
    }

    #[test]
    fn traffic_class_demand_split() {
        assert!(TrafficClass::Demand.is_demand());
        assert!(TrafficClass::Writeback.is_demand());
        assert!(!TrafficClass::Migration.is_demand());
        assert!(!TrafficClass::Metadata.is_demand());
        assert!(!TrafficClass::Prefetch.is_demand());
    }

    #[test]
    fn constructors_set_class_and_kind() {
        let a = PhysAddr::new(64);
        let r = MemOp::demand_read(MemKind::Near, a, 64);
        assert_eq!(r.kind, OpKind::Read);
        assert_eq!(r.class, TrafficClass::Demand);
        let w = MemOp::migration_write(MemKind::Far, a, 64);
        assert!(w.kind.is_write());
        assert_eq!(w.class, TrafficClass::Migration);
        let m = MemOp::metadata_read(MemKind::Near, a, 8);
        assert_eq!(m.class, TrafficClass::Metadata);
        assert_eq!(m.bytes, 8);
        let mw = MemOp::metadata_write(MemKind::Near, a, 8);
        assert!(mw.kind.is_write());
        let dw = MemOp::demand_write(MemKind::Far, a, 64);
        assert!(dw.kind.is_write());
        let mr = MemOp::migration_read(MemKind::Far, a, 64);
        assert!(!mr.kind.is_write());
    }

    #[test]
    fn display_form() {
        let op = MemOp::demand_read(MemKind::Near, PhysAddr::new(128), 64);
        assert_eq!(op.to_string(), "RD NM 64B @ PA:0x80 (demand)");
    }
}
