//! System configuration mirroring Table II of the paper.

use core::fmt;

use crate::geometry::Geometry;

/// Parameters of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways).
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Access latency in CPU cycles.
    pub latency_cycles: u32,
}

impl CacheParams {
    /// Number of sets implied by capacity, ways and line size.
    ///
    /// # Panics
    ///
    /// Panics if the parameters do not divide evenly.
    pub fn sets(&self) -> u64 {
        let lines = self.capacity_bytes / u64::from(self.line_bytes);
        assert_eq!(
            lines % u64::from(self.ways),
            0,
            "capacity must divide evenly into ways"
        );
        lines / u64::from(self.ways)
    }
}

/// Core pipeline parameters (Table II "Processor").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoreParams {
    /// Number of cores.
    pub cores: u16,
    /// Core frequency in MHz (3.2 GHz in the paper).
    pub freq_mhz: u32,
    /// Issue/retire width (4-wide in the paper).
    pub width: u32,
    /// Reorder-buffer entries per core (128 in the paper).
    pub rob_entries: u32,
}

/// The full Table II system configuration.
///
/// # Example
///
/// ```
/// use silcfm_types::SystemConfig;
/// let cfg = SystemConfig::paper();
/// assert_eq!(cfg.core.cores, 16);
/// assert_eq!(cfg.l2.capacity_bytes, 8 << 20);
/// assert_eq!(cfg.geometry.block_bytes(), 2048);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Core pipeline parameters.
    pub core: CoreParams,
    /// Private L1 instruction cache.
    pub l1i: CacheParams,
    /// Private L1 data cache.
    pub l1d: CacheParams,
    /// Shared L2 (the LLC in the paper's hierarchy).
    pub l2: CacheParams,
    /// Subblock / large-block geometry (64 B / 2 KB).
    pub geometry: Geometry,
    /// FM:NM capacity ratio (4 in the paper's main experiments).
    pub fm_to_nm_ratio: u64,
}

impl SystemConfig {
    /// The configuration used throughout the paper's evaluation (Table II).
    pub const fn paper() -> Self {
        Self {
            core: CoreParams {
                cores: 16,
                freq_mhz: 3200,
                width: 4,
                rob_entries: 128,
            },
            l1i: CacheParams {
                capacity_bytes: 64 << 10,
                ways: 2,
                line_bytes: 64,
                latency_cycles: 4,
            },
            l1d: CacheParams {
                capacity_bytes: 16 << 10,
                ways: 4,
                line_bytes: 64,
                latency_cycles: 4,
            },
            l2: CacheParams {
                capacity_bytes: 8 << 20,
                ways: 16,
                line_bytes: 64,
                latency_cycles: 11,
            },
            geometry: Geometry::paper(),
            fm_to_nm_ratio: 4,
        }
    }

    /// The configuration the experiment harnesses run with: Table II's
    /// cores and memories, but with the LLC scaled from 8 MiB to 1 MiB.
    ///
    /// The synthetic workloads shrink the paper's multi-gigabyte footprints
    /// by roughly two orders of magnitude so experiments finish in seconds;
    /// keeping the LLC at its full 8 MiB would let it swallow hot sets that
    /// are hundreds of times larger than the LLC in the paper's setup,
    /// hiding exactly the memory-level reuse the flat-memory schemes
    /// compete over. Scaling the LLC with the footprints preserves the
    /// paper's footprint:LLC ratio (see DESIGN.md, substitutions).
    pub const fn experiment() -> Self {
        Self {
            l2: CacheParams {
                capacity_bytes: 1 << 20,
                ways: 16,
                line_bytes: 64,
                latency_cycles: 11,
            },
            ..Self::paper()
        }
    }

    /// A scaled-down configuration for fast tests and `--quick` experiment
    /// runs: 4 cores, 1 MB LLC, same geometry and ratios.
    pub const fn small() -> Self {
        Self {
            core: CoreParams {
                cores: 4,
                freq_mhz: 3200,
                width: 4,
                rob_entries: 128,
            },
            l1i: CacheParams {
                capacity_bytes: 32 << 10,
                ways: 2,
                line_bytes: 64,
                latency_cycles: 4,
            },
            l1d: CacheParams {
                capacity_bytes: 16 << 10,
                ways: 4,
                line_bytes: 64,
                latency_cycles: 4,
            },
            l2: CacheParams {
                capacity_bytes: 1 << 20,
                ways: 16,
                line_bytes: 64,
                latency_cycles: 11,
            },
            geometry: Geometry::paper(),
            fm_to_nm_ratio: 4,
        }
    }

    /// CPU cycles per nanosecond.
    pub fn cycles_per_ns(&self) -> f64 {
        f64::from(self.core.freq_mhz) / 1000.0
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper()
    }
}

impl fmt::Display for SystemConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cores @ {} MHz, {}-wide, ROB {}, L2 {} MiB/{}-way, {} , FM:NM={}:1",
            self.core.cores,
            self.core.freq_mhz,
            self.core.width,
            self.core.rob_entries,
            self.l2.capacity_bytes >> 20,
            self.l2.ways,
            self.geometry,
            self.fm_to_nm_ratio
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table2() {
        let cfg = SystemConfig::paper();
        assert_eq!(cfg.core.cores, 16);
        assert_eq!(cfg.core.freq_mhz, 3200);
        assert_eq!(cfg.core.width, 4);
        assert_eq!(cfg.core.rob_entries, 128);
        assert_eq!(cfg.l1i.capacity_bytes, 64 << 10);
        assert_eq!(cfg.l1i.ways, 2);
        assert_eq!(cfg.l1d.capacity_bytes, 16 << 10);
        assert_eq!(cfg.l1d.ways, 4);
        assert_eq!(cfg.l2.capacity_bytes, 8 << 20);
        assert_eq!(cfg.l2.ways, 16);
        assert_eq!(cfg.l2.latency_cycles, 11);
        assert_eq!(cfg.fm_to_nm_ratio, 4);
    }

    #[test]
    fn cache_sets() {
        let cfg = SystemConfig::paper();
        // 8 MiB / 64 B lines / 16 ways = 8192 sets.
        assert_eq!(cfg.l2.sets(), 8192);
        // 16 KiB / 64 B / 4 ways = 64 sets.
        assert_eq!(cfg.l1d.sets(), 64);
    }

    #[test]
    fn cycles_per_ns() {
        assert!((SystemConfig::paper().cycles_per_ns() - 3.2).abs() < 1e-12);
    }

    #[test]
    fn small_config_is_smaller() {
        let s = SystemConfig::small();
        assert!(s.core.cores < SystemConfig::paper().core.cores);
        assert!(s.l2.capacity_bytes < SystemConfig::paper().l2.capacity_bytes);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(SystemConfig::default(), SystemConfig::paper());
    }

    #[test]
    fn display_is_nonempty() {
        assert!(SystemConfig::paper().to_string().contains("16 cores"));
    }
}
