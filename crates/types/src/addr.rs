//! Address newtypes.
//!
//! Physical and virtual addresses are kept statically distinct so that a
//! pre-translation address can never be handed to the memory system, and
//! block/subblock *indices* are distinct from byte addresses so that index
//! arithmetic (congruence-set computation, bit-vector offsets) cannot be
//! accidentally performed on raw bytes.

use core::fmt;

use crate::geometry::Geometry;

/// A physical byte address in the flat NM+FM space.
///
/// # Example
///
/// ```
/// use silcfm_types::PhysAddr;
/// let a = PhysAddr::new(0x1_0040);
/// assert_eq!(a.value(), 0x1_0040);
/// assert_eq!(a.offset(2048), 0x40);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address from a raw byte value.
    pub const fn new(value: u64) -> Self {
        Self(value)
    }

    /// Returns the raw byte value.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Returns the byte offset of this address within an aligned region of
    /// `region_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `region_bytes` is not a power of two.
    pub fn offset(self, region_bytes: u64) -> u64 {
        debug_assert!(region_bytes.is_power_of_two());
        self.0 & (region_bytes - 1)
    }

    /// Returns the address rounded down to a multiple of `align_bytes`.
    pub fn align_down(self, align_bytes: u64) -> Self {
        debug_assert!(align_bytes.is_power_of_two());
        Self(self.0 & !(align_bytes - 1))
    }

    /// Returns the address advanced by `bytes`.
    pub const fn add(self, bytes: u64) -> Self {
        Self(self.0 + bytes)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PA:{:#x}", self.0)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for PhysAddr {
    fn from(value: u64) -> Self {
        Self(value)
    }
}

/// A virtual byte address as issued by a core, before translation.
///
/// # Example
///
/// ```
/// use silcfm_types::VirtAddr;
/// let v = VirtAddr::new(0x7fff_0000);
/// assert_eq!(v.value(), 0x7fff_0000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// Creates a virtual address from a raw byte value.
    pub const fn new(value: u64) -> Self {
        Self(value)
    }

    /// Returns the raw byte value.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Returns the virtual page number for a page of `page_bytes` bytes.
    pub fn page_number(self, page_bytes: u64) -> u64 {
        debug_assert!(page_bytes.is_power_of_two());
        self.0 / page_bytes
    }

    /// Returns the byte offset within a page of `page_bytes` bytes.
    pub fn page_offset(self, page_bytes: u64) -> u64 {
        debug_assert!(page_bytes.is_power_of_two());
        self.0 & (page_bytes - 1)
    }

    /// Returns the address advanced by `bytes`.
    pub const fn add(self, bytes: u64) -> Self {
        Self(self.0 + bytes)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VA:{:#x}", self.0)
    }
}

impl From<u64> for VirtAddr {
    fn from(value: u64) -> Self {
        Self(value)
    }
}

/// The index of a 2 KB large block (page) in the flat physical space.
///
/// Index `i` covers physical bytes `[i * block_bytes, (i + 1) * block_bytes)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockIndex(u64);

impl BlockIndex {
    /// Creates a block index from a raw index value.
    pub const fn new(index: u64) -> Self {
        Self(index)
    }

    /// Creates the block index containing `addr`.
    ///
    /// Runs on every scheme access; the paper's power-of-two block size
    /// turns the division into a shift, with an exact fallback otherwise.
    pub fn containing(addr: PhysAddr, geom: Geometry) -> Self {
        let bytes = geom.block_bytes();
        Self(if bytes.is_power_of_two() {
            addr.value() >> bytes.trailing_zeros()
        } else {
            addr.value() / bytes
        })
    }

    /// Returns the raw index value.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Returns the physical address of the first byte of this block.
    pub fn base_addr(self, geom: Geometry) -> PhysAddr {
        PhysAddr::new(self.0 * geom.block_bytes())
    }

    /// Returns the subblock index of the `offset`-th subblock of this block.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `offset >= geom.subblocks_per_block()`.
    pub fn subblock(self, offset: u32, geom: Geometry) -> SubblockIndex {
        debug_assert!(offset < geom.subblocks_per_block());
        SubblockIndex::new(self.0 * u64::from(geom.subblocks_per_block()) + u64::from(offset))
    }
}

impl fmt::Display for BlockIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// The index of a 64 B subblock in the flat physical space.
///
/// Index `i` covers physical bytes `[i * subblock_bytes, (i+1) * subblock_bytes)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SubblockIndex(u64);

impl SubblockIndex {
    /// Creates a subblock index from a raw index value.
    pub const fn new(index: u64) -> Self {
        Self(index)
    }

    /// Creates the subblock index containing `addr`.
    ///
    /// Runs on every scheme access; the paper's power-of-two subblock size
    /// turns the division into a shift, with an exact fallback otherwise.
    pub fn containing(addr: PhysAddr, geom: Geometry) -> Self {
        let bytes = geom.subblock_bytes();
        Self(if bytes.is_power_of_two() {
            addr.value() >> bytes.trailing_zeros()
        } else {
            addr.value() / bytes
        })
    }

    /// Returns the raw index value.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Returns the physical address of the first byte of this subblock.
    pub fn base_addr(self, geom: Geometry) -> PhysAddr {
        PhysAddr::new(self.0 * geom.subblock_bytes())
    }

    /// Returns the large block containing this subblock.
    pub fn block(self, geom: Geometry) -> BlockIndex {
        let per_block = u64::from(geom.subblocks_per_block());
        BlockIndex::new(if per_block.is_power_of_two() {
            self.0 >> per_block.trailing_zeros()
        } else {
            self.0 / per_block
        })
    }

    /// Returns the position of this subblock within its large block
    /// (`0..geom.subblocks_per_block()`), i.e. the bit number in a per-block
    /// residency bit vector.
    pub fn offset_in_block(self, geom: Geometry) -> u32 {
        let per_block = u64::from(geom.subblocks_per_block());
        (if per_block.is_power_of_two() {
            self.0 & (per_block - 1)
        } else {
            self.0 % per_block
        }) as u32
    }
}

impl fmt::Display for SubblockIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phys_addr_offset_and_align() {
        let a = PhysAddr::new(0x1234);
        assert_eq!(a.offset(0x1000), 0x234);
        assert_eq!(a.align_down(0x1000), PhysAddr::new(0x1000));
        assert_eq!(a.add(0x10), PhysAddr::new(0x1244));
    }

    #[test]
    fn virt_addr_page_math() {
        let v = VirtAddr::new(3 * 2048 + 100);
        assert_eq!(v.page_number(2048), 3);
        assert_eq!(v.page_offset(2048), 100);
    }

    #[test]
    fn block_and_subblock_round_trip() {
        let geom = Geometry::paper();
        let addr = PhysAddr::new(5 * 2048 + 7 * 64 + 3);
        let block = BlockIndex::containing(addr, geom);
        assert_eq!(block.value(), 5);
        assert_eq!(block.base_addr(geom), PhysAddr::new(5 * 2048));

        let sub = SubblockIndex::containing(addr, geom);
        assert_eq!(sub.block(geom), block);
        assert_eq!(sub.offset_in_block(geom), 7);
        assert_eq!(block.subblock(7, geom), sub);
        assert_eq!(sub.base_addr(geom), PhysAddr::new(5 * 2048 + 7 * 64));
    }

    #[test]
    fn display_forms_are_nonempty() {
        assert_eq!(format!("{}", PhysAddr::new(16)), "PA:0x10");
        assert_eq!(format!("{}", VirtAddr::new(16)), "VA:0x10");
        assert_eq!(format!("{}", BlockIndex::new(4)), "B4");
        assert_eq!(format!("{}", SubblockIndex::new(9)), "S9");
    }

    #[test]
    fn lower_hex_formatting() {
        assert_eq!(format!("{:x}", PhysAddr::new(255)), "ff");
    }

    #[test]
    fn from_u64_conversions() {
        assert_eq!(PhysAddr::from(7u64), PhysAddr::new(7));
        assert_eq!(VirtAddr::from(7u64), VirtAddr::new(7));
    }
}
