//! Demand accesses as seen by a flat-memory scheme (post-LLC-miss).

use core::fmt;

use crate::addr::PhysAddr;
use crate::mem::OpKind;

/// Identifier of a core in the simulated multicore.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(u16);

impl CoreId {
    /// Creates a core identifier.
    pub const fn new(id: u16) -> Self {
        Self(id)
    }

    /// Returns the raw id.
    pub const fn value(self) -> u16 {
        self.0
    }

    /// Returns the id as an array index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl From<u16> for CoreId {
    fn from(value: u16) -> Self {
        Self(value)
    }
}

/// A memory request that missed in the LLC and reached the flat-memory
/// controller.
///
/// The program counter is carried because SILC-FM's bit-vector history table
/// and way predictor are indexed by `pc ^ address` (paper §III-A, §III-F).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    /// Post-translation physical address of the 64 B line requested.
    pub addr: PhysAddr,
    /// Program counter of the instruction that issued the request.
    pub pc: u64,
    /// Read (load/fetch) or write (dirty eviction from the LLC).
    pub kind: OpKind,
    /// Which core issued the request.
    pub core: CoreId,
}

impl Access {
    /// Creates a read access.
    pub const fn read(addr: PhysAddr, pc: u64, core: CoreId) -> Self {
        Self {
            addr,
            pc,
            kind: OpKind::Read,
            core,
        }
    }

    /// Creates a write access.
    pub const fn write(addr: PhysAddr, pc: u64, core: CoreId) -> Self {
        Self {
            addr,
            pc,
            kind: OpKind::Write,
            core,
        }
    }

    /// Whether this access is a write.
    pub const fn is_write(self) -> bool {
        self.kind.is_write()
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} from {} (pc={:#x})",
            self.kind, self.addr, self.core, self.pc
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_id_roundtrip() {
        let c = CoreId::new(5);
        assert_eq!(c.value(), 5);
        assert_eq!(c.index(), 5);
        assert_eq!(c.to_string(), "core5");
        assert_eq!(CoreId::from(5u16), c);
    }

    #[test]
    fn access_constructors() {
        let a = Access::read(PhysAddr::new(64), 0x400, CoreId::new(0));
        assert!(!a.is_write());
        let w = Access::write(PhysAddr::new(64), 0x400, CoreId::new(0));
        assert!(w.is_write());
    }

    #[test]
    fn display_form() {
        let a = Access::read(PhysAddr::new(64), 0x400, CoreId::new(1));
        assert_eq!(a.to_string(), "RD PA:0x40 from core1 (pc=0x400)");
    }
}
