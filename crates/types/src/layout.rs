//! The flat physical address space: NM at low addresses, FM above it.
//!
//! The paper (§III) assumes "NM uses the lower addresses in the physical
//! address space and FM uses the higher addresses". [`AddressSpace`] encodes
//! that split and converts between global physical addresses and
//! device-local addresses handed to the DRAM models.

use core::fmt;

use crate::addr::{BlockIndex, PhysAddr};
use crate::geometry::Geometry;
use crate::mem::MemKind;

/// The flat NM+FM physical address space.
///
/// # Example
///
/// ```
/// use silcfm_types::{AddressSpace, MemKind, PhysAddr};
/// let space = AddressSpace::new(1 << 20, 4 << 20);
/// assert_eq!(space.total_bytes(), 5 << 20);
/// assert_eq!(space.kind_of(PhysAddr::new((1 << 20) - 1)), MemKind::Near);
/// assert_eq!(space.kind_of(PhysAddr::new(1 << 20)), MemKind::Far);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddressSpace {
    nm_bytes: u64,
    fm_bytes: u64,
}

impl AddressSpace {
    /// Creates an address space with `nm_bytes` of near memory followed by
    /// `fm_bytes` of far memory.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero.
    pub fn new(nm_bytes: u64, fm_bytes: u64) -> Self {
        assert!(nm_bytes > 0, "near memory must be non-empty");
        assert!(fm_bytes > 0, "far memory must be non-empty");
        Self { nm_bytes, fm_bytes }
    }

    /// Bytes of near memory.
    pub const fn nm_bytes(self) -> u64 {
        self.nm_bytes
    }

    /// Bytes of far memory.
    pub const fn fm_bytes(self) -> u64 {
        self.fm_bytes
    }

    /// Total OS-visible capacity (the sum of both memories — this is a flat
    /// organization, not a cache).
    pub const fn total_bytes(self) -> u64 {
        self.nm_bytes + self.fm_bytes
    }

    /// Which memory a physical address belongs to.
    pub fn kind_of(self, addr: PhysAddr) -> MemKind {
        if addr.value() < self.nm_bytes {
            MemKind::Near
        } else {
            MemKind::Far
        }
    }

    /// Whether `addr` falls in the NM address range.
    pub fn is_near(self, addr: PhysAddr) -> bool {
        self.kind_of(addr) == MemKind::Near
    }

    /// The device-local byte address within the owning memory.
    ///
    /// NM addresses map to themselves; FM addresses have the NM capacity
    /// subtracted so each DRAM model sees a zero-based range.
    pub fn device_addr(self, addr: PhysAddr) -> u64 {
        match self.kind_of(addr) {
            MemKind::Near => addr.value(),
            MemKind::Far => addr.value() - self.nm_bytes,
        }
    }

    /// Number of large blocks in near memory.
    pub fn nm_blocks(self, geom: Geometry) -> u64 {
        self.nm_bytes / geom.block_bytes()
    }

    /// Number of large blocks in far memory.
    pub fn fm_blocks(self, geom: Geometry) -> u64 {
        self.fm_bytes / geom.block_bytes()
    }

    /// Number of large blocks in the whole space.
    pub fn total_blocks(self, geom: Geometry) -> u64 {
        self.total_bytes() / geom.block_bytes()
    }

    /// Whether a block index is an NM block.
    pub fn block_is_near(self, block: BlockIndex, geom: Geometry) -> bool {
        block.value() < self.nm_blocks(geom)
    }

    /// The first FM block index.
    pub fn first_fm_block(self, geom: Geometry) -> BlockIndex {
        BlockIndex::new(self.nm_blocks(geom))
    }

    /// Builds an address space from an FM size and an `fm:nm` capacity ratio,
    /// as in the paper's capacity sweep (Fig. 9 uses NM = FM/16 … FM/4).
    ///
    /// # Panics
    ///
    /// Panics if `fm_to_nm_ratio` is zero or does not divide `fm_bytes`.
    pub fn with_ratio(fm_bytes: u64, fm_to_nm_ratio: u64) -> Self {
        assert!(fm_to_nm_ratio > 0, "ratio must be positive");
        assert_eq!(
            fm_bytes % fm_to_nm_ratio,
            0,
            "FM size must be divisible by the ratio"
        );
        Self::new(fm_bytes / fm_to_nm_ratio, fm_bytes)
    }
}

impl fmt::Display for AddressSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NM {} MiB + FM {} MiB",
            self.nm_bytes >> 20,
            self.fm_bytes >> 20
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_and_device_addr() {
        let s = AddressSpace::new(4096, 8192);
        assert_eq!(s.kind_of(PhysAddr::new(0)), MemKind::Near);
        assert_eq!(s.kind_of(PhysAddr::new(4095)), MemKind::Near);
        assert_eq!(s.kind_of(PhysAddr::new(4096)), MemKind::Far);
        assert_eq!(s.device_addr(PhysAddr::new(4095)), 4095);
        assert_eq!(s.device_addr(PhysAddr::new(4096)), 0);
        assert_eq!(s.device_addr(PhysAddr::new(5000)), 904);
    }

    #[test]
    fn block_counts() {
        let s = AddressSpace::new(4 * 2048, 16 * 2048);
        let g = Geometry::paper();
        assert_eq!(s.nm_blocks(g), 4);
        assert_eq!(s.fm_blocks(g), 16);
        assert_eq!(s.total_blocks(g), 20);
        assert!(s.block_is_near(BlockIndex::new(3), g));
        assert!(!s.block_is_near(BlockIndex::new(4), g));
        assert_eq!(s.first_fm_block(g), BlockIndex::new(4));
    }

    #[test]
    fn ratio_constructor() {
        let s = AddressSpace::with_ratio(1 << 30, 4);
        assert_eq!(s.nm_bytes(), 256 << 20);
        assert_eq!(s.fm_bytes(), 1 << 30);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn ratio_must_divide() {
        let _ = AddressSpace::with_ratio(100, 3);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn nm_must_be_nonempty() {
        let _ = AddressSpace::new(0, 100);
    }

    #[test]
    fn display_form() {
        let s = AddressSpace::new(256 << 20, 1 << 30);
        assert_eq!(s.to_string(), "NM 256 MiB + FM 1024 MiB");
    }
}
