//! The tracing vocabulary shared by every instrumented component.
//!
//! Observability in this workspace is *monomorphized in*: components that
//! can emit trace events take a type parameter `T: Tracer` defaulting to
//! [`NullTracer`]. The associated constant [`Tracer::ENABLED`] lets every
//! emit site be written as
//!
//! ```ignore
//! if T::ENABLED {
//!     self.tracer.record(cycle, Event::PredictorHit);
//! }
//! ```
//!
//! which the compiler deletes entirely when `T = NullTracer` (the constant
//! is `false` at monomorphization time), so the disabled path costs zero —
//! no branch, no call, no data — and the access hot path stays exactly as
//! PR 2/3 left it.
//!
//! All timestamps are **simulation cycles** (CPU domain). Wall-clock time
//! never enters a trace: runs must be deterministic and byte-identical
//! across hosts, serial/parallel execution, and repetitions.

/// DRAM row-buffer outcome of one command, as classified by the bank model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowKind {
    /// Row already open: column access only.
    Hit,
    /// Bank idle: activate then access.
    Miss,
    /// Different row open: precharge, activate, access.
    Conflict,
}

impl RowKind {
    /// Short lowercase label used by exporters.
    pub fn label(self) -> &'static str {
        match self {
            RowKind::Hit => "hit",
            RowKind::Miss => "miss",
            RowKind::Conflict => "conflict",
        }
    }
}

/// Coarse classification of an injected fault, carried by
/// [`Event::FaultInjected`] so traces can distinguish fault classes without
/// paying for the full `FaultKind` payload (events must stay two words).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// An NM associative way was degraded and masked out.
    DegradedWay,
    /// A previously degraded NM way was repaired.
    RestoredWay,
    /// A transient bit flip in a resident subblock (any ECC outcome).
    BitFlip,
    /// A parity error in a frame's remap/metadata entry.
    MetadataParity,
    /// A DRAM channel entered a stall window.
    ChannelStall,
    /// A DRAM channel hard-failed (commands NACK until repair).
    ChannelFail,
    /// A failed or stalled DRAM channel was repaired.
    ChannelRepair,
}

impl FaultClass {
    /// Short lowercase label used by exporters.
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::DegradedWay => "degraded_way",
            FaultClass::RestoredWay => "restored_way",
            FaultClass::BitFlip => "bit_flip",
            FaultClass::MetadataParity => "metadata_parity",
            FaultClass::ChannelStall => "channel_stall",
            FaultClass::ChannelFail => "channel_fail",
            FaultClass::ChannelRepair => "channel_repair",
        }
    }
}

/// One traceable occurrence inside the simulator, in compact binary form.
///
/// Variants carry only small fixed-width payloads so a [`TraceEvent`] stays
/// two words of payload and ring-buffer storage is cheap. The taxonomy
/// follows the paper's mechanisms: the swap engine (Table I), locking
/// (§III-C), bypassing (§III-E), the way/location predictor (§III-F) and
/// history-guided bulk fetch, plus the DRAM command stream under them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A subblock exchange between an NM frame and its FM tenant began.
    SwapStart {
        /// NM frame index.
        frame: u32,
        /// Subblock slot being exchanged.
        subblock: u8,
    },
    /// The matching exchange finished (all ops emitted).
    SwapDone {
        /// NM frame index.
        frame: u32,
        /// Subblock slot that was exchanged.
        subblock: u8,
    },
    /// A frame was locked (§III-C): hot data pinned into NM.
    LockPromote {
        /// NM frame index.
        frame: u32,
        /// `true` when the frame's *native* block was locked in place,
        /// `false` when a remapped FM tenant was fully pulled in.
        native: bool,
    },
    /// A locked frame was released by the aging pass.
    LockDemote {
        /// NM frame index.
        frame: u32,
    },
    /// The bypass governor (§III-E) changed state.
    BypassDecision {
        /// `true` when bypassing engaged, `false` when it disengaged.
        engaged: bool,
    },
    /// The history table triggered a bulk fetch of previously-hot subblocks.
    HistoryFetch {
        /// Number of extra subblocks fetched alongside the demand.
        bits: u8,
    },
    /// The way/location predictor was consulted and was right.
    PredictorHit,
    /// The way/location predictor was consulted and was wrong.
    PredictorMiss,
    /// The DRAM model issued one channel-interleaved command chunk.
    DramCmdIssue {
        /// Channel the chunk was routed to.
        channel: u8,
        /// `true` for writes (writes skip the row model: bus-only).
        write: bool,
        /// Row-buffer outcome of the command.
        outcome: RowKind,
    },
    /// Periodic sample of one channel's in-flight queue depths and bus
    /// occupancy.
    QueueDepthSample {
        /// Channel sampled.
        channel: u8,
        /// Reads in flight at the sample instant.
        reads: u16,
        /// Writes in flight at the sample instant.
        writes: u16,
        /// Memory cycles the channel's data bus was busy since the previous
        /// sample (saturating).
        busy: u32,
    },
    /// The fault plane delivered a fault to a component.
    FaultInjected {
        /// Which class of fault fired.
        kind: FaultClass,
        /// Class-dependent target: frame index for scheme faults, way index
        /// for way degradation/repair, channel index for DRAM faults.
        target: u32,
    },
    /// A recovery path ran and preserved all data (entry invalidated with
    /// the FM home intact, tenant evacuated from a degraded way, …).
    Recovered {
        /// NM frame index that was recovered.
        frame: u32,
    },
    /// A frame lost the only valid copy of resident data: poisoned and
    /// reported (the flat organization has nothing to restore from).
    Poisoned {
        /// NM frame index that was poisoned.
        frame: u32,
    },
    /// The controller crossed the NM-unhealthy threshold and switched the
    /// bypass-all failover mode (with hysteresis; see DESIGN.md §10).
    Failover {
        /// `true` when failover engaged, `false` when it disengaged.
        engaged: bool,
    },
}

/// Number of [`Event`] variants, i.e. the arity of a per-kind counter
/// array indexed by [`Event::kind_index`].
pub const EVENT_KINDS: usize = 14;

/// Labels of every event kind, indexed by [`Event::kind_index`] — the
/// vocabulary a counting tracer reports its per-kind totals under.
pub const EVENT_KIND_LABELS: [&str; EVENT_KINDS] = [
    "swap_start",
    "swap_done",
    "lock_promote",
    "lock_demote",
    "bypass_decision",
    "history_fetch",
    "predictor_hit",
    "predictor_miss",
    "dram_cmd",
    "queue_depth",
    "fault_injected",
    "recovered",
    "poisoned",
    "failover",
];

impl Event {
    /// Dense index of this event's kind in `0..EVENT_KINDS`, in declaration
    /// order. Counting tracers (the sampling tier in `silcfm-obs`) use it to
    /// keep one monotonic counter per kind without hashing.
    pub const fn kind_index(&self) -> usize {
        match self {
            Event::SwapStart { .. } => 0,
            Event::SwapDone { .. } => 1,
            Event::LockPromote { .. } => 2,
            Event::LockDemote { .. } => 3,
            Event::BypassDecision { .. } => 4,
            Event::HistoryFetch { .. } => 5,
            Event::PredictorHit => 6,
            Event::PredictorMiss => 7,
            Event::DramCmdIssue { .. } => 8,
            Event::QueueDepthSample { .. } => 9,
            Event::FaultInjected { .. } => 10,
            Event::Recovered { .. } => 11,
            Event::Poisoned { .. } => 12,
            Event::Failover { .. } => 13,
        }
    }

    /// Short machine-readable label, used for Chrome-trace event names and
    /// summary tables.
    pub fn label(&self) -> &'static str {
        match self {
            Event::SwapStart { .. } => "swap_start",
            Event::SwapDone { .. } => "swap_done",
            Event::LockPromote { .. } => "lock_promote",
            Event::LockDemote { .. } => "lock_demote",
            Event::BypassDecision { .. } => "bypass_decision",
            Event::HistoryFetch { .. } => "history_fetch",
            Event::PredictorHit => "predictor_hit",
            Event::PredictorMiss => "predictor_miss",
            Event::DramCmdIssue { .. } => "dram_cmd",
            Event::QueueDepthSample { .. } => "queue_depth",
            Event::FaultInjected { .. } => "fault_injected",
            Event::Recovered { .. } => "recovered",
            Event::Poisoned { .. } => "poisoned",
            Event::Failover { .. } => "failover",
        }
    }
}

/// An [`Event`] stamped with the simulation cycle it occurred at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// CPU-domain simulation cycle of the occurrence.
    pub at: u64,
    /// What occurred.
    pub event: Event,
}

/// A sink for trace events, resolved at compile time.
///
/// The trait is deliberately *not* object safe (it carries an associated
/// constant): instrumented components are generic over their tracer so the
/// [`NullTracer`] specialization compiles down to nothing. Concrete sinks
/// (the ring buffer in `silcfm-obs`) set [`ENABLED`](Self::ENABLED) to
/// `true`.
pub trait Tracer {
    /// Whether emit sites guarded by `if T::ENABLED` are live. When this is
    /// `false` the guarded code is unreachable at monomorphization time and
    /// the optimizer removes it.
    const ENABLED: bool;

    /// Records `event` as having occurred at simulation cycle `cycle`.
    fn record(&mut self, cycle: u64, event: Event);

    /// Removes and returns all buffered events, oldest first.
    fn drain(&mut self) -> Vec<TraceEvent>;

    /// Number of events lost to capacity limits since construction.
    fn dropped(&self) -> u64;

    /// Monotonic per-kind event totals, indexed by [`Event::kind_index`].
    /// Sinks without always-on counters (the ring, the null tracer) report
    /// all zeros; the sampling tier in `silcfm-obs` counts every record
    /// even when the event itself is not retained.
    fn counters(&self) -> [u64; EVENT_KINDS] {
        [0; EVENT_KINDS]
    }
}

/// The no-op tracer: every instrumented component's default.
///
/// All methods are empty and [`Tracer::ENABLED`] is `false`, so code
/// monomorphized against `NullTracer` contains no tracing residue at all —
/// this is what keeps the A1/P1-scrubbed hot path intact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullTracer;

impl Tracer for NullTracer {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _cycle: u64, _event: Event) {}

    fn drain(&mut self) -> Vec<TraceEvent> {
        Vec::new()
    }

    fn dropped(&self) -> u64 {
        0
    }
}

/// The metrics-only tracer: `ENABLED` is `true` so every `if T::ENABLED`
/// observability hook runs — demand-latency attribution into the quantile
/// sketches, the histograms, the epoch sampler — but [`Tracer::record`]
/// is a no-op that inlines away, so no event is ever buffered and the ring
/// tier's per-event cost vanishes. This is the cheapest configuration that
/// still produces the latency-percentile plane, and the one the
/// `throughput --overhead` bench prices as "sketches ON".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsOnlyTracer;

impl Tracer for MetricsOnlyTracer {
    const ENABLED: bool = true;

    #[inline(always)]
    fn record(&mut self, _cycle: u64, _event: Event) {}

    fn drain(&mut self) -> Vec<TraceEvent> {
        Vec::new()
    }

    fn dropped(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_tracer_is_inert() {
        let mut t = NullTracer;
        t.record(17, Event::PredictorHit);
        assert!(t.drain().is_empty());
        assert_eq!(t.dropped(), 0);
        const { assert!(!NullTracer::ENABLED) };
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Event::PredictorHit.label(), "predictor_hit");
        assert_eq!(
            Event::SwapStart {
                frame: 3,
                subblock: 1
            }
            .label(),
            "swap_start"
        );
        assert_eq!(RowKind::Conflict.label(), "conflict");
        assert_eq!(
            Event::FaultInjected {
                kind: FaultClass::BitFlip,
                target: 9
            }
            .label(),
            "fault_injected"
        );
        assert_eq!(Event::Poisoned { frame: 2 }.label(), "poisoned");
        assert_eq!(Event::Recovered { frame: 2 }.label(), "recovered");
        assert_eq!(Event::Failover { engaged: true }.label(), "failover");
        assert_eq!(FaultClass::ChannelFail.label(), "channel_fail");
    }

    #[test]
    fn kind_indices_are_dense_and_label_aligned() {
        let all = [
            Event::SwapStart {
                frame: 0,
                subblock: 0,
            },
            Event::SwapDone {
                frame: 0,
                subblock: 0,
            },
            Event::LockPromote {
                frame: 0,
                native: false,
            },
            Event::LockDemote { frame: 0 },
            Event::BypassDecision { engaged: true },
            Event::HistoryFetch { bits: 1 },
            Event::PredictorHit,
            Event::PredictorMiss,
            Event::DramCmdIssue {
                channel: 0,
                write: false,
                outcome: RowKind::Hit,
            },
            Event::QueueDepthSample {
                channel: 0,
                reads: 0,
                writes: 0,
                busy: 0,
            },
            Event::FaultInjected {
                kind: FaultClass::BitFlip,
                target: 0,
            },
            Event::Recovered { frame: 0 },
            Event::Poisoned { frame: 0 },
            Event::Failover { engaged: true },
        ];
        assert_eq!(all.len(), EVENT_KINDS);
        for (i, e) in all.iter().enumerate() {
            assert_eq!(e.kind_index(), i, "{} out of order", e.label());
            assert_eq!(EVENT_KIND_LABELS[i], e.label());
        }
    }

    #[test]
    fn trace_event_is_small() {
        // The ring buffer stores these by value; keep them compact.
        assert!(core::mem::size_of::<TraceEvent>() <= 24);
    }
}
