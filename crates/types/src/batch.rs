//! Batched outcome storage for [`MemoryScheme::access_batch`].
//!
//! A [`BatchOutcome`] holds the results of N consecutive accesses in
//! structure-of-arrays form: two flat [`MemOp`] vectors (critical-path and
//! background operations for the whole batch) plus one compact
//! [`BatchEntry`] per access recording where that access's operations end
//! and what it resolved to. Compared with a `Vec<SchemeOutcome>` this
//! keeps all operations contiguous — one allocation per vector, amortized
//! across every access of every batch via [`clear`](BatchOutcome::clear),
//! which retains capacity exactly like the scalar outcome-reuse protocol.
//!
//! Schemes with a native batched path fill the outcome through
//! [`sinks`](BatchOutcome::sinks) + [`commit`](BatchOutcome::commit); the
//! default [`MemoryScheme::access_batch`] loop instead drives the scalar
//! path into an internal scratch [`SchemeOutcome`] and copies each result
//! in with [`push_outcome`](BatchOutcome::push_outcome). Both produce
//! byte-identical entries (pinned by the batch property tests).
//!
//! [`MemoryScheme::access_batch`]: crate::MemoryScheme::access_batch

use crate::mem::{MemKind, MemOp};
use crate::scheme::{AccessFlags, SchemeOutcome};

/// Per-access record inside a [`BatchOutcome`]: end offsets into the flat
/// op vectors (the start is the previous entry's end) plus the scalar
/// outcome fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BatchEntry {
    /// One past the last critical op of this access.
    critical_end: usize,
    /// One past the last background op of this access.
    background_end: usize,
    /// Which memory serviced the demand.
    serviced_from: MemKind,
    /// Whole-system stall cycles charged by this access.
    global_stall_cycles: u64,
    /// Service-path markers for latency attribution.
    flags: AccessFlags,
}

/// A borrowed view of one access's slice of a [`BatchOutcome`], shaped
/// like a [`SchemeOutcome`] but backed by the batch's flat storage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchView<'a> {
    /// Critical-path operations of this access, in issue order.
    pub critical: &'a [MemOp],
    /// Background operations of this access, in issue order.
    pub background: &'a [MemOp],
    /// Which memory serviced the demand.
    pub serviced_from: MemKind,
    /// Whole-system stall cycles charged by this access.
    pub global_stall_cycles: u64,
    /// Service-path markers for latency attribution.
    pub flags: AccessFlags,
}

impl BatchView<'_> {
    /// Total bytes moved on the critical path.
    pub fn critical_bytes(&self) -> u64 {
        self.critical.iter().map(|op| u64::from(op.bytes)).sum()
    }

    /// Total bytes moved in the background.
    pub fn background_bytes(&self) -> u64 {
        self.background.iter().map(|op| u64::from(op.bytes)).sum()
    }

    /// Whether this view carries exactly the contents of `out` — the
    /// equivalence the batch property tests pin per access.
    pub fn matches(&self, out: &SchemeOutcome) -> bool {
        out.serviced_from == self.serviced_from
            && out.global_stall_cycles == self.global_stall_cycles
            && out.flags == self.flags
            && out.critical == *self.critical
            && out.background == *self.background
    }
}

/// Reusable storage for the outcomes of one batch of accesses.
///
/// See the [module docs](self) for the layout and the two fill protocols.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchOutcome {
    critical: Vec<MemOp>,
    background: Vec<MemOp>,
    entries: Vec<BatchEntry>,
    /// Scratch outcome for the default scalar-loop implementation, kept
    /// here so its spill capacity survives across batches.
    scratch: SchemeOutcome,
}

impl BatchOutcome {
    /// An empty batch outcome. Allocation-free.
    pub const fn new() -> Self {
        Self {
            critical: Vec::new(),
            background: Vec::new(),
            entries: Vec::new(),
            scratch: SchemeOutcome::empty(),
        }
    }

    /// Empties the batch for refilling, retaining all heap capacity.
    pub fn clear(&mut self) {
        self.critical.clear();
        self.background.clear();
        self.entries.clear();
    }

    /// Number of access outcomes recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no outcomes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Mutable references to the two flat op vectors, for a scheme's
    /// native batched path: push this access's critical and background
    /// operations, then seal them with [`commit`](Self::commit).
    pub fn sinks(&mut self) -> (&mut Vec<MemOp>, &mut Vec<MemOp>) {
        (&mut self.critical, &mut self.background)
    }

    /// Reserves room for `n` entries up front so a whole batch's commits
    /// never reallocate the entry vector.
    pub fn reserve_entries(&mut self, n: usize) {
        self.entries.reserve(n);
    }

    /// Seals one access: everything pushed through [`sinks`](Self::sinks)
    /// since the previous commit belongs to it.
    pub fn commit(&mut self, serviced_from: MemKind, flags: AccessFlags, global_stall_cycles: u64) {
        self.entries.push(BatchEntry {
            critical_end: self.critical.len(),
            background_end: self.background.len(),
            serviced_from,
            global_stall_cycles,
            flags,
        });
    }

    /// Appends a copy of one scalar outcome (the default-implementation
    /// path of [`access_batch`](crate::MemoryScheme::access_batch)).
    /// Copies run as bulk slice appends — two `memcpy`s per op list, not a
    /// per-op push loop — so the default batched dispatch stays within a
    /// few percent of the scalar path even for one-op schemes.
    pub fn push_outcome(&mut self, out: &SchemeOutcome) {
        let (inline, spill) = out.critical.as_slices();
        self.critical.extend_from_slice(inline);
        self.critical.extend_from_slice(spill);
        let (inline, spill) = out.background.as_slices();
        self.background.extend_from_slice(inline);
        self.background.extend_from_slice(spill);
        self.commit(out.serviced_from, out.flags, out.global_stall_cycles);
    }

    /// Detaches the internal scratch outcome for a scalar loop; pair with
    /// [`restore_scratch`](Self::restore_scratch) so its capacity is kept.
    pub fn take_scratch(&mut self) -> SchemeOutcome {
        core::mem::take(&mut self.scratch)
    }

    /// Returns the scratch outcome taken by [`take_scratch`](Self::take_scratch).
    pub fn restore_scratch(&mut self, scratch: SchemeOutcome) {
        self.scratch = scratch;
    }

    /// The view of access `index`, or `None` past the end.
    pub fn entry(&self, index: usize) -> Option<BatchView<'_>> {
        let entry = self.entries.get(index)?;
        let (critical_start, background_start) = match index.checked_sub(1) {
            Some(prev) => {
                let p = self.entries.get(prev)?;
                (p.critical_end, p.background_end)
            }
            None => (0, 0),
        };
        Some(BatchView {
            critical: self
                .critical
                .get(critical_start..entry.critical_end)
                .unwrap_or(&[]),
            background: self
                .background
                .get(background_start..entry.background_end)
                .unwrap_or(&[]),
            serviced_from: entry.serviced_from,
            global_stall_cycles: entry.global_stall_cycles,
            flags: entry.flags,
        })
    }

    /// Iterates the per-access views in batch order.
    pub fn iter(&self) -> impl Iterator<Item = BatchView<'_>> + '_ {
        (0..self.len()).filter_map(|i| self.entry(i))
    }

    /// Total critical-path bytes across the whole batch.
    pub fn critical_bytes(&self) -> u64 {
        self.critical.iter().map(|op| u64::from(op.bytes)).sum()
    }

    /// Total background bytes across the whole batch.
    pub fn background_bytes(&self) -> u64 {
        self.background.iter().map(|op| u64::from(op.bytes)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PhysAddr;
    use crate::oplist::OpSink;

    fn op(i: u64) -> MemOp {
        MemOp::demand_read(
            if i.is_multiple_of(2) {
                MemKind::Near
            } else {
                MemKind::Far
            },
            PhysAddr::new(i * 64),
            64,
        )
    }

    #[test]
    fn empty_batch() {
        let b = BatchOutcome::new();
        assert_eq!(b.len(), 0);
        assert!(b.is_empty());
        assert!(b.entry(0).is_none());
        assert_eq!(b.iter().count(), 0);
        assert_eq!(b.critical_bytes(), 0);
    }

    #[test]
    fn sinks_and_commit_slice_per_access() {
        let mut b = BatchOutcome::new();
        let (critical, background) = b.sinks();
        critical.push_op(op(0));
        critical.push_op(op(1));
        background.push_op(op(2));
        b.commit(MemKind::Near, AccessFlags::NONE, 0);
        let (critical, _) = b.sinks();
        critical.push_op(op(3));
        b.commit(MemKind::Far, AccessFlags::LOCKED, 17);

        assert_eq!(b.len(), 2);
        let first = b.entry(0).unwrap();
        assert_eq!(first.critical, &[op(0), op(1)]);
        assert_eq!(first.background, &[op(2)]);
        assert_eq!(first.serviced_from, MemKind::Near);
        assert_eq!(first.critical_bytes(), 128);
        let second = b.entry(1).unwrap();
        assert_eq!(second.critical, &[op(3)]);
        assert!(second.background.is_empty());
        assert_eq!(second.global_stall_cycles, 17);
        assert_eq!(second.flags, AccessFlags::LOCKED);
    }

    #[test]
    fn push_outcome_matches_the_source() {
        let mut b = BatchOutcome::new();
        let mut out = SchemeOutcome::serviced(MemKind::Near, vec![op(0), op(1)]);
        out.background.push(op(2));
        out.global_stall_cycles = 5;
        out.flags.insert(AccessFlags::BYPASS);
        b.push_outcome(&out);
        // An empty outcome must still occupy an entry.
        b.push_outcome(&SchemeOutcome::empty());

        assert_eq!(b.len(), 2);
        assert!(b.entry(0).unwrap().matches(&out));
        assert!(b.entry(1).unwrap().matches(&SchemeOutcome::empty()));
        assert_eq!(b.background_bytes(), 64);
    }

    #[test]
    fn push_outcome_copies_spilled_lists_exactly() {
        use crate::oplist::INLINE_OPS;
        let n = INLINE_OPS as u64 + 5;
        let mut out = SchemeOutcome::serviced(MemKind::Far, (0..n).map(op).collect());
        out.background.extend((0..3).map(op));
        let mut b = BatchOutcome::new();
        b.reserve_entries(1);
        b.push_outcome(&out);
        let view = b.entry(0).unwrap();
        assert!(view.matches(&out), "spilled op lists must copy in verbatim");
        assert_eq!(view.critical.len(), n as usize);
    }

    #[test]
    fn clear_retains_nothing_observable() {
        let mut b = BatchOutcome::new();
        b.push_outcome(&SchemeOutcome::serviced(MemKind::Far, vec![op(9)]));
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.critical_bytes(), 0);
        // Refill after clear behaves like a fresh batch.
        b.push_outcome(&SchemeOutcome::empty());
        assert_eq!(b.entry(0).unwrap().critical, &[] as &[MemOp]);
    }

    #[test]
    fn scratch_round_trips() {
        let mut b = BatchOutcome::new();
        let mut scratch = b.take_scratch();
        scratch.critical.push(op(1));
        b.restore_scratch(scratch);
        let again = b.take_scratch();
        assert_eq!(again.critical.len(), 1);
        b.restore_scratch(again);
    }
}
