//! End-to-end scheme throughput: simulated memory accesses per second of
//! host time for every placement scheme, on a small milc-like workload.
//! This is a simulator-performance benchmark (how fast the reproduction
//! runs), not a paper figure; the figures live in `src/bin/`.
//!
//! Run with: `cargo bench -p silcfm-bench --bench schemes`

use silcfm_bench::timing::bench;
use silcfm_sim::{RunParams, SchemeKind, System};
use silcfm_trace::profiles;
use silcfm_types::SystemConfig;

const ACCESSES_PER_CORE: u64 = 3_000;

fn main() {
    let cfg = SystemConfig::small();
    let params = RunParams::smoke();
    let profile = profiles::scaled(
        profiles::by_name("milc").expect("milc exists"),
        params.footprint_scale,
    );
    let accesses = ACCESSES_PER_CORE * u64::from(cfg.core.cores);
    for kind in [
        SchemeKind::NoNm,
        SchemeKind::Rand,
        SchemeKind::Hma,
        SchemeKind::Cameo,
        SchemeKind::CameoPrefetch,
        SchemeKind::Pom,
        SchemeKind::silcfm(),
    ] {
        let m = bench("end_to_end", kind.label(), || {
            let space = silcfm_sim::experiment::space_for(&profile, &cfg, &params);
            let total = ACCESSES_PER_CORE * u64::from(cfg.core.cores);
            let mut sys = System::new(
                cfg,
                space,
                kind.placement(params.seed),
                kind.build(space, total),
            );
            std::hint::black_box(sys.run(&profile, ACCESSES_PER_CORE, params.seed));
        });
        println!(
            "  -> {:>8.3} M simulated accesses/s",
            m.throughput() * accesses as f64 / 1e6
        );
    }
}
