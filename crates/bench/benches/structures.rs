//! Micro-benchmarks of the hot data structures: remap/metadata handling in
//! the SILC-FM controller, the bit-vector history table, the way predictor,
//! the set-associative cache and the DRAM timing model.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use silcfm_cache::{AccessKind, SetAssocCache};
use silcfm_core::{BitVectorTable, SilcFm, SilcFmParams, WayPredictor};
use silcfm_dram::{DramConfig, DramModel};
use silcfm_types::{Access, AddressSpace, CoreId, Geometry, MemoryScheme, PhysAddr, SystemConfig};

fn bench_history_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("history_table");
    group.throughput(Throughput::Elements(1));
    let mut table = BitVectorTable::new(1 << 20);
    let mut key = 0u64;
    group.bench_function("store", |b| {
        b.iter(|| {
            key = key.wrapping_add(0x9E37_79B9);
            table.store(key, 0xDEAD_BEEF);
        })
    });
    group.bench_function("lookup", |b| {
        b.iter(|| {
            key = key.wrapping_add(0x9E37_79B9);
            std::hint::black_box(table.lookup(key))
        })
    });
    group.finish();
}

fn bench_predictor(c: &mut Criterion) {
    let mut group = c.benchmark_group("way_predictor");
    group.throughput(Throughput::Elements(1));
    let mut pred = WayPredictor::new(4 << 10);
    let mut key = 0u64;
    group.bench_function("predict_update", |b| {
        b.iter(|| {
            key = key.wrapping_add(31);
            let p = pred.predict(key);
            pred.update(key, p, (key % 4) as u8, key.is_multiple_of(3));
        })
    });
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_assoc_cache");
    group.throughput(Throughput::Elements(1));
    let mut cache = SetAssocCache::new(SystemConfig::paper().l2);
    let mut line = 0u64;
    group.bench_function("l2_access", |b| {
        b.iter(|| {
            line = line.wrapping_add(97);
            std::hint::black_box(cache.access(line % (1 << 20), AccessKind::Read))
        })
    });
    group.finish();
}

fn bench_dram(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram_model");
    group.throughput(Throughput::Elements(1));
    for cfg in [DramConfig::hbm2(), DramConfig::ddr3()] {
        let mut model = DramModel::new(cfg);
        let mut now = 0u64;
        let mut addr = 0u64;
        group.bench_function(format!("{}_read", cfg.name.to_lowercase()), |b| {
            b.iter(|| {
                addr = (addr + 4096) % (1 << 28);
                now = std::hint::black_box(model.read(now, addr, 64));
            })
        });
    }
    group.finish();
}

fn bench_controller(c: &mut Criterion) {
    let mut group = c.benchmark_group("silcfm_controller");
    group.throughput(Throughput::Elements(1));
    let space = AddressSpace::new(4096 * 2048, 4 * 4096 * 2048);
    let mut scheme = SilcFm::new(space, Geometry::paper(), SilcFmParams::paper());
    let mut i = 0u64;
    group.bench_function("access", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let addr = PhysAddr::new((i * 64 * 131) % space.total_bytes());
            std::hint::black_box(scheme.access(&Access::read(addr, 0x400 + i % 8, CoreId::new(0))))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_history_table, bench_predictor, bench_cache, bench_dram, bench_controller
}
criterion_main!(benches);
