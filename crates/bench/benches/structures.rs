//! Micro-benchmarks of the hot data structures: remap/metadata handling in
//! the SILC-FM controller, the bit-vector history table, the way predictor,
//! the set-associative cache and the DRAM timing model.
//!
//! Run with: `cargo bench -p silcfm-bench --bench structures`

use silcfm_bench::timing::bench;
use silcfm_cache::{AccessKind, SetAssocCache};
use silcfm_core::{BitVectorTable, SilcFm, SilcFmParams, WayPredictor};
use silcfm_dram::{DramConfig, DramModel};
use silcfm_types::{Access, AddressSpace, CoreId, Geometry, MemoryScheme, PhysAddr, SystemConfig};

fn bench_history_table() {
    let mut table = BitVectorTable::new(1 << 20);
    let mut key = 0u64;
    bench("history_table", "store", || {
        key = key.wrapping_add(0x9E37_79B9);
        table.store(key, 0xDEAD_BEEF);
    });
    bench("history_table", "lookup", || {
        key = key.wrapping_add(0x9E37_79B9);
        std::hint::black_box(table.lookup(key));
    });
}

fn bench_predictor() {
    let mut pred = WayPredictor::new(4 << 10);
    let mut key = 0u64;
    bench("way_predictor", "predict_update", || {
        key = key.wrapping_add(31);
        let p = pred.predict(key);
        pred.update(key, p, (key % 4) as u8, key.is_multiple_of(3));
    });
}

fn bench_cache() {
    let mut cache = SetAssocCache::new(SystemConfig::paper().l2);
    let mut line = 0u64;
    bench("set_assoc_cache", "l2_access", || {
        line = line.wrapping_add(97);
        std::hint::black_box(cache.access(line % (1 << 20), AccessKind::Read));
    });
}

fn bench_dram() {
    for cfg in [DramConfig::hbm2(), DramConfig::ddr3()] {
        let mut model = DramModel::new(cfg);
        let mut now = 0u64;
        let mut addr = 0u64;
        bench(
            "dram_model",
            &format!("{}_read", cfg.name.to_lowercase()),
            || {
                addr = (addr + 4096) % (1 << 28);
                now = std::hint::black_box(model.read(now, addr, 64));
            },
        );
    }
}

fn bench_controller() {
    let space = AddressSpace::new(4096 * 2048, 4 * 4096 * 2048);
    let mut scheme = SilcFm::new(space, Geometry::paper(), SilcFmParams::paper());
    let mut out = silcfm_types::SchemeOutcome::empty();
    let mut i = 0u64;
    bench("silcfm_controller", "access", || {
        i = i.wrapping_add(1);
        let addr = PhysAddr::new((i * 64 * 131) % space.total_bytes());
        scheme.access(&Access::read(addr, 0x400 + i % 8, CoreId::new(0)), &mut out);
        std::hint::black_box(&out);
    });
}

fn main() {
    bench_history_table();
    bench_predictor();
    bench_cache();
    bench_dram();
    bench_controller();
}
