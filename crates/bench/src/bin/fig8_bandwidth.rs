//! Fig. 8 — fraction of demand bandwidth serviced by NM vs FM.
//!
//! For a 4:1 NM:FM bandwidth ratio the ideal split is 0.8 (§III-E). The
//! paper reports average NM demand fractions of 0.71 (HMA), 0.58 (PoM) and
//! 0.76 (SILC-FM, 4 points below the ideal thanks to bypassing).

use silcfm_bench::{run_matrix, HarnessOpts};
use silcfm_sim::{format_table, Row, SchemeKind};
use silcfm_trace::profiles;

fn main() {
    let opts = HarnessOpts::from_args();
    let params = opts.params();
    let kinds = SchemeKind::fig7_lineup();
    let columns: Vec<&str> = kinds.iter().map(|k| k.label()).collect();

    let results = run_matrix(&kinds, &params);
    let mut rows = Vec::new();
    let mut sums = vec![0.0; kinds.len()];
    for (profile, row) in profiles::all().iter().zip(&results) {
        let mut values = Vec::new();
        for (i, r) in row.iter().enumerate() {
            let frac = r.traffic.nm_demand_fraction();
            sums[i] += frac;
            values.push(frac);
        }
        rows.push(Row::new(profile.name, values));
    }
    let n = profiles::all().len() as f64;
    rows.push(Row::new("mean", sums.iter().map(|s| s / n).collect()));

    println!(
        "{}",
        format_table(
            &format!(
                "Fig. 8: NM fraction of demand bandwidth, ideal 0.80 ({} mode)",
                opts.mode()
            ),
            &columns,
            &rows,
            3
        )
    );
    println!("Paper means: hma 0.71, pom 0.58, silcfm 0.76 (ideal 0.80)");
}
