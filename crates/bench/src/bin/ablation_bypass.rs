//! Ablation A2 — the bypass access-rate target (§III-E).
//!
//! The paper derives the 0.8 target from the 4:1 NM:FM bandwidth ratio
//! (service 1/(N+1) of accesses from the slower memory) and finds optimal
//! performance at 0.8 rather than 1.0. This sweep varies the target on
//! bandwidth-hungry workloads.

use silcfm_bench::{run_named_matrix, HarnessOpts};
use silcfm_core::SilcFmParams;
use silcfm_sim::{format_table, Row, SchemeKind};
use silcfm_types::stats::geometric_mean;

const TARGETS: &[f64] = &[0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

fn main() {
    let opts = HarnessOpts::from_args();
    let params = opts.params();
    let workloads = ["milc", "lbm", "lib", "gems"];
    let columns: Vec<String> = TARGETS.iter().map(|t| format!("{t:.1}")).collect();
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();

    // Column 0 is the no-NM baseline; the sweep points follow.
    let kinds: Vec<SchemeKind> = std::iter::once(SchemeKind::NoNm)
        .chain(TARGETS.iter().map(|&t| {
            SchemeKind::SilcFm(SilcFmParams {
                bypass_target: t,
                ..SilcFmParams::paper()
            })
        }))
        .collect();
    let results = run_named_matrix(&workloads, &kinds, &params);

    let mut rows = Vec::new();
    let mut per_t: Vec<Vec<f64>> = vec![Vec::new(); TARGETS.len()];
    for (name, row) in workloads.iter().zip(&results) {
        let base = &row[0];
        let mut values = Vec::new();
        for (i, r) in row[1..].iter().enumerate() {
            let s = r.speedup_over(base);
            per_t[i].push(s);
            values.push(s);
        }
        rows.push(Row::new(*name, values));
    }
    rows.push(Row::new(
        "gmean",
        per_t.iter().map(|v| geometric_mean(v)).collect(),
    ));

    println!(
        "{}",
        format_table(
            &format!(
                "A2: bypass target sweep, speedup over no-NM ({} mode)",
                opts.mode()
            ),
            &column_refs,
            &rows,
            3
        )
    );
    println!("Paper: 0.8 is optimal for the 4:1 bandwidth ratio (target 1.0 leaves FM idle).");
}
