//! Ablation A2 — the bypass access-rate target (§III-E).
//!
//! The paper derives the 0.8 target from the 4:1 NM:FM bandwidth ratio
//! (service 1/(N+1) of accesses from the slower memory) and finds optimal
//! performance at 0.8 rather than 1.0. This sweep varies the target on
//! bandwidth-hungry workloads.

use silcfm_bench::{run_one, HarnessOpts};
use silcfm_core::SilcFmParams;
use silcfm_sim::{format_table, Row, SchemeKind};
use silcfm_trace::profiles;
use silcfm_types::stats::geometric_mean;

const TARGETS: &[f64] = &[0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

fn main() {
    let opts = HarnessOpts::from_args();
    let params = opts.params();
    let workloads = ["milc", "lbm", "lib", "gems"];
    let columns: Vec<String> = TARGETS.iter().map(|t| format!("{t:.1}")).collect();
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();

    let mut rows = Vec::new();
    let mut per_t: Vec<Vec<f64>> = vec![Vec::new(); TARGETS.len()];
    for name in workloads {
        let profile = profiles::by_name(name).expect("known workload");
        let base = run_one(profile, SchemeKind::NoNm, &params);
        let mut values = Vec::new();
        for (i, &t) in TARGETS.iter().enumerate() {
            let p = SilcFmParams {
                bypass_target: t,
                ..SilcFmParams::paper()
            };
            let s = run_one(profile, SchemeKind::SilcFm(p), &params).speedup_over(&base);
            per_t[i].push(s);
            values.push(s);
        }
        rows.push(Row::new(name, values));
    }
    rows.push(Row::new(
        "gmean",
        per_t.iter().map(|v| geometric_mean(v)).collect(),
    ));

    println!(
        "{}",
        format_table(
            &format!(
                "A2: bypass target sweep, speedup over no-NM ({} mode)",
                opts.mode()
            ),
            &column_refs,
            &rows,
            3
        )
    );
    println!("Paper: 0.8 is optimal for the 4:1 bandwidth ratio (target 1.0 leaves FM idle).");
}
