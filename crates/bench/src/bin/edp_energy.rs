//! Energy and Energy-Delay Product (EDP).
//!
//! The paper reports SILC-FM reducing EDP by 13 % relative to CAMEO,
//! driven by die-stacked DRAM's lower per-bit energy: servicing more
//! demand from NM with less wasted migration traffic costs less energy
//! at a shorter runtime.

use silcfm_bench::{run_matrix, HarnessOpts};
use silcfm_sim::{format_table, Row, SchemeKind};
use silcfm_trace::profiles;
use silcfm_types::stats::geometric_mean;

fn main() {
    let opts = HarnessOpts::from_args();
    let params = opts.params();
    let kinds = SchemeKind::fig7_lineup();
    let columns: Vec<&str> = kinds.iter().map(|k| k.label()).collect();

    // Relative EDP per workload, normalized to CAMEO (the paper's
    // comparison point).
    let cam_idx = kinds.iter().position(|k| k.label() == "cam").expect("cam");
    let grid = run_matrix(&kinds, &params);
    let mut rows = Vec::new();
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); kinds.len()];
    for (profile, results) in profiles::all().iter().zip(&grid) {
        let cam_edp = results[cam_idx].edp();
        let values: Vec<f64> = results.iter().map(|r| r.edp() / cam_edp).collect();
        for (i, v) in values.iter().enumerate() {
            ratios[i].push(*v);
        }
        rows.push(Row::new(profile.name, values));
    }
    let gmeans: Vec<f64> = ratios.iter().map(|v| geometric_mean(v)).collect();
    rows.push(Row::new("gmean", gmeans.clone()));

    println!(
        "{}",
        format_table(
            &format!(
                "EDP normalized to CAMEO, lower is better ({} mode)",
                opts.mode()
            ),
            &columns,
            &rows,
            3
        )
    );
    let silc_idx = kinds
        .iter()
        .position(|k| k.label() == "silcfm")
        .expect("silcfm");
    println!(
        "SILC-FM EDP vs CAMEO: {:+.1}% (paper: -13%)",
        (gmeans[silc_idx] - 1.0) * 100.0
    );
}
