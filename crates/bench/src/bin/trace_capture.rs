//! Captures a fully traced run and exports the observability artifacts.
//!
//! Runs one (workload, scheme) pair through [`silcfm_sim::run_traced`] —
//! the full system with ring tracers on the controller and both DRAM
//! devices plus the epoch time-series sampler — then writes:
//!
//! * `--trace PATH` — Chrome trace-event JSON, loadable in
//!   `chrome://tracing` or <https://ui.perfetto.dev> (timestamps are raw
//!   simulation cycles);
//! * `--metrics-out PATH` — the per-epoch time series as CSV;
//! * `--summary` — the human summary table on stdout (event counts per
//!   unit, demand-latency histograms).
//!
//! Everything is deterministic: the same seed produces byte-identical
//! files. Options:
//!
//!   --workload NAME   Table III profile (default mcf)
//!   --scheme LABEL    base|rand|hma|cam|camp|pom|silcfm (default silcfm)
//!   --trace PATH      write Chrome trace JSON here
//!   --metrics-out P   write the epoch CSV here
//!   --summary         print the human summary table
//!   --smoke           small config + smoke-size run (CI-friendly)
//!   --epoch N         CPU cycles per sample (default 100000)
//!   --capacity N      ring capacity per tracer (default 1 Mi events)
//!   --sampling N      use the sampling tracer tier instead of the full
//!                     ring: exact per-kind counters on every event, ring
//!                     entries kept 1-in-N (N a power of two). Prints the
//!                     counter table; the exporters consume the sampled
//!                     ring unchanged.

use silcfm_obs::export;
use silcfm_sim::{run_sampled, run_traced, RunParams, SchemeKind, TraceParams};
use silcfm_trace::profiles;
use silcfm_types::obs::EVENT_KIND_LABELS;
use silcfm_types::SystemConfig;

struct Options {
    workload: String,
    scheme: String,
    trace: Option<String>,
    metrics_out: Option<String>,
    summary: bool,
    smoke: bool,
    epoch: u64,
    capacity: usize,
    sampling: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: trace_capture [--workload NAME] [--scheme LABEL] [--trace PATH] \
         [--metrics-out PATH] [--summary] [--smoke] [--epoch N] [--capacity N] \
         [--sampling N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let defaults = TraceParams::default_capture();
    let mut opts = Options {
        workload: "mcf".to_string(),
        scheme: "silcfm".to_string(),
        trace: None,
        metrics_out: None,
        summary: false,
        smoke: false,
        epoch: defaults.epoch_cycles,
        capacity: defaults.events_capacity,
        sampling: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workload" => opts.workload = args.next().unwrap_or_else(|| usage()),
            "--scheme" => opts.scheme = args.next().unwrap_or_else(|| usage()),
            "--trace" => opts.trace = Some(args.next().unwrap_or_else(|| usage())),
            "--metrics-out" => opts.metrics_out = Some(args.next().unwrap_or_else(|| usage())),
            "--summary" => opts.summary = true,
            "--smoke" => opts.smoke = true,
            "--epoch" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.epoch = v.parse().expect("--epoch must be an integer");
                assert!(opts.epoch > 0, "--epoch must be positive");
            }
            "--capacity" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.capacity = v.parse().expect("--capacity must be an integer");
                assert!(opts.capacity > 0, "--capacity must be positive");
            }
            "--sampling" => {
                let v = args.next().unwrap_or_else(|| usage());
                let period: u64 = v.parse().expect("--sampling must be an integer");
                assert!(
                    period.is_power_of_two(),
                    "--sampling must be a power of two"
                );
                opts.sampling = Some(period);
            }
            other => {
                eprintln!("unknown argument '{other}'");
                usage();
            }
        }
    }
    opts
}

/// Maps a scheme label (as printed in every results table) back to its kind.
fn scheme_by_label(label: &str) -> Option<SchemeKind> {
    let mut lineup = vec![SchemeKind::NoNm, SchemeKind::Rand];
    lineup.extend(SchemeKind::fig7_lineup());
    lineup.into_iter().find(|k| k.label() == label)
}

fn write_file(path: &str, contents: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output dir");
        }
    }
    std::fs::write(path, contents).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
}

fn main() {
    let opts = parse_args();
    let profile = profiles::by_name(&opts.workload).unwrap_or_else(|| {
        eprintln!("unknown workload '{}'", opts.workload);
        let names: Vec<&str> = profiles::all().iter().map(|p| p.name).collect();
        eprintln!("known workloads: {}", names.join(" "));
        std::process::exit(2);
    });
    let scheme = scheme_by_label(&opts.scheme).unwrap_or_else(|| {
        eprintln!("unknown scheme '{}'", opts.scheme);
        eprintln!("known schemes: base rand hma cam camp pom silcfm");
        std::process::exit(2);
    });

    let (cfg, params) = if opts.smoke {
        (SystemConfig::small(), RunParams::smoke())
    } else {
        (SystemConfig::experiment(), RunParams::quick())
    };
    let trace = TraceParams {
        events_capacity: opts.capacity,
        epoch_cycles: opts.epoch,
    };

    println!(
        "trace_capture: workload={} scheme={} accesses/core={} epoch={} capacity={}{}",
        profile.name,
        opts.scheme,
        params.accesses_per_core,
        trace.epoch_cycles,
        trace.events_capacity,
        match opts.sampling {
            Some(period) => format!(" sampling=1-in-{period}"),
            None => String::new(),
        }
    );
    let (result, report) = match opts.sampling {
        Some(period) => {
            let (result, report, counters) =
                run_sampled(profile, scheme, &cfg, &params, &trace, period);
            let total: u64 = counters.iter().sum();
            println!("controller event counters ({total} events, exact):");
            for (label, count) in EVENT_KIND_LABELS.iter().zip(counters.iter()) {
                if *count > 0 {
                    println!("  {label:<18} {count}");
                }
            }
            (result, report)
        }
        None => run_traced(profile, scheme, &cfg, &params, &trace),
    };
    println!(
        "run: {} cycles, access rate {:.3}, {} events captured, {} dropped",
        result.cycles,
        result.access_rate,
        report.event_count(),
        report.dropped
    );

    if let Some(path) = &opts.trace {
        write_file(path, &export::chrome_trace(&report));
        println!("wrote {path}");
    }
    if let Some(path) = &opts.metrics_out {
        write_file(path, &export::csv_series(&report));
        println!("wrote {path}");
    }
    if opts.summary {
        println!("\n{}", export::summary(&report));
    }
}
