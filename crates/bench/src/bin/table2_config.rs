//! Table II — the experimental system configuration.
//!
//! Prints the paper's published parameters alongside the values this
//! reproduction simulates (identical except the documented LLC
//! miniaturization used by the experiment harness; see DESIGN.md).

use silcfm_dram::DramConfig;
use silcfm_types::SystemConfig;

fn main() {
    let paper = SystemConfig::paper();
    let experiment = SystemConfig::experiment();
    let nm = DramConfig::hbm2();
    let fm = DramConfig::ddr3();

    println!("# Table II: system configuration");
    println!(
        "Processor : {} cores @ {} MHz, {}-wide OoO, {} ROB entries",
        paper.core.cores, paper.core.freq_mhz, paper.core.width, paper.core.rob_entries
    );
    println!(
        "L1 I-cache: {} KiB, {}-way, {} cycles (private)",
        paper.l1i.capacity_bytes >> 10,
        paper.l1i.ways,
        paper.l1i.latency_cycles
    );
    println!(
        "L1 D-cache: {} KiB, {}-way, {} cycles (private)",
        paper.l1d.capacity_bytes >> 10,
        paper.l1d.ways,
        paper.l1d.latency_cycles
    );
    println!(
        "L2 cache  : {} MiB, {}-way, {} cycles (shared; experiments run {} MiB — see DESIGN.md)",
        paper.l2.capacity_bytes >> 20,
        paper.l2.ways,
        paper.l2.latency_cycles,
        experiment.l2.capacity_bytes >> 20
    );
    println!();
    for dev in [&nm, &fm] {
        println!(
            "{:4} : {} channels x {}-bit @ {} MHz DDR, {} ranks x {} banks, {} KiB rows, \
             RQ/WQ {}/{}, tCAS-tRCD-tRP-tRAS = {}-{}-{}-{}, peak {:.1} GB/s",
            dev.name,
            dev.channels,
            dev.bus_bits,
            dev.bus_mhz,
            dev.ranks,
            dev.banks,
            dev.row_bytes >> 10,
            dev.read_queue,
            dev.write_queue,
            dev.timings.t_cas,
            dev.timings.t_rcd,
            dev.timings.t_rp,
            dev.timings.t_ras,
            dev.peak_bandwidth_gbs()
        );
    }
    println!();
    println!("Geometry  : {}", paper.geometry);
    println!("Capacity  : FM:NM = {}:1", paper.fm_to_nm_ratio);
    println!(
        "Bandwidth : NM:FM = {:.0}:{:.0} = {:.0}:1 (the 4:1 ratio behind the 0.8 bypass target)",
        nm.peak_bandwidth_gbs(),
        fm.peak_bandwidth_gbs(),
        nm.peak_bandwidth_gbs() / fm.peak_bandwidth_gbs()
    );
}
