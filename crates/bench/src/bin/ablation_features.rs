//! Ablation A3 — associativity, predictor and history-fetch contributions.
//!
//! §III-C sweeps associativity 1/2/4 (the paper adopts 4-way); §III-F adds
//! the way/location predictor; §III-A the bit-vector history fetch. Each
//! column disables or varies exactly one feature against the full paper
//! configuration.

use silcfm_bench::{run_named_matrix, HarnessOpts};
use silcfm_core::SilcFmParams;
use silcfm_sim::{format_table, Row, SchemeKind};
use silcfm_types::stats::geometric_mean;

fn main() {
    let opts = HarnessOpts::from_args();
    let params = opts.params();
    let variants: Vec<(&str, SilcFmParams)> = vec![
        (
            "1-way",
            SilcFmParams {
                associativity: 1,
                ..SilcFmParams::paper()
            },
        ),
        (
            "2-way",
            SilcFmParams {
                associativity: 2,
                ..SilcFmParams::paper()
            },
        ),
        ("4-way", SilcFmParams::paper()),
        (
            "no-pred",
            SilcFmParams {
                predictor: false,
                ..SilcFmParams::paper()
            },
        ),
        (
            "no-hist",
            SilcFmParams {
                history_fetch: false,
                ..SilcFmParams::paper()
            },
        ),
    ];
    let workloads = ["xalanc", "gcc", "milc", "mcf", "lib"];
    let columns: Vec<&str> = variants.iter().map(|(n, _)| *n).collect();

    // Column 0 is the no-NM baseline; the variants follow. One parallel grid.
    let kinds: Vec<SchemeKind> = std::iter::once(SchemeKind::NoNm)
        .chain(variants.iter().map(|(_, p)| SchemeKind::SilcFm(*p)))
        .collect();
    let results = run_named_matrix(&workloads, &kinds, &params);

    let mut rows = Vec::new();
    let mut per_v: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    for (name, row) in workloads.iter().zip(&results) {
        let base = &row[0];
        let mut values = Vec::new();
        for (i, r) in row[1..].iter().enumerate() {
            let s = r.speedup_over(base);
            per_v[i].push(s);
            values.push(s);
        }
        rows.push(Row::new(*name, values));
    }
    rows.push(Row::new(
        "gmean",
        per_v.iter().map(|v| geometric_mean(v)).collect(),
    ));

    println!(
        "{}",
        format_table(
            &format!(
                "A3: feature ablations, speedup over no-NM ({} mode)",
                opts.mode()
            ),
            &columns,
            &rows,
            3
        )
    );
    println!("Paper: 4-way > 2-way > 1-way; predictor hides metadata serialization;");
    println!("history fetching raises spatial hits over single-subblock swapping.");
}
