//! Per-class demand-latency percentiles: the tail story behind every
//! figure.
//!
//! The paper's argument is a latency-distribution argument — subblocked
//! interleaving keeps hot subblocks in NM so the *tail* collapses, not just
//! the mean. This binary measures issue-to-completion cycles for every
//! demand access through the full `System::run` pipeline, attributes each
//! sample to its service class (NM hit, FM hit, swap-path, bypass, locked,
//! fault-degraded), and reports p50/p95/p99/p999 per scheme × workload ×
//! class from the mergeable quantile sketches in `silcfm-obs`. Results
//! land in `results/BENCH_latency.json`.
//!
//! Before anything is written, a determinism gate re-runs one workload per
//! scheme on the sharded engine (2 threads, plus 4 without `--smoke`) and
//! asserts the encoded sketch bytes are identical to the serial run's —
//! percentile artifacts that depended on the thread count would be
//! worthless.
//!
//! Run with: `cargo run --release -p silcfm-bench --bin latency`
//! Options:
//!   --smoke       tiny runs over a 3-workload subset (CI-sized, seconds)
//!   --full        full-size runs (minutes); default is the quick preset
//!   --out PATH    output JSON path (default results/BENCH_latency.json)
//!   --no-write    measure and print, but do not write the JSON
//!   --skip-check  skip the serial-vs-sharded byte-identity gate

use silcfm_obs::{LatencyBreakdown, QuantileSketch};
use silcfm_sim::runner::{default_threads, run_grid_traced, ExperimentGrid};
use silcfm_sim::{run_sharded_traced, RunParams, SchemeKind, ShardParams, TraceParams};
use silcfm_trace::profiles;
use silcfm_types::{AccessClass, SystemConfig};

/// Ring capacity for the tracers. The sketches are fed by the epoch
/// sampler's `on_demand` hook, not the rings, so a small ring keeps memory
/// flat across the parallel grid without touching the percentiles.
const EVENTS_CAPACITY: usize = 1 << 14;

/// Workloads the `--smoke` tier covers: one streaming-heavy, one
/// pointer-chasing, one bandwidth-bound profile — enough class diversity
/// to exercise every sketch without paying for the full Table III.
const SMOKE_WORKLOADS: [&str; 3] = ["milc", "lib", "mcf"];

struct Options {
    smoke: bool,
    full: bool,
    out: String,
    write: bool,
    check: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        smoke: false,
        full: false,
        out: "results/BENCH_latency.json".to_string(),
        write: true,
        check: true,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--full" => opts.full = true,
            "--out" => opts.out = args.next().expect("--out needs a path"),
            "--no-write" => opts.write = false,
            "--skip-check" => opts.check = false,
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!(
                    "usage: latency [--smoke | --full] [--out PATH] [--no-write] [--skip-check]"
                );
                std::process::exit(2);
            }
        }
    }
    assert!(
        !(opts.smoke && opts.full),
        "--smoke and --full are mutually exclusive"
    );
    opts
}

/// The full lineup: the no-NM baseline plus the Fig. 7 schemes.
fn lineup() -> Vec<SchemeKind> {
    let mut kinds = vec![SchemeKind::NoNm];
    kinds.extend(SchemeKind::fig7_lineup());
    kinds
}

/// Sketch bytes, for determinism comparison: the codec is bit-exact, so
/// string equality *is* distribution equality.
fn breakdown_bytes(lat: &LatencyBreakdown) -> String {
    let mut s = String::new();
    lat.encode(&mut s);
    s
}

/// The serial-vs-sharded determinism gate: one workload per scheme,
/// re-run on the sharded engine at each thread count, sketch bytes
/// compared against the serial grid's.
fn sharded_gate(
    kinds: &[SchemeKind],
    workload: &str,
    serial: &[(SchemeKind, LatencyBreakdown)],
    cfg: &SystemConfig,
    params: &RunParams,
    trace: &TraceParams,
    threads: &[usize],
) {
    let profile = profiles::by_name(workload).expect("known workload");
    for &kind in kinds {
        let want = serial
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, lat)| breakdown_bytes(lat))
            .expect("serial pass covered every scheme");
        for &n in threads {
            let shard = ShardParams::with_threads(n);
            let (_, report, _) = run_sharded_traced(profile, kind, cfg, params, trace, &shard);
            let got = breakdown_bytes(&report.latency);
            assert_eq!(
                got,
                want,
                "{} on {workload}: sharded ({n} threads) sketch bytes diverged from serial",
                kind.label()
            );
        }
    }
    println!(
        "sharded gate: ok for all schemes on {workload} (threads {threads:?}, byte-identical)"
    );
}

/// One JSON object body for a sketch: count, mean, and the four tail
/// quantiles the plane is built around.
fn sketch_json(s: &QuantileSketch) -> String {
    let [p50, p95, p99, p999] = s.percentiles();
    format!(
        "{{ \"count\": {}, \"mean\": {:.1}, \"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99}, \"p999\": {p999}, \"max\": {} }}",
        s.count(),
        s.mean(),
        s.max()
    )
}

fn main() {
    let opts = parse_args();
    let (cfg, params, mode) = if opts.smoke {
        (SystemConfig::small(), RunParams::smoke(), "smoke")
    } else if opts.full {
        (SystemConfig::experiment(), RunParams::full(), "full")
    } else {
        (SystemConfig::experiment(), RunParams::quick(), "quick")
    };
    let trace = TraceParams {
        events_capacity: EVENTS_CAPACITY,
        ..TraceParams::default_capture()
    };
    let workloads: Vec<&str> = if opts.smoke {
        SMOKE_WORKLOADS.to_vec()
    } else {
        profiles::all().iter().map(|p| p.name).collect()
    };
    let kinds = lineup();

    println!(
        "latency: {} schemes x {} workloads, mode={mode}, {} accesses/core",
        kinds.len(),
        workloads.len(),
        params.accesses_per_core
    );

    let mut grid = ExperimentGrid::new(cfg, params);
    for name in &workloads {
        grid = grid.workload(profiles::by_name(name).expect("known workload"));
    }
    let jobs = grid.schemes(kinds.iter().copied()).jobs();
    let results = run_grid_traced(&jobs, &trace, default_threads());

    // Results are workload-major in `kinds` order (the grid contract).
    let per_scheme: Vec<Vec<&LatencyBreakdown>> = (0..kinds.len())
        .map(|s| {
            (0..workloads.len())
                .map(|w| &results[w * kinds.len() + s].1.latency)
                .collect()
        })
        .collect();

    // Console summary: overall tail per scheme, sketches merged across
    // workloads — legal because merge is order-invariant and exact.
    println!(
        "\n{:10} {:>12} {:>8} {:>8} {:>8} {:>8}",
        "scheme", "samples", "p50", "p95", "p99", "p999"
    );
    for (kind, rows) in kinds.iter().zip(&per_scheme) {
        let mut merged = LatencyBreakdown::new();
        for lat in rows {
            merged.merge(lat);
        }
        let all = merged.overall();
        let [p50, p95, p99, p999] = all.percentiles();
        println!(
            "{:10} {:>12} {:>8} {:>8} {:>8} {:>8}",
            kind.label(),
            all.count(),
            p50,
            p95,
            p99,
            p999
        );
    }

    if opts.check {
        // 2 threads exercises the epoch-barrier merge; 4 additionally
        // exercises lane-count-dependent partitioning. Smoke keeps only
        // the cheap one.
        let threads: &[usize] = if opts.smoke { &[2] } else { &[2, 4] };
        let gate_workload = workloads[0];
        let serial: Vec<(SchemeKind, LatencyBreakdown)> = kinds
            .iter()
            .enumerate()
            .map(|(s, &kind)| (kind, results[s].1.latency.clone()))
            .collect();
        sharded_gate(
            &kinds,
            gate_workload,
            &serial,
            &cfg,
            &params,
            &trace,
            threads,
        );
    }

    if opts.write {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"meta\": {\n");
        out.push_str(&format!("    \"mode\": \"{mode}\",\n"));
        out.push_str(&format!(
            "    \"accesses_per_core\": {},\n",
            params.accesses_per_core
        ));
        out.push_str(&format!("    \"seed\": {},\n", params.seed));
        out.push_str("    \"unit\": \"demand issue-to-completion cycles\",\n");
        out.push_str(&format!(
            "    \"relative_error_bound\": {}\n",
            silcfm_obs::sketch::REL_ERROR_BOUND
        ));
        out.push_str("  },\n");
        out.push_str("  \"schemes\": {\n");
        let scheme_bodies: Vec<String> = kinds
            .iter()
            .zip(&per_scheme)
            .map(|(kind, rows)| {
                let workload_bodies: Vec<String> = workloads
                    .iter()
                    .zip(rows)
                    .map(|(name, lat)| {
                        let mut classes: Vec<String> = vec![format!(
                            "        \"overall\": {}",
                            sketch_json(&lat.overall())
                        )];
                        for class in AccessClass::ALL {
                            classes.push(format!(
                                "        \"{}\": {}",
                                class.label(),
                                sketch_json(lat.sketch(class))
                            ));
                        }
                        format!("      \"{name}\": {{\n{}\n      }}", classes.join(",\n"))
                    })
                    .collect();
                format!(
                    "    \"{}\": {{\n{}\n    }}",
                    kind.label(),
                    workload_bodies.join(",\n")
                )
            })
            .collect();
        out.push_str(&scheme_bodies.join(",\n"));
        out.push_str("\n  }\n}\n");
        if let Some(dir) = std::path::Path::new(&opts.out).parent() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
        std::fs::write(&opts.out, out).expect("write results JSON");
        println!("\nwrote {}", opts.out);
    }
}
