//! Thread-sweep scaling benchmark for the sharded single-run simulator.
//!
//! The grid runner already scales *across* independent runs; this binary
//! measures how one large simulation scales when sharded across threads
//! (DESIGN.md §11): workload generation on producer threads, the
//! shared-state commit loop on the consumer. Every sharded run's result is
//! asserted bit-identical to the serial baseline before its time is
//! recorded — a measurement that changed the answer would be worthless.
//!
//! Methodology (per thread count): one warmup run at a fraction of the
//! budget to heat caches and the allocator, then `--repeats` timed runs of
//! the full budget with the best (minimum-time) rate reported, matching the
//! `throughput` binary's minimum-time estimation. Speedup is defined
//! against the *serial* `run` path — the un-sharded code the repo shipped
//! with — not against sharded-at-1-thread.
//!
//! Results are spliced into `results/BENCH_throughput.json` as a
//! `"scaling"` section (replacing any previous one). The host's core count
//! is recorded alongside: on a 1-core host the sweep still runs and the
//! numbers are still honest, but thread counts above 1 time-slice one CPU
//! and any speedup comes from chunked generation's cache locality, not
//! parallelism.
//!
//! Run with: `cargo run --release -p silcfm-bench --bin scaling`
//! Options:
//!   --smoke         fast determinism gate: serial vs sharded digests on a
//!                   smoke-sized run; exits 1 on divergence, writes nothing
//!   --workload W    Table III profile to run (default milc)
//!   --accesses N    accesses per core for the timed runs (default 600000)
//!   --repeats N     timed repetitions per thread count (default 2)
//!   --max-threads N sweep ceiling (default max(4, 2 x host cores))
//!   --epoch N       records per lane per epoch barrier (default 4096)
//!   --out PATH      JSON to splice into (default results/BENCH_throughput.json)
//!   --no-write      measure and print, but do not touch the JSON

use std::hash::Hasher as _;
use std::time::Instant;

use silcfm_sim::{run, run_sharded, RunParams, SchemeKind, ShardParams};
use silcfm_trace::profiles;
use silcfm_types::{FxHasher, SystemConfig};

struct Options {
    smoke: bool,
    workload: String,
    accesses: u64,
    repeats: u32,
    max_threads: Option<usize>,
    epoch: u64,
    out: String,
    write: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        smoke: false,
        workload: "milc".to_string(),
        accesses: 600_000,
        repeats: 2,
        max_threads: None,
        epoch: 4096,
        out: "results/BENCH_throughput.json".to_string(),
        write: true,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--workload" => opts.workload = args.next().expect("--workload needs a name"),
            "--accesses" => {
                let v = args.next().expect("--accesses needs a value");
                opts.accesses = v.parse().expect("--accesses must be an integer");
            }
            "--repeats" => {
                let v = args.next().expect("--repeats needs a value");
                opts.repeats = v.parse().expect("--repeats must be an integer");
                assert!(opts.repeats > 0, "--repeats must be positive");
            }
            "--max-threads" => {
                let v = args.next().expect("--max-threads needs a value");
                opts.max_threads = Some(v.parse().expect("--max-threads must be an integer"));
            }
            "--epoch" => {
                let v = args.next().expect("--epoch needs a value");
                opts.epoch = v.parse().expect("--epoch must be an integer");
            }
            "--out" => opts.out = args.next().expect("--out needs a path"),
            "--no-write" => opts.write = false,
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!(
                    "usage: scaling [--smoke] [--workload W] [--accesses N] [--repeats N] \
                     [--max-threads N] [--epoch N] [--out PATH] [--no-write]"
                );
                std::process::exit(2);
            }
        }
    }
    opts
}

fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Full bit-level digest of a run's result (every field, via Debug).
fn digest(r: &silcfm_sim::RunResult) -> u64 {
    let mut h = FxHasher::default();
    h.write(format!("{r:?}").as_bytes());
    h.finish()
}

/// The determinism gate: a smoke-sized run, serial vs sharded at 2 and 4
/// threads (traced paths are covered by the test suite; this is the cheap
/// CI-facing check). Exits nonzero on any divergence.
fn smoke(cfg: &SystemConfig, opts: &Options) -> ! {
    let profile = profiles::by_name(&opts.workload)
        .unwrap_or_else(|| panic!("unknown workload '{}'", opts.workload));
    let params = RunParams {
        accesses_per_core: 8_000,
        ..RunParams::smoke()
    };
    let serial = run(profile, SchemeKind::silcfm(), cfg, &params);
    let want = digest(&serial);
    let mut failed = false;
    for threads in [1usize, 2, 4] {
        let shard = ShardParams {
            threads,
            epoch_records: 512,
            lookahead_epochs: 4,
        };
        let (sharded, report) = run_sharded(profile, SchemeKind::silcfm(), cfg, &params, &shard);
        let got = digest(&sharded);
        let ok = got == want && report.delta_mismatches == 0;
        println!(
            "smoke {} threads={threads}: serial={want:016x} sharded={got:016x} \
             merge_checksum={:016x} mismatches={} [{}]",
            opts.workload,
            report.checksum,
            report.delta_mismatches,
            if ok { "ok" } else { "DIVERGED" }
        );
        failed |= !ok;
    }
    if failed {
        eprintln!("scaling smoke FAILED: sharded run diverged from the serial digest");
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// One timed configuration: warmup at an eighth of the budget, then the
/// best (minimum) wall time over `repeats` full runs. Every timed run's
/// digest is checked against `want`.
fn timed_sharded(
    profile: &profiles::WorkloadProfile,
    cfg: &SystemConfig,
    params: &RunParams,
    shard: &ShardParams,
    repeats: u32,
    want: u64,
) -> f64 {
    let warm = RunParams {
        accesses_per_core: (params.accesses_per_core / 8).max(1),
        ..*params
    };
    let _ = run_sharded(profile, SchemeKind::silcfm(), cfg, &warm, shard);
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let (r, report) = run_sharded(profile, SchemeKind::silcfm(), cfg, params, shard);
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(
            digest(&r),
            want,
            "sharded run at {} threads diverged from the serial digest",
            shard.threads
        );
        assert_eq!(report.delta_mismatches, 0, "epoch merge tore a handoff");
        best = best.min(dt);
    }
    best
}

fn main() {
    let opts = parse_args();
    let cores = host_cores();

    if opts.smoke {
        smoke(&SystemConfig::small(), &opts);
    }

    // The full sweep runs a single large simulation on the experiment
    // config (16 cores = 16 lanes, so producer threads have work to own).
    let cfg = SystemConfig::experiment();
    let profile = profiles::by_name(&opts.workload)
        .unwrap_or_else(|| panic!("unknown workload '{}'", opts.workload));
    let params = RunParams {
        accesses_per_core: opts.accesses,
        ..RunParams::full()
    };
    let total = params.accesses_per_core * u64::from(cfg.core.cores);
    let max_threads = opts.max_threads.unwrap_or_else(|| (2 * cores).max(4));

    println!(
        "scaling: {} x {} accesses/core ({} total), epoch={}, host_cores={}, sweep 1..={}",
        opts.workload, params.accesses_per_core, total, opts.epoch, cores, max_threads
    );
    if cores == 1 {
        eprintln!(
            "warning: host exposes 1 core; threads time-slice one CPU, so any speedup \
             reflects chunked generation's cache locality, not parallel execution"
        );
    }

    // Serial baseline: the un-sharded path every speedup is defined against.
    let warm = RunParams {
        accesses_per_core: (params.accesses_per_core / 8).max(1),
        ..params
    };
    let _ = run(profile, SchemeKind::silcfm(), &cfg, &warm);
    let mut serial_best = f64::INFINITY;
    let mut want = 0u64;
    for _ in 0..opts.repeats {
        let t0 = Instant::now();
        let r = run(profile, SchemeKind::silcfm(), &cfg, &params);
        serial_best = serial_best.min(t0.elapsed().as_secs_f64());
        want = digest(&r);
    }
    println!(
        "{:>8} {:>10} {:>14} {:>8}",
        "threads", "ms", "acc/s", "speedup"
    );
    println!(
        "{:>8} {:>10.1} {:>14.0} {:>8}",
        "serial",
        serial_best * 1e3,
        total as f64 / serial_best,
        "1.00"
    );

    let mut sweep: Vec<(usize, f64, f64, f64)> = Vec::new();
    for threads in 1..=max_threads {
        let shard = ShardParams {
            threads,
            epoch_records: opts.epoch,
            lookahead_epochs: 4,
        };
        let best = timed_sharded(profile, &cfg, &params, &shard, opts.repeats, want);
        let rate = total as f64 / best;
        let speedup = serial_best / best;
        println!(
            "{threads:>8} {:>10.1} {rate:>14.0} {speedup:>8.2}",
            best * 1e3
        );
        sweep.push((threads, best * 1e3, rate, speedup));
    }

    let peak = sweep
        .iter()
        .filter(|(t, ..)| *t >= 2)
        .map(|&(_, _, _, s)| s)
        .fold(0.0f64, f64::max);
    if peak <= 1.0 {
        eprintln!(
            "warning: no sharded configuration beat the serial path (peak {peak:.2}x at >=2 \
             threads on a {cores}-core host); numbers recorded as measured"
        );
    }

    if opts.write {
        let section = render_section(&opts, &cfg, total, cores, serial_best, &sweep);
        let json = match std::fs::read_to_string(&opts.out) {
            Ok(existing) => splice(&existing, &section),
            Err(_) => format!("{{\n{section}\n}}\n"),
        };
        if let Some(dir) = std::path::Path::new(&opts.out).parent() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
        std::fs::write(&opts.out, json).expect("write results JSON");
        println!("\nwrote {}", opts.out);
    }
}

/// Renders the `"scaling"` object body (no surrounding comma).
fn render_section(
    opts: &Options,
    cfg: &SystemConfig,
    total: u64,
    cores: usize,
    serial_best: f64,
    sweep: &[(usize, f64, f64, f64)],
) -> String {
    let mut out = String::new();
    out.push_str("  \"scaling\": {\n");
    out.push_str(&format!("    \"workload\": \"{}\",\n", opts.workload));
    out.push_str("    \"config\": \"experiment\",\n");
    out.push_str(&format!("    \"cores_simulated\": {},\n", cfg.core.cores));
    out.push_str(&format!("    \"accesses_per_core\": {},\n", opts.accesses));
    out.push_str(&format!("    \"total_accesses\": {total},\n"));
    out.push_str(&format!("    \"epoch_records\": {},\n", opts.epoch));
    out.push_str(&format!("    \"host_cores\": {cores},\n"));
    if cores == 1 {
        out.push_str(
            "    \"warning\": \"host exposes 1 core; speedup reflects chunked generation \
             locality, not parallel execution\",\n",
        );
    }
    out.push_str(&format!("    \"serial_ms\": {:.1},\n", serial_best * 1e3));
    out.push_str(&format!(
        "    \"serial_acc_s\": {:.0},\n",
        total as f64 / serial_best
    ));
    out.push_str("    \"sweep\": [\n");
    let rows: Vec<String> = sweep
        .iter()
        .map(|(t, ms, rate, speedup)| {
            format!(
                "      {{\"threads\": {t}, \"ms\": {ms:.1}, \"acc_per_s\": {rate:.0}, \
                 \"speedup\": {speedup:.3}}}"
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n    ]\n  }");
    out
}

/// Splices `section` into an existing top-level JSON object, replacing any
/// previous `"scaling"` section. The input is this repo's own hand-rolled
/// benchmark JSON (flat, trailing `}\n`), so brace counting suffices.
fn splice(existing: &str, section: &str) -> String {
    let without = remove_scaling(existing);
    let trimmed = without.trim_end();
    let body = trimmed
        .strip_suffix('}')
        .expect("benchmark JSON must end with a closing brace");
    format!("{},\n{section}\n}}\n", body.trim_end())
}

/// Removes a previously spliced `"scaling": { ... }` section (and the comma
/// that introduced it), if present.
fn remove_scaling(json: &str) -> String {
    let tag = "\"scaling\": {";
    let Some(key) = json.find(tag) else {
        return json.to_string();
    };
    // Walk back over the separator (`,` plus whitespace) that precedes it.
    let start = json[..key]
        .rfind(',')
        .unwrap_or_else(|| json[..key].trim_end().len());
    // Walk forward to the matching close brace.
    let open = key + tag.len() - 1;
    let mut depth = 0usize;
    let mut end = json.len();
    for (i, c) in json[open..].char_indices() {
        match c {
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth == 0 {
                    end = open + i + 1;
                    break;
                }
            }
            _ => {}
        }
    }
    format!("{}{}", &json[..start], &json[end..])
}
