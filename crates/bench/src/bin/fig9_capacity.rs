//! Fig. 9 — performance across NM:FM capacity ratios.
//!
//! Sweeps NM = FM/16, FM/8 and FM/4. The paper reports SILC-FM improving
//! from 1.83× to 2.04× across the sweep while the best comparison scheme
//! moves from 1.47× to 1.61×; SILC-FM degrades least at small capacities
//! because locking and associativity absorb the extra conflicts.

use silcfm_bench::{run_one, HarnessOpts};
use silcfm_sim::{format_table, Row, SchemeKind};
use silcfm_trace::profiles;
use silcfm_types::stats::geometric_mean;

fn main() {
    let opts = HarnessOpts::from_args();
    let kinds = SchemeKind::fig7_lineup();
    let columns: Vec<&str> = kinds.iter().map(|k| k.label()).collect();

    let mut rows = Vec::new();
    for ratio in [16u64, 8, 4] {
        let params = opts.params().with_ratio(ratio);
        let mut values = Vec::new();
        for kind in &kinds {
            let mut speedups = Vec::new();
            for profile in profiles::all() {
                let base = run_one(profile, SchemeKind::NoNm, &params);
                let r = run_one(profile, *kind, &params);
                speedups.push(r.speedup_over(&base));
            }
            values.push(geometric_mean(&speedups));
        }
        rows.push(Row::new(format!("NM=FM/{ratio}"), values));
    }

    println!(
        "{}",
        format_table(
            &format!("Fig. 9: gmean speedup across NM capacities ({} mode)", opts.mode()),
            &columns,
            &rows,
            3
        )
    );
    println!("Paper: silcfm 1.83 -> 2.04 from 1/16 to 1/4; best comparison 1.47 -> 1.61");
}
