//! Fig. 9 — performance across NM:FM capacity ratios.
//!
//! Sweeps NM = FM/16, FM/8 and FM/4. The paper reports SILC-FM improving
//! from 1.83× to 2.04× across the sweep while the best comparison scheme
//! moves from 1.47× to 1.61×; SILC-FM degrades least at small capacities
//! because locking and associativity absorb the extra conflicts.

use silcfm_bench::{run_matrix, HarnessOpts};
use silcfm_sim::{format_table, Row, SchemeKind};
use silcfm_types::stats::geometric_mean;

fn main() {
    let opts = HarnessOpts::from_args();
    let kinds = SchemeKind::fig7_lineup();
    let columns: Vec<&str> = kinds.iter().map(|k| k.label()).collect();

    let mut rows = Vec::new();
    for ratio in [16u64, 8, 4] {
        let params = opts.params().with_ratio(ratio);
        // One parallel grid per capacity point, baseline in column 0.
        let with_base: Vec<SchemeKind> = std::iter::once(SchemeKind::NoNm)
            .chain(kinds.iter().copied())
            .collect();
        let results = run_matrix(&with_base, &params);
        let values: Vec<f64> = (1..with_base.len())
            .map(|k| {
                let speedups: Vec<f64> = results
                    .iter()
                    .map(|row| row[k].speedup_over(&row[0]))
                    .collect();
                geometric_mean(&speedups)
            })
            .collect();
        rows.push(Row::new(format!("NM=FM/{ratio}"), values));
    }

    println!(
        "{}",
        format_table(
            &format!(
                "Fig. 9: gmean speedup across NM capacities ({} mode)",
                opts.mode()
            ),
            &columns,
            &rows,
            3
        )
    );
    println!("Paper: silcfm 1.83 -> 2.04 from 1/16 to 1/4; best comparison 1.47 -> 1.61");
}
