//! Fig. 7 — performance comparison of all schemes.
//!
//! Prints per-workload speedups over the no-NM baseline for rand / hma /
//! cam / camp / pom / silcfm, plus the geometric mean, as in the paper's
//! Fig. 7 (SILC-FM best overall; CAMEO the best prior hardware scheme).

use silcfm_bench::{baselines, run_matrix, workload_labels, HarnessOpts};
use silcfm_sim::{format_table, Row, SchemeKind};
use silcfm_trace::profiles;
use silcfm_types::stats::geometric_mean;

fn main() {
    let opts = HarnessOpts::from_args();
    let params = opts.params();
    let kinds = SchemeKind::fig7_lineup();
    let base = baselines(&params);

    // One parallel grid covers every (workload, scheme) cell;
    // speedups[w][k] for workload w, scheme k.
    let results = run_matrix(&kinds, &params);
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); profiles::all().len()];
    let mut access_rates: Vec<Vec<f64>> = vec![Vec::new(); profiles::all().len()];
    for (w, (row, b)) in results.iter().zip(&base).enumerate() {
        for r in row {
            speedups[w].push(r.speedup_over(b));
            access_rates[w].push(r.access_rate);
        }
    }

    let columns: Vec<&str> = kinds.iter().map(|k| k.label()).collect();
    let mut rows: Vec<Row> = workload_labels()
        .into_iter()
        .zip(speedups.iter().chain([&Vec::new()]))
        .take(profiles::all().len())
        .map(|(label, values)| Row::new(label, values.clone()))
        .collect();
    let gmeans: Vec<f64> = (0..kinds.len())
        .map(|k| geometric_mean(&speedups.iter().map(|w| w[k]).collect::<Vec<_>>()))
        .collect();
    rows.push(Row::new("gmean", gmeans.clone()));
    println!(
        "{}",
        format_table(
            &format!("Fig. 7: speedup over no-NM baseline ({} mode)", opts.mode()),
            &columns,
            &rows,
            3
        )
    );

    let ar_rows: Vec<Row> = workload_labels()
        .into_iter()
        .take(profiles::all().len())
        .enumerate()
        .map(|(w, label)| Row::new(label, access_rates[w].clone()))
        .collect();
    println!(
        "{}",
        format_table(
            "Fig. 7 (companion): access rate (Eq. 1)",
            &columns,
            &ar_rows,
            3
        )
    );

    let cam_idx = kinds
        .iter()
        .position(|k| k.label() == "cam")
        .expect("cam in lineup");
    let silc_idx = kinds
        .iter()
        .position(|k| k.label() == "silcfm")
        .expect("silcfm in lineup");
    println!(
        "SILC-FM vs best prior hardware scheme (CAMEO): {:+.1}% (paper: +36%)",
        (gmeans[silc_idx] / gmeans[cam_idx] - 1.0) * 100.0
    );
}
