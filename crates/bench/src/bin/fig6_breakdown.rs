//! Fig. 6 — SILC-FM performance-improvement breakdown.
//!
//! Stacks the four feature rungs of §III on top of the Random static
//! placement: subblock swapping alone (direct-mapped), then locking, then
//! associativity, then bypassing. The paper reports 1.55× for swapping
//! alone, +11 % locking, +8 % associativity, +8 % bypassing (1.82× total).

use silcfm_bench::{baselines, run_matrix, HarnessOpts};
use silcfm_core::SilcFmParams;
use silcfm_sim::{format_table, Row, SchemeKind};
use silcfm_trace::profiles;
use silcfm_types::stats::geometric_mean;

fn main() {
    let opts = HarnessOpts::from_args();
    let params = opts.params();
    let ladder: Vec<(&str, SchemeKind)> = vec![
        ("rand", SchemeKind::Rand),
        ("swap", SchemeKind::SilcFm(SilcFmParams::swap_only())),
        ("+lock", SchemeKind::SilcFm(SilcFmParams::with_locking())),
        (
            "+assoc",
            SchemeKind::SilcFm(SilcFmParams::with_associativity()),
        ),
        ("+bypass", SchemeKind::SilcFm(SilcFmParams::with_bypass())),
    ];
    let base = baselines(&params);

    // Run the whole feature ladder × workload grid in parallel at once.
    let kinds: Vec<SchemeKind> = ladder.iter().map(|(_, k)| *k).collect();
    let results = run_matrix(&kinds, &params);

    let mut rows = Vec::new();
    let mut per_rung: Vec<Vec<f64>> = vec![Vec::new(); ladder.len()];
    for ((profile, b), row) in profiles::all().iter().zip(&base).zip(&results) {
        let mut values = Vec::new();
        for (i, r) in row.iter().enumerate() {
            let s = r.speedup_over(b);
            per_rung[i].push(s);
            values.push(s);
        }
        rows.push(Row::new(profile.name, values));
    }
    let gmeans: Vec<f64> = per_rung.iter().map(|v| geometric_mean(v)).collect();
    rows.push(Row::new("gmean", gmeans.clone()));

    let columns: Vec<&str> = ladder.iter().map(|(n, _)| *n).collect();
    println!(
        "{}",
        format_table(
            &format!(
                "Fig. 6: SILC-FM breakdown, speedup over no-NM ({} mode)",
                opts.mode()
            ),
            &columns,
            &rows,
            3
        )
    );
    println!(
        "Feature contributions (gmean): swap {:.2}x; lock {:+.1}%; assoc {:+.1}%; bypass {:+.1}%; total {:.2}x",
        gmeans[1],
        (gmeans[2] / gmeans[1] - 1.0) * 100.0,
        (gmeans[3] / gmeans[2] - 1.0) * 100.0,
        (gmeans[4] / gmeans[3] - 1.0) * 100.0,
        gmeans[4],
    );
    println!("Paper: swap 1.55x; lock +11%; assoc +8%; bypass +8%; total 1.82x");
}
