//! Ablation A1 — the locking threshold (§III-C).
//!
//! The paper states: "We have experimentally found that the threshold of 50
//! works the best to determine the block hotness." This sweep reproduces
//! the experiment on a subset of locking-sensitive workloads. Thresholds
//! are expressed in the paper's 1 M-access-aging units and scaled to the
//! run length by the harness.

use silcfm_bench::{run_named_matrix, HarnessOpts};
use silcfm_core::SilcFmParams;
use silcfm_sim::{format_table, Row, SchemeKind};
use silcfm_types::stats::geometric_mean;

/// Thresholds applied directly (the harness scaling is bypassed by setting
/// a non-default value).
const THRESHOLDS: &[u8] = &[4, 8, 16, 32, 50, 63];

fn main() {
    let opts = HarnessOpts::from_args();
    let params = opts.params();
    let workloads = ["xalanc", "milc", "lib", "gcc"];
    let columns: Vec<String> = THRESHOLDS.iter().map(|t| format!("T={t}")).collect();
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();

    // Column 0 is the no-NM baseline; the sweep points follow.
    let kinds: Vec<SchemeKind> = std::iter::once(SchemeKind::NoNm)
        .chain(THRESHOLDS.iter().map(|&t| {
            let mut p = SilcFmParams::paper();
            // Scale the sweep point the same way the harness scales the
            // default: threshold per (aging_period/1M) proportion.
            let period = (params.accesses_per_core * 16 / 16).max(1_000);
            p.lock_threshold = ((f64::from(t) * period as f64 / 1_000_000.0) as u8).clamp(2, 63);
            SchemeKind::SilcFm(p)
        }))
        .collect();
    let results = run_named_matrix(&workloads, &kinds, &params);

    let mut rows = Vec::new();
    let mut per_t: Vec<Vec<f64>> = vec![Vec::new(); THRESHOLDS.len()];
    for (name, row) in workloads.iter().zip(&results) {
        let base = &row[0];
        let mut values = Vec::new();
        for (i, r) in row[1..].iter().enumerate() {
            let s = r.speedup_over(base);
            per_t[i].push(s);
            values.push(s);
        }
        rows.push(Row::new(*name, values));
    }
    rows.push(Row::new(
        "gmean",
        per_t.iter().map(|v| geometric_mean(v)).collect(),
    ));

    println!(
        "{}",
        format_table(
            &format!(
                "A1: lock-threshold sweep, speedup over no-NM ({} mode)",
                opts.mode()
            ),
            &column_refs,
            &rows,
            3
        )
    );
    println!("Paper: threshold 50 works best (with 1 M-access aging periods).");
}
