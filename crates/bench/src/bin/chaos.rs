//! Chaos soak: drives the fault plane hard and audits the robustness
//! invariants the design promises (DESIGN.md §10).
//!
//! Three phases, each skippable from the command line:
//!
//! * **Traced scheme soak** — SILC-FM under harsh fault rates with full
//!   observability. Audits the trace stream against the effect ledger
//!   (every `Poisoned` effect has exactly one `poisoned` event) and the
//!   controller's failover transitions against the schedule-only oracle
//!   [`expected_failover_transitions`].
//! * **Grid soak** — a (scheme × rates × seed) grid of untraced faulted
//!   runs. Audits effect conservation everywhere, the single-copy promise
//!   that stateless baselines never lose data, and bit-identical replay.
//! * **Journal kill/resume** (`--journal PATH`) — runs a seeded experiment
//!   grid through the crash-safe journaled runner and prints an aggregate
//!   digest of the results. `--die-after-jobs N` simulates a crash: after
//!   `N` jobs have been journaled the process appends a torn half-line and
//!   exits with code 3, so CI can rerun with `--resume` and check the
//!   digest matches an uninterrupted run's.
//! * **Serving-plane soak** (`--slo`) — open-loop serving trials under
//!   harsh faults. Audits the request conservation ledger, pins every
//!   NACK-audited request's service window to a real channel-failure
//!   interval of the device it names, cross-checks the controller's
//!   failover transitions against the schedule-only oracle over the
//!   delivered prefix, re-runs the trial sharded for byte-identity, and
//!   drives a short AIMD search demanding ledger evidence behind every
//!   SLO violation the regulator backs off from.
//!
//! Exits 0 and prints `chaos: 0 invariant violations` when clean; exits 1
//! listing every violation otherwise.

use std::hash::Hasher;
use std::io::Write as _;
use std::path::PathBuf;

use silcfm_fault::{expected_failover_transitions, FaultRates, FaultSchedule, FaultStats};
use silcfm_serve::{run_serve, Aimd, AimdParams, FailureTimeline, ServeParams};
use silcfm_sim::experiment::space_for;
use silcfm_sim::runner::ExperimentGrid;
use silcfm_sim::{
    run_faulted, run_faulted_traced, run_grid_journaled, run_grid_journaled_sharded, FaultParams,
    RunParams, RunResult, SchemeKind, ShardParams, TraceParams,
};
use silcfm_trace::{arrivals, profiles};
use silcfm_types::obs::Event;
use silcfm_types::{FxHasher, MemKind, SchemeStats, SystemConfig};

struct Opts {
    smoke: bool,
    seed: u64,
    skip_soak: bool,
    slo: bool,
    journal: Option<PathBuf>,
    resume: bool,
    die_after_jobs: Option<u64>,
    /// Run each journaled job on the sharded runner with this many threads
    /// inside the simulation (results stay bit-identical, so sharded and
    /// serial invocations share journals).
    sharded: Option<usize>,
}

impl Opts {
    fn from_args() -> Self {
        let mut opts = Self {
            smoke: false,
            seed: 99,
            skip_soak: false,
            slo: false,
            journal: None,
            resume: false,
            die_after_jobs: None,
            sharded: None,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            let mut value = |what: &str| {
                args.next()
                    .unwrap_or_else(|| die(&format!("{what} needs a value")))
            };
            match a.as_str() {
                "--smoke" => opts.smoke = true,
                "--seed" => {
                    opts.seed = value("--seed")
                        .parse()
                        .unwrap_or_else(|_| die("bad --seed"));
                }
                "--skip-soak" => opts.skip_soak = true,
                "--slo" => opts.slo = true,
                "--journal" => opts.journal = Some(PathBuf::from(value("--journal"))),
                "--resume" => opts.resume = true,
                "--die-after-jobs" => {
                    opts.die_after_jobs = Some(
                        value("--die-after-jobs")
                            .parse()
                            .unwrap_or_else(|_| die("bad --die-after-jobs")),
                    );
                }
                "--sharded" => {
                    opts.sharded = Some(
                        value("--sharded")
                            .parse()
                            .unwrap_or_else(|_| die("bad --sharded")),
                    );
                }
                other => die(&format!("unknown option {other}")),
            }
        }
        opts
    }
}

fn die(msg: &str) -> ! {
    eprintln!("chaos: {msg}");
    eprintln!(
        "usage: chaos [--smoke] [--seed N] [--skip-soak] [--slo] \
         [--journal PATH [--resume] [--die-after-jobs N] [--sharded THREADS]]"
    );
    std::process::exit(2);
}

/// Looks a detail counter up in a scheme's stats (0 when absent).
fn stat(stats: &SchemeStats, key: &str) -> f64 {
    stats
        .details
        .iter()
        .find(|(k, _)| *k == key)
        .map_or(0.0, |(_, v)| *v)
}

/// Order-sensitive digest of a result list, for comparing a resumed run
/// against an uninterrupted one byte for byte.
fn aggregate_digest(results: &[RunResult]) -> u64 {
    let mut h = FxHasher::default();
    for r in results {
        h.write(format!("{r:?}").as_bytes());
    }
    h.finish()
}

/// Phase 1: SILC-FM under harsh rates with the tracer on. The trace stream
/// and the stats ledger are two independent records of the same run; every
/// invariant here cross-checks one against the other or against the
/// schedule-only failover oracle.
fn traced_scheme_soak(opts: &Opts, violations: &mut Vec<String>) {
    let cfg = SystemConfig::small();
    let params = RunParams::smoke();
    let trace = TraceParams {
        events_capacity: 1 << 20,
        epoch_cycles: 100_000,
    };
    let seeds = if opts.smoke { 1 } else { 3 };
    let scheme = SchemeKind::silcfm();
    let assoc = match scheme {
        SchemeKind::SilcFm(p) => p.associativity,
        _ => unreachable!(),
    };
    let profile = profiles::by_name("milc").expect("known workload");

    for round in 0..seeds {
        let faults = FaultParams {
            fault_seed: opts.seed.wrapping_add(round),
            horizon_cycles: 6_000_000,
            rates: FaultRates::harsh(),
        };
        let tag = format!("traced seed={}", faults.fault_seed);
        let mut check = |ok: bool, msg: String| {
            if !ok {
                violations.push(format!("{tag}: {msg}"));
            }
        };

        let (result, stats, report) =
            match run_faulted_traced(profile, scheme, &cfg, &params, &faults, &trace) {
                Ok(t) => t,
                Err(e) => {
                    violations.push(format!("{tag}: run failed: {e}"));
                    continue;
                }
            };
        check(stats.injected > 0, "harsh soak delivered no faults".into());
        check(stats.conserved(), format!("effect ledger leaks: {stats:?}"));
        check(
            report.dropped == 0,
            format!("tracer dropped {} events; raise capacity", report.dropped),
        );

        // Trace/ledger cross-checks are only exact over a complete stream.
        if report.dropped == 0 {
            let poisoned_events = report
                .events
                .iter()
                .filter(|e| matches!(e.event, Event::Poisoned { .. }))
                .count() as u64;
            check(
                poisoned_events == stats.poisoned,
                format!(
                    "{} poisoned events vs {} poisoned effects",
                    poisoned_events, stats.poisoned
                ),
            );
            check(
                stat(&result.scheme_stats, "fault_poisoned") as u64 == stats.poisoned,
                "controller's poisoned counter disagrees with the ledger".into(),
            );

            // Failover oracle: replay the delivered prefix of the identical
            // regenerated schedule through the shared hysteresis thresholds.
            let scaled = profiles::scaled(profile, params.footprint_scale);
            let space = space_for(&scaled, &cfg, &params);
            let topo = FaultParams::topology_for(&scheme, space);
            let schedule = FaultSchedule::generate(
                faults.fault_seed,
                faults.horizon_cycles,
                &faults.rates,
                &topo,
            )
            .expect("rates validated by the run above");
            let delivered = stats.injected as usize;
            check(
                delivered <= schedule.len(),
                format!("{delivered} delivered > {} scheduled", schedule.len()),
            );
            let oracle = expected_failover_transitions(&schedule.faults()[..delivered], assoc);
            let seen: Vec<bool> = report
                .events
                .iter()
                .filter_map(|e| match e.event {
                    Event::Failover { engaged } => Some(engaged),
                    _ => None,
                })
                .collect();
            let expected: Vec<bool> = oracle.iter().map(|(_, engaged)| *engaged).collect();
            check(
                seen == expected,
                format!("failover transitions {seen:?} != oracle {expected:?}"),
            );
            check(
                stat(&result.scheme_stats, "failover_transitions") as usize == oracle.len(),
                "controller's transition counter disagrees with the oracle".into(),
            );
        }

        // Bit-identical replay, trace stream included.
        match run_faulted_traced(profile, scheme, &cfg, &params, &faults, &trace) {
            Ok((r2, s2, rep2)) => {
                check(s2 == stats, "fault ledger differs on replay".into());
                check(
                    r2.cycles == result.cycles && r2.traffic == result.traffic,
                    "metrics differ on replay".into(),
                );
                check(
                    rep2.events == report.events,
                    "trace stream differs on replay".into(),
                );
            }
            Err(e) => violations.push(format!("{tag}: replay failed: {e}")),
        }

        println!(
            "traced soak seed={}: injected {} (corrected {} recovered {} poisoned {} masked {})",
            faults.fault_seed,
            stats.injected,
            stats.corrected,
            stats.recovered,
            stats.poisoned,
            stats.masked
        );
    }
}

/// Phase 2: conservation and the baseline no-loss promise across a
/// (scheme × rates × seed) grid, untraced.
fn grid_soak(opts: &Opts, violations: &mut Vec<String>) {
    let cfg = SystemConfig::small();
    let params = RunParams::smoke();
    let profile = profiles::by_name("milc").expect("known workload");
    let schemes = [SchemeKind::silcfm(), SchemeKind::Hma, SchemeKind::Cameo];
    let rates = [
        ("gentle", FaultRates::gentle()),
        ("harsh", FaultRates::harsh()),
    ];
    let seeds = if opts.smoke { 1 } else { 2 };

    let mut total = FaultStats::default();
    let mut first: Option<(FaultParams, SchemeKind, RunResult, FaultStats)> = None;
    for scheme in schemes {
        for (rate_name, rate) in &rates {
            for round in 0..seeds {
                let faults = FaultParams {
                    fault_seed: opts.seed.wrapping_add(1000 + round),
                    horizon_cycles: 6_000_000,
                    rates: *rate,
                };
                let tag = format!(
                    "grid {}/{rate_name}/seed={}",
                    scheme.label(),
                    faults.fault_seed
                );
                let (result, stats) = match run_faulted(profile, scheme, &cfg, &params, &faults) {
                    Ok(t) => t,
                    Err(e) => {
                        violations.push(format!("{tag}: run failed: {e}"));
                        continue;
                    }
                };
                if !stats.conserved() {
                    violations.push(format!("{tag}: effect ledger leaks: {stats:?}"));
                }
                // Stateless baselines hold no interleaved data, so no fault
                // may cost them anything.
                if !matches!(scheme, SchemeKind::SilcFm(_)) && stats.poisoned != 0 {
                    violations.push(format!("{tag}: baseline lost data: {stats:?}"));
                }
                total.merge(&stats);
                if first.is_none() {
                    first = Some((faults, scheme, result, stats));
                }
            }
        }
    }
    if !total.conserved() {
        violations.push(format!("grid: merged ledger leaks: {total:?}"));
    }

    // Replay the first cell: the whole plane must be deterministic.
    if let Some((faults, scheme, result, stats)) = first {
        match run_faulted(profile, scheme, &cfg, &params, &faults) {
            Ok((r2, s2)) => {
                if s2 != stats || r2 != result {
                    violations.push("grid: first cell differs on replay".into());
                }
            }
            Err(e) => violations.push(format!("grid: replay failed: {e}")),
        }
    }
    println!(
        "grid soak: injected {} across {} cells (corrected {} recovered {} poisoned {} masked {})",
        total.injected,
        schemes.len() * rates.len() * seeds as usize,
        total.corrected,
        total.recovered,
        total.poisoned,
        total.masked
    );
}

/// Slack around a NACK-audited request's service window when pinning it to
/// a channel-failure interval: the engine observes the failure through the
/// memory pipeline, so the NACK can trail the fault's CPU-cycle timestamp
/// by a bounded service latency.
const NACK_WINDOW_MARGIN: u64 = 4_096;

/// Serving-plane soak (`--slo`): open-loop serving trials under harsh
/// faults, auditing the request ledger against the fault plane.
fn slo_soak(opts: &Opts, violations: &mut Vec<String>) {
    let cfg = SystemConfig::small();
    let params = RunParams::smoke();
    let serve = ServeParams::default_plane();
    let profile = profiles::by_name("milc").expect("known workload");
    let arrival = arrivals::by_name("poisson").expect("known arrival profile");
    let scheme = SchemeKind::silcfm();
    let assoc = match scheme {
        SchemeKind::SilcFm(p) => p.associativity,
        _ => unreachable!(),
    };
    let seeds = if opts.smoke { 1 } else { 3 };
    // The request phase spans `accesses_per_core * est_service_cycles`;
    // faults stop well inside it so every scheduled repair can matter.
    let horizon = params.accesses_per_core * serve.est_service_cycles * 3 / 5;

    for round in 0..seeds {
        let faults = FaultParams {
            fault_seed: opts.seed.wrapping_add(500 + round),
            horizon_cycles: horizon,
            rates: FaultRates::harsh(),
        };
        let tag = format!("slo seed={}", faults.fault_seed);
        let mut check = |ok: bool, msg: String| {
            if !ok {
                violations.push(format!("{tag}: {msg}"));
            }
        };
        let run_at = |threads: usize, rate: u64| {
            run_serve(
                profile,
                scheme,
                &cfg,
                &params,
                &serve,
                arrival,
                rate,
                Some(&faults),
                &ShardParams::with_threads(threads),
            )
        };
        let rate = 300;
        let report = match run_at(1, rate) {
            Ok(r) => r,
            Err(e) => {
                check(false, format!("run failed: {e}"));
                continue;
            }
        };
        check(
            report.stats.ledger.conserved(),
            format!("request ledger leaks: {:?}", report.stats.ledger),
        );
        check(report.fault_stats.conserved(), "effect ledger leaks".into());
        check(
            report.faults_delivered > 0,
            "harsh soak delivered no faults".into(),
        );

        // The audit trail's failure timeline, regenerated from the same
        // seed the run used — byte-identical by the schedule contract.
        let scaled = profiles::scaled(profile, params.footprint_scale);
        let space = space_for(&scaled, &cfg, &params);
        let topo = FaultParams::topology_for(&scheme, space);
        let schedule = FaultSchedule::generate(
            faults.fault_seed,
            faults.horizon_cycles,
            &faults.rates,
            &topo,
        )
        .expect("rates validated by the run above");
        let timeline = FailureTimeline::from_faults(schedule.faults());

        // Every NACK-audited request must pin to a real failure interval of
        // the device it names — a NACK with no channel down in (or near)
        // its service window would mean the retry ladder invents failures.
        for n in &report.stats.nacked {
            let from = n.first_issue.saturating_sub(NACK_WINDOW_MARGIN);
            let to = n.completion.saturating_add(NACK_WINDOW_MARGIN);
            for (hit, device) in [(n.nm, MemKind::Near), (n.fm, MemKind::Far)] {
                if hit {
                    check(
                        timeline.overlaps_failure(device, from, to),
                        format!(
                            "lane {} request@{}: {device:?} NACK window [{from}, {to}] \
                             overlaps no failure interval",
                            n.lane, n.arrival
                        ),
                    );
                }
            }
        }

        // Failover oracle over the delivered prefix, as in the traced soak.
        let delivered = report.faults_delivered;
        check(
            delivered <= schedule.len(),
            format!("{delivered} delivered > {} scheduled", schedule.len()),
        );
        let oracle = expected_failover_transitions(&schedule.faults()[..delivered], assoc);
        check(
            stat(&report.scheme_stats, "failover_transitions") as usize == oracle.len(),
            format!(
                "controller saw {} failover transitions, oracle expects {}",
                stat(&report.scheme_stats, "failover_transitions"),
                oracle.len()
            ),
        );

        // The serving plane stays byte-identical under faults when sharded.
        match run_at(2, rate) {
            Ok(sharded) => check(
                sharded.digest() == report.digest(),
                "sharded serving digest differs from serial under faults".into(),
            ),
            Err(e) => check(false, format!("sharded run failed: {e}")),
        }

        // A short AIMD search under the same faults: every violation the
        // regulator backs off from must leave ledger evidence — shed,
        // timed-out, or failed requests, or a p99 actually over the SLO.
        let mut aimd = Aimd::new(AimdParams {
            min_rate: 50,
            start_rate: 600,
            add_step: 300,
            decrease_num: 3,
            decrease_den: 4,
            trials: 4,
        });
        while !aimd.done() {
            let r = match run_at(1, aimd.rate()) {
                Ok(r) => r,
                Err(e) => {
                    check(false, format!("search trial failed: {e}"));
                    break;
                }
            };
            check(
                r.stats.ledger.conserved(),
                format!(
                    "search rate={}: request ledger leaks: {:?}",
                    aimd.rate(),
                    r.stats.ledger
                ),
            );
            let met = r.slo_met(&serve, 0.95);
            if !met {
                let l = &r.stats.ledger;
                let evidence = l.shed > 0
                    || l.timed_out > 0
                    || l.failed > 0
                    || r.stats.p99() > serve.slo_p99_cycles;
                check(
                    evidence,
                    format!(
                        "search rate={}: regulator backs off with no ledger evidence \
                         ({l:?}, p99 {})",
                        aimd.rate(),
                        r.stats.p99()
                    ),
                );
            }
            aimd.observe(met);
        }

        println!(
            "slo soak seed={}: faults={} nacked={} ledger={:?} best_ok={}",
            faults.fault_seed,
            report.faults_delivered,
            report.stats.nacked.len(),
            report.stats.ledger,
            aimd.best_ok()
        );
    }
}

/// Phase 3: the crash-safe journaled grid. With `--die-after-jobs N` the
/// process tears its own journal mid-write and exits 3, simulating a kill;
/// a rerun with `--resume` must finish only the missing jobs and print the
/// same aggregate digest as an uninterrupted run.
fn journaled_grid(opts: &Opts, path: &PathBuf, violations: &mut Vec<String>) {
    let jobs = ExperimentGrid::new(SystemConfig::small(), RunParams::smoke())
        .workload(profiles::by_name("mcf").expect("known workload"))
        .workload(profiles::by_name("milc").expect("known workload"))
        .scheme(SchemeKind::silcfm())
        .scheme(SchemeKind::Hma)
        .seed_per_job()
        .jobs();

    let die_after = opts.die_after_jobs;
    let mut appended = 0u64;
    let on_done = |index: usize, _: &RunResult| {
        appended += 1;
        println!("journal: job {index} done ({appended} this process)");
        if Some(appended) == die_after {
            // A torn tail: half a record, no newline — what a kill -9 in
            // the middle of a write leaves behind. resume() must discard it.
            if let Ok(mut f) = std::fs::OpenOptions::new().append(true).open(path) {
                let _ = f.write_all(b"job 1 silcfm");
            }
            println!("journal: simulating a crash after {appended} jobs");
            std::process::exit(3);
        }
    };
    let results = match opts.sharded {
        Some(threads) => {
            let shard = ShardParams::with_threads(threads.max(1));
            run_grid_journaled_sharded(&jobs, 2, path, opts.resume, &shard, on_done)
        }
        None => run_grid_journaled(&jobs, 2, path, opts.resume, on_done),
    };
    match results {
        Ok(results) => {
            println!(
                "journal: {} jobs complete, aggregate={:016x}",
                results.len(),
                aggregate_digest(&results)
            );
        }
        Err(e) => violations.push(format!("journal: {e}")),
    }
}

fn main() {
    let opts = Opts::from_args();
    let mut violations = Vec::new();

    if !opts.skip_soak {
        traced_scheme_soak(&opts, &mut violations);
        grid_soak(&opts, &mut violations);
    }
    if opts.slo {
        slo_soak(&opts, &mut violations);
    }
    if let Some(path) = &opts.journal {
        journaled_grid(&opts, path, &mut violations);
    }

    for v in &violations {
        eprintln!("VIOLATION: {v}");
    }
    println!("chaos: {} invariant violations", violations.len());
    if !violations.is_empty() {
        std::process::exit(1);
    }
}
