//! Performance-regression gate: a trajectory of simulator-speed metrics
//! and a noise-aware `--check` against the committed baseline.
//!
//! Single-run wall-clock numbers on a shared 1-vCPU host swing ±30%, so a
//! naive "today slower than yesterday" gate would cry wolf on every push.
//! This binary measures the way the throughput benchmark's `--overhead`
//! mode does: all regimes are *interleaved* inside every repeat (so each
//! sees the same noise window) and the best rate per regime across rounds
//! wins (minimum-time estimation discards interference). On top of that,
//! the gated quantities are *ratios* between regimes measured in the same
//! rounds — scheme-vs-baseline speed and traced-vs-untraced overhead —
//! which cancel host speed entirely; absolute acc/s is recorded for the
//! trajectory but never gated.
//!
//! Modes:
//!   (default)     measure and append one run to the trajectory JSON
//!   --check       measure and compare against the *last* committed run;
//!                 exit non-zero if any ratio leaves its band
//!
//! Options:
//!   --smoke       tiny budget (CI-sized, seconds)
//!   --repeats N   interleaved rounds, best-of per regime (default 3)
//!   --band X      multiplicative tolerance for `--check` (default 1.6:
//!                 a ratio may drift to 1.6x or 1/1.6x of the baseline
//!                 before the gate trips — wide enough for cross-host
//!                 noise, tight enough to catch a 2x hot-path regression)
//!   --out PATH    trajectory path (default results/BENCH_trajectory.json)
//!   --label S     free-form label recorded with the run (e.g. a commit)

use std::time::Instant;

use silcfm_obs::json;
use silcfm_sim::{run, run_traced, RunParams, SchemeKind, TraceParams};
use silcfm_trace::profiles;
use silcfm_types::SystemConfig;

/// Default accesses per regime per round, spread over the profiles.
const DEFAULT_BUDGET: u64 = 280_000;

/// `--smoke` accesses per regime per round.
const SMOKE_BUDGET: u64 = 16_000;

/// Ring capacity for the traced regime (see `throughput.rs`: big rings
/// would time allocation, not the record path).
const EVENTS_CAPACITY: usize = 1 << 14;

struct Options {
    check: bool,
    smoke: bool,
    repeats: u32,
    band: f64,
    out: String,
    label: String,
}

fn parse_args() -> Options {
    let mut opts = Options {
        check: false,
        smoke: false,
        repeats: 3,
        band: 1.6,
        out: "results/BENCH_trajectory.json".to_string(),
        label: "unlabeled".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => opts.check = true,
            "--smoke" => opts.smoke = true,
            "--repeats" => {
                let v = args.next().expect("--repeats needs a value");
                opts.repeats = v.parse().expect("--repeats must be an integer");
                assert!(opts.repeats > 0, "--repeats must be positive");
            }
            "--band" => {
                let v = args.next().expect("--band needs a value");
                opts.band = v.parse().expect("--band must be a number");
                assert!(opts.band > 1.0, "--band must exceed 1.0");
            }
            "--out" => opts.out = args.next().expect("--out needs a path"),
            "--label" => opts.label = args.next().expect("--label needs a value"),
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!(
                    "usage: regress [--check] [--smoke] [--repeats N] [--band X] \
                     [--out PATH] [--label S]"
                );
                std::process::exit(2);
            }
        }
    }
    opts
}

/// The metric set of one measured run, in trajectory order. Absolute
/// rates contextualize the trajectory; only the `ratio_` entries are
/// gated by `--check`.
const METRICS: [&str; 6] = [
    "fs_base_acc_s",
    "fs_silcfm_acc_s",
    "fs_silcfm_traced_acc_s",
    "ratio_fs_silcfm_over_base",
    "ratio_fs_traced_over_untraced",
    "ratio_fs_silcfm_over_rand",
];

/// Accesses/sec for one scheme through the full `System::run` pipeline,
/// one round (the caller interleaves regimes and keeps the best).
fn fs_rate(kind: SchemeKind, cfg: &SystemConfig, params: &RunParams, per_profile: u64) -> f64 {
    let cores = u64::from(cfg.core.cores);
    let p = RunParams {
        accesses_per_core: (per_profile / cores).max(1),
        ..*params
    };
    let mut total = 0u64;
    let mut elapsed = 0.0f64;
    for profile in profiles::all() {
        let t0 = Instant::now();
        let r = run(profile, kind, cfg, &p);
        elapsed += t0.elapsed().as_secs_f64();
        std::hint::black_box(r.cycles);
        total += p.accesses_per_core * cores;
    }
    total as f64 / elapsed
}

/// [`fs_rate`] with the full observability stack live — ring tracers,
/// epoch sampler, and the latency-percentile sketches.
fn fs_traced_rate(cfg: &SystemConfig, params: &RunParams, per_profile: u64) -> f64 {
    let cores = u64::from(cfg.core.cores);
    let p = RunParams {
        accesses_per_core: (per_profile / cores).max(1),
        ..*params
    };
    let trace = TraceParams {
        events_capacity: EVENTS_CAPACITY,
        ..TraceParams::default_capture()
    };
    let mut total = 0u64;
    let mut elapsed = 0.0f64;
    for profile in profiles::all() {
        let t0 = Instant::now();
        let (r, report) = run_traced(profile, SchemeKind::silcfm(), cfg, &p, &trace);
        elapsed += t0.elapsed().as_secs_f64();
        std::hint::black_box((r.cycles, report.latency.count()));
        total += p.accesses_per_core * cores;
    }
    total as f64 / elapsed
}

/// Measures every regime with interleaved rounds and returns the metric
/// values in [`METRICS`] order.
fn measure(budget: u64, repeats: u32) -> Vec<f64> {
    let cfg = SystemConfig::small();
    let params = RunParams::smoke();
    let n_profiles = profiles::all().len() as u64;
    let per_profile = (budget / n_profiles).max(1);

    let mut fs_base = 0.0f64;
    let mut fs_rand = 0.0f64;
    let mut fs_silcfm = 0.0f64;
    let mut fs_traced = 0.0f64;
    for _ in 0..repeats {
        fs_base = fs_base.max(fs_rate(SchemeKind::NoNm, &cfg, &params, per_profile));
        fs_rand = fs_rand.max(fs_rate(SchemeKind::Rand, &cfg, &params, per_profile));
        fs_silcfm = fs_silcfm.max(fs_rate(SchemeKind::silcfm(), &cfg, &params, per_profile));
        fs_traced = fs_traced.max(fs_traced_rate(&cfg, &params, per_profile));
    }
    vec![
        fs_base,
        fs_silcfm,
        fs_traced,
        fs_silcfm / fs_base,
        fs_traced / fs_silcfm,
        fs_silcfm / fs_rand,
    ]
}

/// The last run's metric values out of a trajectory JSON, in [`METRICS`]
/// order. `None` when the trajectory holds no runs yet.
fn last_run(text: &str) -> Option<(String, Vec<f64>)> {
    let root = json::parse(text).ok()?;
    let runs = root.get("runs")?.as_array()?;
    let last = runs.last()?;
    let label = last.get("label")?.as_str()?.to_string();
    let metrics = last.get("metrics")?;
    let values: Option<Vec<f64>> = METRICS
        .iter()
        .map(|name| metrics.get(name).and_then(json::Value::as_f64))
        .collect();
    Some((label, values?))
}

/// Renders one trajectory entry.
fn render_run(label: &str, mode: &str, budget: u64, values: &[f64]) -> String {
    let body: Vec<String> = METRICS
        .iter()
        .zip(values)
        .map(|(name, v)| format!("        \"{name}\": {v:.4}"))
        .collect();
    format!(
        "    {{\n      \"label\": \"{label}\",\n      \"mode\": \"{mode}\",\n      \
         \"budget\": {budget},\n      \"metrics\": {{\n{}\n      }}\n    }}",
        body.join(",\n")
    )
}

/// Renders the whole trajectory file from its entry bodies.
fn render_trajectory(entries: &[String]) -> String {
    format!(
        "{{\n  \"meta\": {{\n    \"unit\": \"simulated accesses per second (fs_*) and \
         dimensionless ratios (ratio_*)\",\n    \"methodology\": \"interleaved regimes, \
         best-of per regime across rounds; only ratio_* metrics are gated\",\n    \
         \"config\": \"small\"\n  }},\n  \"runs\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    )
}

/// Extracts the existing entry bodies (the text between the outer
/// brackets of `"runs"`) so appending does not re-render history.
fn existing_entries(text: &str) -> Vec<String> {
    let Ok(root) = json::parse(text) else {
        return Vec::new();
    };
    let Some(runs) = root.get("runs").and_then(json::Value::as_array) else {
        return Vec::new();
    };
    runs.iter()
        .filter_map(|run| {
            let label = run.get("label")?.as_str()?;
            let mode = run.get("mode")?.as_str()?;
            let budget = run.get("budget")?.as_f64()? as u64;
            let metrics = run.get("metrics")?;
            let values: Option<Vec<f64>> = METRICS
                .iter()
                .map(|name| metrics.get(name).and_then(json::Value::as_f64))
                .collect();
            Some(render_run(label, mode, budget, &values?))
        })
        .collect()
}

fn main() {
    let opts = parse_args();
    let budget = if opts.smoke {
        SMOKE_BUDGET
    } else {
        DEFAULT_BUDGET
    };
    let mode = if opts.smoke { "smoke" } else { "default" };

    println!(
        "regress: {} rounds x {} accesses/regime, mode={mode}, {}",
        opts.repeats,
        budget,
        if opts.check { "checking" } else { "appending" }
    );

    let values = measure(budget, opts.repeats);
    println!("\n{:32} {:>14}", "metric", "value");
    for (name, v) in METRICS.iter().zip(&values) {
        println!("{name:32} {v:>14.4}");
    }

    if opts.check {
        let text = std::fs::read_to_string(&opts.out).unwrap_or_else(|e| {
            eprintln!("cannot read trajectory {}: {e}", opts.out);
            std::process::exit(1);
        });
        let Some((label, baseline)) = last_run(&text) else {
            eprintln!(
                "trajectory {} holds no complete runs; append one first",
                opts.out
            );
            std::process::exit(1);
        };
        println!(
            "\nchecking against last committed run \"{label}\" (band {:.2}x):",
            opts.band
        );
        let mut failed = false;
        for ((name, &now), &base) in METRICS.iter().zip(&values).zip(&baseline) {
            // Absolute rates vary with the host; only ratios are gated.
            if !name.starts_with("ratio_") {
                continue;
            }
            let drift = now / base;
            let ok = drift <= opts.band && drift >= 1.0 / opts.band;
            println!(
                "  {name:32} {base:>8.4} -> {now:>8.4}  ({drift:>5.2}x)  {}",
                if ok { "ok" } else { "OUT OF BAND" }
            );
            failed |= !ok;
        }
        if failed {
            eprintln!(
                "regression gate FAILED: a gated ratio left its band; if the change is \
                 intentional, append a new trajectory run (regress --label <why>) and commit it"
            );
            std::process::exit(1);
        }
        println!("regression gate: ok");
    } else {
        let mut entries = std::fs::read_to_string(&opts.out)
            .map(|text| existing_entries(&text))
            .unwrap_or_default();
        entries.push(render_run(&opts.label, mode, budget, &values));
        if let Some(dir) = std::path::Path::new(&opts.out).parent() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
        std::fs::write(&opts.out, render_trajectory(&entries)).expect("write trajectory");
        println!(
            "\nappended run \"{}\" ({} total) to {}",
            opts.label,
            entries.len(),
            opts.out
        );
    }
}
