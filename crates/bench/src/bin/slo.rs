//! SLO-regulated max-RPS search: the serving-plane headline table.
//!
//! The paper frames SILC-FM as a datacenter memory organization, and the
//! datacenter question is never "how fast is one batch run" but "how much
//! open-loop load can this scheme carry before its tail blows the SLO".
//! This binary answers it: for each scheme × arrival profile it drives an
//! AIMD search (`silcfm-serve`) over the offered request rate, running one
//! full open-loop trial per step — seeded arrivals, deadline admission
//! control, retry ladder — and records the highest rate whose whole-run
//! p99 stayed inside the SLO with goodput intact. A per-scheme recovery
//! run then injects channel fail/repair faults and measures how many
//! cycles after each repair the `obs.slo.*` epoch series returns to
//! compliance. Results land in `results/BENCH_slo.json`.
//!
//! Guarantees enforced on every run:
//!
//! * the conservation ledger holds (`offered = completed + shed +
//!   timed_out + failed`) — a trial that leaks a request aborts the bench;
//! * before anything is written, a determinism gate re-runs one trial per
//!   scheme on the sharded engine and asserts the full serving-plane
//!   digest (ledger, latency sketch, epoch series) is byte-identical to
//!   the serial run's;
//! * with `--journal`, every finished trial is flushed to a crash-safe
//!   journal; `--resume` replays the recorded verdicts through fresh
//!   regulators and continues the search byte-identically (the
//!   `aggregate=` line matches an uninterrupted run's).
//!
//! Run with: `cargo run --release -p silcfm-bench --bin slo`
//! Options:
//!   --smoke              tiny runs, short searches (CI-sized, seconds)
//!   --full               full-size runs; default is the quick preset
//!   --out PATH           output JSON path (default results/BENCH_slo.json)
//!   --no-write           measure and print, but do not write the JSON
//!   --skip-check         skip the serial-vs-sharded byte-identity gate
//!   --journal PATH       journal finished trials to PATH (crash-safe)
//!   --resume             resume a killed search from --journal PATH
//!   --die-after-trials N exit(3) with a torn journal tail after N live
//!                        trials (crash-injection hook for CI)

use std::hash::{Hash, Hasher};
use std::path::Path;

use silcfm_fault::FaultRates;
use silcfm_serve::{
    journal, run_serve, search_digest, Aimd, AimdParams, ServeParams, ServeReport,
    SloJournalWriter, TrialRecord,
};
use silcfm_sim::{FaultParams, RunParams, SchemeKind, ShardParams};
use silcfm_trace::arrivals::{self, ArrivalProfile};
use silcfm_trace::profiles;
use silcfm_types::{FxHasher, SystemConfig};

/// Workload the serving plane runs over: pointer-chasing and
/// memory-latency-bound, so scheme quality shows up directly in request
/// tails.
const WORKLOAD: &str = "mcf";

/// Goodput floor of the SLO: a trial shedding or failing more than this
/// fraction of offered requests violates even if the survivors are fast.
const MIN_GOODPUT: f64 = 0.95;

/// Nominal core clock used only to convert cycles to wall-clock RPS in the
/// artifact; the simulation itself never leaves the cycle domain.
const NOMINAL_GHZ: f64 = 4.0;

struct Options {
    smoke: bool,
    full: bool,
    out: String,
    write: bool,
    check: bool,
    journal: Option<String>,
    resume: bool,
    die_after_trials: Option<usize>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        smoke: false,
        full: false,
        out: "results/BENCH_slo.json".to_string(),
        write: true,
        check: true,
        journal: None,
        resume: false,
        die_after_trials: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--full" => opts.full = true,
            "--out" => {
                opts.out = args
                    .next()
                    .unwrap_or_else(|| usage_exit("--out needs a path"));
            }
            "--no-write" => opts.write = false,
            "--skip-check" => opts.check = false,
            "--journal" => {
                opts.journal = Some(
                    args.next()
                        .unwrap_or_else(|| usage_exit("--journal needs a path")),
                );
            }
            "--resume" => opts.resume = true,
            "--die-after-trials" => {
                let n = args
                    .next()
                    .unwrap_or_else(|| usage_exit("--die-after-trials needs a count"));
                opts.die_after_trials = Some(
                    n.parse()
                        .unwrap_or_else(|_| usage_exit("--die-after-trials needs a number")),
                );
            }
            other => usage_exit(&format!("unknown argument '{other}'")),
        }
    }
    if opts.smoke && opts.full {
        usage_exit("--smoke and --full are mutually exclusive");
    }
    if opts.journal.is_none() && (opts.resume || opts.die_after_trials.is_some()) {
        usage_exit("--resume and --die-after-trials require --journal");
    }
    opts
}

fn usage_exit(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "usage: slo [--smoke | --full] [--out PATH] [--no-write] [--skip-check] \
         [--journal PATH [--resume] [--die-after-trials N]]"
    );
    std::process::exit(2);
}

/// The schemes the serving table compares: SILC-FM against the three
/// baselines the paper positions it against.
fn lineup() -> Vec<SchemeKind> {
    vec![
        SchemeKind::silcfm(),
        SchemeKind::Hma,
        SchemeKind::Cameo,
        SchemeKind::Pom,
    ]
}

/// The serving contract the search runs under. The admission predictor is
/// deliberately *optimistic* (`est_service_cycles` below any scheme's real
/// per-record cost): the predictor then only sheds under genuine overload,
/// so the binding constraint at the cliff is each scheme's *measured*
/// behavior — deadline timeouts and tail latency — not the shared model.
fn serve_plane() -> ServeParams {
    ServeParams {
        est_service_cycles: 40,
        slo_p99_cycles: 8_000,
        ..ServeParams::default_plane()
    }
}

/// AIMD search ranges, tuned so the explored window straddles every
/// scheme's capacity cliff (requests per Mcycle per lane).
fn search_params(smoke: bool) -> AimdParams {
    if smoke {
        AimdParams {
            min_rate: 50,
            start_rate: 600,
            add_step: 250,
            decrease_num: 3,
            decrease_den: 4,
            trials: 6,
        }
    } else {
        AimdParams {
            min_rate: 50,
            start_rate: 600,
            add_step: 150,
            decrease_num: 3,
            decrease_den: 4,
            trials: 12,
        }
    }
}

/// Channel-only fault rates for the recovery runs: fail/repair cycles with
/// every other fault class off, so recovery time is attributable.
fn recovery_rates() -> FaultRates {
    FaultRates {
        channel_fail_per_m: 4.0,
        channel_repair_delay: 80_000,
        ..FaultRates::none()
    }
}

/// One (scheme × arrival) cell of the search grid, in journal order.
#[derive(Clone, Copy)]
struct SearchSpec {
    scheme: SchemeKind,
    arrival: &'static ArrivalProfile,
}

struct SearchSummary {
    spec: SearchSpec,
    best: u64,
    trials: Vec<TrialRecord>,
}

impl SearchSummary {
    /// The record of the last trial that met the SLO at the best rate.
    fn best_trial(&self) -> Option<&TrialRecord> {
        self.trials
            .iter()
            .rev()
            .find(|t| t.met && t.rate == self.best)
    }
}

struct Ctx {
    cfg: SystemConfig,
    params: RunParams,
    serve: ServeParams,
}

/// Runs one serial trial and enforces the conservation ledger.
fn run_trial(spec: &SearchSpec, rate: u64, ctx: &Ctx, threads: usize) -> ServeReport {
    let profile = profiles::by_name(WORKLOAD).expect("known workload");
    let report = run_serve(
        profile,
        spec.scheme,
        &ctx.cfg,
        &ctx.params,
        &ctx.serve,
        spec.arrival,
        rate,
        None,
        &ShardParams::with_threads(threads),
    )
    .expect("serving trial");
    assert!(
        report.stats.ledger.conserved(),
        "{}/{} rate={rate}: conservation ledger violated: {:?}",
        report.scheme,
        report.arrival,
        report.stats.ledger
    );
    report
}

/// The serial-vs-sharded byte-identity gate: one trial per scheme, re-run
/// at each thread count, full serving-plane digest compared.
fn sharded_gate(kinds: &[SchemeKind], ctx: &Ctx, rate: u64, threads: &[usize]) {
    let arrival = arrivals::by_name("bursty").expect("known arrival profile");
    for &scheme in kinds {
        let spec = SearchSpec { scheme, arrival };
        let want = run_trial(&spec, rate, ctx, 1).digest();
        for &n in threads {
            let got = run_trial(&spec, rate, ctx, n).digest();
            assert_eq!(
                got,
                want,
                "{} on {}: sharded ({n} threads) serving digest diverged from serial",
                scheme.label(),
                arrival.name
            );
        }
    }
    println!("sharded gate: ok for all schemes (threads {threads:?}, byte-identical)");
}

/// Per-scheme recovery run: channel fail/repair faults at a moderate rate,
/// recovery measured from each repair to the next compliant epoch.
fn recovery_run(scheme: SchemeKind, ctx: &Ctx, rate: u64) -> ServeReport {
    let profile = profiles::by_name(WORKLOAD).expect("known workload");
    let arrival = arrivals::by_name("poisson").expect("known arrival profile");
    // Faults stop at 60% of the arrival horizon so every repair (fail +
    // delay) lands while request traffic is still flowing.
    let faults = FaultParams {
        fault_seed: 2017,
        horizon_cycles: ctx.params.accesses_per_core * ctx.serve.est_service_cycles * 3 / 5,
        rates: recovery_rates(),
    };
    let report = run_serve(
        profile,
        scheme,
        &ctx.cfg,
        &ctx.params,
        &ctx.serve,
        arrival,
        rate,
        Some(&faults),
        &ShardParams::with_threads(1),
    )
    .expect("recovery trial");
    assert!(
        report.stats.ledger.conserved(),
        "{} recovery: conservation ledger violated: {:?}",
        report.scheme,
        report.stats.ledger
    );
    assert!(report.fault_stats.conserved());
    report
}

/// JSON body for one trial record.
fn trial_json(t: &TrialRecord) -> String {
    let l = &t.ledger;
    format!(
        "{{ \"rate_per_mcycle\": {}, \"offered\": {}, \"completed\": {}, \"shed\": {}, \
         \"timed_out\": {}, \"failed\": {}, \"retries\": {}, \"p99\": {}, \
         \"goodput\": {:.4}, \"shed_rate\": {:.4}, \"met\": {} }}",
        t.rate,
        l.offered,
        l.completed,
        l.shed,
        l.timed_out,
        l.failed,
        l.retries,
        t.p99,
        l.goodput(),
        l.shed_rate(),
        t.met
    )
}

fn json_u64_opt(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| x.to_string())
}

/// Deterministic digest over the whole search outcome; equality between a
/// fresh run and a killed-then-resumed run is the resume-correctness
/// check CI scripts grep for.
fn aggregate_digest(summaries: &[SearchSummary]) -> u64 {
    let mut h = FxHasher::default();
    for s in summaries {
        s.best.hash(&mut h);
        for t in &s.trials {
            format!("{t:?}").hash(&mut h);
        }
    }
    h.finish()
}

fn main() {
    let opts = parse_args();
    let (cfg, params, mode) = if opts.smoke {
        (SystemConfig::small(), RunParams::smoke(), "smoke")
    } else if opts.full {
        (SystemConfig::experiment(), RunParams::full(), "full")
    } else {
        (SystemConfig::experiment(), RunParams::quick(), "quick")
    };
    let serve = serve_plane();
    let aimd_params = search_params(opts.smoke);
    let recovery_rate = aimd_params.start_rate / 2;
    let ctx = Ctx { cfg, params, serve };
    let kinds = lineup();
    let profile_names: Vec<&str> = arrivals::all().iter().map(|a| a.name).collect();
    let searches: Vec<SearchSpec> = kinds
        .iter()
        .flat_map(|&scheme| {
            arrivals::all()
                .iter()
                .map(move |arrival| SearchSpec { scheme, arrival })
        })
        .collect();

    println!(
        "slo: {} schemes x {} arrival profiles on {WORKLOAD}, mode={mode}, {} accesses/core, \
         {} trials/search",
        kinds.len(),
        profile_names.len(),
        params.accesses_per_core,
        aimd_params.trials
    );

    // The journal binds to the full search configuration: any change to the
    // grid, the serving contract, or the regulator invalidates old files.
    let labels: Vec<&str> = kinds.iter().map(|k| k.label()).collect();
    let spec_text = format!(
        "slo v1 mode={mode} workload={WORKLOAD} schemes={labels:?} arrivals={profile_names:?} \
         serve={serve:?} aimd={aimd_params:?} seed={} apc={} cores={} min_goodput={MIN_GOODPUT}",
        params.seed, params.accesses_per_core, cfg.core.cores
    );
    let digest = search_digest(&spec_text);
    let (mut writer, replayed) = match (&opts.journal, opts.resume) {
        (Some(p), true) => {
            let (w, done) = journal::resume(Path::new(p), digest).expect("resume SLO journal");
            println!("slo: resumed {} finished trials from {p}", done.len());
            (Some(w), done)
        }
        (Some(p), false) => (
            Some(SloJournalWriter::create(Path::new(p), digest).expect("create SLO journal")),
            Vec::new(),
        ),
        (None, _) => (None, Vec::new()),
    };

    let mut live_done = 0usize;
    let mut summaries: Vec<SearchSummary> = Vec::new();
    for (si, spec) in searches.iter().enumerate() {
        let mut aimd = Aimd::new(aimd_params);
        let mut trials = Vec::new();
        for r in replayed.iter().filter(|r| r.search == si) {
            assert_eq!(r.trial, aimd.observed(), "journal trials out of order");
            assert_eq!(
                r.rate,
                aimd.rate(),
                "journaled rate diverges from the replayed regulator"
            );
            aimd.observe(r.met);
            trials.push(*r);
        }
        while !aimd.done() {
            let rate = aimd.rate();
            let report = run_trial(spec, rate, &ctx, 1);
            let met = report.slo_met(&serve, MIN_GOODPUT);
            let rec = TrialRecord {
                search: si,
                trial: aimd.observed(),
                rate,
                ledger: report.stats.ledger,
                p99: report.stats.p99(),
                met,
            };
            if let Some(w) = writer.as_mut() {
                w.append(&rec).expect("append SLO journal");
            }
            println!(
                "slo: {}/{} trial {} rate={} p99={} goodput={:.3} shed={:.3} met={}",
                spec.scheme.label(),
                spec.arrival.name,
                rec.trial,
                rate,
                rec.p99,
                rec.ledger.goodput(),
                rec.ledger.shed_rate(),
                met
            );
            aimd.observe(met);
            trials.push(rec);
            live_done += 1;
            if opts.die_after_trials == Some(live_done) {
                // Simulate a crash mid-append: leave a torn (newline-less)
                // record on the journal tail and die with the chaos
                // harness's crash exit code.
                drop(writer.take());
                let path = opts.journal.as_ref().expect("checked in parse_args");
                use std::io::Write as _;
                let mut f = std::fs::OpenOptions::new()
                    .append(true)
                    .open(path)
                    .expect("reopen journal for crash injection");
                write!(f, "trial {si} 9 1").expect("write torn tail");
                eprintln!("slo: dying after {live_done} live trials (torn journal tail)");
                std::process::exit(3);
            }
        }
        summaries.push(SearchSummary {
            spec: *spec,
            best: aimd.best_ok(),
            trials,
        });
    }

    println!(
        "\n{:8} {:8} {:>10} {:>10} {:>9} {:>9} {:>9}",
        "scheme", "arrival", "max_rate", "p99@best", "goodput", "shed", "rps@4GHz"
    );
    for s in &summaries {
        let (p99, goodput, shed) = s.best_trial().map_or((0, 0.0, 0.0), |t| {
            (t.p99, t.ledger.goodput(), t.ledger.shed_rate())
        });
        let rps = s.best as f64 * NOMINAL_GHZ * 1_000.0 * f64::from(cfg.core.cores);
        println!(
            "{:8} {:8} {:>10} {:>10} {:>9.3} {:>9.3} {:>9.2e}",
            s.spec.scheme.label(),
            s.spec.arrival.name,
            s.best,
            p99,
            goodput,
            shed,
            rps
        );
    }

    // Recovery: channel fail/repair injection per scheme at a moderate
    // fixed rate (half the search's start rate).
    let recoveries: Vec<(SchemeKind, ServeReport)> = kinds
        .iter()
        .map(|&scheme| (scheme, recovery_run(scheme, &ctx, recovery_rate)))
        .collect();
    println!();
    for (scheme, r) in &recoveries {
        let samples: Vec<u64> = r
            .stats
            .recoveries
            .iter()
            .filter_map(|&(_, rec)| rec)
            .collect();
        let mean = samples
            .iter()
            .sum::<u64>()
            .checked_div(samples.len() as u64);
        println!(
            "slo: recovery {} rate={recovery_rate} faults_delivered={} repairs={} recovered={} \
             mean={:?} cycles",
            scheme.label(),
            r.faults_delivered,
            r.stats.recoveries.len(),
            samples.len(),
            mean
        );
    }

    println!("slo: aggregate={:016x}", aggregate_digest(&summaries));

    if opts.check {
        let threads: &[usize] = if opts.smoke { &[2] } else { &[2, 4] };
        sharded_gate(&kinds, &ctx, aimd_params.start_rate, threads);
    }

    if opts.write {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"meta\": {\n");
        out.push_str(&format!("    \"mode\": \"{mode}\",\n"));
        out.push_str(&format!("    \"workload\": \"{WORKLOAD}\",\n"));
        out.push_str(&format!(
            "    \"accesses_per_core\": {},\n",
            params.accesses_per_core
        ));
        out.push_str(&format!("    \"seed\": {},\n", params.seed));
        out.push_str(&format!("    \"lanes\": {},\n", cfg.core.cores));
        out.push_str("    \"rate_unit\": \"requests per million CPU cycles per lane\",\n");
        out.push_str(&format!("    \"nominal_ghz\": {NOMINAL_GHZ},\n"));
        out.push_str(&format!("    \"min_goodput\": {MIN_GOODPUT},\n"));
        out.push_str(&format!(
            "    \"slo_p99_cycles\": {},\n    \"deadline_cycles\": {},\n    \
             \"records_per_request\": {},\n    \"est_service_cycles\": {},\n    \
             \"retry_budget\": {},\n    \"retry_backoff_cycles\": {},\n    \
             \"epoch_cycles\": {},\n",
            serve.slo_p99_cycles,
            serve.deadline_cycles,
            serve.records_per_request,
            serve.est_service_cycles,
            serve.retry_budget,
            serve.retry_backoff_cycles,
            serve.epoch_cycles
        ));
        out.push_str(&format!(
            "    \"aimd\": {{ \"start_rate\": {}, \"add_step\": {}, \"decrease\": \"{}/{}\", \
             \"min_rate\": {}, \"trials\": {} }},\n",
            aimd_params.start_rate,
            aimd_params.add_step,
            aimd_params.decrease_num,
            aimd_params.decrease_den,
            aimd_params.min_rate,
            aimd_params.trials
        ));
        let rates = recovery_rates();
        out.push_str(&format!(
            "    \"recovery\": {{ \"rate_per_mcycle\": {recovery_rate}, \
             \"channel_fail_per_m\": {}, \"channel_repair_delay\": {}, \"fault_seed\": 2017 }}\n",
            rates.channel_fail_per_m, rates.channel_repair_delay
        ));
        out.push_str("  },\n");
        out.push_str("  \"schemes\": {\n");
        let scheme_bodies: Vec<String> = kinds
            .iter()
            .map(|&kind| {
                let arrival_bodies: Vec<String> = summaries
                    .iter()
                    .filter(|s| s.spec.scheme.label() == kind.label())
                    .map(|s| {
                        let trials: Vec<String> = s
                            .trials
                            .iter()
                            .map(|t| format!("          {}", trial_json(t)))
                            .collect();
                        let best = s.best_trial().map_or_else(
                            || "null".to_string(),
                            trial_json,
                        );
                        let rps =
                            s.best as f64 * NOMINAL_GHZ * 1_000.0 * f64::from(cfg.core.cores);
                        format!(
                            "      \"{}\": {{\n        \"max_rate_per_mcycle\": {},\n        \
                             \"max_rps_system_at_4ghz\": {rps:.0},\n        \"best\": {best},\n        \
                             \"trials\": [\n{}\n        ]\n      }}",
                            s.spec.arrival.name,
                            s.best,
                            trials.join(",\n")
                        )
                    })
                    .collect();
                let (_, r) = recoveries
                    .iter()
                    .find(|(k, _)| k.label() == kind.label())
                    .expect("recovery run covered every scheme");
                let samples: Vec<u64> = r
                    .stats
                    .recoveries
                    .iter()
                    .filter_map(|&(_, rec)| rec)
                    .collect();
                let mean = samples
                    .iter()
                    .sum::<u64>()
                    .checked_div(samples.len() as u64);
                let l = &r.stats.ledger;
                let recovery_body = format!(
                    "      \"recovery\": {{ \"rate_per_mcycle\": {recovery_rate}, \
                     \"faults_delivered\": {}, \"repairs\": {}, \"recovered\": {}, \
                     \"mean_recovery_cycles\": {}, \"max_recovery_cycles\": {}, \
                     \"completed\": {}, \"timed_out\": {}, \"failed\": {}, \"retries\": {} }}",
                    r.faults_delivered,
                    r.stats.recoveries.len(),
                    samples.len(),
                    json_u64_opt(mean),
                    json_u64_opt(samples.iter().max().copied()),
                    l.completed,
                    l.timed_out,
                    l.failed,
                    l.retries
                );
                format!(
                    "    \"{}\": {{\n{},\n{}\n    }}",
                    kind.label(),
                    arrival_bodies.join(",\n"),
                    recovery_body
                )
            })
            .collect();
        out.push_str(&scheme_bodies.join(",\n"));
        out.push_str("\n  }\n}\n");
        if let Some(dir) = std::path::Path::new(&opts.out).parent() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
        std::fs::write(&opts.out, out).expect("write results JSON");
        println!("\nwrote {}", opts.out);
    }
}
