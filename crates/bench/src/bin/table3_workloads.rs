//! Table III — workload characterization.
//!
//! Runs each synthetic workload on the no-NM baseline system and reports
//! the *measured* LLC MPKI (per core) and touched footprint, alongside the
//! profile's MPKI class from the paper's table. Footprints are the paper's
//! scaled down by ~two orders of magnitude (see DESIGN.md substitutions).

use silcfm_bench::{baselines, HarnessOpts};
use silcfm_trace::profiles;

fn main() {
    let opts = HarnessOpts::from_args();
    let params = opts.params();

    println!("# Table III: workloads ({} mode)", opts.mode());
    println!(
        "{:8} {:>12} {:>12} {:>16} {:>14}",
        "name", "class", "MPKI(meas.)", "footprint(MiB)", "writes(frac)"
    );
    for (profile, r) in profiles::all().iter().zip(baselines(&params)) {
        println!(
            "{:8} {:>12} {:>12.1} {:>16.1} {:>14.2}",
            profile.name,
            profile.class.to_string().replace(" MPKI", ""),
            r.mpki,
            r.footprint_bytes as f64 / (1 << 20) as f64,
            profile.write_fraction,
        );
    }
    println!();
    println!("Class boundaries (paper): Low < 11, Medium 11..=32, High > 32 LLC MPKI per core.");
    println!("Measured MPKI is post-LLC (the cache filters some hot-set reuse).");
}
