//! Simulator throughput benchmark: simulated accesses per second, per
//! scheme and per layer.
//!
//! Every figure in the paper is produced by replaying post-LLC-miss
//! accesses through [`MemoryScheme::access`], so simulated-accesses-per-
//! second is the currency of the whole reproduction. This binary measures
//! it at two layers:
//!
//! * **scheme-only** — a pre-generated access stream driven straight into
//!   the scheme, isolating the placement logic (remap lookups, swap
//!   bookkeeping, op emission) from the rest of the machine;
//! * **full-system** — [`silcfm_sim::run`], i.e. cores + caches + scheme +
//!   both DRAM timing models, which is what the experiment harnesses pay.
//!
//! Each scheme gets a fixed access budget spread evenly over the Table III
//! workload profiles. The binary also times the `scheme_shootout` grid
//! (serial vs sharded-parallel) so whole-grid speed is tracked alongside
//! per-access speed. Results land in `results/BENCH_throughput.json`.
//!
//! Run with: `cargo run --release -p silcfm-bench --bin throughput`
//! Options:
//!   --budget N    accesses per scheme per layer (default 560000)
//!   --repeats N   repetitions per measurement; best rate wins (default 3)
//!   --out PATH    output JSON path (default results/BENCH_throughput.json)
//!   --no-write    measure and print, but do not write the JSON
//!   --skip-grid   skip the serial-vs-parallel grid timing
//!   --overhead    also measure SILC-FM full-system with the ring tracers
//!                 and epoch sampler live (tracer-on vs tracer-off acc/s)
//!   --baseline P  JSON from a pre-change build of this binary; its rates
//!                 are embedded as "pre_change" and a full-system SILC-FM
//!                 speedup ratio is computed against it
//!
//! Each measurement is repeated `--repeats` times and the best rate is
//! reported: minimum-time estimation discards interference from whatever
//! else the host is running, which on shared machines dwarfs the
//! simulator's own run-to-run variation.

use std::time::Instant;

use silcfm_sim::experiment::space_for;
use silcfm_sim::{
    run, run_grid, run_grid_serial, run_traced, ExperimentGrid, RunParams, SchemeKind, TraceParams,
};
use silcfm_trace::{profiles, PageMapper, PlacementPolicy, WorkloadGen};
use silcfm_types::{Access, CoreId, SystemConfig};

/// Default accesses per scheme per layer, spread over the profiles.
const DEFAULT_BUDGET: u64 = 560_000;

struct Options {
    budget: u64,
    repeats: u32,
    out: String,
    write: bool,
    grid: bool,
    overhead: bool,
    baseline: Option<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        budget: DEFAULT_BUDGET,
        repeats: 3,
        out: "results/BENCH_throughput.json".to_string(),
        write: true,
        grid: true,
        overhead: false,
        baseline: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--budget" => {
                let v = args.next().expect("--budget needs a value");
                opts.budget = v.parse().expect("--budget must be an integer");
            }
            "--repeats" => {
                let v = args.next().expect("--repeats needs a value");
                opts.repeats = v.parse().expect("--repeats must be an integer");
                assert!(opts.repeats > 0, "--repeats must be positive");
            }
            "--out" => opts.out = args.next().expect("--out needs a path"),
            "--no-write" => opts.write = false,
            "--skip-grid" => opts.grid = false,
            "--overhead" => opts.overhead = true,
            "--baseline" => opts.baseline = Some(args.next().expect("--baseline needs a path")),
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!(
                    "usage: throughput [--budget N] [--repeats N] [--out PATH] \
                     [--no-write] [--skip-grid] [--overhead] [--baseline PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    opts
}

/// The benchmark lineup: the no-NM baseline plus the Fig. 7 schemes.
fn lineup() -> Vec<SchemeKind> {
    let mut kinds = vec![SchemeKind::NoNm];
    kinds.extend(SchemeKind::fig7_lineup());
    kinds
}

/// Pre-generates one post-LLC-miss access stream per profile: the workload
/// generator's virtual stream pushed through first-touch translation, as
/// `System::run` would. Generated once and replayed for every scheme so
/// all schemes see identical streams.
fn generate_streams(
    cfg: &SystemConfig,
    params: &RunParams,
    per_profile: u64,
) -> Vec<(silcfm_types::AddressSpace, Vec<Access>)> {
    let cores = u64::from(cfg.core.cores);
    profiles::all()
        .iter()
        .map(|profile| {
            let scaled = profiles::scaled(profile, params.footprint_scale);
            let space = space_for(&scaled, cfg, params);
            let mut mapper = PageMapper::new(space, PlacementPolicy::RandomSeeded(params.seed));
            let mut gens: Vec<WorkloadGen> = (0..cores)
                .map(|i| WorkloadGen::new(&scaled, CoreId::new(i as u16), params.seed))
                .collect();
            let mut stream = Vec::with_capacity(per_profile as usize);
            for i in 0..per_profile {
                let core = CoreId::new((i % cores) as u16);
                let rec = gens[(i % cores) as usize].next_record();
                let paddr = mapper
                    .translate(core, rec.vaddr)
                    .expect("footprint exceeds physical memory");
                stream.push(Access::read(paddr, rec.pc, core));
            }
            (space, stream)
        })
        .collect()
}

/// Accesses/sec for one scheme with the access stream driven straight into
/// `MemoryScheme::access`, bypassing cores/caches/DRAM.
fn scheme_only_rate(
    kind: SchemeKind,
    streams: &[(silcfm_types::AddressSpace, Vec<Access>)],
    repeats: u32,
) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..repeats {
        let mut total = 0u64;
        let mut elapsed = 0.0f64;
        let mut sink = 0u64;
        let mut out = silcfm_types::SchemeOutcome::empty();
        for (space, stream) in streams {
            let mut scheme = kind.build(*space, stream.len() as u64);
            let t0 = Instant::now();
            for access in stream {
                scheme.access(access, &mut out);
                sink ^= out.critical_bytes().wrapping_add(out.background_bytes());
            }
            elapsed += t0.elapsed().as_secs_f64();
            total += stream.len() as u64;
        }
        std::hint::black_box(sink);
        best = best.max(total as f64 / elapsed);
    }
    best
}

/// Accesses/sec for one scheme through the full `System::run` pipeline.
fn full_system_rate(
    kind: SchemeKind,
    cfg: &SystemConfig,
    params: &RunParams,
    per_profile: u64,
    repeats: u32,
) -> f64 {
    let cores = u64::from(cfg.core.cores);
    let p = RunParams {
        accesses_per_core: (per_profile / cores).max(1),
        ..*params
    };
    let mut best = 0.0f64;
    for _ in 0..repeats {
        let mut total = 0u64;
        let mut elapsed = 0.0f64;
        for profile in profiles::all() {
            let t0 = Instant::now();
            let r = run(profile, kind, cfg, &p);
            elapsed += t0.elapsed().as_secs_f64();
            std::hint::black_box(r.cycles);
            total += p.accesses_per_core * cores;
        }
        best = best.max(total as f64 / elapsed);
    }
    best
}

/// Accesses/sec for one scheme through `System::run` with the full
/// observability stack live: ring tracers on the controller and both DRAM
/// devices, the demand-latency histograms, and the epoch sampler. The gap
/// against [`full_system_rate`] is the price of turning tracing on; the
/// NullTracer build pays nothing (the emit sites monomorphize away).
fn full_system_traced_rate(
    kind: SchemeKind,
    cfg: &SystemConfig,
    params: &RunParams,
    per_profile: u64,
    repeats: u32,
) -> f64 {
    let cores = u64::from(cfg.core.cores);
    let p = RunParams {
        accesses_per_core: (per_profile / cores).max(1),
        ..*params
    };
    let trace = TraceParams::default_capture();
    let mut best = 0.0f64;
    for _ in 0..repeats {
        let mut total = 0u64;
        let mut elapsed = 0.0f64;
        for profile in profiles::all() {
            let t0 = Instant::now();
            let (r, report) = run_traced(profile, kind, cfg, &p, &trace);
            elapsed += t0.elapsed().as_secs_f64();
            std::hint::black_box((r.cycles, report.event_count()));
            total += p.accesses_per_core * cores;
        }
        best = best.max(total as f64 / elapsed);
    }
    best
}

/// Times the `scheme_shootout` grid serially and through the sharded pool.
fn grid_times() -> (usize, usize, f64, f64) {
    let threads = silcfm_sim::runner::default_threads();
    let workload = profiles::by_name("lib").unwrap();
    let jobs = ExperimentGrid::new(SystemConfig::experiment(), RunParams::smoke())
        .workload(workload)
        .scheme(SchemeKind::NoNm)
        .schemes(SchemeKind::fig7_lineup())
        .jobs();

    let t0 = Instant::now();
    let serial = run_grid_serial(&jobs);
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let parallel = run_grid(&jobs, threads);
    let parallel_ms = t1.elapsed().as_secs_f64() * 1e3;

    assert!(
        serial
            .iter()
            .zip(&parallel)
            .all(|(s, p)| s.cycles == p.cycles && s.traffic == p.traffic),
        "parallel runner diverged from the serial path"
    );
    (jobs.len(), threads, serial_ms, parallel_ms)
}

/// Pre-change rates parsed back out of a JSON file written by an older
/// build of this binary (same format).
struct Baseline {
    scheme_only: String,
    full_system: String,
    silcfm_full_system: Option<f64>,
}

/// Extracts the body of a flat `"key": { ... }` object. The input is this
/// binary's own output, so object bodies never contain nested braces.
fn extract_object(json: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": {{");
    let start = json.find(&tag)? + tag.len();
    let end = start + json[start..].find('}')?;
    Some(json[start..end].trim().to_string())
}

/// Extracts a single `"name": <number>` rate from an object body.
fn extract_rate(body: &str, name: &str) -> Option<f64> {
    let tag = format!("\"{name}\": ");
    let start = body.find(&tag)? + tag.len();
    let rest = &body[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn load_baseline(path: &str) -> Baseline {
    let json = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let full_system =
        extract_object(&json, "full_system").expect("baseline JSON has no full_system section");
    Baseline {
        silcfm_full_system: extract_rate(&full_system, "silcfm"),
        scheme_only: extract_object(&json, "scheme_only").unwrap_or_default(),
        full_system,
    }
}

fn main() {
    let opts = parse_args();
    let cfg = SystemConfig::small();
    let params = RunParams::smoke();
    let n_profiles = profiles::all().len() as u64;
    let per_profile = (opts.budget / n_profiles).max(1);

    println!(
        "throughput: {} accesses/scheme/layer over {} profiles ({} each), config=small",
        per_profile * n_profiles,
        n_profiles,
        per_profile
    );

    let streams = generate_streams(&cfg, &params, per_profile);

    let mut scheme_only: Vec<(&'static str, f64)> = Vec::new();
    let mut full_system: Vec<(&'static str, f64)> = Vec::new();
    println!(
        "\n{:8} {:>18} {:>18}",
        "scheme", "scheme-only acc/s", "full-system acc/s"
    );
    for kind in lineup() {
        let so = scheme_only_rate(kind, &streams, opts.repeats);
        let fs = full_system_rate(kind, &cfg, &params, per_profile, opts.repeats);
        println!("{:8} {:>18.0} {:>18.0}", kind.label(), so, fs);
        scheme_only.push((kind.label(), so));
        full_system.push((kind.label(), fs));
    }

    let overhead = if opts.overhead {
        let kind = SchemeKind::silcfm();
        let off = full_system
            .iter()
            .find(|(name, _)| *name == "silcfm")
            .map_or(0.0, |(_, r)| *r);
        let on = full_system_traced_rate(kind, &cfg, &params, per_profile, opts.repeats);
        println!(
            "\nsilcfm full-system tracing overhead: {:.0} acc/s off, {:.0} acc/s on \
             ({:.1}% slower)",
            off,
            on,
            (1.0 - on / off) * 100.0
        );
        Some((off, on))
    } else {
        None
    };

    let grid = if opts.grid {
        let (jobs, threads, serial_ms, parallel_ms) = grid_times();
        println!(
            "\ngrid of {jobs} runs: serial {serial_ms:.0} ms, \
             parallel ({threads} threads) {parallel_ms:.0} ms"
        );
        if threads == 1 {
            eprintln!(
                "warning: grid timed with 1 thread (host parallelism or SILCFM_THREADS); \
                 serial vs \"parallel\" measures pool overhead, not speedup — recording null"
            );
        }
        Some((jobs, threads, serial_ms, parallel_ms))
    } else {
        None
    };

    let baseline = opts.baseline.as_deref().map(load_baseline);
    if let Some(b) = &baseline {
        let post = full_system
            .iter()
            .find(|(name, _)| *name == "silcfm")
            .map(|(_, r)| *r);
        if let (Some(pre), Some(post)) = (b.silcfm_full_system, post) {
            println!(
                "\nfull-system silcfm vs baseline: {:.0} -> {:.0} acc/s ({:.3}x)",
                pre,
                post,
                post / pre
            );
        }
    }

    if opts.write {
        let json = render_json(
            opts.budget,
            per_profile * n_profiles,
            &scheme_only,
            &full_system,
            grid,
            overhead,
            baseline.as_ref(),
        );
        if let Some(dir) = std::path::Path::new(&opts.out).parent() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
        std::fs::write(&opts.out, json).expect("write results JSON");
        println!("\nwrote {}", opts.out);
    }
}

/// Hand-rolled JSON (the workspace is dependency-free by policy).
fn render_json(
    budget: u64,
    accesses: u64,
    scheme_only: &[(&'static str, f64)],
    full_system: &[(&'static str, f64)],
    grid: Option<(usize, usize, f64, f64)>,
    overhead: Option<(f64, f64)>,
    baseline: Option<&Baseline>,
) -> String {
    fn rates(pairs: &[(&'static str, f64)]) -> String {
        let body: Vec<String> = pairs
            .iter()
            .map(|(name, rate)| format!("    \"{name}\": {rate:.0}"))
            .collect();
        body.join(",\n")
    }
    fn reindent(body: &str, indent: &str) -> String {
        body.lines()
            .map(|l| format!("{indent}{}", l.trim()))
            .collect::<Vec<_>>()
            .join("\n")
    }
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"meta\": {\n");
    out.push_str(&format!("    \"budget_per_scheme_per_layer\": {budget},\n"));
    out.push_str(&format!(
        "    \"accesses_measured_per_scheme\": {accesses},\n"
    ));
    out.push_str("    \"config\": \"small\",\n");
    out.push_str("    \"unit\": \"simulated accesses per second\"\n");
    out.push_str("  },\n");
    out.push_str("  \"scheme_only\": {\n");
    out.push_str(&rates(scheme_only));
    out.push_str("\n  },\n");
    out.push_str("  \"full_system\": {\n");
    out.push_str(&rates(full_system));
    out.push_str("\n  }");
    if let Some((jobs, threads, serial_ms, parallel_ms)) = grid {
        out.push_str(",\n  \"grid\": {\n");
        out.push_str(&format!("    \"jobs\": {jobs},\n"));
        out.push_str(&format!("    \"threads\": {threads},\n"));
        out.push_str(&format!("    \"serial_ms\": {serial_ms:.1},\n"));
        out.push_str(&format!("    \"parallel_ms\": {parallel_ms:.1},\n"));
        // A 1-thread "parallel" run measures pool overhead, not speedup;
        // recording 1.00x would misrepresent an unmeasurable quantity.
        if threads == 1 {
            out.push_str("    \"speedup\": null,\n");
            out.push_str("    \"warning\": \"measured with 1 thread; speedup is not defined\"\n");
        } else {
            out.push_str(&format!(
                "    \"speedup\": {:.2}\n",
                serial_ms / parallel_ms
            ));
        }
        out.push_str("  }");
    }
    if let Some((off, on)) = overhead {
        out.push_str(",\n  \"tracing_overhead\": {\n");
        out.push_str("    \"scheme\": \"silcfm\",\n");
        out.push_str("    \"layer\": \"full_system\",\n");
        out.push_str(&format!("    \"tracer_off_acc_s\": {off:.0},\n"));
        out.push_str(&format!("    \"tracer_on_acc_s\": {on:.0},\n"));
        out.push_str(&format!(
            "    \"on_over_off\": {:.3}\n",
            if off > 0.0 { on / off } else { 0.0 }
        ));
        out.push_str("  }");
    }
    if let Some(b) = baseline {
        out.push_str(",\n  \"pre_change\": {\n");
        out.push_str("    \"scheme_only\": {\n");
        out.push_str(&reindent(&b.scheme_only, "      "));
        out.push_str("\n    },\n");
        out.push_str("    \"full_system\": {\n");
        out.push_str(&reindent(&b.full_system, "      "));
        out.push_str("\n    }\n  }");
        let post = full_system
            .iter()
            .find(|(name, _)| *name == "silcfm")
            .map(|(_, r)| *r);
        if let (Some(pre), Some(post)) = (b.silcfm_full_system, post) {
            out.push_str(&format!(
                ",\n  \"speedup_full_system_silcfm\": {:.3}",
                post / pre
            ));
        }
    }
    out.push_str("\n}\n");
    out
}
