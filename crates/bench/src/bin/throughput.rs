//! Simulator throughput benchmark: simulated accesses per second, per
//! scheme and per layer.
//!
//! Every figure in the paper is produced by replaying post-LLC-miss
//! accesses through [`MemoryScheme::access`], so simulated-accesses-per-
//! second is the currency of the whole reproduction. This binary measures
//! it at two layers:
//!
//! * **scheme-only** — a pre-generated access stream driven straight into
//!   the scheme, isolating the placement logic (remap lookups, swap
//!   bookkeeping, op emission) from the rest of the machine;
//! * **full-system** — [`silcfm_sim::run`], i.e. cores + caches + scheme +
//!   both DRAM timing models, which is what the experiment harnesses pay.
//!
//! Each scheme gets a fixed access budget spread evenly over the Table III
//! workload profiles. The binary also times the `scheme_shootout` grid
//! (serial vs sharded-parallel) so whole-grid speed is tracked alongside
//! per-access speed. Results land in `results/BENCH_throughput.json`.
//!
//! The scheme-only layer is measured twice: access-at-a-time through
//! [`MemoryScheme::access`], and in chunks of `--batch` accesses through
//! [`MemoryScheme::access_batch`]. Before the batched layer is timed, a
//! digest gate replays every stream both ways and asserts the op streams,
//! service decisions, stalls, and end-of-run stats are byte-identical —
//! a batched rate that changed the answer would be worthless.
//!
//! Run with: `cargo run --release -p silcfm-bench --bin throughput`
//! Options:
//!   --budget N    accesses per scheme per layer (default 560000)
//!   --batch N     accesses per `access_batch` call in the batched layer
//!                 (default 4096)
//!   --repeats N   repetitions per measurement; best rate wins (default 3)
//!   --out PATH    output JSON path (default results/BENCH_throughput.json)
//!   --no-write    measure and print, but do not write the JSON
//!   --skip-grid   skip the serial-vs-parallel grid timing
//!   --overhead    also measure SILC-FM full-system with the ring tracers
//!                 and epoch sampler live (tracer-on vs tracer-off acc/s),
//!                 the metrics-only tier (latency sketches ON, no event
//!                 buffering), plus the sampling tracer at 1-in-N rates
//!   --baseline P  JSON from a pre-change build of this binary; its rates
//!                 are embedded as "pre_change" and a full-system SILC-FM
//!                 speedup ratio is computed against it
//!
//! Each measurement is repeated `--repeats` times and the best rate is
//! reported: minimum-time estimation discards interference from whatever
//! else the host is running, which on shared machines dwarfs the
//! simulator's own run-to-run variation.

use std::hash::Hasher as _;
use std::time::Instant;

use silcfm_sim::experiment::space_for;
use silcfm_sim::{
    run, run_grid, run_grid_serial, run_metrics_only, run_sampled_lean, run_traced, ExperimentGrid,
    RunParams, SchemeKind, TraceParams,
};
use silcfm_trace::{profiles, PageMapper, PlacementPolicy, WorkloadGen};
use silcfm_types::{Access, BatchOutcome, CoreId, FxHasher, MemKind, MemOp, SystemConfig};

/// Default accesses per scheme per layer, spread over the profiles.
const DEFAULT_BUDGET: u64 = 560_000;

/// Default accesses per `access_batch` call in the batched layer.
const DEFAULT_BATCH: u64 = 4096;

/// Ring capacity for the `--overhead` regimes. The timed region includes
/// system construction (as it does for the untraced rate, so both sides
/// pay the same fixed costs) — but a capture-sized 1 Mi-event ring per
/// tracer means ~75 MB of allocation, which at this benchmark's run
/// lengths would dwarf the record-path cost being measured. 16 Ki events
/// is plenty for a steady-state record-cost measurement (the ring wraps;
/// wrapping *is* the steady state) and allocates in microseconds.
const OVERHEAD_EVENTS_CAPACITY: usize = 1 << 14;

/// 1-in-N sampling periods the `--overhead` mode measures. The smallest
/// period is the most expensive (it retains the most full events), so the
/// pair brackets the tier's realistic operating range.
const SAMPLING_PERIODS: [u64; 2] = [16, 256];

struct Options {
    budget: u64,
    batch: u64,
    repeats: u32,
    out: String,
    write: bool,
    grid: bool,
    overhead: bool,
    baseline: Option<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        budget: DEFAULT_BUDGET,
        batch: DEFAULT_BATCH,
        repeats: 3,
        out: "results/BENCH_throughput.json".to_string(),
        write: true,
        grid: true,
        overhead: false,
        baseline: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--budget" => {
                let v = args.next().expect("--budget needs a value");
                opts.budget = v.parse().expect("--budget must be an integer");
            }
            "--batch" => {
                let v = args.next().expect("--batch needs a value");
                opts.batch = v.parse().expect("--batch must be an integer");
                assert!(opts.batch > 0, "--batch must be positive");
            }
            "--repeats" => {
                let v = args.next().expect("--repeats needs a value");
                opts.repeats = v.parse().expect("--repeats must be an integer");
                assert!(opts.repeats > 0, "--repeats must be positive");
            }
            "--out" => opts.out = args.next().expect("--out needs a path"),
            "--no-write" => opts.write = false,
            "--skip-grid" => opts.grid = false,
            "--overhead" => opts.overhead = true,
            "--baseline" => opts.baseline = Some(args.next().expect("--baseline needs a path")),
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!(
                    "usage: throughput [--budget N] [--batch N] [--repeats N] [--out PATH] \
                     [--no-write] [--skip-grid] [--overhead] [--baseline PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    opts
}

/// The benchmark lineup: the no-NM baseline plus the Fig. 7 schemes.
fn lineup() -> Vec<SchemeKind> {
    let mut kinds = vec![SchemeKind::NoNm];
    kinds.extend(SchemeKind::fig7_lineup());
    kinds
}

/// Pre-generates one post-LLC-miss access stream per profile: the workload
/// generator's virtual stream pushed through first-touch translation, as
/// `System::run` would. Generated once and replayed for every scheme so
/// all schemes see identical streams.
fn generate_streams(
    cfg: &SystemConfig,
    params: &RunParams,
    per_profile: u64,
) -> Vec<(silcfm_types::AddressSpace, Vec<Access>)> {
    let cores = u64::from(cfg.core.cores);
    profiles::all()
        .iter()
        .map(|profile| {
            let scaled = profiles::scaled(profile, params.footprint_scale);
            let space = space_for(&scaled, cfg, params);
            let mut mapper = PageMapper::new(space, PlacementPolicy::RandomSeeded(params.seed));
            let mut gens: Vec<WorkloadGen> = (0..cores)
                .map(|i| WorkloadGen::new(&scaled, CoreId::new(i as u16), params.seed))
                .collect();
            let mut stream = Vec::with_capacity(per_profile as usize);
            for i in 0..per_profile {
                let core = CoreId::new((i % cores) as u16);
                let rec = gens[(i % cores) as usize].next_record();
                let paddr = mapper
                    .translate(core, rec.vaddr)
                    .expect("footprint exceeds physical memory");
                stream.push(Access::read(paddr, rec.pc, core));
            }
            (space, stream)
        })
        .collect()
}

/// Accesses/sec for one scheme with the access stream driven straight into
/// `MemoryScheme::access`, bypassing cores/caches/DRAM.
fn scheme_only_rate(
    kind: SchemeKind,
    streams: &[(silcfm_types::AddressSpace, Vec<Access>)],
    repeats: u32,
) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..repeats {
        let mut total = 0u64;
        let mut elapsed = 0.0f64;
        let mut sink = 0u64;
        let mut out = silcfm_types::SchemeOutcome::empty();
        for (space, stream) in streams {
            let mut scheme = kind.build(*space, stream.len() as u64);
            let t0 = Instant::now();
            for access in stream {
                scheme.access(access, &mut out);
                sink ^= out.critical_bytes().wrapping_add(out.background_bytes());
            }
            elapsed += t0.elapsed().as_secs_f64();
            total += stream.len() as u64;
        }
        std::hint::black_box(sink);
        best = best.max(total as f64 / elapsed);
    }
    best
}

/// Accesses/sec for one scheme with the stream driven through
/// `MemoryScheme::access_batch` in chunks of `batch` accesses — the hot
/// path the sharded consumer and figure harnesses can amortize virtual
/// dispatch and outcome bookkeeping over.
fn scheme_only_batched_rate(
    kind: SchemeKind,
    streams: &[(silcfm_types::AddressSpace, Vec<Access>)],
    batch: u64,
    repeats: u32,
) -> f64 {
    let batch = usize::try_from(batch.max(1)).unwrap_or(usize::MAX);
    let mut best = 0.0f64;
    for _ in 0..repeats {
        let mut total = 0u64;
        let mut elapsed = 0.0f64;
        let mut sink = 0u64;
        let mut out = BatchOutcome::new();
        for (space, stream) in streams {
            let mut scheme = kind.build(*space, stream.len() as u64);
            let t0 = Instant::now();
            for chunk in stream.chunks(batch) {
                scheme.access_batch(chunk, &mut out);
                sink ^= out.critical_bytes().wrapping_add(out.background_bytes());
            }
            elapsed += t0.elapsed().as_secs_f64();
            total += stream.len() as u64;
        }
        std::hint::black_box(sink);
        best = best.max(total as f64 / elapsed);
    }
    best
}

/// Folds one access's outcome — op streams, service decision, stall — into
/// a digest. Used identically on the scalar and batched replays below.
fn hash_outcome<'a>(
    h: &mut FxHasher,
    critical: impl Iterator<Item = &'a MemOp>,
    background: impl Iterator<Item = &'a MemOp>,
    serviced_from: MemKind,
    stall: u64,
) {
    for op in critical {
        h.write(format!("{op:?}").as_bytes());
    }
    h.write_u8(0xC1);
    for op in background {
        h.write(format!("{op:?}").as_bytes());
    }
    h.write_u8(0xB6);
    h.write(format!("{serviced_from:?}").as_bytes());
    h.write_u64(stall);
}

/// The digest gate in front of the batched layer: replays every stream
/// access-at-a-time and in `batch`-sized chunks against fresh schemes and
/// panics unless both produce byte-identical per-access outcomes and
/// end-of-run stats. A batched rate measured on a path that changed the
/// answer would be worthless, so this runs before any batched timing.
fn batch_digest_gate(
    kind: SchemeKind,
    streams: &[(silcfm_types::AddressSpace, Vec<Access>)],
    batch: u64,
) {
    let chunk_len = usize::try_from(batch.max(1)).unwrap_or(usize::MAX);
    let mut scalar = FxHasher::default();
    let mut out = silcfm_types::SchemeOutcome::empty();
    for (space, stream) in streams {
        let mut scheme = kind.build(*space, stream.len() as u64);
        for access in stream {
            scheme.access(access, &mut out);
            hash_outcome(
                &mut scalar,
                out.critical.iter(),
                out.background.iter(),
                out.serviced_from,
                out.global_stall_cycles,
            );
        }
        scalar.write(format!("{:?}", scheme.stats()).as_bytes());
    }

    let mut batched = FxHasher::default();
    let mut bout = BatchOutcome::new();
    for (space, stream) in streams {
        let mut scheme = kind.build(*space, stream.len() as u64);
        for chunk in stream.chunks(chunk_len) {
            scheme.access_batch(chunk, &mut bout);
            for view in bout.iter() {
                hash_outcome(
                    &mut batched,
                    view.critical.iter(),
                    view.background.iter(),
                    view.serviced_from,
                    view.global_stall_cycles,
                );
            }
        }
        batched.write(format!("{:?}", scheme.stats()).as_bytes());
    }

    assert_eq!(
        scalar.finish(),
        batched.finish(),
        "{}: access_batch(batch={batch}) diverged from the scalar access path",
        kind.label()
    );
}

/// Accesses/sec for one scheme through the full `System::run` pipeline.
fn full_system_rate(
    kind: SchemeKind,
    cfg: &SystemConfig,
    params: &RunParams,
    per_profile: u64,
    repeats: u32,
) -> f64 {
    let cores = u64::from(cfg.core.cores);
    let p = RunParams {
        accesses_per_core: (per_profile / cores).max(1),
        ..*params
    };
    let mut best = 0.0f64;
    for _ in 0..repeats {
        let mut total = 0u64;
        let mut elapsed = 0.0f64;
        for profile in profiles::all() {
            let t0 = Instant::now();
            let r = run(profile, kind, cfg, &p);
            elapsed += t0.elapsed().as_secs_f64();
            std::hint::black_box(r.cycles);
            total += p.accesses_per_core * cores;
        }
        best = best.max(total as f64 / elapsed);
    }
    best
}

/// Accesses/sec for one scheme through `System::run` with the full
/// observability stack live: ring tracers on the controller and both DRAM
/// devices, the demand-latency histograms, and the epoch sampler. The gap
/// against [`full_system_rate`] is the price of turning tracing on; the
/// NullTracer build pays nothing (the emit sites monomorphize away).
fn full_system_traced_rate(
    kind: SchemeKind,
    cfg: &SystemConfig,
    params: &RunParams,
    per_profile: u64,
    repeats: u32,
) -> f64 {
    let cores = u64::from(cfg.core.cores);
    let p = RunParams {
        accesses_per_core: (per_profile / cores).max(1),
        ..*params
    };
    let trace = TraceParams {
        events_capacity: OVERHEAD_EVENTS_CAPACITY,
        ..TraceParams::default_capture()
    };
    let mut best = 0.0f64;
    for _ in 0..repeats {
        let mut total = 0u64;
        let mut elapsed = 0.0f64;
        for profile in profiles::all() {
            let t0 = Instant::now();
            let (r, report) = run_traced(profile, kind, cfg, &p, &trace);
            elapsed += t0.elapsed().as_secs_f64();
            std::hint::black_box((r.cycles, report.event_count()));
            total += p.accesses_per_core * cores;
        }
        best = best.max(total as f64 / elapsed);
    }
    best
}

/// Accesses/sec for one scheme through `System::run` with only the
/// metrics plane live: the per-class latency quantile sketches, the
/// demand-latency histograms and the epoch sampler populate, but no event
/// is buffered anywhere (`MetricsOnlyTracer` no-ops `record`, and the
/// controller runs its untraced build). The gap against
/// [`full_system_rate`] is the price of the latency-percentile plane
/// itself — the "sketches ON vs OFF" number — which the plane is designed
/// to keep under a few percent.
fn full_system_metrics_rate(
    kind: SchemeKind,
    cfg: &SystemConfig,
    params: &RunParams,
    per_profile: u64,
    repeats: u32,
) -> f64 {
    let cores = u64::from(cfg.core.cores);
    let p = RunParams {
        accesses_per_core: (per_profile / cores).max(1),
        ..*params
    };
    let trace = TraceParams {
        events_capacity: OVERHEAD_EVENTS_CAPACITY,
        ..TraceParams::default_capture()
    };
    let mut best = 0.0f64;
    for _ in 0..repeats {
        let mut total = 0u64;
        let mut elapsed = 0.0f64;
        for profile in profiles::all() {
            let t0 = Instant::now();
            let (r, report) = run_metrics_only(profile, kind, cfg, &p, &trace);
            elapsed += t0.elapsed().as_secs_f64();
            std::hint::black_box((r.cycles, report.latency.count()));
            total += p.accesses_per_core * cores;
        }
        best = best.max(total as f64 / elapsed);
    }
    best
}

/// Accesses/sec for one scheme through `System::run` with the sampling
/// tracer tier live in its always-on configuration: exact per-kind
/// counters on every controller and DRAM event, full events retained
/// one-in-`period`, and *no* epoch sampler or latency histograms (those
/// are capture-session apparatus — `run_sampled` pays them too, the
/// `--sampling` capture path in `trace_capture`). The gap against
/// [`full_system_rate`] is the always-on observability cost the tier is
/// built to keep under a few percent.
fn full_system_sampled_rate(
    kind: SchemeKind,
    cfg: &SystemConfig,
    params: &RunParams,
    per_profile: u64,
    repeats: u32,
    period: u64,
) -> f64 {
    let cores = u64::from(cfg.core.cores);
    let p = RunParams {
        accesses_per_core: (per_profile / cores).max(1),
        ..*params
    };
    let trace = TraceParams {
        events_capacity: OVERHEAD_EVENTS_CAPACITY,
        ..TraceParams::default_capture()
    };
    let mut best = 0.0f64;
    for _ in 0..repeats {
        let mut total = 0u64;
        let mut elapsed = 0.0f64;
        for profile in profiles::all() {
            let t0 = Instant::now();
            let (r, counters) = run_sampled_lean(profile, kind, cfg, &p, &trace, period);
            elapsed += t0.elapsed().as_secs_f64();
            std::hint::black_box((r.cycles, counters));
            total += p.accesses_per_core * cores;
        }
        best = best.max(total as f64 / elapsed);
    }
    best
}

/// What `--overhead` measured: the ring tier on/off pair, the metrics-only
/// (latency-sketch) tier, plus the sampling tier's rate at each period of
/// [`SAMPLING_PERIODS`].
struct Overhead {
    off: f64,
    on: f64,
    metrics: f64,
    sampled: Vec<(u64, f64)>,
}

/// Times the `scheme_shootout` grid serially and through the sharded pool.
fn grid_times() -> (usize, usize, f64, f64) {
    let threads = silcfm_sim::runner::default_threads();
    let workload = profiles::by_name("lib").unwrap();
    let jobs = ExperimentGrid::new(SystemConfig::experiment(), RunParams::smoke())
        .workload(workload)
        .scheme(SchemeKind::NoNm)
        .schemes(SchemeKind::fig7_lineup())
        .jobs();

    let t0 = Instant::now();
    let serial = run_grid_serial(&jobs);
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let parallel = run_grid(&jobs, threads);
    let parallel_ms = t1.elapsed().as_secs_f64() * 1e3;

    assert!(
        serial
            .iter()
            .zip(&parallel)
            .all(|(s, p)| s.cycles == p.cycles && s.traffic == p.traffic),
        "parallel runner diverged from the serial path"
    );
    (jobs.len(), threads, serial_ms, parallel_ms)
}

/// Pre-change rates parsed back out of a JSON file written by an older
/// build of this binary (same format).
struct Baseline {
    scheme_only: String,
    full_system: String,
    silcfm_scheme_only: Option<f64>,
    silcfm_full_system: Option<f64>,
}

/// Extracts the body of a flat `"key": { ... }` object. The input is this
/// binary's own output, so object bodies never contain nested braces.
fn extract_object(json: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": {{");
    let start = json.find(&tag)? + tag.len();
    let end = start + json[start..].find('}')?;
    Some(json[start..end].trim().to_string())
}

/// Extracts a single `"name": <number>` rate from an object body.
fn extract_rate(body: &str, name: &str) -> Option<f64> {
    let tag = format!("\"{name}\": ");
    let start = body.find(&tag)? + tag.len();
    let rest = &body[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn load_baseline(path: &str) -> Baseline {
    let json = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let full_system =
        extract_object(&json, "full_system").expect("baseline JSON has no full_system section");
    let scheme_only = extract_object(&json, "scheme_only").unwrap_or_default();
    Baseline {
        silcfm_full_system: extract_rate(&full_system, "silcfm"),
        silcfm_scheme_only: extract_rate(&scheme_only, "silcfm"),
        scheme_only,
        full_system,
    }
}

fn main() {
    let opts = parse_args();
    let cfg = SystemConfig::small();
    let params = RunParams::smoke();
    let n_profiles = profiles::all().len() as u64;
    let per_profile = (opts.budget / n_profiles).max(1);

    println!(
        "throughput: {} accesses/scheme/layer over {} profiles ({} each), config=small",
        per_profile * n_profiles,
        n_profiles,
        per_profile
    );

    let streams = generate_streams(&cfg, &params, per_profile);

    let mut scheme_only: Vec<(&'static str, f64)> = Vec::new();
    let mut scheme_only_batched: Vec<(&'static str, f64)> = Vec::new();
    let mut full_system: Vec<(&'static str, f64)> = Vec::new();
    println!(
        "\n{:8} {:>18} {:>18} {:>18}",
        "scheme", "scheme-only acc/s", "batched acc/s", "full-system acc/s"
    );
    for kind in lineup() {
        // The gate first: no batched number is printed for a scheme whose
        // batched path does not reproduce the scalar one exactly.
        batch_digest_gate(kind, &streams, opts.batch);
        let so = scheme_only_rate(kind, &streams, opts.repeats);
        let sb = scheme_only_batched_rate(kind, &streams, opts.batch, opts.repeats);
        let fs = full_system_rate(kind, &cfg, &params, per_profile, opts.repeats);
        println!("{:8} {:>18.0} {:>18.0} {:>18.0}", kind.label(), so, sb, fs);
        scheme_only.push((kind.label(), so));
        scheme_only_batched.push((kind.label(), sb));
        full_system.push((kind.label(), fs));
    }
    println!(
        "batch digest gate: ok for all schemes (batch={}, byte-identical to scalar)",
        opts.batch
    );

    let overhead = if opts.overhead {
        let kind = SchemeKind::silcfm();
        // Round-robin the regimes (off, ring-on, each sampling period) inside
        // every repeat instead of measuring each regime `repeats` times in a
        // row: on a noisy shared host the noise window drifts over seconds,
        // and back-to-back regimes see the same window while block-sequential
        // ones can see entirely different machines. Best-of per regime across
        // rounds keeps the ratios honest.
        let mut off = 0.0f64;
        let mut on = 0.0f64;
        let mut metrics = 0.0f64;
        let mut sampled: Vec<(u64, f64)> = SAMPLING_PERIODS
            .iter()
            .map(|&period| (period, 0.0))
            .collect();
        for _ in 0..opts.repeats.max(1) {
            off = off.max(full_system_rate(kind, &cfg, &params, per_profile, 1));
            on = on.max(full_system_traced_rate(kind, &cfg, &params, per_profile, 1));
            metrics = metrics.max(full_system_metrics_rate(
                kind,
                &cfg,
                &params,
                per_profile,
                1,
            ));
            for entry in &mut sampled {
                let rate = full_system_sampled_rate(kind, &cfg, &params, per_profile, 1, entry.0);
                entry.1 = entry.1.max(rate);
            }
        }
        println!(
            "\nsilcfm full-system tracing overhead: {:.0} acc/s off, {:.0} acc/s on \
             ({:.1}% slower)",
            off,
            on,
            (1.0 - on / off) * 100.0
        );
        println!(
            "silcfm full-system latency sketches only: {:.0} acc/s \
             ({:.1}% slower than untraced)",
            metrics,
            (1.0 - metrics / off) * 100.0
        );
        for &(period, rate) in &sampled {
            println!(
                "silcfm full-system sampling tracer 1-in-{period}: {:.0} acc/s \
                 ({:.1}% slower than untraced)",
                rate,
                (1.0 - rate / off) * 100.0
            );
        }
        Some(Overhead {
            off,
            on,
            metrics,
            sampled,
        })
    } else {
        None
    };

    let grid = if opts.grid {
        let (jobs, threads, serial_ms, parallel_ms) = grid_times();
        println!(
            "\ngrid of {jobs} runs: serial {serial_ms:.0} ms, \
             parallel ({threads} threads) {parallel_ms:.0} ms"
        );
        if threads == 1 {
            eprintln!(
                "warning: grid timed with 1 thread (host parallelism or SILCFM_THREADS); \
                 serial vs \"parallel\" measures pool overhead, not speedup — recording null"
            );
        }
        Some((jobs, threads, serial_ms, parallel_ms))
    } else {
        None
    };

    let baseline = opts.baseline.as_deref().map(load_baseline);
    if let Some(b) = &baseline {
        let find = |pairs: &[(&'static str, f64)]| {
            pairs
                .iter()
                .find(|(name, _)| *name == "silcfm")
                .map(|&(_, r)| r)
        };
        if let (Some(pre), Some(post)) = (b.silcfm_scheme_only, find(&scheme_only)) {
            println!(
                "\nscheme-only silcfm vs baseline: {:.0} -> {:.0} acc/s ({:.3}x)",
                pre,
                post,
                post / pre
            );
        }
        if let (Some(pre), Some(post)) = (b.silcfm_full_system, find(&full_system)) {
            println!(
                "full-system silcfm vs baseline: {:.0} -> {:.0} acc/s ({:.3}x)",
                pre,
                post,
                post / pre
            );
        }
    }

    if opts.write {
        let json = render_json(
            opts.budget,
            per_profile * n_profiles,
            &scheme_only,
            &scheme_only_batched,
            opts.batch,
            &full_system,
            grid,
            overhead.as_ref(),
            baseline.as_ref(),
        );
        if let Some(dir) = std::path::Path::new(&opts.out).parent() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
        std::fs::write(&opts.out, json).expect("write results JSON");
        println!("\nwrote {}", opts.out);
    }
}

/// Hand-rolled JSON (the workspace is dependency-free by policy).
#[allow(clippy::too_many_arguments)]
fn render_json(
    budget: u64,
    accesses: u64,
    scheme_only: &[(&'static str, f64)],
    scheme_only_batched: &[(&'static str, f64)],
    batch: u64,
    full_system: &[(&'static str, f64)],
    grid: Option<(usize, usize, f64, f64)>,
    overhead: Option<&Overhead>,
    baseline: Option<&Baseline>,
) -> String {
    fn rates(pairs: &[(&'static str, f64)]) -> String {
        let body: Vec<String> = pairs
            .iter()
            .map(|(name, rate)| format!("    \"{name}\": {rate:.0}"))
            .collect();
        body.join(",\n")
    }
    fn reindent(body: &str, indent: &str) -> String {
        body.lines()
            .map(|l| format!("{indent}{}", l.trim()))
            .collect::<Vec<_>>()
            .join("\n")
    }
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"meta\": {\n");
    out.push_str(&format!("    \"budget_per_scheme_per_layer\": {budget},\n"));
    out.push_str(&format!(
        "    \"accesses_measured_per_scheme\": {accesses},\n"
    ));
    out.push_str("    \"config\": \"small\",\n");
    out.push_str("    \"unit\": \"simulated accesses per second\"\n");
    out.push_str("  },\n");
    out.push_str("  \"scheme_only\": {\n");
    out.push_str(&rates(scheme_only));
    out.push_str("\n  },\n");
    out.push_str("  \"scheme_only_batched\": {\n");
    out.push_str(&format!("    \"batch\": {batch},\n"));
    out.push_str(&rates(scheme_only_batched));
    out.push_str("\n  },\n");
    out.push_str("  \"full_system\": {\n");
    out.push_str(&rates(full_system));
    out.push_str("\n  }");
    if let Some((jobs, threads, serial_ms, parallel_ms)) = grid {
        out.push_str(",\n  \"grid\": {\n");
        out.push_str(&format!("    \"jobs\": {jobs},\n"));
        out.push_str(&format!("    \"threads\": {threads},\n"));
        out.push_str(&format!("    \"serial_ms\": {serial_ms:.1},\n"));
        out.push_str(&format!("    \"parallel_ms\": {parallel_ms:.1},\n"));
        // A 1-thread "parallel" run measures pool overhead, not speedup;
        // recording 1.00x would misrepresent an unmeasurable quantity.
        if threads == 1 {
            out.push_str("    \"speedup\": null,\n");
            out.push_str("    \"warning\": \"measured with 1 thread; speedup is not defined\"\n");
        } else {
            out.push_str(&format!(
                "    \"speedup\": {:.2}\n",
                serial_ms / parallel_ms
            ));
        }
        out.push_str("  }");
    }
    if let Some(ov) = overhead {
        let (off, on) = (ov.off, ov.on);
        out.push_str(",\n  \"tracing_overhead\": {\n");
        out.push_str("    \"scheme\": \"silcfm\",\n");
        out.push_str("    \"layer\": \"full_system\",\n");
        out.push_str(&format!("    \"tracer_off_acc_s\": {off:.0},\n"));
        out.push_str(&format!("    \"tracer_on_acc_s\": {on:.0},\n"));
        out.push_str(&format!(
            "    \"on_over_off_ratio\": {:.3},\n",
            if off > 0.0 { on / off } else { 0.0 }
        ));
        out.push_str(&format!(
            "    \"overhead_pct\": {:.1},\n",
            if off > 0.0 {
                (1.0 - on / off) * 100.0
            } else {
                0.0
            }
        ));
        out.push_str(&format!("    \"metrics_only_acc_s\": {:.0},\n", ov.metrics));
        out.push_str(&format!(
            "    \"metrics_only_overhead_pct\": {:.1},\n",
            if off > 0.0 {
                (1.0 - ov.metrics / off) * 100.0
            } else {
                0.0
            }
        ));
        out.push_str("    \"sampling_tracer\": {\n");
        let mut lines: Vec<String> = Vec::new();
        for &(period, rate) in &ov.sampled {
            lines.push(format!("      \"period_{period}_acc_s\": {rate:.0}"));
            lines.push(format!(
                "      \"period_{period}_overhead_pct\": {:.1}",
                if off > 0.0 {
                    (1.0 - rate / off) * 100.0
                } else {
                    0.0
                }
            ));
        }
        out.push_str(&lines.join(",\n"));
        out.push_str("\n    }\n");
        out.push_str("  }");
    }
    if let Some(b) = baseline {
        out.push_str(",\n  \"pre_change\": {\n");
        out.push_str("    \"scheme_only\": {\n");
        out.push_str(&reindent(&b.scheme_only, "      "));
        out.push_str("\n    },\n");
        out.push_str("    \"full_system\": {\n");
        out.push_str(&reindent(&b.full_system, "      "));
        out.push_str("\n    }\n  }");
        let find = |pairs: &[(&'static str, f64)]| {
            pairs
                .iter()
                .find(|(name, _)| *name == "silcfm")
                .map(|&(_, r)| r)
        };
        if let (Some(pre), Some(post)) = (b.silcfm_scheme_only, find(scheme_only)) {
            out.push_str(&format!(
                ",\n  \"speedup_scheme_only_silcfm\": {:.3}",
                post / pre
            ));
        }
        if let (Some(pre), Some(post)) = (b.silcfm_full_system, find(full_system)) {
            out.push_str(&format!(
                ",\n  \"speedup_full_system_silcfm\": {:.3}",
                post / pre
            ));
        }
    }
    out.push_str("\n}\n");
    out
}
