//! A dependency-free micro-benchmark timer.
//!
//! Replaces the external benchmark framework so the workspace builds with no
//! registry access. The methodology is deliberately simple: a warm-up
//! interval, then a fixed number of timed samples whose batch size is
//! auto-calibrated so each sample runs long enough for the OS clock to
//! resolve, reported as median / min ns-per-iteration plus derived
//! throughput. Results print in a stable, grep-friendly single-line format.

use std::time::{Duration, Instant};

/// Samples collected per benchmark.
const SAMPLES: usize = 20;
/// Target wall time per sample; batch size is calibrated to hit it.
const SAMPLE_TARGET: Duration = Duration::from_millis(10);
/// Warm-up wall time before any measurement.
const WARMUP: Duration = Duration::from_millis(100);

/// One benchmark's measured distribution, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Median of the per-sample means.
    pub median_ns: f64,
    /// Fastest sample's mean (the low-noise floor).
    pub min_ns: f64,
    /// Iterations executed per timed sample.
    pub batch: u64,
}

impl Measurement {
    /// Iterations per second implied by the median.
    pub fn throughput(&self) -> f64 {
        if self.median_ns == 0.0 {
            0.0
        } else {
            1e9 / self.median_ns
        }
    }
}

/// Times `f`, printing `group/name: median .. ns/iter (min .., .. M/s)`.
///
/// Returns the measurement so callers can post-process (e.g. compare
/// schemes).
pub fn bench(group: &str, name: &str, mut f: impl FnMut()) -> Measurement {
    // Warm up and calibrate the batch size in one pass.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < WARMUP {
        f();
        warm_iters += 1;
    }
    let per_iter = WARMUP.as_nanos() as f64 / warm_iters.max(1) as f64;
    let batch = ((SAMPLE_TARGET.as_nanos() as f64 / per_iter.max(1.0)) as u64).max(1);

    let mut sample_means = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for _ in 0..batch {
            f();
        }
        sample_means.push(start.elapsed().as_nanos() as f64 / batch as f64);
    }
    sample_means.sort_by(|a, b| a.total_cmp(b));
    let measurement = Measurement {
        median_ns: sample_means[SAMPLES / 2],
        min_ns: sample_means[0],
        batch,
    };
    println!(
        "{group}/{name}: {:>12.1} ns/iter (min {:>12.1}, {:>8.3} M/s)",
        measurement.median_ns,
        measurement.min_ns,
        measurement.throughput() / 1e6,
    );
    measurement
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut acc = 0u64;
        let m = bench("test", "wrapping_add", || {
            acc = std::hint::black_box(acc.wrapping_add(0x9E37_79B9));
        });
        assert!(m.median_ns > 0.0);
        assert!(m.min_ns <= m.median_ns);
        assert!(m.batch >= 1);
        assert!(m.throughput() > 0.0);
    }
}
