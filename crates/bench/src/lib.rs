//! Shared harness plumbing for the per-figure experiment binaries.
//!
//! Every binary reproduces one table or figure of the paper and prints the
//! same rows/series the paper reports. All binaries accept:
//!
//! * `--quick` (default) — reduced run sizes, tens of seconds;
//! * `--full` — full-size runs, minutes.
//!
//! See `DESIGN.md` §4 for the experiment index and `EXPERIMENTS.md` for
//! recorded paper-vs-measured results.

pub mod timing;

use silcfm_sim::runner::{default_threads, run_grid, ExperimentGrid};
use silcfm_sim::{run, RunParams, RunResult, SchemeKind};
use silcfm_trace::profiles;
use silcfm_trace::profiles::WorkloadProfile;
use silcfm_types::stats::geometric_mean;
use silcfm_types::SystemConfig;

/// Harness options parsed from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HarnessOpts {
    /// Run full-size experiments instead of the quick default.
    pub full: bool,
}

impl HarnessOpts {
    /// Parses `--quick` / `--full` from `std::env::args`.
    pub fn from_args() -> Self {
        let full = std::env::args().any(|a| a == "--full");
        Self { full }
    }

    /// The run parameters implied by the options.
    pub fn params(&self) -> RunParams {
        if self.full {
            RunParams::full()
        } else {
            RunParams::quick()
        }
    }

    /// Mode label for output headers.
    pub fn mode(&self) -> &'static str {
        if self.full {
            "full"
        } else {
            "quick"
        }
    }
}

/// The system configuration all experiments run with (Table II with the
/// LLC miniaturized alongside the workload footprints; see DESIGN.md).
pub fn experiment_config() -> SystemConfig {
    SystemConfig::experiment()
}

/// Runs one (workload, scheme) pair under the harness configuration.
pub fn run_one(profile: &WorkloadProfile, kind: SchemeKind, params: &RunParams) -> RunResult {
    run(profile, kind, &experiment_config(), params)
}

/// Runs the full (workload × scheme) grid across the worker pool and
/// returns results indexed `[workload][scheme]`, in `profiles::all()` /
/// `kinds` order. All figure binaries funnel through this, so every harness
/// sweep is parallel; the ordered reassembly in
/// [`run_grid`](silcfm_sim::runner::run_grid) keeps output bit-identical to
/// the old serial loops.
pub fn run_matrix(kinds: &[SchemeKind], params: &RunParams) -> Vec<Vec<RunResult>> {
    let jobs = ExperimentGrid::new(experiment_config(), *params)
        .all_workloads()
        .schemes(kinds.iter().copied())
        .jobs();
    let flat = run_grid(&jobs, default_threads());
    flat.chunks(kinds.len().max(1))
        .map(<[RunResult]>::to_vec)
        .collect()
}

/// [`run_matrix`] over a named subset of Table III workloads, for the
/// ablation sweeps. Results are indexed `[workload][scheme]` in the order
/// given.
///
/// # Panics
///
/// Panics if a workload name is not in Table III.
pub fn run_named_matrix(
    workloads: &[&str],
    kinds: &[SchemeKind],
    params: &RunParams,
) -> Vec<Vec<RunResult>> {
    let mut grid = ExperimentGrid::new(experiment_config(), *params);
    for name in workloads {
        grid = grid.workload(profiles::by_name(name).expect("known workload"));
    }
    let jobs = grid.schemes(kinds.iter().copied()).jobs();
    let flat = run_grid(&jobs, default_threads());
    flat.chunks(kinds.len().max(1))
        .map(<[RunResult]>::to_vec)
        .collect()
}

/// Speedups of `kind` over the no-NM baseline for every Table III workload.
/// Returns `(per-workload speedups in profile order, geometric mean)`;
/// `baselines` must hold the no-NM run of each workload in the same order.
pub fn speedups_vs(
    kind: SchemeKind,
    baselines: &[RunResult],
    params: &RunParams,
) -> (Vec<f64>, f64) {
    let results = run_matrix(&[kind], params);
    let mut speedups = Vec::with_capacity(baselines.len());
    for (row, base) in results.iter().zip(baselines) {
        speedups.push(row[0].speedup_over(base));
    }
    let gmean = geometric_mean(&speedups);
    (speedups, gmean)
}

/// No-NM baseline runs for all workloads, in `profiles::all()` order.
pub fn baselines(params: &RunParams) -> Vec<RunResult> {
    run_matrix(&[SchemeKind::NoNm], params)
        .into_iter()
        .map(|mut row| row.remove(0))
        .collect()
}

/// Workload names in `profiles::all()` order, plus a trailing "gmean" label.
pub fn workload_labels() -> Vec<String> {
    profiles::all()
        .iter()
        .map(|p| p.name.to_string())
        .chain(["gmean".to_string()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_cover_all_workloads() {
        let labels = workload_labels();
        assert_eq!(labels.len(), 15);
        assert_eq!(labels.last().unwrap(), "gmean");
    }

    #[test]
    fn opts_default_to_quick() {
        let opts = HarnessOpts { full: false };
        assert_eq!(opts.mode(), "quick");
        assert_eq!(opts.params(), RunParams::quick());
        let opts = HarnessOpts { full: true };
        assert_eq!(opts.mode(), "full");
        assert_eq!(opts.params(), RunParams::full());
    }

    #[test]
    fn experiment_config_is_table2_with_scaled_llc() {
        let cfg = experiment_config();
        assert_eq!(cfg.core.cores, 16);
        assert_eq!(cfg.l2.capacity_bytes, 1 << 20);
    }
}
