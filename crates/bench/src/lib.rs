//! Shared harness plumbing for the per-figure experiment binaries.
//!
//! Every binary reproduces one table or figure of the paper and prints the
//! same rows/series the paper reports. All binaries accept:
//!
//! * `--quick` (default) — reduced run sizes, tens of seconds;
//! * `--full` — full-size runs, minutes.
//!
//! See `DESIGN.md` §4 for the experiment index and `EXPERIMENTS.md` for
//! recorded paper-vs-measured results.

use silcfm_sim::{run, RunParams, RunResult, SchemeKind};
use silcfm_trace::profiles;
use silcfm_trace::profiles::WorkloadProfile;
use silcfm_types::stats::geometric_mean;
use silcfm_types::SystemConfig;

/// Harness options parsed from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HarnessOpts {
    /// Run full-size experiments instead of the quick default.
    pub full: bool,
}

impl HarnessOpts {
    /// Parses `--quick` / `--full` from `std::env::args`.
    pub fn from_args() -> Self {
        let full = std::env::args().any(|a| a == "--full");
        Self { full }
    }

    /// The run parameters implied by the options.
    pub fn params(&self) -> RunParams {
        if self.full {
            RunParams::full()
        } else {
            RunParams::quick()
        }
    }

    /// Mode label for output headers.
    pub fn mode(&self) -> &'static str {
        if self.full {
            "full"
        } else {
            "quick"
        }
    }
}

/// The system configuration all experiments run with (Table II with the
/// LLC miniaturized alongside the workload footprints; see DESIGN.md).
pub fn experiment_config() -> SystemConfig {
    SystemConfig::experiment()
}

/// Runs one (workload, scheme) pair under the harness configuration.
pub fn run_one(profile: &WorkloadProfile, kind: SchemeKind, params: &RunParams) -> RunResult {
    run(profile, kind, &experiment_config(), params)
}

/// Speedups of `kind` over the no-NM baseline for every Table III workload.
/// Returns `(per-workload speedups in profile order, geometric mean)`;
/// `baselines` must hold the no-NM run of each workload in the same order.
pub fn speedups_vs(
    kind: SchemeKind,
    baselines: &[RunResult],
    params: &RunParams,
) -> (Vec<f64>, f64) {
    let mut speedups = Vec::with_capacity(baselines.len());
    for (profile, base) in profiles::all().iter().zip(baselines) {
        let r = run_one(profile, kind, params);
        speedups.push(r.speedup_over(base));
    }
    let gmean = geometric_mean(&speedups);
    (speedups, gmean)
}

/// No-NM baseline runs for all workloads, in `profiles::all()` order.
pub fn baselines(params: &RunParams) -> Vec<RunResult> {
    profiles::all()
        .iter()
        .map(|p| run_one(p, SchemeKind::NoNm, params))
        .collect()
}

/// Workload names in `profiles::all()` order, plus a trailing "gmean" label.
pub fn workload_labels() -> Vec<String> {
    profiles::all()
        .iter()
        .map(|p| p.name.to_string())
        .chain(["gmean".to_string()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_cover_all_workloads() {
        let labels = workload_labels();
        assert_eq!(labels.len(), 15);
        assert_eq!(labels.last().unwrap(), "gmean");
    }

    #[test]
    fn opts_default_to_quick() {
        let opts = HarnessOpts { full: false };
        assert_eq!(opts.mode(), "quick");
        assert_eq!(opts.params(), RunParams::quick());
        let opts = HarnessOpts { full: true };
        assert_eq!(opts.mode(), "full");
        assert_eq!(opts.params(), RunParams::full());
    }

    #[test]
    fn experiment_config_is_table2_with_scaled_llc() {
        let cfg = experiment_config();
        assert_eq!(cfg.core.cores, 16);
        assert_eq!(cfg.l2.capacity_bytes, 1 << 20);
    }
}
