//! Plain-text tables for the figure harnesses.

use core::fmt::Write as _;

/// One labelled row of numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Row label (workload name, scheme name, …).
    pub label: String,
    /// One value per column.
    pub values: Vec<f64>,
}

impl Row {
    /// Creates a row.
    pub fn new(label: impl Into<String>, values: Vec<f64>) -> Self {
        Self {
            label: label.into(),
            values,
        }
    }
}

/// Formats a fixed-width table with a title, column headers and rows, the
/// way the bench binaries print every figure's data series.
///
/// # Panics
///
/// Panics if a row's value count does not match the column count.
///
/// # Example
///
/// ```
/// use silcfm_sim::{format_table, Row};
/// let t = format_table(
///     "Fig. X",
///     &["a", "b"],
///     &[Row::new("w1", vec![1.0, 2.0])],
///     2,
/// );
/// assert!(t.contains("Fig. X"));
/// assert!(t.contains("1.00"));
/// ```
pub fn format_table(title: &str, columns: &[&str], rows: &[Row], precision: usize) -> String {
    let label_w = rows
        .iter()
        .map(|r| r.label.len())
        .chain([8, title.len().min(24)])
        .max()
        .unwrap_or(8);
    let col_w = columns
        .iter()
        .map(|c| c.len().max(precision + 4))
        .max()
        .unwrap_or(8);

    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = write!(out, "{:label_w$}", "");
    for c in columns {
        let _ = write!(out, " {c:>col_w$}");
    }
    let _ = writeln!(out);
    for row in rows {
        assert_eq!(
            row.values.len(),
            columns.len(),
            "row '{}' has {} values for {} columns",
            row.label,
            row.values.len(),
            columns.len()
        );
        let _ = write!(out, "{:label_w$}", row.label);
        for v in &row.values {
            let _ = write!(out, " {v:>col_w$.precision$}");
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_a_simple_table() {
        let t = format_table(
            "Test",
            &["x", "y"],
            &[
                Row::new("row1", vec![1.5, 2.25]),
                Row::new("gmean", vec![3.0, 4.0]),
            ],
            2,
        );
        assert!(t.starts_with("# Test\n"));
        assert!(t.contains("1.50"));
        assert!(t.contains("2.25"));
        assert!(t.contains("gmean"));
        // Header row has both column names.
        let header = t.lines().nth(1).unwrap();
        assert!(header.contains('x') && header.contains('y'));
    }

    #[test]
    #[should_panic(expected = "values for")]
    fn mismatched_columns_panic() {
        let _ = format_table("T", &["a"], &[Row::new("r", vec![1.0, 2.0])], 2);
    }

    #[test]
    fn empty_rows_are_fine() {
        let t = format_table("Empty", &["a"], &[], 2);
        assert!(t.contains("Empty"));
    }
}
