//! The multicore system: cores + caches + scheme + two DRAM devices.

use silcfm_cache::CacheHierarchy;
use silcfm_cpu::Core;
use silcfm_dram::{DramConfig, DramModel};
use silcfm_fault::{FaultDriver, FaultStats};
use silcfm_obs::ObsReport;
use silcfm_trace::{PageMapper, PlacementPolicy, WorkloadGen, WorkloadProfile};
use silcfm_types::fault::{FaultKind, ScheduledFault};
use silcfm_types::obs::{NullTracer, Tracer};
use silcfm_types::{
    Access, AccessClass, AddressSpace, CoreId, MemKind, MemOp, MemoryScheme, SchemeOutcome,
    SystemConfig, TraceRecord, VirtAddr,
};

use crate::metrics::TrafficTally;
use crate::observe::RunObs;

/// CPU cycles by which background (migration/prefetch) operations trail the
/// demand access that caused them, modelling demand-first scheduling in the
/// memory controller.
const BACKGROUND_LAG: u64 = 120;

/// Aggregate outcome of [`System::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemOutcome {
    /// Cycle at which the last core finished.
    pub cycles: u64,
    /// Instructions retired across all cores.
    pub instructions: u64,
    /// LLC misses across all cores.
    pub llc_misses: u64,
}

/// Per-core execution state: the core model plus the scheduler bookkeeping
/// that used to live in parallel vectors. One struct per core means the run
/// loop touches exactly one bounds-checked element per serviced access.
struct Lane {
    core: Core,
    /// The record waiting to issue.
    pending: TraceRecord,
    /// Memory accesses still to issue on this lane.
    remaining: u64,
    /// Next issue time (`None` = lane finished).
    next: Option<u64>,
    /// Cycle at which this lane retired its last instruction.
    finish_time: u64,
    /// Records pulled from the feed in bulk but not yet issued. Chunked
    /// pulls amortize the per-record feed call (and, on the sharded path,
    /// the queue handoff) without touching the issue order: the scheduler
    /// below still interleaves lanes access by access.
    buf: Vec<TraceRecord>,
    /// Next unread index into `buf`.
    pos: usize,
    /// Records this lane may still pull from the feed. The bound matters on
    /// the sharded path: producers generate exactly `accesses_per_core`
    /// records per lane, so pulling past it would block on a chunk that
    /// will never arrive.
    unfetched: u64,
}

impl Lane {
    /// Takes the lane's next record, refilling `buf` from the feed when it
    /// runs dry. `i` is this lane's index in the feed.
    fn take<F: RecordFeed>(&mut self, feed: &mut F, i: usize) -> TraceRecord {
        if self.pos >= self.buf.len() {
            self.buf.clear();
            self.pos = 0;
            let got = feed.next_chunk(i, &mut self.buf, self.unfetched);
            debug_assert!(got > 0, "feed returned an empty chunk for lane {i}");
            debug_assert_eq!(got, self.buf.len());
        }
        let rec = match self.buf.get(self.pos) {
            Some(rec) => *rec,
            None => {
                debug_assert!(false, "lane {i} over-consumed its record buffer");
                TraceRecord::load(0, VirtAddr::new(0), 0)
            }
        };
        self.pos += 1;
        self.unfetched = self.unfetched.saturating_sub(1);
        rec
    }
}

/// A per-lane source of trace records: the contract between the run loop
/// and whatever generates the workload stream.
///
/// [`System::run_with_feed`] pulls every record through this interface in
/// the scheduler's (timing-driven) order; each lane's sub-stream must come
/// back in generation order. The serial path wires lanes straight to their
/// generators; the sharded path ([`crate::shard`]) feeds pre-generated
/// epoch chunks from producer threads. Because the per-lane streams are
/// pure functions of (profile, lane, seed), identical records reach an
/// identical run loop — which is why sharded results are bit-identical to
/// serial ones at any thread count.
pub trait RecordFeed {
    /// Returns lane `lane`'s next record. The run loop calls this once per
    /// lane to prime the pipeline and then once per serviced access.
    fn next(&mut self, lane: usize) -> TraceRecord;

    /// Appends up to `max` of lane `lane`'s next records to `buf` and
    /// returns how many were appended (at least one when `max > 0`).
    ///
    /// The run loop buffers records per lane and pulls through this method,
    /// so feeds that hold records in bulk — the sharded path's epoch chunks,
    /// the serial generators — can hand over a whole run of them per call
    /// instead of paying a virtual dispatch (and, sharded, a queue lock) per
    /// record. The default pulls exactly one record via [`next`], so a feed
    /// that only implements the scalar method keeps its exact behavior.
    ///
    /// Chunking is a transport detail: each lane's records arrive in the
    /// same order `next` would produce, and the run loop still issues
    /// accesses one at a time in cross-lane timing order, so results are
    /// bit-identical to record-at-a-time feeding.
    ///
    /// [`next`]: RecordFeed::next
    fn next_chunk(&mut self, lane: usize, buf: &mut Vec<TraceRecord>, max: u64) -> usize {
        if max == 0 {
            return 0;
        }
        buf.push(self.next(lane));
        1
    }
}

/// A per-serviced-record completion hook: the contract between the run
/// loop and the request-serving plane (`silcfm-serve`).
///
/// [`System::run_with_feed_tapped`] calls [`on_serviced`] exactly once per
/// serviced record — cache hits and demand misses alike — in service order,
/// with the record's issue and completion cycles and the NM/FM NACK counts
/// the record's charges incurred (non-zero only while a channel is failed,
/// DESIGN.md §10). The tap observes; it can never steer the run: records
/// reach the machine unchanged, so tapped results stay bit-identical to
/// untapped ones.
///
/// [`on_serviced`]: ServiceTap::on_serviced
pub trait ServiceTap {
    /// Whether the tap is live. `false` compiles every tap hook out of the
    /// run loop, exactly like [`Tracer::ENABLED`].
    const ENABLED: bool = true;

    /// Observes one serviced record on `lane`: its issue cycle (post
    /// cache-hierarchy lookup), its completion cycle, and how many NM/FM
    /// operations were NACKed by failed channels while servicing it.
    fn on_serviced(
        &mut self,
        lane: usize,
        issue: u64,
        completion: u64,
        nm_nacks: u64,
        fm_nacks: u64,
    );
}

/// The no-op tap: [`ServiceTap::ENABLED`] is `false`, so every hook in the
/// run loop compiles to nothing and untapped paths pay zero cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTap;

impl ServiceTap for NullTap {
    const ENABLED: bool = false;

    fn on_serviced(&mut self, _: usize, _: u64, _: u64, _: u64, _: u64) {}
}

/// The serial feed: one generator per lane, called inline from the run loop.
struct GenFeed {
    gens: Vec<WorkloadGen>,
}

impl GenFeed {
    fn new(profile: &WorkloadProfile, lanes: usize, seed: u64) -> Self {
        Self {
            gens: (0..lanes)
                .map(|i| WorkloadGen::new(profile, CoreId::new(i as u16), seed))
                .collect(),
        }
    }
}

/// Records per [`RecordFeed::next_chunk`] pull on the serial path: large
/// enough to amortize the virtual call, small enough that per-lane buffers
/// stay a few cache pages.
const GEN_CHUNK: u64 = 1024;

impl RecordFeed for GenFeed {
    fn next(&mut self, lane: usize) -> TraceRecord {
        match self.gens.get_mut(lane) {
            Some(g) => g.next_record(),
            None => {
                debug_assert!(false, "feed polled for a lane it does not own");
                TraceRecord::load(0, VirtAddr::new(0), 0)
            }
        }
    }

    fn next_chunk(&mut self, lane: usize, buf: &mut Vec<TraceRecord>, max: u64) -> usize {
        let Some(g) = self.gens.get_mut(lane) else {
            debug_assert!(false, "feed polled for a lane it does not own");
            return 0;
        };
        let count = max.min(GEN_CHUNK);
        buf.reserve(count as usize);
        for _ in 0..count {
            buf.push(g.next_record());
        }
        count as usize
    }
}

/// A complete simulated machine under one placement scheme.
///
/// The tracer type parameter defaults to [`NullTracer`]: the untraced
/// system carries no observability state and every `if T::ENABLED` hook in
/// [`System::run`] compiles to nothing.
pub struct System<T: Tracer = NullTracer> {
    cfg: SystemConfig,
    space: AddressSpace,
    hierarchy: CacheHierarchy,
    mapper: PageMapper,
    scheme: Box<dyn MemoryScheme>,
    nm: DramModel<T>,
    fm: DramModel<T>,
    tally: TrafficTally,
    obs: Option<RunObs>,
    /// Scheduled fault injection (DESIGN.md §10); `None` — the default —
    /// keeps the run loop's fault hook to a single branch per access.
    faults: Option<FaultDriver>,
    fault_stats: FaultStats,
}

impl System {
    /// Builds an untraced system over `space` with the given page placement
    /// and memory scheme.
    pub fn new(
        cfg: SystemConfig,
        space: AddressSpace,
        placement: PlacementPolicy,
        scheme: Box<dyn MemoryScheme>,
    ) -> Self {
        System::with_observability(cfg, space, placement, scheme, NullTracer, NullTracer, None)
    }
}

impl<T: Tracer> System<T> {
    /// Builds a system whose DRAM devices record into the given tracers and
    /// whose run maintains `obs` (when `Some`); controller-side tracing
    /// travels inside `scheme` itself. See [`System::new`] for the untraced
    /// spelling.
    pub fn with_observability(
        cfg: SystemConfig,
        space: AddressSpace,
        placement: PlacementPolicy,
        scheme: Box<dyn MemoryScheme>,
        nm_tracer: T,
        fm_tracer: T,
        obs: Option<RunObs>,
    ) -> Self {
        Self {
            hierarchy: CacheHierarchy::new(&cfg),
            mapper: PageMapper::new(space, placement),
            scheme,
            nm: DramModel::with_tracer(DramConfig::hbm2(), nm_tracer),
            fm: DramModel::with_tracer(DramConfig::ddr3(), fm_tracer),
            tally: TrafficTally::default(),
            cfg,
            space,
            obs,
            faults: None,
            fault_stats: FaultStats::default(),
        }
    }

    /// Arms the system with a fault schedule: faults whose delivery cycle
    /// has passed are applied immediately before each demand access.
    pub fn set_fault_driver(&mut self, driver: FaultDriver) {
        self.faults = Some(driver);
    }

    /// The fault-effect ledger accumulated so far.
    pub const fn fault_stats(&self) -> &FaultStats {
        &self.fault_stats
    }

    /// Scheduled faults not yet delivered (0 when no driver is armed).
    pub fn faults_remaining(&self) -> usize {
        self.faults.as_ref().map_or(0, FaultDriver::remaining)
    }

    /// Finalizes the run's observability state into an [`ObsReport`]
    /// (draining every tracer), or `None` if the system was built without
    /// one. `total_cycles` is the [`SystemOutcome::cycles`] of the run.
    pub fn finish_observation(&mut self, total_cycles: u64) -> Option<ObsReport> {
        self.obs.take().map(|o| {
            o.finish(
                total_cycles,
                self.scheme.as_mut(),
                &self.tally,
                &mut self.nm,
                &mut self.fm,
            )
        })
    }

    /// The flat address space being simulated.
    pub const fn space(&self) -> AddressSpace {
        self.space
    }

    /// The scheme under test.
    pub fn scheme(&self) -> &dyn MemoryScheme {
        self.scheme.as_ref()
    }

    /// Traffic tallies accumulated so far.
    pub const fn tally(&self) -> &TrafficTally {
        &self.tally
    }

    /// Near-memory device statistics.
    pub fn nm_stats(&self) -> &silcfm_dram::DramStats {
        self.nm.stats()
    }

    /// Far-memory device statistics.
    pub fn fm_stats(&self) -> &silcfm_dram::DramStats {
        self.fm.stats()
    }

    /// Cache hierarchy statistics.
    pub fn hierarchy_stats(&self) -> &silcfm_cache::HierarchyStats {
        self.hierarchy.stats()
    }

    /// Bytes of footprint actually touched (unique pages allocated).
    pub fn footprint_bytes(&self) -> u64 {
        self.mapper.pages_allocated() as u64 * 2048
    }

    /// Total DRAM energy in picojoules after `cycles` of execution.
    pub fn energy_pj(&self, cycles: u64) -> f64 {
        self.nm.energy_pj(cycles) + self.fm.energy_pj(cycles)
    }

    /// Number of cores (= workload lanes) this system simulates.
    pub fn core_count(&self) -> usize {
        usize::from(self.cfg.core.cores)
    }

    /// Runs one copy of `profile` on every core (the paper's rate mode)
    /// until each core has issued `accesses_per_core` memory accesses.
    ///
    /// # Panics
    ///
    /// Panics if the combined footprint exceeds the physical address space.
    pub fn run(
        &mut self,
        profile: &WorkloadProfile,
        accesses_per_core: u64,
        seed: u64,
    ) -> SystemOutcome {
        let mut feed = GenFeed::new(profile, self.core_count(), seed);
        self.run_with_feed(&mut feed, accesses_per_core)
    }

    /// The run loop behind [`System::run`], generic over where the workload
    /// records come from. Every path into the simulator — serial, traced,
    /// faulted, sharded — executes this exact loop; feeds differ only in
    /// how lane sub-streams are produced, never in what reaches the shared
    /// machine state (caches, page pool, scheme, DRAM), so results are a
    /// pure function of the record streams.
    pub fn run_with_feed<F: RecordFeed>(
        &mut self,
        feed: &mut F,
        accesses_per_core: u64,
    ) -> SystemOutcome {
        self.run_with_feed_tapped(feed, accesses_per_core, &mut NullTap)
    }

    /// [`System::run_with_feed`] with a [`ServiceTap`] observing every
    /// serviced record. This *is* the run loop — the untapped spelling
    /// delegates here with [`NullTap`], whose disabled hooks compile out,
    /// so tapped and untapped runs execute the same machine code over the
    /// same state and remain bit-identical.
    pub fn run_with_feed_tapped<F: RecordFeed, S: ServiceTap>(
        &mut self,
        feed: &mut F,
        accesses_per_core: u64,
        tap: &mut S,
    ) -> SystemOutcome {
        let n = self.core_count();
        // Setup: one lane per core, primed with its first record. This is
        // the run's only allocation; the access loop below reuses it.
        let mut lanes: Vec<Lane> = (0..n)
            .map(|i| {
                let core = Core::new(
                    CoreId::new(i as u16),
                    u64::from(self.cfg.core.rob_entries),
                    u64::from(self.cfg.core.width),
                );
                Lane {
                    core,
                    pending: TraceRecord::load(0, VirtAddr::new(0), 0),
                    remaining: accesses_per_core,
                    next: None,
                    finish_time: 0,
                    // silcfm-lint: allow(A1) -- lane setup, before the access loop: the buffer is allocated once here and refilled in place by `Lane::take`
                    buf: Vec::new(),
                    pos: 0,
                    unfetched: accesses_per_core,
                }
            })
            .collect();
        for (i, lane) in lanes.iter_mut().enumerate() {
            let pending = lane.take(feed, i);
            lane.core.execute_compute(u64::from(pending.compute));
            // Open-loop arrival stamps floor the issue time; `not_before`
            // is 0 for ordinary records, so `.max` is the identity there.
            lane.next = Some(
                lane.core
                    .issue_time(pending.dependent)
                    .max(pending.not_before),
            );
            lane.pending = pending;
        }

        // One outcome reused for every scheme access (the reuse protocol):
        // the hot loop never allocates for ordinary misses.
        let mut out = SchemeOutcome::empty();

        // Each step services the lane with the smallest (issue time, index)
        // pair — the same order a min-heap would give, but for the handful
        // of cores a linear scan is cheaper than heap maintenance on every
        // access. The index comes from `enumerate`, so the re-borrows below
        // cannot miss; the `else` arms keep the loop panic-free regardless.
        while let Some((t_sched, i)) = lanes
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.next.map(|t| (t, i)))
            .min()
        {
            let Some(lane) = lanes.get_mut(i) else {
                debug_assert!(false, "scheduler picked a lane index from enumerate");
                break;
            };
            let rec = lane.pending;
            // Global stalls may have moved the core's clock since scheduling.
            let t = lane.core.issue_time(rec.dependent).max(t_sched);
            let core_id = lane.core.id();
            let paddr = self
                .mapper
                .translate(core_id, rec.vaddr)
                // silcfm-lint: allow(P1) -- documented `# Panics` precondition: a footprint that exceeds physical memory must abort loudly, not simulate garbage
                .expect("workload footprint exceeds physical memory");

            let h = self
                .hierarchy
                .access_data(core_id, paddr, rec.kind.is_write());
            let issue = t + u64::from(h.latency_cycles);
            if T::ENABLED {
                // Stamp scheme-side events with the access's issue cycle.
                self.scheme.trace_clock(issue);
            }

            // Deliver any faults that have come due, before the demand
            // access observes the machine (one branch when no driver is
            // armed). Each delivery reuses `out`; the demand path below
            // clears it again.
            if self.faults.is_some() {
                while let Some(f) = self.faults.as_mut().and_then(|d| d.pop_due(issue)) {
                    self.deliver_fault(f, issue, &mut out);
                }
            }

            // NACK baselines for the tap: the deltas across this record's
            // charges attribute failed-channel rejections to the record
            // being serviced (both branches compile out when untapped).
            let (nm_nacks0, fm_nacks0) = if S::ENABLED {
                (self.nm.stats().nacks, self.fm.stats().nacks)
            } else {
                (0, 0)
            };

            // A scheme-imposed global stall, applied to every lane after the
            // charges are computed (reading it now: the writeback loop below
            // reuses `out`).
            let mut stall_all_until = None;
            let completion = if h.traffic.demand_fetch {
                // The demand fetch reaches the flat-memory scheme as a read
                // (write-allocate: stores fetch for ownership).
                self.scheme
                    .access(&Access::read(paddr, rec.pc, core_id), &mut out);
                let mut cursor = issue;
                for op in &out.critical {
                    cursor = self.charge(op, cursor);
                }
                // Background (swap/migration/prefetch) traffic is issued
                // slightly behind the demand: memory controllers prioritize
                // demand reads, draining management traffic afterwards.
                for op in &out.background {
                    let _ = self.charge(op, issue + BACKGROUND_LAG);
                }
                if out.global_stall_cycles > 0 {
                    stall_all_until = Some(cursor + out.global_stall_cycles);
                }
                if T::ENABLED {
                    if let Some(o) = self.obs.as_mut() {
                        o.on_demand(
                            out.serviced_from,
                            AccessClass::of_outcome(&out),
                            cursor.saturating_sub(issue),
                        );
                    }
                }
                cursor
            } else {
                issue
            };

            // Dirty LLC victims go to memory off the critical path.
            for wb in &h.traffic.writebacks {
                self.scheme
                    .access(&Access::write(*wb, 0, core_id), &mut out);
                for op in out.critical.iter().chain(out.background.iter()) {
                    let _ = self.charge(op, issue + BACKGROUND_LAG);
                }
            }

            if S::ENABLED {
                tap.on_serviced(
                    i,
                    issue,
                    completion,
                    self.nm.stats().nacks - nm_nacks0,
                    self.fm.stats().nacks - fm_nacks0,
                );
            }

            if let Some(until) = stall_all_until {
                for l in lanes.iter_mut() {
                    l.core.stall_until(until);
                }
            }

            if T::ENABLED {
                if let Some(o) = self.obs.as_mut() {
                    if o.due(completion) {
                        o.epoch_tick(
                            completion,
                            self.scheme.as_ref(),
                            &self.tally,
                            &mut self.nm,
                            &mut self.fm,
                        );
                    }
                }
            }

            let Some(lane) = lanes.get_mut(i) else {
                debug_assert!(false, "scheduler picked a lane index from enumerate");
                break;
            };
            lane.core.execute_memory(completion, rec.dependent);
            lane.remaining -= 1;
            if lane.remaining > 0 {
                let rec = lane.take(feed, i);
                lane.core.execute_compute(u64::from(rec.compute));
                lane.next = Some(lane.core.issue_time(rec.dependent).max(rec.not_before));
                lane.pending = rec;
            } else {
                lane.next = None;
                lane.finish_time = lane.core.finish();
            }
        }

        SystemOutcome {
            cycles: lanes.iter().map(|l| l.finish_time).max().unwrap_or(0),
            instructions: lanes.iter().map(|l| l.core.instructions()).sum(),
            llc_misses: self.hierarchy.stats().l2_misses,
        }
    }

    /// Applies one scheduled fault at CPU cycle `now` and records its
    /// effect. Scheme faults may emit recovery traffic (restore streams,
    /// metadata rewrites) into `out`; that traffic is charged like any
    /// other background work.
    fn deliver_fault(&mut self, f: ScheduledFault, now: u64, out: &mut SchemeOutcome) {
        let effect = match f.kind {
            FaultKind::Scheme(sf) => {
                // The default `apply_fault` leaves `out` untouched, so clear
                // the reused outcome here lest a baseline recharge the
                // previous access's operations.
                out.clear();
                let effect = self.scheme.apply_fault(&sf, out);
                for op in out.critical.iter().chain(out.background.iter()) {
                    let _ = self.charge(op, now + BACKGROUND_LAG);
                }
                effect
            }
            FaultKind::Dram { device, fault } => match device {
                MemKind::Near => self.nm.inject_channel_fault(fault, now),
                MemKind::Far => self.fm.inject_channel_fault(fault, now),
            },
        };
        self.fault_stats.record(effect);
    }

    /// Charges one memory operation against the owning DRAM device at CPU
    /// cycle `at`; returns its completion time.
    ///
    /// Metadata operations are latency-only: the paper stores remap
    /// metadata in a *dedicated* NM channel (§III-D) whose tiny 8-byte
    /// transfers never contend with data traffic, so they are modelled as a
    /// fixed row-hit NM access rather than routed through the data
    /// channels.
    fn charge(&mut self, op: &MemOp, at: u64) -> u64 {
        /// CPU cycles per serialized remap-entry fetch: an NM row-buffer
        /// hit (tCAS + burst ≈ 11 bus cycles at 4 CPU cycles each).
        const METADATA_LATENCY: u64 = 44;
        if op.class == silcfm_types::TrafficClass::Metadata {
            match op.mem {
                MemKind::Near => self.tally.nm_other += u64::from(op.bytes),
                MemKind::Far => self.tally.fm_other += u64::from(op.bytes),
            }
            return if op.kind.is_write() {
                at // posted
            } else {
                at + METADATA_LATENCY
            };
        }
        let dev_addr = self.space.device_addr(op.addr);
        let bytes = op.bytes;
        let demand = op.class.is_demand();
        let dev = match op.mem {
            MemKind::Near => {
                if demand {
                    self.tally.nm_demand += u64::from(bytes);
                } else {
                    self.tally.nm_other += u64::from(bytes);
                }
                &mut self.nm
            }
            MemKind::Far => {
                if demand {
                    self.tally.fm_demand += u64::from(bytes);
                } else {
                    self.tally.fm_other += u64::from(bytes);
                }
                &mut self.fm
            }
        };
        if demand {
            if op.kind.is_write() {
                dev.write(at, dev_addr, bytes)
            } else {
                dev.read(at, dev_addr, bytes)
            }
        } else {
            // Migration/prefetch traffic: bandwidth-class streaming.
            dev.stream(at, dev_addr, bytes, op.kind.is_write())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silcfm_baselines::RandomStatic;
    use silcfm_trace::profiles;

    fn space() -> AddressSpace {
        // Enough for the scaled footprint of the test profile.
        AddressSpace::new(2048 * 2048, 4 * 2048 * 2048)
    }

    fn run_once(placement: PlacementPolicy) -> (SystemOutcome, TrafficTally) {
        let cfg = SystemConfig::small();
        let scheme = Box::new(RandomStatic::new(space()));
        let mut sys = System::new(cfg, space(), placement, scheme);
        let profile = silcfm_trace::profiles::scaled(profiles::by_name("dealii").unwrap(), 0.1);
        let out = sys.run(&profile, 2_000, 42);
        (out, *sys.tally())
    }

    #[test]
    fn run_is_deterministic() {
        let (a, ta) = run_once(PlacementPolicy::RandomSeeded(1));
        let (b, tb) = run_once(PlacementPolicy::RandomSeeded(1));
        assert_eq!(a, b);
        assert_eq!(ta, tb);
    }

    #[test]
    fn executes_the_requested_work() {
        let (out, tally) = run_once(PlacementPolicy::RandomSeeded(1));
        assert!(out.cycles > 0);
        // 4 cores x 2000 memory accesses plus compute.
        assert!(out.instructions >= 8_000);
        assert!(tally.total_bytes() > 0);
    }

    #[test]
    fn far_only_placement_never_uses_nm() {
        let (_, tally) = run_once(PlacementPolicy::FarOnly);
        assert_eq!(tally.nm_demand, 0);
        assert_eq!(tally.nm_other, 0);
        assert!(tally.fm_demand > 0);
    }

    #[test]
    fn random_placement_is_slower_far_only_is_slowest() {
        // With some pages in fast NM, execution should not be slower than
        // the all-FM baseline.
        let (mixed, _) = run_once(PlacementPolicy::RandomSeeded(1));
        let (far, _) = run_once(PlacementPolicy::FarOnly);
        assert!(
            mixed.cycles <= far.cycles,
            "NM pages should help: {} vs {}",
            mixed.cycles,
            far.cycles
        );
    }

    #[test]
    fn footprint_tracks_allocations() {
        let cfg = SystemConfig::small();
        let scheme = Box::new(RandomStatic::new(space()));
        let mut sys = System::new(cfg, space(), PlacementPolicy::RandomSeeded(1), scheme);
        let profile = silcfm_trace::profiles::scaled(profiles::by_name("dealii").unwrap(), 0.1);
        let _ = sys.run(&profile, 500, 42);
        assert!(sys.footprint_bytes() > 0);
        assert!(sys.energy_pj(1_000_000) > 0.0);
    }
}
