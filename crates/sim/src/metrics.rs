//! Run-level metrics: the quantities the paper's figures report.

use core::fmt;

use silcfm_types::stats::ratio;
use silcfm_types::SchemeStats;

/// Byte tallies split by device and by demand vs. management traffic.
///
/// Fig. 8 plots the fraction of *demand* bandwidth serviced by each memory;
/// migration, metadata and prefetch traffic are accounted separately.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficTally {
    /// Demand (and LLC-writeback) bytes moved by near memory.
    pub nm_demand: u64,
    /// Demand bytes moved by far memory.
    pub fm_demand: u64,
    /// Migration/metadata/prefetch bytes moved by near memory.
    pub nm_other: u64,
    /// Migration/metadata/prefetch bytes moved by far memory.
    pub fm_other: u64,
}

impl TrafficTally {
    /// Fraction of demand bytes serviced by NM (the Fig. 8 y-axis).
    pub fn nm_demand_fraction(&self) -> f64 {
        ratio(self.nm_demand, self.nm_demand + self.fm_demand)
    }

    /// All bytes moved by both devices.
    pub const fn total_bytes(&self) -> u64 {
        self.nm_demand + self.fm_demand + self.nm_other + self.fm_other
    }

    /// Management (non-demand) overhead bytes.
    pub const fn overhead_bytes(&self) -> u64 {
        self.nm_other + self.fm_other
    }
}

/// The outcome of simulating one (workload, scheme) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Scheme label ("silcfm", "cam", …).
    pub scheme: String,
    /// Workload name ("mcf", …).
    pub workload: String,
    /// Execution time in CPU cycles (all cores complete).
    pub cycles: u64,
    /// Total instructions retired across cores.
    pub instructions: u64,
    /// LLC misses across cores.
    pub llc_misses: u64,
    /// The paper's access rate (Eq. 1).
    pub access_rate: f64,
    /// Demand/management traffic split.
    pub traffic: TrafficTally,
    /// Total DRAM energy in picojoules (both devices, incl. background).
    pub energy_pj: f64,
    /// Scheme-internal statistics.
    pub scheme_stats: SchemeStats,
    /// Average per-core LLC misses per kilo-instruction.
    pub mpki: f64,
    /// Total workload footprint in bytes (unique pages touched).
    pub footprint_bytes: u64,
}

impl RunResult {
    /// Instructions per cycle, aggregated over all cores.
    pub fn ipc(&self) -> f64 {
        ratio(self.instructions, self.cycles)
    }

    /// Energy-delay product in pJ·cycles.
    pub fn edp(&self) -> f64 {
        self.energy_pj * self.cycles as f64
    }

    /// Speedup of this run relative to `baseline` (same workload, typically
    /// the no-NM system), as in Figs. 6, 7 and 9.
    ///
    /// # Panics
    ///
    /// Panics if either run has zero cycles or the workloads differ.
    pub fn speedup_over(&self, baseline: &RunResult) -> f64 {
        assert_eq!(
            self.workload, baseline.workload,
            "speedup requires the same workload"
        );
        assert!(self.cycles > 0 && baseline.cycles > 0);
        baseline.cycles as f64 / self.cycles as f64
    }
}

impl fmt::Display for RunResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}: {} cycles, IPC {:.3}, access rate {:.3}, NM demand {:.2}",
            self.workload,
            self.scheme,
            self.cycles,
            self.ipc(),
            self.access_rate,
            self.traffic.nm_demand_fraction()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(cycles: u64) -> RunResult {
        RunResult {
            scheme: "x".into(),
            workload: "w".into(),
            cycles,
            instructions: 1000,
            llc_misses: 10,
            access_rate: 0.5,
            traffic: TrafficTally {
                nm_demand: 300,
                fm_demand: 100,
                nm_other: 40,
                fm_other: 60,
            },
            energy_pj: 2.0,
            scheme_stats: SchemeStats::default(),
            mpki: 10.0,
            footprint_bytes: 1 << 20,
        }
    }

    #[test]
    fn traffic_fractions() {
        let t = result(100).traffic;
        assert!((t.nm_demand_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(t.total_bytes(), 500);
        assert_eq!(t.overhead_bytes(), 100);
    }

    #[test]
    fn ipc_and_edp() {
        let r = result(500);
        assert!((r.ipc() - 2.0).abs() < 1e-12);
        assert!((r.edp() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn speedup() {
        let fast = result(500);
        let slow = result(1000);
        assert!((fast.speedup_over(&slow) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "same workload")]
    fn speedup_rejects_mismatched_workloads() {
        let a = result(500);
        let mut b = result(1000);
        b.workload = "other".into();
        let _ = a.speedup_over(&b);
    }

    #[test]
    fn empty_tally_is_safe() {
        assert_eq!(TrafficTally::default().nm_demand_fraction(), 0.0);
    }

    #[test]
    fn display_is_informative() {
        assert!(result(100).to_string().contains("w/x"));
    }
}
