//! Per-run observability state: the epoch time-series sampler, demand
//! latency histograms, and the final report assembly.
//!
//! Lives outside `system.rs` so the delta bookkeeping stays off the
//! simulator's hot path: [`System`](crate::system::System) calls in here at
//! most once per epoch (plus one histogram update per demand miss), and
//! only when built with a real tracer.

use silcfm_dram::DramModel;
use silcfm_obs::sampler::{
    run_series, EpochSampler, COL_FM_BUS_UTIL, COL_HIT_RATE, COL_LAT_P50, COL_LAT_P95, COL_LAT_P99,
    COL_LAT_P999, COL_LOCKS, COL_NM_BUS_UTIL, COL_NM_DEMAND_FRAC, COL_READ_QUEUE, COL_SWAPS,
    COL_WRITE_QUEUE,
};
use silcfm_obs::{LatencyBreakdown, LatencyHistogram, ObsReport, QuantileSketch};
use silcfm_types::obs::Tracer;
use silcfm_types::{AccessClass, MemKind, MemoryScheme};

use crate::metrics::TrafficTally;

/// Guarded division for the fraction columns.
fn frac(num: f64, den: f64) -> f64 {
    if den <= 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Observability state carried by one traced [`System`](crate::system::System)
/// run: accumulates the per-epoch time series and the demand latency
/// histograms, then folds everything (plus the drained event buffers) into
/// an [`ObsReport`].
#[derive(Debug)]
pub struct RunObs {
    sampler: EpochSampler,
    nm_latency: LatencyHistogram,
    fm_latency: LatencyHistogram,
    /// Whole-run per-class latency sketches (the percentile plane).
    latency: LatencyBreakdown,
    /// Within-epoch latency sketch behind the `obs.lat.*` series columns,
    /// cleared at every tick.
    epoch_latency: QuantileSketch,
    // Within-epoch demand counters, reset at every tick.
    epoch_accesses: u64,
    epoch_nm_hits: u64,
    // Cumulative baselines for the delta columns.
    last_swaps: u64,
    last_locks: u64,
    last_nm_demand: u64,
    last_fm_demand: u64,
    last_nm_busy: u64,
    last_fm_busy: u64,
    last_cycle: u64,
}

impl RunObs {
    /// Creates the run state with `epoch_cycles` between samples;
    /// `expected_cycles` only sizes the preallocation.
    pub fn new(epoch_cycles: u64, expected_cycles: u64) -> Self {
        Self {
            sampler: EpochSampler::new(run_series(), epoch_cycles, expected_cycles),
            nm_latency: LatencyHistogram::new(),
            fm_latency: LatencyHistogram::new(),
            latency: LatencyBreakdown::new(),
            epoch_latency: QuantileSketch::new(),
            epoch_accesses: 0,
            epoch_nm_hits: 0,
            last_swaps: 0,
            last_locks: 0,
            last_nm_demand: 0,
            last_fm_demand: 0,
            last_nm_busy: 0,
            last_fm_busy: 0,
            last_cycle: 0,
        }
    }

    /// Records one serviced demand miss: where it was serviced from, its
    /// service-path [`AccessClass`], and its critical-path latency in CPU
    /// cycles.
    pub fn on_demand(&mut self, from: MemKind, class: AccessClass, latency: u64) {
        self.epoch_accesses += 1;
        match from {
            MemKind::Near => {
                self.epoch_nm_hits += 1;
                self.nm_latency.record(latency);
            }
            MemKind::Far => self.fm_latency.record(latency),
        }
        self.latency.record(class, latency);
        self.epoch_latency.record(latency);
    }

    /// Whether the next epoch boundary has been crossed at `cycle`.
    pub fn due(&self, cycle: u64) -> bool {
        self.sampler.due(cycle)
    }

    /// Computes one time-series row from the deltas since the previous
    /// tick and advances every baseline to `cycle`.
    fn row<T: Tracer>(
        &mut self,
        cycle: u64,
        scheme: &dyn MemoryScheme,
        tally: &TrafficTally,
        nm: &DramModel<T>,
        fm: &DramModel<T>,
    ) -> [f64; 12] {
        let stats = scheme.stats();
        let elapsed = cycle.saturating_sub(self.last_cycle);
        let nm_demand = tally.nm_demand.saturating_sub(self.last_nm_demand);
        let fm_demand = tally.fm_demand.saturating_sub(self.last_fm_demand);
        let nm_busy = nm.stats().bus_busy_cycles.saturating_sub(self.last_nm_busy);
        let fm_busy = fm.stats().bus_busy_cycles.saturating_sub(self.last_fm_busy);
        // Bus occupancy: busy memory cycles × clock ratio, averaged over the
        // elapsed CPU cycles and the device's channel count.
        let nm_span = elapsed as f64 * f64::from(nm.config().channels)
            / nm.config().cpu_cycles_per_mem_cycle as f64;
        let fm_span = elapsed as f64 * f64::from(fm.config().channels)
            / fm.config().cpu_cycles_per_mem_cycle as f64;
        let (read_q, write_q) = {
            let (nr, nw) = nm.queue_depth_totals(cycle);
            let (fr, fw) = fm.queue_depth_totals(cycle);
            (nr + fr, nw + fw)
        };

        let mut row = [0.0f64; 12];
        row[COL_HIT_RATE] = frac(self.epoch_nm_hits as f64, self.epoch_accesses as f64);
        row[COL_NM_DEMAND_FRAC] = frac(nm_demand as f64, (nm_demand + fm_demand) as f64);
        row[COL_SWAPS] = stats.subblocks_moved.saturating_sub(self.last_swaps) as f64;
        row[COL_LOCKS] = stats.blocks_migrated.saturating_sub(self.last_locks) as f64;
        row[COL_NM_BUS_UTIL] = frac(nm_busy as f64, nm_span);
        row[COL_FM_BUS_UTIL] = frac(fm_busy as f64, fm_span);
        row[COL_READ_QUEUE] = read_q as f64;
        row[COL_WRITE_QUEUE] = write_q as f64;
        // Within-epoch demand-latency percentiles; u64 cycle counts convert
        // exactly for any realistic latency (< 2^53 cycles).
        let [p50, p95, p99, p999] = self.epoch_latency.percentiles();
        row[COL_LAT_P50] = p50 as f64;
        row[COL_LAT_P95] = p95 as f64;
        row[COL_LAT_P99] = p99 as f64;
        row[COL_LAT_P999] = p999 as f64;

        self.epoch_latency.clear();
        self.epoch_accesses = 0;
        self.epoch_nm_hits = 0;
        self.last_swaps = stats.subblocks_moved;
        self.last_locks = stats.blocks_migrated;
        self.last_nm_demand = tally.nm_demand;
        self.last_fm_demand = tally.fm_demand;
        self.last_nm_busy = nm.stats().bus_busy_cycles;
        self.last_fm_busy = fm.stats().bus_busy_cycles;
        self.last_cycle = cycle;
        row
    }

    /// Takes one epoch sample at `cycle`: per-channel queue-depth events
    /// into the DRAM tracers plus one row of the numeric time series.
    pub fn epoch_tick<T: Tracer>(
        &mut self,
        cycle: u64,
        scheme: &dyn MemoryScheme,
        tally: &TrafficTally,
        nm: &mut DramModel<T>,
        fm: &mut DramModel<T>,
    ) {
        nm.sample_queues(cycle);
        fm.sample_queues(cycle);
        let row = self.row(cycle, scheme, tally, nm, fm);
        self.sampler.record(&row);
    }

    /// Finalizes the run: a closing sample covering the tail of the run,
    /// the sampler sealed to exactly `ceil(total_cycles / epoch)` rows, and
    /// every tracer drained into the report.
    pub fn finish<T: Tracer>(
        mut self,
        total_cycles: u64,
        scheme: &mut dyn MemoryScheme,
        tally: &TrafficTally,
        nm: &mut DramModel<T>,
        fm: &mut DramModel<T>,
    ) -> ObsReport {
        let row = self.row(total_cycles, scheme, tally, nm, fm);
        self.sampler.seal(total_cycles, &row);
        let dropped = scheme.trace_dropped() + nm.trace_dropped() + fm.trace_dropped();
        ObsReport::assemble(
            [scheme.drain_trace(), nm.drain_trace(), fm.drain_trace()],
            dropped,
            self.nm_latency,
            self.fm_latency,
            self.latency,
            self.sampler,
            total_cycles,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silcfm_baselines::RandomStatic;
    use silcfm_dram::DramConfig;
    use silcfm_types::obs::NullTracer;
    use silcfm_types::AddressSpace;

    #[test]
    fn rows_carry_epoch_deltas_not_totals() {
        let mut obs = RunObs::new(1_000, 10_000);
        let space = AddressSpace::new(64 * 2048, 256 * 2048);
        let mut scheme = RandomStatic::new(space);
        let mut nm = DramModel::<NullTracer>::with_tracer(DramConfig::hbm2(), NullTracer);
        let mut fm = DramModel::<NullTracer>::with_tracer(DramConfig::ddr3(), NullTracer);
        let mut tally = TrafficTally::default();

        obs.on_demand(MemKind::Near, AccessClass::NmHit, 100);
        obs.on_demand(MemKind::Far, AccessClass::SwapPath, 400);
        tally.nm_demand = 64;
        tally.fm_demand = 192;
        assert!(obs.due(1_000));
        obs.epoch_tick(1_000, &scheme, &tally, &mut nm, &mut fm);
        // Second epoch: no new demand traffic — the fraction resets.
        obs.on_demand(MemKind::Near, AccessClass::NmHit, 90);
        obs.epoch_tick(2_000, &scheme, &tally, &mut nm, &mut fm);

        let report = obs.finish(2_500, &mut scheme, &tally, &mut nm, &mut fm);
        assert_eq!(report.series.rows(), 3); // ceil(2500/1000)
        assert!((report.series.row(0)[COL_HIT_RATE] - 0.5).abs() < 1e-12);
        assert!((report.series.row(0)[COL_NM_DEMAND_FRAC] - 0.25).abs() < 1e-12);
        assert!((report.series.row(1)[COL_HIT_RATE] - 1.0).abs() < 1e-12);
        assert_eq!(report.series.row(1)[COL_NM_DEMAND_FRAC], 0.0);
        assert_eq!(report.nm_latency.count(), 2);
        assert_eq!(report.fm_latency.count(), 1);
        assert_eq!(report.total_cycles, 2_500);

        // The percentile plane: per-class attribution plus within-epoch
        // percentile columns. The epoch sketch resets at each tick, so the
        // first row sees {100, 400} and the second only {90}.
        assert_eq!(report.latency.count(), 3);
        assert_eq!(report.latency.sketch(AccessClass::NmHit).count(), 2);
        assert_eq!(report.latency.sketch(AccessClass::SwapPath).count(), 1);
        assert_eq!(report.latency.sketch(AccessClass::Bypass).count(), 0);
        let p50 = report.series.row(0)[COL_LAT_P50];
        assert!((100.0..=104.0).contains(&p50), "p50 {p50} outside bound");
        assert_eq!(report.series.row(0)[COL_LAT_P999], 400.0); // clamped to max
        assert_eq!(report.series.row(1)[COL_LAT_P50], 90.0); // clamped to max
        assert_eq!(
            report.latency.overall().p999(),
            report.latency.overall().max()
        );
    }
}
