//! Experiment plumbing: scheme factory, run parameters, and the single-run
//! entry point used by every figure harness.

use silcfm_baselines::{Cameo, CameoParams, Hma, HmaParams, Pom, PomParams, RandomStatic};
use silcfm_core::{SilcFm, SilcFmParams};
use silcfm_dram::DramConfig;
use silcfm_fault::{FaultDriver, FaultRates, FaultSchedule, FaultStats, FaultTopology};
use silcfm_obs::{MetricsOnlyTracer, ObsReport, RingTracer, SamplingTracer};
use silcfm_trace::{profiles, PlacementPolicy, WorkloadProfile};
use silcfm_types::obs::{Tracer, EVENT_KINDS};
use silcfm_types::{AddressSpace, Geometry, MemoryScheme, SilcFmError, SystemConfig};

use crate::metrics::RunResult;
use crate::observe::RunObs;
use crate::shard::{run_system_sharded, ShardParams, ShardReport};
use crate::system::{System, SystemOutcome};

/// Which placement scheme to simulate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchemeKind {
    /// The paper's baseline system without die-stacked DRAM: everything in
    /// FM, no migration. All speedups are normalized to this.
    NoNm,
    /// Random static placement over NM+FM (`rand`).
    Rand,
    /// Epoch-based OS management (`hma`).
    Hma,
    /// CAMEO (`cam`).
    Cameo,
    /// CAMEO with next-3-line prefetching (`camp`).
    CameoPrefetch,
    /// Part of Memory (`pom`).
    Pom,
    /// SILC-FM with the given feature configuration (`silcfm`).
    SilcFm(SilcFmParams),
}

impl SchemeKind {
    /// Full SILC-FM with the paper's parameters.
    pub fn silcfm() -> Self {
        Self::SilcFm(SilcFmParams::paper())
    }

    /// Label used in figures ("base", "rand", "hma", "cam", "camp", "pom",
    /// "silcfm").
    pub fn label(&self) -> &'static str {
        match self {
            Self::NoNm => "base",
            Self::Rand => "rand",
            Self::Hma => "hma",
            Self::Cameo => "cam",
            Self::CameoPrefetch => "camp",
            Self::Pom => "pom",
            Self::SilcFm(_) => "silcfm",
        }
    }

    /// The static page placement this scheme starts from.
    pub fn placement(&self, seed: u64) -> PlacementPolicy {
        match self {
            Self::NoNm => PlacementPolicy::FarOnly,
            _ => PlacementPolicy::RandomSeeded(seed),
        }
    }

    /// Instantiates the scheme over `space` for a run of `total_accesses`
    /// memory accesses.
    ///
    /// The paper's time constants (HMA's epoch, SILC-FM's 1 M-access aging
    /// period, PoM's counter decay) are proportions of a 16-billion-
    /// instruction run; here they are scaled to the same *proportion* of the
    /// simulated run so reduced runs exercise the same number of epochs and
    /// agings as the full-length ones.
    pub fn build(&self, space: AddressSpace, total_accesses: u64) -> Box<dyn MemoryScheme> {
        let period = (total_accesses / 16).max(1_000);
        match self {
            Self::NoNm | Self::Rand => Box::new(RandomStatic::new(space)),
            Self::Hma => {
                // Software overheads and the hotness threshold are fixed
                // *fractions* of an epoch in the paper's setup; scale them
                // with the shortened epochs so HMA keeps its real-system
                // cost/benefit proportions.
                // Paper-scale epochs span ~1.5e8 accesses (hundreds of ms
                // at 16 cores); software stall costs shrink by the same
                // factor as the epochs so the ~1 % overhead proportion is
                // preserved.
                let scale = period as f64 / 150_000_000.0;
                Box::new(Hma::new(
                    space,
                    HmaParams {
                        epoch_accesses: period,
                        // The threshold adapts dynamically from this start.
                        hot_threshold: 64,
                        stall_per_migration: ((5_000.0 * scale) as u64).max(1),
                        stall_per_epoch: ((200_000.0 * scale) as u64).max(1),
                    },
                ))
            }
            Self::Cameo => Box::new(Cameo::new(space, CameoParams::default())),
            Self::CameoPrefetch => Box::new(Cameo::new(space, CameoParams::with_prefetch())),
            Self::Pom => Box::new(Pom::new(
                space,
                PomParams {
                    decay_period: period,
                    ..PomParams::default()
                },
            )),
            Self::SilcFm(params) => Box::new(SilcFm::new(
                space,
                Geometry::paper(),
                Self::scale_silcfm(params, total_accesses),
            )),
        }
    }

    /// Like [`SchemeKind::build`], but a SILC-FM controller records its
    /// observability events into a ring buffer of `events_capacity`.
    /// Baseline schemes have no controller-side emit points and build
    /// unchanged (their trace hooks are the [`MemoryScheme`] defaults).
    pub fn build_traced(
        &self,
        space: AddressSpace,
        total_accesses: u64,
        events_capacity: usize,
    ) -> Box<dyn MemoryScheme> {
        match self {
            Self::SilcFm(params) => Box::new(SilcFm::with_tracer(
                space,
                Geometry::paper(),
                Self::scale_silcfm(params, total_accesses),
                RingTracer::with_capacity(events_capacity),
            )),
            _ => self.build(space, total_accesses),
        }
    }

    /// Like [`SchemeKind::build_traced`], but with the sampling tracer
    /// tier: every controller event is counted, full events are retained
    /// one-in-`sampling_period` (a power of two). Baseline schemes build
    /// unchanged, as in `build_traced`.
    pub fn build_sampled(
        &self,
        space: AddressSpace,
        total_accesses: u64,
        events_capacity: usize,
        sampling_period: u64,
    ) -> Box<dyn MemoryScheme> {
        match self {
            Self::SilcFm(params) => Box::new(SilcFm::with_tracer(
                space,
                Geometry::paper(),
                Self::scale_silcfm(params, total_accesses),
                SamplingTracer::with_capacity(events_capacity, sampling_period),
            )),
            _ => self.build(space, total_accesses),
        }
    }

    /// The paper's published constants assume full-length runs; scale them
    /// to `total_accesses` unless the caller overrode the defaults.
    fn scale_silcfm(params: &SilcFmParams, total_accesses: u64) -> SilcFmParams {
        let period = (total_accesses / 16).max(1_000);
        let mut p = *params;
        if p.aging_period == SilcFmParams::paper().aging_period {
            p.aging_period = period;
        }
        if p.bypass_window == SilcFmParams::paper().bypass_window {
            p.bypass_window = (total_accesses / 64).max(500);
        }
        if p.lock_threshold == SilcFmParams::paper().lock_threshold {
            // Threshold 50 is calibrated against 1 M-access aging
            // periods; keep the same touches-per-period proportion.
            // The floor keeps locking selective: a lock fetches a
            // whole 2 KB block, which only pays off for blocks with
            // sustained reuse.
            p.lock_threshold = ((50.0 * p.aging_period as f64 / 1_000_000.0) as u8).clamp(16, 50);
        }
        p
    }

    /// The six schemes of Fig. 7, in the paper's order.
    pub fn fig7_lineup() -> Vec<SchemeKind> {
        vec![
            Self::Rand,
            Self::Hma,
            Self::Cameo,
            Self::CameoPrefetch,
            Self::Pom,
            Self::silcfm(),
        ]
    }
}

/// Size and reproducibility knobs for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunParams {
    /// Memory accesses issued per core.
    pub accesses_per_core: u64,
    /// Workload/placement RNG seed.
    pub seed: u64,
    /// Footprint scale applied to the Table III profiles.
    pub footprint_scale: f64,
    /// FM:NM capacity ratio (4 in the main experiments; Fig. 9 sweeps it).
    pub fm_to_nm_ratio: u64,
}

impl RunParams {
    /// Full-size experiment runs (minutes across the whole Fig. 7 grid).
    /// The access count is sized so each hot page is touched hundreds of
    /// times, amortizing migrations the way the paper's billion-instruction
    /// runs do.
    pub const fn full() -> Self {
        Self {
            accesses_per_core: 600_000,
            seed: 2017,
            footprint_scale: 1.0,
            fm_to_nm_ratio: 4,
        }
    }

    /// Reduced runs for `--quick` experiment invocations (tens of seconds).
    /// The footprint scale keeps hot sets comfortably larger than the LLC.
    pub const fn quick() -> Self {
        Self {
            accesses_per_core: 150_000,
            seed: 2017,
            footprint_scale: 0.5,
            fm_to_nm_ratio: 4,
        }
    }

    /// Tiny runs for unit tests and doctests. The scale is chosen so hot
    /// working sets still exceed [`SystemConfig::small`]'s 1 MiB LLC —
    /// below that, the memory system sees only cold misses and no placement
    /// scheme can help.
    pub const fn smoke() -> Self {
        Self {
            accesses_per_core: 30_000,
            seed: 2017,
            footprint_scale: 0.2,
            fm_to_nm_ratio: 4,
        }
    }

    /// Returns a copy with a different FM:NM ratio (Fig. 9).
    pub const fn with_ratio(mut self, ratio: u64) -> Self {
        self.fm_to_nm_ratio = ratio;
        self
    }
}

impl Default for RunParams {
    fn default() -> Self {
        Self::full()
    }
}

/// Sizes the flat address space for a workload: FM holds the whole combined
/// footprint (so the no-NM baseline fits), NM adds `1/ratio` on top, and
/// block counts stay divisible by 64 for set/associativity alignment.
pub fn space_for(
    profile: &WorkloadProfile,
    cfg: &SystemConfig,
    params: &RunParams,
) -> AddressSpace {
    let total_pages = profile.footprint_pages * u64::from(cfg.core.cores);
    let align = params.fm_to_nm_ratio * 64;
    let fm_blocks = total_pages.div_ceil(align) * align;
    let nm_blocks = fm_blocks / params.fm_to_nm_ratio;
    AddressSpace::new(nm_blocks * 2048, fm_blocks * 2048)
}

/// Fault-injection knobs for [`run_faulted`]: an independent seed (so the
/// fault plane never perturbs workload or placement randomness), a schedule
/// horizon in CPU cycles, and the per-class rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultParams {
    /// Seed of the fault plane, decorrelated from [`RunParams::seed`].
    pub fault_seed: u64,
    /// CPU-cycle horizon the schedule covers; faults past the run's actual
    /// length are simply never delivered.
    pub horizon_cycles: u64,
    /// Per-class injection rates.
    pub rates: FaultRates,
}

impl FaultParams {
    /// The fault topology `scheme` exposes over `space`: the controller's
    /// way count, NM frame and subblock geometry, and the Table II channel
    /// counts.
    pub fn topology_for(scheme: &SchemeKind, space: AddressSpace) -> FaultTopology {
        let ways = match scheme {
            SchemeKind::SilcFm(p) => p.associativity,
            _ => 1,
        };
        FaultTopology {
            nm_ways: ways.min(u32::from(u8::MAX)) as u8,
            nm_frames: (space.nm_bytes() / 2048).min(u64::from(u32::MAX)) as u32,
            subblocks: 32,
            nm_channels: DramConfig::hbm2().channels.min(u32::from(u8::MAX)) as u8,
            fm_channels: DramConfig::ddr3().channels.min(u32::from(u8::MAX)) as u8,
        }
    }

    /// Generates this configuration's schedule for `scheme` over `space`
    /// and wraps it in a delivery cursor.
    ///
    /// # Errors
    ///
    /// Returns [`SilcFmError::FaultConfig`] when the rates or derived
    /// topology are invalid.
    pub fn driver_for(
        &self,
        scheme: &SchemeKind,
        space: AddressSpace,
    ) -> Result<FaultDriver, SilcFmError> {
        let topo = Self::topology_for(scheme, space);
        let schedule =
            FaultSchedule::generate(self.fault_seed, self.horizon_cycles, &self.rates, &topo)?;
        Ok(FaultDriver::new(schedule))
    }
}

/// Observability knobs for [`run_traced`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceParams {
    /// Ring-buffer capacity (events) of each tracer: one for the
    /// controller and one per DRAM device. Oldest events are overwritten
    /// once full; the report counts the drops.
    pub events_capacity: usize,
    /// CPU cycles between time-series samples (and queue-depth events).
    pub epoch_cycles: u64,
}

impl TraceParams {
    /// Defaults sized for a full workload capture: 1 Mi events per tracer,
    /// a sample every 100 k cycles.
    pub const fn default_capture() -> Self {
        Self {
            events_capacity: 1 << 20,
            epoch_cycles: 100_000,
        }
    }
}

impl Default for TraceParams {
    fn default() -> Self {
        Self::default_capture()
    }
}

/// Folds one finished system + outcome into the figure-level metrics.
fn collect<T: Tracer>(
    profile: &WorkloadProfile,
    scheme: SchemeKind,
    system: &System<T>,
    outcome: SystemOutcome,
) -> RunResult {
    let scheme_stats = system.scheme().stats();
    let mpki = if outcome.instructions == 0 {
        0.0
    } else {
        // Per-core MPKI: total misses and total instructions scale together.
        outcome.llc_misses as f64 * 1000.0 / outcome.instructions as f64
    };

    RunResult {
        scheme: scheme.label().to_string(),
        workload: profile.name.to_string(),
        cycles: outcome.cycles,
        instructions: outcome.instructions,
        llc_misses: outcome.llc_misses,
        access_rate: scheme_stats.access_rate(),
        traffic: *system.tally(),
        energy_pj: system.energy_pj(outcome.cycles),
        scheme_stats,
        mpki,
        footprint_bytes: system.footprint_bytes(),
    }
}

/// Simulates `scheme` on `profile` (rate mode: one copy per core) and
/// returns the measured metrics.
pub fn run(
    profile: &WorkloadProfile,
    scheme: SchemeKind,
    cfg: &SystemConfig,
    params: &RunParams,
) -> RunResult {
    let scaled = profiles::scaled(profile, params.footprint_scale);
    let space = space_for(&scaled, cfg, params);
    let total_accesses = params.accesses_per_core * u64::from(cfg.core.cores);
    let mut system = System::new(
        *cfg,
        space,
        scheme.placement(params.seed),
        scheme.build(space, total_accesses),
    );
    let outcome = system.run(&scaled, params.accesses_per_core, params.seed);
    collect(profile, scheme, &system, outcome)
}

/// Like [`run`], but with full observability: ring-buffer tracers on the
/// controller and both DRAM devices, demand-latency histograms and the
/// epoch time series. Returns the (bit-identical to [`run`]) metrics plus
/// the assembled [`ObsReport`].
pub fn run_traced(
    profile: &WorkloadProfile,
    scheme: SchemeKind,
    cfg: &SystemConfig,
    params: &RunParams,
    trace: &TraceParams,
) -> (RunResult, ObsReport) {
    let scaled = profiles::scaled(profile, params.footprint_scale);
    let space = space_for(&scaled, cfg, params);
    let total_accesses = params.accesses_per_core * u64::from(cfg.core.cores);
    // Preallocation hint only; the sampler grows if the run overshoots.
    let expected_cycles = params.accesses_per_core.saturating_mul(64);
    let mut system = System::with_observability(
        *cfg,
        space,
        scheme.placement(params.seed),
        scheme.build_traced(space, total_accesses, trace.events_capacity),
        RingTracer::with_capacity(trace.events_capacity),
        RingTracer::with_capacity(trace.events_capacity),
        Some(RunObs::new(trace.epoch_cycles, expected_cycles)),
    );
    let outcome = system.run(&scaled, params.accesses_per_core, params.seed);
    let result = collect(profile, scheme, &system, outcome);
    let report = system
        .finish_observation(outcome.cycles)
        // silcfm-lint: allow(E1) -- with_observability ten lines up always installs RunObs; the invariant is local
        .expect("the system above is always built with observability");
    (result, report)
}

/// Like [`run_traced`], but on the metrics-only tier: the `T::ENABLED`
/// observability hooks are live — the per-class latency quantile sketches,
/// the demand-latency histograms, and the epoch sampler all populate — yet
/// no event is ever buffered: the DRAM devices carry
/// [`MetricsOnlyTracer`]s whose `record` inlines to nothing, and the
/// controller runs its untraced build. The returned [`ObsReport`] has the
/// full latency-percentile plane and time series but an empty event
/// stream. This is the cheapest "sketches ON" configuration; the
/// `throughput --overhead` bench prices it against the untraced run.
///
/// The latency plane it produces is byte-identical to [`run_traced`]'s:
/// both fold the same demand completions in the same order — the tracer
/// tier only decides whether events are *retained*, never what the
/// simulation does.
pub fn run_metrics_only(
    profile: &WorkloadProfile,
    scheme: SchemeKind,
    cfg: &SystemConfig,
    params: &RunParams,
    trace: &TraceParams,
) -> (RunResult, ObsReport) {
    let scaled = profiles::scaled(profile, params.footprint_scale);
    let space = space_for(&scaled, cfg, params);
    let total_accesses = params.accesses_per_core * u64::from(cfg.core.cores);
    let expected_cycles = params.accesses_per_core.saturating_mul(64);
    let mut system = System::with_observability(
        *cfg,
        space,
        scheme.placement(params.seed),
        scheme.build(space, total_accesses),
        MetricsOnlyTracer,
        MetricsOnlyTracer,
        Some(RunObs::new(trace.epoch_cycles, expected_cycles)),
    );
    let outcome = system.run(&scaled, params.accesses_per_core, params.seed);
    let result = collect(profile, scheme, &system, outcome);
    let report = system
        .finish_observation(outcome.cycles)
        // silcfm-lint: allow(E1) -- with_observability ten lines up always installs RunObs; the invariant is local
        .expect("the system above is always built with observability");
    (result, report)
}

/// Like [`run_traced`], but on the sampling tracer tier: the controller and
/// both DRAM devices count every event and retain full events only
/// one-in-`sampling_period` (a power of two), so the observability cost is
/// a few percent instead of the ring tier's double-digit share. Returns the metrics, the
/// [`ObsReport`] assembled from the sampled stream, and the controller's
/// exact per-kind event totals (indexed by
/// [`Event::kind_index`](silcfm_types::obs::Event::kind_index)).
///
/// # Panics
///
/// Panics if `sampling_period` is not a power of two.
pub fn run_sampled(
    profile: &WorkloadProfile,
    scheme: SchemeKind,
    cfg: &SystemConfig,
    params: &RunParams,
    trace: &TraceParams,
    sampling_period: u64,
) -> (RunResult, ObsReport, [u64; EVENT_KINDS]) {
    let scaled = profiles::scaled(profile, params.footprint_scale);
    let space = space_for(&scaled, cfg, params);
    let total_accesses = params.accesses_per_core * u64::from(cfg.core.cores);
    let expected_cycles = params.accesses_per_core.saturating_mul(64);
    let mut system = System::with_observability(
        *cfg,
        space,
        scheme.placement(params.seed),
        scheme.build_sampled(
            space,
            total_accesses,
            trace.events_capacity,
            sampling_period,
        ),
        SamplingTracer::with_capacity(trace.events_capacity, sampling_period),
        SamplingTracer::with_capacity(trace.events_capacity, sampling_period),
        Some(RunObs::new(trace.epoch_cycles, expected_cycles)),
    );
    let outcome = system.run(&scaled, params.accesses_per_core, params.seed);
    let result = collect(profile, scheme, &system, outcome);
    let counters = system.scheme().trace_counters();
    let report = system
        .finish_observation(outcome.cycles)
        // silcfm-lint: allow(E1) -- with_observability above always installs RunObs; the invariant is local
        .expect("the system above is always built with observability");
    (result, report, counters)
}

/// The always-on configuration of the sampling tier: sampling tracers on
/// the controller and both DRAM devices, but *no* epoch sampler and no
/// demand-latency histograms (those belong to a capture session, not to a
/// tier meant to stay live in production runs). This is the configuration
/// whose overhead the tier's "few percent" budget is measured against —
/// [`run_sampled`] additionally pays the `RunObs` metrics apparatus, which
/// is the larger share of its cost. Returns the (bit-identical) metrics
/// plus the controller's exact per-kind event totals.
///
/// # Panics
///
/// Panics if `sampling_period` is not a power of two.
pub fn run_sampled_lean(
    profile: &WorkloadProfile,
    scheme: SchemeKind,
    cfg: &SystemConfig,
    params: &RunParams,
    trace: &TraceParams,
    sampling_period: u64,
) -> (RunResult, [u64; EVENT_KINDS]) {
    let scaled = profiles::scaled(profile, params.footprint_scale);
    let space = space_for(&scaled, cfg, params);
    let total_accesses = params.accesses_per_core * u64::from(cfg.core.cores);
    let mut system = System::with_observability(
        *cfg,
        space,
        scheme.placement(params.seed),
        scheme.build_sampled(
            space,
            total_accesses,
            trace.events_capacity,
            sampling_period,
        ),
        SamplingTracer::with_capacity(trace.events_capacity, sampling_period),
        SamplingTracer::with_capacity(trace.events_capacity, sampling_period),
        None,
    );
    let outcome = system.run(&scaled, params.accesses_per_core, params.seed);
    let result = collect(profile, scheme, &system, outcome);
    let counters = system.scheme().trace_counters();
    (result, counters)
}

/// Like [`run`], but with a deterministic fault schedule armed: faults are
/// delivered before the demand access that first reaches their cycle, the
/// scheme and DRAM devices absorb or recover from them, and the returned
/// ledger accounts every delivery.
///
/// # Errors
///
/// Returns [`SilcFmError::FaultConfig`] when `faults` is invalid.
pub fn run_faulted(
    profile: &WorkloadProfile,
    scheme: SchemeKind,
    cfg: &SystemConfig,
    params: &RunParams,
    faults: &FaultParams,
) -> Result<(RunResult, FaultStats), SilcFmError> {
    let scaled = profiles::scaled(profile, params.footprint_scale);
    let space = space_for(&scaled, cfg, params);
    let total_accesses = params.accesses_per_core * u64::from(cfg.core.cores);
    let mut system = System::new(
        *cfg,
        space,
        scheme.placement(params.seed),
        scheme.build(space, total_accesses),
    );
    system.set_fault_driver(faults.driver_for(&scheme, space)?);
    let outcome = system.run(&scaled, params.accesses_per_core, params.seed);
    let result = collect(profile, scheme, &system, outcome);
    Ok((result, *system.fault_stats()))
}

/// [`run_faulted`] with full observability, for harnesses that audit the
/// fault plane's trace events (`fault_injected`, `recovered`, `poisoned`,
/// `failover`) against the stats ledger.
///
/// # Errors
///
/// Returns [`SilcFmError::FaultConfig`] when `faults` is invalid.
pub fn run_faulted_traced(
    profile: &WorkloadProfile,
    scheme: SchemeKind,
    cfg: &SystemConfig,
    params: &RunParams,
    faults: &FaultParams,
    trace: &TraceParams,
) -> Result<(RunResult, FaultStats, ObsReport), SilcFmError> {
    let scaled = profiles::scaled(profile, params.footprint_scale);
    let space = space_for(&scaled, cfg, params);
    let total_accesses = params.accesses_per_core * u64::from(cfg.core.cores);
    let expected_cycles = params.accesses_per_core.saturating_mul(64);
    let mut system = System::with_observability(
        *cfg,
        space,
        scheme.placement(params.seed),
        scheme.build_traced(space, total_accesses, trace.events_capacity),
        RingTracer::with_capacity(trace.events_capacity),
        RingTracer::with_capacity(trace.events_capacity),
        Some(RunObs::new(trace.epoch_cycles, expected_cycles)),
    );
    system.set_fault_driver(faults.driver_for(&scheme, space)?);
    let outcome = system.run(&scaled, params.accesses_per_core, params.seed);
    let result = collect(profile, scheme, &system, outcome);
    let fault_stats = *system.fault_stats();
    let report = system
        .finish_observation(outcome.cycles)
        .ok_or_else(|| SilcFmError::experiment("traced run lost its observability state"))?;
    Ok((result, fault_stats, report))
}

/// [`run`] with the simulation itself sharded across threads: workload
/// generation on producer threads, the shared-state commit loop on the
/// calling thread, lane deltas merged at epoch barriers (DESIGN.md §11).
/// The [`RunResult`] is bit-identical to [`run`]'s at any
/// [`ShardParams::threads`].
pub fn run_sharded(
    profile: &WorkloadProfile,
    scheme: SchemeKind,
    cfg: &SystemConfig,
    params: &RunParams,
    shard: &ShardParams,
) -> (RunResult, ShardReport) {
    let scaled = profiles::scaled(profile, params.footprint_scale);
    let space = space_for(&scaled, cfg, params);
    let total_accesses = params.accesses_per_core * u64::from(cfg.core.cores);
    let mut system = System::new(
        *cfg,
        space,
        scheme.placement(params.seed),
        scheme.build(space, total_accesses),
    );
    let (outcome, report) = run_system_sharded(
        &mut system,
        &scaled,
        params.accesses_per_core,
        params.seed,
        shard,
    );
    (collect(profile, scheme, &system, outcome), report)
}

/// [`run_traced`] on the sharded runner: full observability, bit-identical
/// results and exports at any thread count (tracing rides the consumer
/// thread, which commits all shared state serially).
pub fn run_sharded_traced(
    profile: &WorkloadProfile,
    scheme: SchemeKind,
    cfg: &SystemConfig,
    params: &RunParams,
    trace: &TraceParams,
    shard: &ShardParams,
) -> (RunResult, ObsReport, ShardReport) {
    let scaled = profiles::scaled(profile, params.footprint_scale);
    let space = space_for(&scaled, cfg, params);
    let total_accesses = params.accesses_per_core * u64::from(cfg.core.cores);
    let expected_cycles = params.accesses_per_core.saturating_mul(64);
    let mut system = System::with_observability(
        *cfg,
        space,
        scheme.placement(params.seed),
        scheme.build_traced(space, total_accesses, trace.events_capacity),
        RingTracer::with_capacity(trace.events_capacity),
        RingTracer::with_capacity(trace.events_capacity),
        Some(RunObs::new(trace.epoch_cycles, expected_cycles)),
    );
    let (outcome, shard_report) = run_system_sharded(
        &mut system,
        &scaled,
        params.accesses_per_core,
        params.seed,
        shard,
    );
    let result = collect(profile, scheme, &system, outcome);
    let report = system
        .finish_observation(outcome.cycles)
        // silcfm-lint: allow(E1) -- with_observability above always installs RunObs; the invariant is local
        .expect("the system above is always built with observability");
    (result, report, shard_report)
}

/// [`run_faulted`] on the sharded runner: the fault schedule is delivered
/// on the consumer thread in the same cycle order as the serial path, so
/// the ledger — which still satisfies `conserved()` — is bit-identical.
///
/// # Errors
///
/// Returns [`SilcFmError::FaultConfig`] when `faults` is invalid.
pub fn run_sharded_faulted(
    profile: &WorkloadProfile,
    scheme: SchemeKind,
    cfg: &SystemConfig,
    params: &RunParams,
    faults: &FaultParams,
    shard: &ShardParams,
) -> Result<(RunResult, FaultStats, ShardReport), SilcFmError> {
    let scaled = profiles::scaled(profile, params.footprint_scale);
    let space = space_for(&scaled, cfg, params);
    let total_accesses = params.accesses_per_core * u64::from(cfg.core.cores);
    let mut system = System::new(
        *cfg,
        space,
        scheme.placement(params.seed),
        scheme.build(space, total_accesses),
    );
    system.set_fault_driver(faults.driver_for(&scheme, space)?);
    let (outcome, report) = run_system_sharded(
        &mut system,
        &scaled,
        params.accesses_per_core,
        params.seed,
        shard,
    );
    let result = collect(profile, scheme, &system, outcome);
    Ok((result, *system.fault_stats(), report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> &'static WorkloadProfile {
        profiles::by_name("milc").unwrap()
    }

    #[test]
    fn space_sizing_is_aligned_and_sufficient() {
        let cfg = SystemConfig::small();
        let params = RunParams::smoke();
        let scaled = profiles::scaled(profile(), params.footprint_scale);
        let space = space_for(&scaled, &cfg, &params);
        // FM alone holds the whole footprint.
        assert!(space.fm_bytes() >= scaled.footprint_pages * 2048 * 4);
        // Integral ratio for congruence groups.
        assert_eq!(space.fm_bytes() % space.nm_bytes(), 0);
        // NM block count divisible by 4-way sets.
        assert_eq!((space.nm_bytes() / 2048) % 64, 0);
    }

    #[test]
    fn all_schemes_run_to_completion() {
        let cfg = SystemConfig::small();
        let params = RunParams::smoke();
        for kind in SchemeKind::fig7_lineup()
            .into_iter()
            .chain([SchemeKind::NoNm])
        {
            let r = run(profile(), kind, &cfg, &params);
            assert!(r.cycles > 0, "{} produced no cycles", r.scheme);
            assert_eq!(r.workload, "milc");
            assert!(r.instructions > 0);
        }
    }

    #[test]
    fn no_nm_baseline_has_zero_access_rate() {
        let cfg = SystemConfig::small();
        let r = run(profile(), SchemeKind::NoNm, &cfg, &RunParams::smoke());
        assert_eq!(r.access_rate, 0.0);
        assert_eq!(r.traffic.nm_demand, 0);
    }

    #[test]
    fn silcfm_beats_the_no_nm_baseline() {
        let cfg = SystemConfig::small();
        let params = RunParams::smoke();
        let base = run(profile(), SchemeKind::NoNm, &cfg, &params);
        let silc = run(profile(), SchemeKind::silcfm(), &cfg, &params);
        assert!(
            silc.speedup_over(&base) > 1.0,
            "SILC-FM must beat no-NM: {:.3}",
            silc.speedup_over(&base)
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SchemeKind::NoNm.label(), "base");
        assert_eq!(SchemeKind::silcfm().label(), "silcfm");
        let labels: Vec<_> = SchemeKind::fig7_lineup()
            .iter()
            .map(|k| k.label())
            .collect();
        assert_eq!(labels, vec!["rand", "hma", "cam", "camp", "pom", "silcfm"]);
    }

    #[test]
    fn faulted_run_with_empty_schedule_matches_the_plain_run() {
        let cfg = SystemConfig::small();
        let params = RunParams::smoke();
        let faults = FaultParams {
            fault_seed: 1,
            horizon_cycles: 1_000_000,
            rates: FaultRates::none(),
        };
        let plain = run(profile(), SchemeKind::silcfm(), &cfg, &params);
        let (faulted, stats) =
            run_faulted(profile(), SchemeKind::silcfm(), &cfg, &params, &faults).unwrap();
        assert_eq!(stats.injected, 0);
        assert_eq!(plain.cycles, faulted.cycles);
        assert_eq!(plain.traffic, faulted.traffic);
        assert_eq!(plain.scheme_stats, faulted.scheme_stats);
    }

    #[test]
    fn faulted_runs_conserve_and_are_deterministic() {
        let cfg = SystemConfig::small();
        let params = RunParams::smoke();
        let faults = FaultParams {
            fault_seed: 7,
            horizon_cycles: 4_000_000,
            rates: FaultRates::harsh(),
        };
        let (a, sa) = run_faulted(profile(), SchemeKind::silcfm(), &cfg, &params, &faults).unwrap();
        let (b, sb) = run_faulted(profile(), SchemeKind::silcfm(), &cfg, &params, &faults).unwrap();
        assert!(sa.injected > 0, "harsh rates must inject something");
        assert!(sa.conserved());
        assert_eq!(sa, sb);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.traffic, b.traffic);
        assert_eq!(a.scheme_stats, b.scheme_stats);
    }

    #[test]
    fn baselines_mask_scheme_faults_but_feel_channel_faults() {
        let cfg = SystemConfig::small();
        let params = RunParams::smoke();
        let faults = FaultParams {
            fault_seed: 3,
            horizon_cycles: 4_000_000,
            rates: FaultRates::harsh(),
        };
        let (r, stats) = run_faulted(profile(), SchemeKind::Hma, &cfg, &params, &faults).unwrap();
        assert!(r.cycles > 0);
        assert!(stats.conserved());
        // The default `apply_fault` masks every scheme-side fault; nothing
        // may be lost by a scheme that holds no interleaved state.
        assert_eq!(stats.poisoned, 0);
    }

    #[test]
    fn sampled_runs_match_plain_runs_and_count_every_event() {
        use silcfm_obs::Unit;

        let cfg = SystemConfig::small();
        let params = RunParams::smoke();
        // Capacity large enough that neither run drops, so the fully-traced
        // stream is the exact reference for the counter totals.
        let trace = TraceParams {
            events_capacity: 1 << 20,
            epoch_cycles: 100_000,
        };
        let plain = run(profile(), SchemeKind::silcfm(), &cfg, &params);
        let (_, full_report) = run_traced(profile(), SchemeKind::silcfm(), &cfg, &params, &trace);
        let (sampled, report, counters) =
            run_sampled(profile(), SchemeKind::silcfm(), &cfg, &params, &trace, 64);
        // Observability must never perturb the simulation.
        assert_eq!(plain.cycles, sampled.cycles);
        assert_eq!(plain.traffic, sampled.traffic);
        assert_eq!(plain.scheme_stats, sampled.scheme_stats);
        // The counter tier is exact: per-kind totals sum to the fully-traced
        // run's controller event count even though the ring keeps 1-in-64.
        assert_eq!(full_report.dropped, 0);
        let full_controller = full_report.events_from(Unit::Controller) as u64;
        assert!(full_controller > 0);
        assert_eq!(counters.iter().sum::<u64>(), full_controller);
        // The sampled stream really is ~64x sparser.
        let sampled_controller = report.events_from(Unit::Controller) as u64;
        assert_eq!(sampled_controller, full_controller.div_ceil(64));
    }

    #[test]
    fn metrics_only_tier_matches_plain_and_traced_runs() {
        let cfg = SystemConfig::small();
        let params = RunParams::smoke();
        let trace = TraceParams {
            events_capacity: 1 << 14,
            epoch_cycles: 100_000,
        };
        let plain = run(profile(), SchemeKind::silcfm(), &cfg, &params);
        let (traced, traced_report) =
            run_traced(profile(), SchemeKind::silcfm(), &cfg, &params, &trace);
        let (metrics, metrics_report) =
            run_metrics_only(profile(), SchemeKind::silcfm(), &cfg, &params, &trace);
        // The tier is behavior-neutral against both neighbors.
        assert_eq!(plain.cycles, metrics.cycles);
        assert_eq!(plain.traffic, metrics.traffic);
        assert_eq!(plain.scheme_stats, metrics.scheme_stats);
        assert_eq!(traced.cycles, metrics.cycles);
        // The latency-percentile plane is byte-identical to the ring
        // tier's: retention policy never changes what the sketches fold.
        let mut traced_bytes = String::new();
        traced_report.latency.encode(&mut traced_bytes);
        let mut metrics_bytes = String::new();
        metrics_report.latency.encode(&mut metrics_bytes);
        assert_eq!(traced_bytes, metrics_bytes);
        assert!(metrics_report.latency.count() > 0);
        // But no events were buffered anywhere.
        assert_eq!(metrics_report.event_count(), 0);
        assert_eq!(metrics_report.dropped, 0);
    }

    #[test]
    fn runs_are_reproducible() {
        let cfg = SystemConfig::small();
        let params = RunParams::smoke();
        let a = run(profile(), SchemeKind::silcfm(), &cfg, &params);
        let b = run(profile(), SchemeKind::silcfm(), &cfg, &params);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.traffic, b.traffic);
    }
}
